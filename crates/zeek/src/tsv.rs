//! Zeek-TSV serialization.
//!
//! The format matches Zeek's ASCII writer closely enough that real tooling
//! habits transfer: `#separator \x09`, `#set_separator ,`, `#unset_field -`,
//! `#empty_field (empty)`, `#path`, `#fields`, `#types` headers, one record
//! per line, vectors comma-joined. Values containing the separator, the set
//! separator, or newlines are escaped as `\xNN` on write and unescaped on
//! read (Zeek itself forbids them; escaping keeps the round-trip total).

use crate::diag::{IngestMode, ShardDiag};
use crate::ip::Ipv4;
use crate::records::{SslRecord, TlsVersion, X509Record};
use crate::swar;
use std::borrow::Cow;
use std::io::{BufRead, Write};

/// Errors from reading a Zeek-TSV stream.
#[derive(Debug)]
pub enum TsvError {
    Io(std::io::Error),
    /// A data line had the wrong number of columns.
    ColumnCount {
        line: usize,
        expected: usize,
        got: usize,
    },
    /// A field failed to parse.
    BadField {
        line: usize,
        field: &'static str,
        value: String,
    },
    /// A data line is not valid UTF-8.
    NonUtf8 {
        line: usize,
    },
    /// The `#fields` header is missing or does not match the expected schema.
    BadHeader,
}

impl From<std::io::Error> for TsvError {
    fn from(e: std::io::Error) -> TsvError {
        TsvError::Io(e)
    }
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::Io(e) => write!(f, "io error: {e}"),
            TsvError::ColumnCount {
                line,
                expected,
                got,
            } => {
                write!(f, "line {line}: expected {expected} columns, got {got}")
            }
            TsvError::BadField { line, field, value } => {
                write!(f, "line {line}: bad value for {field}: {value:?}")
            }
            TsvError::NonUtf8 { line } => write!(f, "line {line}: not valid UTF-8"),
            TsvError::BadHeader => write!(f, "missing or mismatched #fields header"),
        }
    }
}

impl std::error::Error for TsvError {}

const UNSET: &str = "-";
const EMPTY: &str = "(empty)";

/// The five bytes [`escape`] must rewrite (and the SWAR fast path probes
/// for, eight bytes at a time).
const ESCAPE_NEEDLES: [u8; 5] = [b'\t', b'\n', b'\r', b',', b'\\'];

/// Escape separator-colliding characters. The overwhelmingly common case —
/// no collision — borrows the input instead of allocating.
pub fn escape(s: &str) -> Cow<'_, str> {
    if !swar::contains_any5(s.as_bytes(), ESCAPE_NEEDLES) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for ch in s.chars() {
        match ch {
            '\t' => out.push_str("\\x09"),
            '\n' => out.push_str("\\x0a"),
            '\r' => out.push_str("\\x0d"),
            ',' => out.push_str("\\x2c"),
            '\\' => out.push_str("\\x5c"),
            c => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Undo [`escape`]. Fields without `\xNN` sequences — nearly all of them —
/// borrow the input; callers that need ownership pay exactly one copy.
/// Total on arbitrary input: malformed or truncated escape sequences pass
/// through unchanged rather than erroring.
pub fn unescape(s: &str) -> Cow<'_, str> {
    if !swar::contains_seq2(s.as_bytes(), b'\\', b'x') {
        return Cow::Borrowed(s);
    }
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\'
            && i + 3 < bytes.len()
            && bytes[i + 1] == b'x'
            && bytes[i + 2].is_ascii_hexdigit()
            && bytes[i + 3].is_ascii_hexdigit()
        {
            let hi = (bytes[i + 2] as char).to_digit(16).expect("hex");
            let lo = (bytes[i + 3] as char).to_digit(16).expect("hex");
            out.push(((hi * 16 + lo) as u8) as char);
            i += 4;
        } else {
            // Safe because we walk char boundaries only for ASCII escapes;
            // re-find the char at byte i.
            let ch = s[i..].chars().next().expect("in range");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Cow::Owned(out)
}

fn opt_str(v: &Option<String>) -> Cow<'_, str> {
    match v {
        // A literal value equal to the unset/empty markers must be escaped
        // or it would read back as None (Zeek's format is ambiguous here).
        Some(s) if s == UNSET => Cow::Borrowed("\\x2d"),
        Some(s) if s == EMPTY => Cow::Owned(escape_markers(s)),
        Some(s) if !s.is_empty() => escape(s),
        _ => Cow::Borrowed(UNSET),
    }
}

/// Escape every character of a marker-colliding value.
fn escape_markers(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 4);
    for b in s.bytes() {
        out.push_str(&format!("\\x{b:02x}"));
    }
    out
}

fn vec_str(v: &[String]) -> Cow<'_, str> {
    if v.is_empty() {
        return Cow::Borrowed(EMPTY);
    }
    if let [only] = v {
        // Single-element fast path: borrow when clean, but a value that
        // collides with a marker must be escaped or it would read back as
        // unset/empty.
        let escaped = escape(only);
        if escaped == UNSET || escaped == EMPTY {
            return Cow::Owned(escape_markers(&escaped));
        }
        return escaped;
    }
    let mut joined = String::with_capacity(v.iter().map(|s| s.len() + 1).sum());
    for (i, s) in v.iter().enumerate() {
        if i > 0 {
            joined.push(',');
        }
        joined.push_str(&escape(s));
    }
    Cow::Owned(joined)
}

fn parse_opt(s: &str) -> Option<String> {
    if s == UNSET || s.is_empty() {
        None
    } else {
        Some(unescape(s).into_owned())
    }
}

fn parse_vec(s: &str) -> Vec<String> {
    if s == EMPTY || s == UNSET || s.is_empty() {
        Vec::new()
    } else {
        swar::split_str(s, b',')
            .map(|p| unescape(p).into_owned())
            .collect()
    }
}

const SSL_FIELDS: &[&str] = &[
    "ts",
    "uid",
    "id.orig_h",
    "id.orig_p",
    "id.resp_h",
    "id.resp_p",
    "version",
    "server_name",
    "established",
    "cert_chain_fps",
    "client_cert_chain_fps",
];

const X509_FIELDS: &[&str] = &[
    "ts",
    "fingerprint",
    "certificate.version",
    "certificate.serial",
    "certificate.subject",
    "certificate.issuer",
    "certificate.issuer_org",
    "certificate.subject_cn",
    "certificate.not_valid_before",
    "certificate.not_valid_after",
    "certificate.key_alg",
    "certificate.key_length",
    "certificate.sig_alg",
    "san.dns",
    "san.email",
    "san.uri",
    "san.ip",
    "basic_constraints.ca",
];

fn write_header(
    w: &mut impl Write,
    path: &str,
    fields: &[&str],
    types: &[&str],
) -> std::io::Result<()> {
    writeln!(w, "#separator \\x09")?;
    writeln!(w, "#set_separator\t,")?;
    writeln!(w, "#empty_field\t(empty)")?;
    writeln!(w, "#unset_field\t-")?;
    writeln!(w, "#path\t{path}")?;
    writeln!(w, "#fields\t{}", fields.join("\t"))?;
    writeln!(w, "#types\t{}", types.join("\t"))?;
    Ok(())
}

/// Write an `ssl.log` stream. Accepts any iterator of record references,
/// so rotation can write grouped refs without cloning records first.
pub fn write_ssl_log<'a>(
    w: &mut impl Write,
    records: impl IntoIterator<Item = &'a SslRecord>,
) -> std::io::Result<()> {
    let types = [
        "time",
        "string",
        "addr",
        "port",
        "addr",
        "port",
        "string",
        "string",
        "bool",
        "vector[string]",
        "vector[string]",
    ];
    write_header(w, "ssl", SSL_FIELDS, &types)?;
    for r in records {
        writeln!(
            w,
            // `{}` on f64 emits the shortest representation that parses
            // back to the identical bits — lossless round-trips matter more
            // here than Zeek's cosmetic fixed-width 6 decimals.
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.ts,
            escape(&r.uid),
            r.orig_h,
            r.orig_p,
            r.resp_h,
            r.resp_p,
            r.version.zeek_name(),
            opt_str(&r.server_name),
            if r.established { "T" } else { "F" },
            vec_str(&r.cert_chain_fps),
            vec_str(&r.client_cert_chain_fps),
        )?;
    }
    writeln!(w, "#close")?;
    Ok(())
}

/// Write an `x509.log` stream. Accepts any iterator of record references,
/// so rotation can write grouped refs without cloning records first.
pub fn write_x509_log<'a>(
    w: &mut impl Write,
    records: impl IntoIterator<Item = &'a X509Record>,
) -> std::io::Result<()> {
    let types = [
        "time",
        "string",
        "count",
        "string",
        "string",
        "string",
        "string",
        "string",
        "time",
        "time",
        "string",
        "count",
        "string",
        "vector[string]",
        "vector[string]",
        "vector[string]",
        "vector[string]",
        "bool",
    ];
    write_header(w, "x509", X509_FIELDS, &types)?;
    for r in records {
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.ts,
            escape(&r.fingerprint),
            r.version,
            escape(&r.serial),
            escape(&r.subject),
            escape(&r.issuer),
            opt_str(&r.issuer_org),
            opt_str(&r.subject_cn),
            r.not_valid_before,
            r.not_valid_after,
            escape(&r.key_alg),
            r.key_length,
            escape(&r.sig_alg),
            vec_str(&r.san_dns),
            vec_str(&r.san_email),
            vec_str(&r.san_uri),
            vec_str(&r.san_ip),
            if r.basic_constraints_ca { "T" } else { "F" },
        )?;
    }
    writeln!(w, "#close")?;
    Ok(())
}

struct LineParser<'a, 'b> {
    cols: &'b [&'a str],
    line_no: usize,
}

impl<'a> LineParser<'a, '_> {
    fn col(&self, i: usize) -> &'a str {
        self.cols[i]
    }

    fn parse<T: std::str::FromStr>(&self, i: usize, field: &'static str) -> Result<T, TsvError> {
        self.cols[i].parse().map_err(|_| TsvError::BadField {
            line: self.line_no,
            field,
            value: self.cols[i].to_string(),
        })
    }

    fn ip(&self, i: usize, field: &'static str) -> Result<Ipv4, TsvError> {
        Ipv4::parse(self.cols[i]).ok_or_else(|| TsvError::BadField {
            line: self.line_no,
            field,
            value: self.cols[i].to_string(),
        })
    }

    fn boolean(&self, i: usize, field: &'static str) -> Result<bool, TsvError> {
        match self.cols[i] {
            "T" => Ok(true),
            "F" => Ok(false),
            v => Err(TsvError::BadField {
                line: self.line_no,
                field,
                value: v.to_string(),
            }),
        }
    }
}

/// One data line, still raw bytes: lenient mode must survive (and count)
/// non-UTF-8 garbage, so decoding is deferred to per-line parse time.
struct RawLine<'a> {
    /// 1-based line number within the shard.
    no: usize,
    /// Byte offset of the line start within the shard.
    offset: u64,
    bytes: &'a [u8],
}

/// Slice a raw buffer into data-line slices, checking the `#fields` header
/// along the way. Header problems are reported in *both* modes — a shard
/// whose schema cannot be verified is quarantined whole by the caller, not
/// parsed on faith. No per-line allocation: every entry borrows from `buf`.
fn raw_data_lines<'a>(
    buf: &'a [u8],
    expected_fields: &[&str],
) -> Result<Vec<RawLine<'a>>, TsvError> {
    let line_estimate = swar::count_byte(buf, b'\n');
    let mut out = Vec::with_capacity(line_estimate);
    let mut fields_seen = false;
    let mut offset = 0u64;
    for (idx, chunk) in swar::split_byte(buf, b'\n').enumerate() {
        let line_start = offset;
        offset += chunk.len() as u64 + 1;
        let line = match chunk.split_last() {
            Some((b'\r', rest)) => rest,
            _ => chunk,
        };
        if line.is_empty() {
            continue;
        }
        if line[0] == b'#' {
            if let Some(rest) = line.strip_prefix(b"#fields\t".as_slice()) {
                // A non-UTF-8 #fields line cannot match any schema.
                let rest = std::str::from_utf8(rest).map_err(|_| TsvError::BadHeader)?;
                if !rest.split('\t').eq(expected_fields.iter().copied()) {
                    return Err(TsvError::BadHeader);
                }
                fields_seen = true;
            }
            continue;
        }
        out.push(RawLine {
            no: idx + 1,
            offset: line_start,
            bytes: line,
        });
    }
    if !fields_seen {
        return Err(TsvError::BadHeader);
    }
    Ok(out)
}

/// Drain a reader into one contiguous byte buffer; the parsers then borrow
/// line and column slices out of it instead of allocating per line.
fn slurp<R: BufRead>(mut reader: R) -> Result<Vec<u8>, TsvError> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    Ok(buf)
}

/// Split one data line into its columns, reusing the caller's column
/// buffer across lines.
fn split_cols<'a>(
    cols: &mut Vec<&'a str>,
    line: &'a str,
    line_no: usize,
    expected: usize,
) -> Result<(), TsvError> {
    cols.clear();
    cols.extend(swar::split_str(line, b'\t'));
    if cols.len() != expected {
        return Err(TsvError::ColumnCount {
            line: line_no,
            expected,
            got: cols.len(),
        });
    }
    Ok(())
}

/// Decode one raw data line and split it into columns.
fn decode_line<'a>(
    cols: &mut Vec<&'a str>,
    raw: &RawLine<'a>,
    expected: usize,
) -> Result<(), TsvError> {
    let line = std::str::from_utf8(raw.bytes).map_err(|_| TsvError::NonUtf8 { line: raw.no })?;
    split_cols(cols, line, raw.no, expected)
}

fn parse_ssl_line<'a>(cols: &mut Vec<&'a str>, raw: &RawLine<'a>) -> Result<SslRecord, TsvError> {
    decode_line(cols, raw, SSL_FIELDS.len())?;
    let p = LineParser {
        cols,
        line_no: raw.no,
    };
    let version = TlsVersion::from_zeek_name(p.col(6)).ok_or_else(|| TsvError::BadField {
        line: raw.no,
        field: "version",
        value: p.col(6).to_string(),
    })?;
    Ok(SslRecord {
        ts: p.parse(0, "ts")?,
        uid: unescape(p.col(1)).into_owned(),
        orig_h: p.ip(2, "id.orig_h")?,
        orig_p: p.parse(3, "id.orig_p")?,
        resp_h: p.ip(4, "id.resp_h")?,
        resp_p: p.parse(5, "id.resp_p")?,
        version,
        server_name: parse_opt(p.col(7)),
        established: p.boolean(8, "established")?,
        cert_chain_fps: parse_vec(p.col(9)),
        client_cert_chain_fps: parse_vec(p.col(10)),
    })
}

fn parse_x509_line<'a>(cols: &mut Vec<&'a str>, raw: &RawLine<'a>) -> Result<X509Record, TsvError> {
    decode_line(cols, raw, X509_FIELDS.len())?;
    let p = LineParser {
        cols,
        line_no: raw.no,
    };
    Ok(X509Record {
        ts: p.parse(0, "ts")?,
        fingerprint: unescape(p.col(1)).into_owned(),
        version: p.parse(2, "certificate.version")?,
        serial: unescape(p.col(3)).into_owned(),
        subject: unescape(p.col(4)).into_owned(),
        issuer: unescape(p.col(5)).into_owned(),
        issuer_org: parse_opt(p.col(6)),
        subject_cn: parse_opt(p.col(7)),
        not_valid_before: p.parse(8, "certificate.not_valid_before")?,
        not_valid_after: p.parse(9, "certificate.not_valid_after")?,
        key_alg: unescape(p.col(10)).into_owned(),
        key_length: p.parse(11, "certificate.key_length")?,
        sig_alg: unescape(p.col(12)).into_owned(),
        san_dns: parse_vec(p.col(13)),
        san_email: parse_vec(p.col(14)),
        san_uri: parse_vec(p.col(15)),
        san_ip: parse_vec(p.col(16)),
        basic_constraints_ca: p.boolean(17, "basic_constraints.ca")?,
    })
}

/// The mode-dispatching read loop shared by both log readers. Strict mode
/// returns the first per-line error; lenient mode skips the line and
/// records it in `diag`. Header and I/O errors propagate in both modes
/// (the caller quarantines the shard in lenient mode).
macro_rules! read_log_with {
    ($reader:expr, $mode:expr, $diag:expr, $fields:expr, $parse:ident) => {{
        let buf = slurp($reader)?;
        $diag.bytes_read += buf.len() as u64;
        let lines = raw_data_lines(&buf, $fields)?;
        let mut records = Vec::with_capacity(lines.len());
        let mut cols: Vec<&str> = Vec::with_capacity($fields.len());
        for raw in &lines {
            match $parse(&mut cols, raw) {
                Ok(rec) => {
                    $diag.rows_parsed += 1;
                    records.push(rec);
                }
                Err(err) if $mode == IngestMode::Lenient => {
                    $diag.record_skip(&err, raw.offset, raw.no, raw.bytes);
                }
                Err(err) => return Err(err),
            }
        }
        Ok(records)
    }};
}

/// Read an `ssl.log` stream written by [`write_ssl_log`] (or real Zeek with
/// the same field subset), in the given mode, recording skip diagnostics
/// into `diag`.
pub fn read_ssl_log_with<R: BufRead>(
    reader: R,
    mode: IngestMode,
    diag: &mut ShardDiag,
) -> Result<Vec<SslRecord>, TsvError> {
    read_log_with!(reader, mode, diag, SSL_FIELDS, parse_ssl_line)
}

/// Read an `x509.log` stream written by [`write_x509_log`], in the given
/// mode, recording skip diagnostics into `diag`.
pub fn read_x509_log_with<R: BufRead>(
    reader: R,
    mode: IngestMode,
    diag: &mut ShardDiag,
) -> Result<Vec<X509Record>, TsvError> {
    read_log_with!(reader, mode, diag, X509_FIELDS, parse_x509_line)
}

/// Read an `ssl.log` stream strictly: the first malformed row aborts.
pub fn read_ssl_log<R: BufRead>(reader: R) -> Result<Vec<SslRecord>, TsvError> {
    read_ssl_log_with(reader, IngestMode::Strict, &mut ShardDiag::default())
}

/// Read an `x509.log` stream strictly: the first malformed row aborts.
pub fn read_x509_log<R: BufRead>(reader: R) -> Result<Vec<X509Record>, TsvError> {
    read_x509_log_with(reader, IngestMode::Strict, &mut ShardDiag::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_ssl() -> SslRecord {
        SslRecord {
            ts: 1_651_363_200.25,
            uid: "CAbc123".into(),
            orig_h: Ipv4::new(10, 1, 2, 3),
            orig_p: 51234,
            resp_h: Ipv4::new(93, 184, 216, 34),
            resp_p: 443,
            version: TlsVersion::Tls12,
            server_name: Some("www.example.org".into()),
            established: true,
            cert_chain_fps: vec!["aa11".into(), "bb22".into()],
            client_cert_chain_fps: vec!["cc33".into()],
        }
    }

    fn sample_x509() -> X509Record {
        X509Record {
            ts: 1_651_363_200.0,
            fingerprint: "aa11".into(),
            version: 3,
            serial: "03E8".into(),
            subject: "CN=www.example.org".into(),
            issuer: "O=GuardiCore".into(),
            issuer_org: Some("GuardiCore".into()),
            subject_cn: Some("www.example.org".into()),
            not_valid_before: 1_600_000_000,
            not_valid_after: 1_700_000_000,
            key_alg: "rsa".into(),
            key_length: 2048,
            sig_alg: "sha256WithRSAEncryption".into(),
            san_dns: vec!["www.example.org".into(), "example.org".into()],
            san_email: vec![],
            san_uri: vec![],
            san_ip: vec!["10.0.0.1".into()],
            basic_constraints_ca: false,
        }
    }

    #[test]
    fn ssl_round_trip() {
        let records = vec![
            sample_ssl(),
            SslRecord {
                server_name: None,
                cert_chain_fps: vec![],
                client_cert_chain_fps: vec![],
                version: TlsVersion::Tls13,
                established: false,
                ..sample_ssl()
            },
        ];
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &records).unwrap();
        let parsed = read_ssl_log(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn x509_round_trip() {
        let records = vec![
            sample_x509(),
            X509Record {
                issuer_org: None,
                subject_cn: None,
                san_dns: vec![],
                san_ip: vec![],
                // Incorrect dates representable.
                not_valid_before: 1_700_000_000,
                not_valid_after: -3_000_000_000,
                basic_constraints_ca: true,
                ..sample_x509()
            },
        ];
        let mut buf = Vec::new();
        write_x509_log(&mut buf, &records).unwrap();
        let parsed = read_x509_log(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn values_with_separators_escape() {
        let mut rec = sample_x509();
        rec.subject = "CN=bad\tname, O=with,comma".into();
        rec.san_dns = vec!["a,b".into(), "c\\d".into()];
        let mut buf = Vec::new();
        write_x509_log(&mut buf, &[rec.clone()]).unwrap();
        let parsed = read_x509_log(Cursor::new(buf)).unwrap();
        assert_eq!(parsed[0].subject, rec.subject);
        assert_eq!(parsed[0].san_dns, rec.san_dns);
    }

    #[test]
    fn header_mismatch_rejected() {
        let text = "#fields\tts\tnope\n1.0\tx\n";
        assert!(matches!(
            read_ssl_log(Cursor::new(text)),
            Err(TsvError::BadHeader)
        ));
    }

    #[test]
    fn missing_header_rejected() {
        let text = "1.0\tx\n";
        assert!(matches!(
            read_ssl_log(Cursor::new(text)),
            Err(TsvError::BadHeader)
        ));
    }

    #[test]
    fn column_count_enforced() {
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &[sample_ssl()]).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("1.0\tonly_two\n");
        assert!(matches!(
            read_ssl_log(Cursor::new(text)),
            Err(TsvError::ColumnCount { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &[sample_ssl()]).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("\n# trailing comment\n");
        assert_eq!(read_ssl_log(Cursor::new(text)).unwrap().len(), 1);
    }

    #[test]
    fn marker_collisions_round_trip() {
        // SNI literally "-" or "(empty)", and vectors containing them.
        let mut rec = sample_ssl();
        rec.server_name = Some("-".into());
        rec.cert_chain_fps = vec!["-".into()];
        rec.client_cert_chain_fps = vec!["(empty)".into()];
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, std::slice::from_ref(&rec)).unwrap();
        let parsed = read_ssl_log(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, vec![rec]);
    }

    #[test]
    fn lenient_skips_and_counts_malformed_rows() {
        use crate::diag::ErrorKind;
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &[sample_ssl(), sample_ssl()]).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        // One short row, one bad field, and the good rows around them.
        text.push_str("1.0\tonly_two\n");
        text.push_str("notatime\tCx\t1.2.3.4\t1\t5.6.7.8\t443\tTLSv12\t-\tT\t(empty)\t(empty)\n");
        let mut bytes = text.into_bytes();
        // And one row with raw non-UTF-8 in the SNI column.
        bytes.extend_from_slice(
            b"2.0\tCy\t1.2.3.4\t1\t5.6.7.8\t443\tTLSv12\t\xFF\xFE\tT\t(empty)\t(empty)\n",
        );

        // Strict still aborts on the first bad row.
        assert!(matches!(
            read_ssl_log(Cursor::new(bytes.clone())),
            Err(TsvError::ColumnCount { .. })
        ));

        let mut diag = ShardDiag::new("ssl.log");
        let records =
            read_ssl_log_with(Cursor::new(bytes.clone()), IngestMode::Lenient, &mut diag).unwrap();
        assert_eq!(records.len(), 2, "only the two clean originals survive");
        assert_eq!(diag.rows_parsed, 2);
        assert_eq!(diag.rows_skipped(), 3);
        assert_eq!(diag.skipped_of(ErrorKind::ColumnCount), 1);
        assert_eq!(diag.skipped_of(ErrorKind::BadField), 1);
        assert_eq!(diag.skipped_of(ErrorKind::NonUtf8), 1);
        assert_eq!(diag.bytes_read, bytes.len() as u64);
        // Samples carry line numbers and byte offsets pointing at the line.
        assert_eq!(diag.samples.len(), 3);
        let s = &diag.samples[0];
        assert_eq!(
            &bytes[s.byte_offset as usize..s.byte_offset as usize + 3],
            b"1.0"
        );
        assert!(s.snippet.starts_with("1.0\tonly_two"));
    }

    #[test]
    fn lenient_skips_whole_non_utf8_lines() {
        use crate::diag::ErrorKind;
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &[sample_ssl()]).unwrap();
        // Mangle the data row's timestamp bytes so the line cannot decode.
        let pos = buf
            .windows(4)
            .position(|w| w == b"1651")
            .expect("ts in data row");
        buf[pos] = 0xFF;
        buf[pos + 1] = 0xC0;
        let mut diag = ShardDiag::new("ssl.log");
        let records = read_ssl_log_with(Cursor::new(buf), IngestMode::Lenient, &mut diag).unwrap();
        assert!(records.is_empty());
        assert_eq!(diag.skipped_of(ErrorKind::NonUtf8), 1);
    }

    #[test]
    fn bad_header_fails_both_modes() {
        let text = "#fields\tts\tnope\n1.0\tx\n";
        let mut diag = ShardDiag::new("ssl.log");
        assert!(matches!(
            read_ssl_log_with(Cursor::new(text), IngestMode::Lenient, &mut diag),
            Err(TsvError::BadHeader)
        ));
        // Strict header precedence is unchanged: a bad header anywhere in
        // the shard wins over earlier bad rows.
        let text = "#fields\tts\tnope\njunk\trow\n";
        assert!(matches!(
            read_ssl_log(Cursor::new(text)),
            Err(TsvError::BadHeader)
        ));
    }

    #[test]
    fn lenient_equals_strict_on_clean_input() {
        let records = vec![sample_ssl(), sample_ssl()];
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &records).unwrap();
        let strict = read_ssl_log(Cursor::new(buf.clone())).unwrap();
        let mut diag = ShardDiag::new("ssl.log");
        let lenient = read_ssl_log_with(Cursor::new(buf), IngestMode::Lenient, &mut diag).unwrap();
        assert_eq!(strict, lenient);
        assert_eq!(diag.rows_skipped(), 0);
        assert_eq!(diag.rows_parsed, 2);
    }

    #[test]
    fn escape_unescape_inverse() {
        for s in [
            "plain",
            "tab\there",
            "a,b",
            "back\\slash",
            "nl\nend",
            "\\x41 literal",
        ] {
            assert_eq!(unescape(&escape(s)), s, "{s:?}");
        }
    }
}
