//! Monthly log rotation.
//!
//! Real Zeek deployments rotate logs; a 23-month collection is hundreds of
//! files, not two. This module writes a corpus as per-month files
//! (`ssl.2022-05.log`, `x509.2022-05.log`, …) and reads such a directory
//! back in chronological order, so the pipeline can ingest either layout.

use crate::records::{SslRecord, X509Record};
use crate::tsv::{read_ssl_log, read_x509_log, write_ssl_log, write_x509_log, TsvError};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::path::Path;

/// `YYYY-MM` for a Unix-seconds timestamp (proleptic Gregorian).
fn month_key(ts: f64) -> String {
    // Days since epoch → civil date, reusing the zeek-local arithmetic to
    // avoid a dependency on mtls-asn1 here.
    let days = (ts as i64).div_euclid(86_400);
    let (y, m) = civil_year_month(days);
    format!("{y:04}-{m:02}")
}

/// (year, month) from days-since-epoch (Howard Hinnant's algorithm).
fn civil_year_month(z: i64) -> (i64, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + i64::from(m <= 2), m)
}

/// Write per-month `ssl.YYYY-MM.log` / `x509.YYYY-MM.log` files.
pub fn write_monthly(dir: &Path, ssl: &[SslRecord], x509: &[X509Record]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut ssl_by_month: BTreeMap<String, Vec<SslRecord>> = BTreeMap::new();
    for rec in ssl {
        ssl_by_month.entry(month_key(rec.ts)).or_default().push(rec.clone());
    }
    let mut x509_by_month: BTreeMap<String, Vec<X509Record>> = BTreeMap::new();
    for rec in x509 {
        x509_by_month.entry(month_key(rec.ts)).or_default().push(rec.clone());
    }
    for (month, records) in &ssl_by_month {
        let mut f = std::io::BufWriter::new(std::fs::File::create(
            dir.join(format!("ssl.{month}.log")),
        )?);
        write_ssl_log(&mut f, records)?;
    }
    for (month, records) in &x509_by_month {
        let mut f = std::io::BufWriter::new(std::fs::File::create(
            dir.join(format!("x509.{month}.log")),
        )?);
        write_x509_log(&mut f, records)?;
    }
    Ok(())
}

/// Read a rotated directory back, concatenated in filename (chronological)
/// order. Files not matching the `ssl.*.log` / `x509.*.log` patterns are
/// ignored, as are the unrotated `ssl.log`/`x509.log` singletons.
pub fn read_monthly(dir: &Path) -> Result<(Vec<SslRecord>, Vec<X509Record>), TsvError> {
    let mut ssl_files: Vec<std::path::PathBuf> = Vec::new();
    let mut x509_files: Vec<std::path::PathBuf> = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(TsvError::Io)? {
        let path = entry.map_err(TsvError::Io)?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("ssl.") && name.ends_with(".log") && name != "ssl.log" {
            ssl_files.push(path);
        } else if name.starts_with("x509.") && name.ends_with(".log") && name != "x509.log" {
            x509_files.push(path);
        }
    }
    ssl_files.sort();
    x509_files.sort();

    let mut ssl = Vec::new();
    for path in ssl_files {
        let f = std::fs::File::open(&path).map_err(TsvError::Io)?;
        ssl.extend(read_ssl_log(BufReader::new(f))?);
    }
    let mut x509 = Vec::new();
    for path in x509_files {
        let f = std::fs::File::open(&path).map_err(TsvError::Io)?;
        x509.extend(read_x509_log(BufReader::new(f))?);
    }
    Ok((ssl, x509))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::Ipv4;
    use crate::records::TlsVersion;

    fn ssl_at(ts: f64, uid: &str) -> SslRecord {
        SslRecord {
            ts,
            uid: uid.to_string(),
            orig_h: Ipv4::new(10, 0, 0, 1),
            orig_p: 1,
            resp_h: Ipv4::new(10, 0, 0, 2),
            resp_p: 443,
            version: TlsVersion::Tls12,
            server_name: None,
            established: true,
            cert_chain_fps: vec![],
            client_cert_chain_fps: vec![],
        }
    }

    fn x509_at(ts: f64, fp: &str) -> X509Record {
        X509Record {
            ts,
            fingerprint: fp.to_string(),
            version: 3,
            serial: "01".into(),
            subject: String::new(),
            issuer: String::new(),
            issuer_org: None,
            subject_cn: None,
            not_valid_before: 0,
            not_valid_after: 1,
            key_alg: "rsa".into(),
            key_length: 2048,
            sig_alg: String::new(),
            san_dns: vec![],
            san_email: vec![],
            san_uri: vec![],
            san_ip: vec![],
            basic_constraints_ca: false,
        }
    }

    const MAY_2022: f64 = 1_651_363_200.0;
    const JUN_2022: f64 = 1_654_041_600.0;

    #[test]
    fn month_keys() {
        assert_eq!(month_key(MAY_2022), "2022-05");
        assert_eq!(month_key(MAY_2022 + 86_400.0 * 30.0), "2022-05");
        assert_eq!(month_key(JUN_2022), "2022-06");
        assert_eq!(month_key(0.0), "1970-01");
    }

    #[test]
    fn rotation_round_trips_in_order() {
        let ssl = vec![
            ssl_at(MAY_2022, "a"),
            ssl_at(MAY_2022 + 60.0, "b"),
            ssl_at(JUN_2022, "c"),
        ];
        let x509 = vec![x509_at(MAY_2022, "f1"), x509_at(JUN_2022, "f2")];
        let dir = std::env::temp_dir().join(format!("mtlscope-rotate-{}", std::process::id()));
        write_monthly(&dir, &ssl, &x509).unwrap();

        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.contains(&"ssl.2022-05.log".to_string()));
        assert!(names.contains(&"ssl.2022-06.log".to_string()));
        assert!(names.contains(&"x509.2022-05.log".to_string()));

        let (ssl_rt, x509_rt) = read_monthly(&dir).unwrap();
        assert_eq!(ssl_rt, ssl, "chronological concatenation");
        assert_eq!(x509_rt, x509);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ignores_unrelated_files() {
        let dir = std::env::temp_dir().join(format!("mtlscope-rotate2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), "hi").unwrap();
        std::fs::write(dir.join("ssl.log"), "unrotated singleton").unwrap();
        let (ssl, x509) = read_monthly(&dir).unwrap();
        assert!(ssl.is_empty());
        assert!(x509.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
