//! Monthly log rotation.
//!
//! Real Zeek deployments rotate logs; a 23-month collection is hundreds of
//! files, not two. This module writes a corpus as per-month files
//! (`ssl.2022-05.log`, `x509.2022-05.log`, …) and reads such a directory
//! back in chronological order, so the pipeline can ingest either layout.

use crate::diag::{IngestMode, IngestStats, ShardDiag};
use crate::records::{SslRecord, X509Record};
use crate::tsv::{read_ssl_log_with, read_x509_log_with, write_ssl_log, write_x509_log, TsvError};
use mtls_intern::FxHashMap;
use mtls_obs::{Obs, SpanId};
use std::io::BufReader;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// `YYYY-MM` for a Unix-seconds timestamp (proleptic Gregorian).
fn month_key(ts: f64) -> String {
    // Days since epoch → civil date, reusing the zeek-local arithmetic to
    // avoid a dependency on mtls-asn1 here. Floor before the integer cast:
    // `ts as i64` truncates toward zero, which would bucket a fractional
    // pre-epoch timestamp like -0.5 into 1970-01 instead of 1969-12.
    let days = (ts.floor() as i64).div_euclid(86_400);
    let (y, m) = civil_year_month(days);
    format!("{y:04}-{m:02}")
}

/// (year, month) from days-since-epoch (Howard Hinnant's algorithm).
fn civil_year_month(z: i64) -> (i64, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + i64::from(m <= 2), m)
}

/// Group records into per-month buckets of references (no record clones;
/// bucket order is resolved by sorting the handful of month keys after
/// the single fast-hash grouping pass).
fn group_by_month<T>(records: &[T], ts_of: impl Fn(&T) -> f64) -> Vec<(String, Vec<&T>)> {
    let mut by_month: FxHashMap<String, Vec<&T>> = FxHashMap::default();
    for rec in records {
        by_month.entry(month_key(ts_of(rec))).or_default().push(rec);
    }
    let mut buckets: Vec<(String, Vec<&T>)> = by_month.into_iter().collect();
    buckets.sort_by(|a, b| a.0.cmp(&b.0));
    buckets
}

/// Write per-month `ssl.YYYY-MM.log` / `x509.YYYY-MM.log` files.
pub fn write_monthly(dir: &Path, ssl: &[SslRecord], x509: &[X509Record]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (month, records) in group_by_month(ssl, |r| r.ts) {
        let mut f =
            std::io::BufWriter::new(std::fs::File::create(dir.join(format!("ssl.{month}.log")))?);
        write_ssl_log(&mut f, records)?;
    }
    for (month, records) in group_by_month(x509, |r| r.ts) {
        let mut f = std::io::BufWriter::new(std::fs::File::create(
            dir.join(format!("x509.{month}.log")),
        )?);
        write_x509_log(&mut f, records)?;
    }
    Ok(())
}

/// Enumerate the rotated shard files of a directory, sorted into filename
/// (chronological) order. Files not matching the `ssl.*.log` /
/// `x509.*.log` patterns are ignored, as are the unrotated
/// `ssl.log`/`x509.log` singletons.
fn shard_files(dir: &Path) -> Result<(Vec<std::path::PathBuf>, Vec<std::path::PathBuf>), TsvError> {
    let mut ssl_files: Vec<std::path::PathBuf> = Vec::new();
    let mut x509_files: Vec<std::path::PathBuf> = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(TsvError::Io)? {
        let path = entry.map_err(TsvError::Io)?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("ssl.") && name.ends_with(".log") && name != "ssl.log" {
            ssl_files.push(path);
        } else if name.starts_with("x509.") && name.ends_with(".log") && name != "x509.log" {
            x509_files.push(path);
        }
    }
    ssl_files.sort();
    x509_files.sort();
    Ok((ssl_files, x509_files))
}

/// One parsed shard, tagged by kind so both log streams can share a
/// single work queue.
enum ParsedShard {
    Ssl(Vec<SslRecord>),
    X509(Vec<X509Record>),
}

fn shard_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// One shard's parse outcome: its accounting plus the records or the
/// shard-level error.
type ShardResult = (ShardDiag, Result<ParsedShard, TsvError>);

/// Open and parse one shard, timing it and accounting rows/bytes into its
/// [`ShardDiag`]. Shard-level failures (open, header) come back as `Err`;
/// the caller either propagates them (strict) or quarantines (lenient).
///
/// Each shard records one span (named after the shard file) under
/// `parent`, so the span tree of a sharded read matches its serial twin
/// regardless of worker interleaving. Metrics are batched — one counter
/// add and one histogram observation per shard, never per row — keeping
/// the instrumented hot path within the overhead budget.
fn read_shard(
    path: &Path,
    is_ssl: bool,
    mode: IngestMode,
    obs: &Obs,
    parent: Option<SpanId>,
) -> ShardResult {
    let mut diag = ShardDiag::new(shard_name(path));
    let span = obs.span(parent, &diag.shard);
    let parsed = std::fs::File::open(path)
        .map_err(TsvError::Io)
        .and_then(|f| {
            if is_ssl {
                read_ssl_log_with(BufReader::new(f), mode, &mut diag).map(ParsedShard::Ssl)
            } else {
                read_x509_log_with(BufReader::new(f), mode, &mut diag).map(ParsedShard::X509)
            }
        });
    diag.wall_micros = span.finish().as_micros() as u64;
    if obs.enabled() {
        obs.counter("ingest.rows_parsed").add(diag.rows_parsed);
        obs.counter("ingest.rows_skipped").add(diag.rows_skipped());
        obs.counter("ingest.bytes_read").add(diag.bytes_read);
        obs.histogram_record("ingest.shard_parse_micros", diag.wall_micros);
        obs.gauge_max("ingest.peak_shard_rows", diag.rows_parsed as i64);
    }
    (diag, parsed)
}

/// Stitch per-shard results back in filename order. Strict mode surfaces
/// the first shard error in that order (matching serial semantics);
/// lenient mode quarantines failed shards and keeps going.
fn stitch(
    slots: Vec<ShardResult>,
    mode: IngestMode,
    stats: &mut IngestStats,
) -> Result<(Vec<SslRecord>, Vec<X509Record>), TsvError> {
    let mut ssl = Vec::new();
    let mut x509 = Vec::new();
    for (mut diag, parsed) in slots {
        match parsed {
            Ok(ParsedShard::Ssl(records)) => ssl.extend(records),
            Ok(ParsedShard::X509(records)) => x509.extend(records),
            Err(err) if mode == IngestMode::Lenient => diag.quarantine(&err),
            Err(err) => return Err(err),
        }
        stats.absorb(diag);
    }
    Ok((ssl, x509))
}

/// Read a rotated directory back, concatenated in filename (chronological)
/// order, parsing shard files concurrently and reporting per-shard
/// diagnostics.
///
/// Each monthly shard is independent — parse work dominates I/O here — so
/// shards are drained from one shared queue by a pool of scoped threads
/// capped at [`std::thread::available_parallelism`] (a 23-month corpus is
/// 46 files; spawning 46 threads on a small box costs more than it buys).
/// Results are stitched back in sorted filename order, making the output
/// byte-identical to [`read_monthly_serial_with`]; in strict mode the
/// first shard error (in that same order) is reported, matching serial
/// semantics, while lenient mode quarantines the failed shard and
/// continues. Workers also fold their rows/bytes counters into shared
/// relaxed atomics — one `fetch_add` batch per shard — which
/// cross-checks the per-shard sums in the returned [`IngestStats`].
pub fn read_monthly_with(
    dir: &Path,
    mode: IngestMode,
) -> Result<(Vec<SslRecord>, Vec<X509Record>, IngestStats), TsvError> {
    read_monthly_obs(dir, mode, &Obs::noop(), None)
}

/// [`read_monthly_with`] with per-shard observability: each shard records
/// a span (named after its file) under `parent`, plus batched row/byte
/// counters and a parse-latency histogram.
pub fn read_monthly_obs(
    dir: &Path,
    mode: IngestMode,
    obs: &Obs,
    parent: Option<SpanId>,
) -> Result<(Vec<SslRecord>, Vec<X509Record>, IngestStats), TsvError> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    read_monthly_pool_obs(dir, mode, obs, parent, workers)
}

/// [`read_monthly_with`] with an explicit worker-pool size. This is the
/// scaling probe behind `BENCH_ingest.json`'s `scaling` section (the
/// `perf_smoke` bin sweeps pool sizes on whatever box it runs on);
/// ordinary callers want the `available_parallelism` default of
/// [`read_monthly_with`]. A pool of 0 or 1 takes the serial path.
pub fn read_monthly_pool(
    dir: &Path,
    mode: IngestMode,
    workers: usize,
) -> Result<(Vec<SslRecord>, Vec<X509Record>, IngestStats), TsvError> {
    read_monthly_pool_obs(dir, mode, &Obs::noop(), None, workers)
}

fn read_monthly_pool_obs(
    dir: &Path,
    mode: IngestMode,
    obs: &Obs,
    parent: Option<SpanId>,
    workers: usize,
) -> Result<(Vec<SslRecord>, Vec<X509Record>, IngestStats), TsvError> {
    let t0 = std::time::Instant::now();
    let (ssl_files, x509_files) = shard_files(dir)?;
    let n_tasks = ssl_files.len() + x509_files.len();
    let workers = workers.min(n_tasks);
    if workers <= 1 {
        return read_monthly_serial_obs(dir, mode, obs, parent);
    }

    let next = AtomicUsize::new(0);
    // Corpus-wide counters, shared by the pool: cheap because each worker
    // adds a whole shard's counts at once, not per row.
    let rows_parsed = AtomicU64::new(0);
    let rows_skipped = AtomicU64::new(0);
    let bytes_read = AtomicU64::new(0);
    let per_worker: Vec<Vec<(usize, ShardResult)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            return done;
                        }
                        let (diag, parsed) = if i < ssl_files.len() {
                            read_shard(&ssl_files[i], true, mode, obs, parent)
                        } else {
                            read_shard(&x509_files[i - ssl_files.len()], false, mode, obs, parent)
                        };
                        rows_parsed.fetch_add(diag.rows_parsed, Ordering::Relaxed);
                        rows_skipped.fetch_add(diag.rows_skipped(), Ordering::Relaxed);
                        bytes_read.fetch_add(diag.bytes_read, Ordering::Relaxed);
                        done.push((i, (diag, parsed)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard reader panicked"))
            .collect()
    });

    let mut slots: Vec<Option<ShardResult>> = (0..n_tasks).map(|_| None).collect();
    for (i, result) in per_worker.into_iter().flatten() {
        slots[i] = Some(result);
    }
    let mut stats = IngestStats {
        mode,
        ..IngestStats::default()
    };
    let ordered: Vec<_> = slots
        .into_iter()
        .map(|slot| slot.expect("every shard task ran"))
        .collect();
    let (ssl, x509) = stitch(ordered, mode, &mut stats)?;
    // The pool's atomic totals and the per-shard sums must agree; prefer
    // the atomics (they are what a streaming consumer would watch).
    debug_assert_eq!(stats.rows_parsed, rows_parsed.load(Ordering::Relaxed));
    debug_assert_eq!(stats.rows_skipped, rows_skipped.load(Ordering::Relaxed));
    stats.rows_parsed = rows_parsed.load(Ordering::Relaxed);
    stats.rows_skipped = rows_skipped.load(Ordering::Relaxed);
    stats.bytes_read = bytes_read.load(Ordering::Relaxed);
    stats.wall_micros = t0.elapsed().as_micros() as u64;
    Ok((ssl, x509, stats))
}

/// Serial reference reader: same contract as [`read_monthly_with`], one
/// shard at a time. Kept as the equivalence baseline for tests and
/// benchmarks.
pub fn read_monthly_serial_with(
    dir: &Path,
    mode: IngestMode,
) -> Result<(Vec<SslRecord>, Vec<X509Record>, IngestStats), TsvError> {
    read_monthly_serial_obs(dir, mode, &Obs::noop(), None)
}

/// [`read_monthly_serial_with`] with the same per-shard observability as
/// [`read_monthly_obs`] — the serial and sharded paths must yield the
/// same span rows and counter totals on a clean corpus.
pub fn read_monthly_serial_obs(
    dir: &Path,
    mode: IngestMode,
    obs: &Obs,
    parent: Option<SpanId>,
) -> Result<(Vec<SslRecord>, Vec<X509Record>, IngestStats), TsvError> {
    let t0 = std::time::Instant::now();
    let (ssl_files, x509_files) = shard_files(dir)?;
    let mut stats = IngestStats {
        mode,
        ..IngestStats::default()
    };
    let mut ssl = Vec::new();
    let mut x509 = Vec::new();
    // One shard at a time, stopping at the first error in strict mode —
    // the ordered-first-error semantics the parallel path reproduces.
    let tasks = ssl_files
        .iter()
        .map(|p| (p, true))
        .chain(x509_files.iter().map(|p| (p, false)));
    for (path, is_ssl) in tasks {
        let (diag, parsed) = read_shard(path, is_ssl, mode, obs, parent);
        let (ssl_part, x509_part) = stitch(vec![(diag, parsed)], mode, &mut stats)?;
        ssl.extend(ssl_part);
        x509.extend(x509_part);
    }
    stats.wall_micros = t0.elapsed().as_micros() as u64;
    Ok((ssl, x509, stats))
}

/// The month key embedded in a rotated shard filename
/// (`ssl.2022-05.log` → `2022-05`), or `None` for non-shard files.
fn shard_month(name: &str) -> Option<&str> {
    let stem = name.strip_suffix(".log")?;
    let key = stem
        .strip_prefix("ssl.")
        .or_else(|| stem.strip_prefix("x509."))?;
    (!key.is_empty()).then_some(key)
}

/// The distinct month keys present in a rotated directory, sorted into
/// chronological (`YYYY-MM` lexicographic) order. This is the epoch
/// schedule of a streaming ingest: each key names one
/// [`read_month_obs`] unit.
pub fn month_keys(dir: &Path) -> Result<Vec<String>, TsvError> {
    let (ssl_files, x509_files) = shard_files(dir)?;
    let mut keys: Vec<String> = ssl_files
        .iter()
        .chain(x509_files.iter())
        .filter_map(|p| p.file_name()?.to_str())
        .filter_map(shard_month)
        .map(str::to_string)
        .collect();
    keys.sort();
    keys.dedup();
    Ok(keys)
}

/// Read only the shards of one month (`ssl.<key>.log` / `x509.<key>.log`
/// where present) — the unit of work a streaming ingest pushes as one
/// epoch. Observability mirrors [`read_monthly_obs`]: one span per shard
/// file under `parent`, batched row/byte counters, so a month-by-month
/// walk of a directory produces the same span tree and counter totals as
/// one batch read. Strict mode surfaces the first shard error in
/// filename order; lenient quarantines it, exactly like the batch
/// readers.
pub fn read_month_obs(
    dir: &Path,
    key: &str,
    mode: IngestMode,
    obs: &Obs,
    parent: Option<SpanId>,
) -> Result<(Vec<SslRecord>, Vec<X509Record>, IngestStats), TsvError> {
    let t0 = std::time::Instant::now();
    let mut stats = IngestStats {
        mode,
        ..IngestStats::default()
    };
    let mut ssl = Vec::new();
    let mut x509 = Vec::new();
    for (name, is_ssl) in [
        (format!("ssl.{key}.log"), true),
        (format!("x509.{key}.log"), false),
    ] {
        let path = dir.join(&name);
        if !path.exists() {
            continue;
        }
        let (diag, parsed) = read_shard(&path, is_ssl, mode, obs, parent);
        let (ssl_part, x509_part) = stitch(vec![(diag, parsed)], mode, &mut stats)?;
        ssl.extend(ssl_part);
        x509.extend(x509_part);
    }
    stats.wall_micros = t0.elapsed().as_micros() as u64;
    Ok((ssl, x509, stats))
}

/// Partition in-memory records into per-month epochs, chronologically
/// sorted — the in-memory twin of a rotated directory walk, used when a
/// simulated corpus is streamed without touching disk. Record order
/// within each month is preserved, so concatenating the partitions
/// reproduces [`write_monthly`]-then-read byte order exactly.
pub fn partition_monthly(
    ssl: Vec<SslRecord>,
    x509: Vec<X509Record>,
) -> Vec<(String, Vec<SslRecord>, Vec<X509Record>)> {
    let mut months: std::collections::BTreeMap<String, (Vec<SslRecord>, Vec<X509Record>)> =
        std::collections::BTreeMap::new();
    for rec in ssl {
        months.entry(month_key(rec.ts)).or_default().0.push(rec);
    }
    for rec in x509 {
        months.entry(month_key(rec.ts)).or_default().1.push(rec);
    }
    months
        .into_iter()
        .map(|(key, (ssl, x509))| (key, ssl, x509))
        .collect()
}

/// Strict directory read (historical signature): first error aborts.
pub fn read_monthly(dir: &Path) -> Result<(Vec<SslRecord>, Vec<X509Record>), TsvError> {
    read_monthly_with(dir, IngestMode::Strict).map(|(ssl, x509, _)| (ssl, x509))
}

/// Strict serial directory read (historical signature).
pub fn read_monthly_serial(dir: &Path) -> Result<(Vec<SslRecord>, Vec<X509Record>), TsvError> {
    read_monthly_serial_with(dir, IngestMode::Strict).map(|(ssl, x509, _)| (ssl, x509))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::Ipv4;
    use crate::records::TlsVersion;

    fn ssl_at(ts: f64, uid: &str) -> SslRecord {
        SslRecord {
            ts,
            uid: uid.to_string(),
            orig_h: Ipv4::new(10, 0, 0, 1),
            orig_p: 1,
            resp_h: Ipv4::new(10, 0, 0, 2),
            resp_p: 443,
            version: TlsVersion::Tls12,
            server_name: None,
            established: true,
            cert_chain_fps: vec![],
            client_cert_chain_fps: vec![],
        }
    }

    fn x509_at(ts: f64, fp: &str) -> X509Record {
        X509Record {
            ts,
            fingerprint: fp.to_string(),
            version: 3,
            serial: "01".into(),
            subject: String::new(),
            issuer: String::new(),
            issuer_org: None,
            subject_cn: None,
            not_valid_before: 0,
            not_valid_after: 1,
            key_alg: "rsa".into(),
            key_length: 2048,
            sig_alg: String::new(),
            san_dns: vec![],
            san_email: vec![],
            san_uri: vec![],
            san_ip: vec![],
            basic_constraints_ca: false,
        }
    }

    const MAY_2022: f64 = 1_651_363_200.0;
    const JUN_2022: f64 = 1_654_041_600.0;

    #[test]
    fn month_keys() {
        assert_eq!(month_key(MAY_2022), "2022-05");
        assert_eq!(month_key(MAY_2022 + 86_400.0 * 30.0), "2022-05");
        assert_eq!(month_key(JUN_2022), "2022-06");
        assert_eq!(month_key(0.0), "1970-01");
    }

    #[test]
    fn month_keys_floor_pre_epoch_fractions() {
        // Truncation (`ts as i64`) would bucket -0.5 into 1970-01; a
        // fractional second before the epoch belongs to 1969-12.
        assert_eq!(month_key(-0.5), "1969-12");
        assert_eq!(month_key(-1.0), "1969-12");
        assert_eq!(month_key(0.5), "1970-01");
        // Whole pre-epoch days were already correct via div_euclid.
        assert_eq!(month_key(-86_400.0), "1969-12");
        assert_eq!(month_key(-86_400.0 * 31.0), "1969-12");
        assert_eq!(month_key(-86_400.0 * 31.0 - 0.25), "1969-11");
        // A deep pre-epoch timestamp (1756-12-28T23:59:59.5Z) lands in the
        // right month.
        assert_eq!(month_key(-6_721_833_600.0 - 0.5), "1756-12");
    }

    #[test]
    fn lenient_quarantines_bad_shards_and_counts_rows() {
        use crate::diag::ErrorKind;
        let ssl = vec![ssl_at(MAY_2022, "a"), ssl_at(JUN_2022, "b")];
        let x509 = vec![x509_at(MAY_2022, "f1"), x509_at(JUN_2022, "f2")];
        let dir = std::env::temp_dir().join(format!("mtlscope-rotate4-{}", std::process::id()));
        write_monthly(&dir, &ssl, &x509).unwrap();
        // Corrupt the x509 May shard's #fields header.
        let victim = dir.join("x509.2022-05.log");
        let text = std::fs::read_to_string(&victim).unwrap();
        std::fs::write(&victim, text.replace("#fields\tts", "#fields\tbogus")).unwrap();

        // Strict: both paths fail with BadHeader.
        assert!(matches!(read_monthly(&dir), Err(TsvError::BadHeader)));
        assert!(matches!(
            read_monthly_serial(&dir),
            Err(TsvError::BadHeader)
        ));

        // Lenient: the shard is quarantined, everything else survives.
        for read in [read_monthly_with, read_monthly_serial_with] {
            let (ssl_rt, x509_rt, stats) = read(&dir, IngestMode::Lenient).unwrap();
            assert_eq!(ssl_rt, ssl);
            assert_eq!(x509_rt, vec![x509_at(JUN_2022, "f2")]);
            assert_eq!(stats.shards_quarantined, 1);
            assert_eq!(stats.rows_parsed, 3);
            assert_eq!(stats.rows_skipped, 0);
            let bad = stats
                .shards
                .iter()
                .find(|d| d.quarantined.is_some())
                .expect("quarantined shard diag");
            assert_eq!(bad.shard, "x509.2022-05.log");
            assert_eq!(bad.quarantined.as_ref().unwrap().kind, ErrorKind::BadHeader);
            // Atomic totals agree with the per-shard sums.
            let summed: u64 = stats.shards.iter().map(|d| d.rows_parsed).sum();
            assert_eq!(stats.rows_parsed, summed);
            assert!(stats.error_rate() > 0.0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_round_trips_in_order() {
        let ssl = vec![
            ssl_at(MAY_2022, "a"),
            ssl_at(MAY_2022 + 60.0, "b"),
            ssl_at(JUN_2022, "c"),
        ];
        let x509 = vec![x509_at(MAY_2022, "f1"), x509_at(JUN_2022, "f2")];
        let dir = std::env::temp_dir().join(format!("mtlscope-rotate-{}", std::process::id()));
        write_monthly(&dir, &ssl, &x509).unwrap();

        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.contains(&"ssl.2022-05.log".to_string()));
        assert!(names.contains(&"ssl.2022-06.log".to_string()));
        assert!(names.contains(&"x509.2022-05.log".to_string()));

        let (ssl_rt, x509_rt) = read_monthly(&dir).unwrap();
        assert_eq!(ssl_rt, ssl, "chronological concatenation");
        assert_eq!(x509_rt, x509);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_matches_serial() {
        let ssl: Vec<SslRecord> = (0..40)
            .map(|i| ssl_at(MAY_2022 + f64::from(i) * 86_400.0, &format!("u{i}")))
            .collect();
        let x509: Vec<X509Record> = (0..40)
            .map(|i| x509_at(MAY_2022 + f64::from(i) * 86_400.0, &format!("fp{i}")))
            .collect();
        let dir = std::env::temp_dir().join(format!("mtlscope-rotate3-{}", std::process::id()));
        write_monthly(&dir, &ssl, &x509).unwrap();

        let par = read_monthly(&dir).unwrap();
        let ser = read_monthly_serial(&dir).unwrap();
        assert_eq!(par, ser);
        assert_eq!(par.0, ssl);
        assert_eq!(par.1, x509);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn month_by_month_walk_matches_batch_read() {
        let ssl = vec![
            ssl_at(MAY_2022, "a"),
            ssl_at(MAY_2022 + 60.0, "b"),
            ssl_at(JUN_2022, "c"),
        ];
        // June has ssl traffic but no x509 shard — the walk must cope
        // with a month missing one of the two files.
        let x509 = vec![x509_at(MAY_2022, "f1")];
        let dir = std::env::temp_dir().join(format!("mtlscope-rotate5-{}", std::process::id()));
        write_monthly(&dir, &ssl, &x509).unwrap();

        let keys = crate::rotate::month_keys(&dir).unwrap();
        assert_eq!(keys, vec!["2022-05".to_string(), "2022-06".to_string()]);

        let mut walked_ssl = Vec::new();
        let mut walked_x509 = Vec::new();
        let mut rows = 0;
        for key in &keys {
            let (s, x, stats) =
                read_month_obs(&dir, key, IngestMode::Strict, &Obs::noop(), None).unwrap();
            rows += stats.rows_parsed;
            walked_ssl.extend(s);
            walked_x509.extend(x);
        }
        let (batch_ssl, batch_x509) = read_monthly(&dir).unwrap();
        assert_eq!(walked_ssl, batch_ssl);
        assert_eq!(walked_x509, batch_x509);
        assert_eq!(rows, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partition_matches_rotated_layout() {
        let ssl = vec![
            ssl_at(JUN_2022, "c"),
            ssl_at(MAY_2022, "a"),
            ssl_at(MAY_2022 + 60.0, "b"),
        ];
        let x509 = vec![x509_at(MAY_2022, "f1"), x509_at(JUN_2022, "f2")];
        let parts = partition_monthly(ssl.clone(), x509.clone());
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, "2022-05");
        assert_eq!(
            parts[0].1,
            vec![ssl_at(MAY_2022, "a"), ssl_at(MAY_2022 + 60.0, "b")]
        );
        assert_eq!(parts[0].2, vec![x509_at(MAY_2022, "f1")]);
        assert_eq!(parts[1].0, "2022-06");
        assert_eq!(parts[1].1, vec![ssl_at(JUN_2022, "c")]);

        // Same epochs a rotated directory would yield.
        let dir = std::env::temp_dir().join(format!("mtlscope-rotate6-{}", std::process::id()));
        write_monthly(&dir, &ssl, &x509).unwrap();
        for (key, part_ssl, part_x509) in &parts {
            let (s, x, _) =
                read_month_obs(&dir, key, IngestMode::Strict, &Obs::noop(), None).unwrap();
            assert_eq!(&s, part_ssl);
            assert_eq!(&x, part_x509);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ignores_unrelated_files() {
        let dir = std::env::temp_dir().join(format!("mtlscope-rotate2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), "hi").unwrap();
        std::fs::write(dir.join("ssl.log"), "unrotated singleton").unwrap();
        let (ssl, x509) = read_monthly(&dir).unwrap();
        assert!(ssl.is_empty());
        assert!(x509.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
