//! Ingest fault-tolerance: parse modes and structured skip diagnostics.
//!
//! A 23-month rotated capture arrives with truncated lines, non-UTF-8
//! garbage, and half-written shards. The readers support two modes:
//! [`IngestMode::Strict`] aborts on the first malformed row (the historical
//! behavior, and still the default), while [`IngestMode::Lenient`] skips
//! malformed rows and quarantines unreadable shards, recording every skip
//! here so a corrupt corpus can never silently masquerade as a clean one.

use crate::tsv::TsvError;

/// How the TSV readers treat malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Abort on the first malformed row or shard.
    #[default]
    Strict,
    /// Skip malformed data rows and quarantine shards that fail to open or
    /// have a bad header, recording each skip in a [`ShardDiag`].
    Lenient,
}

impl IngestMode {
    /// Lowercase name, as printed in reports.
    pub fn label(self) -> &'static str {
        match self {
            IngestMode::Strict => "strict",
            IngestMode::Lenient => "lenient",
        }
    }
}

/// Classification of a skipped row or quarantined shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// A data line with the wrong number of columns.
    ColumnCount,
    /// A column that failed to parse as its field type.
    BadField,
    /// A data line that is not valid UTF-8.
    NonUtf8,
    /// A missing or mismatched `#fields` header (quarantines the shard).
    BadHeader,
    /// An I/O failure opening or reading the shard (quarantines it).
    Io,
}

/// Every [`ErrorKind`], in rendering order.
pub const ERROR_KINDS: [ErrorKind; 5] = [
    ErrorKind::ColumnCount,
    ErrorKind::BadField,
    ErrorKind::NonUtf8,
    ErrorKind::BadHeader,
    ErrorKind::Io,
];

impl ErrorKind {
    /// Stable lowercase label (TSV export column names).
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::ColumnCount => "column_count",
            ErrorKind::BadField => "bad_field",
            ErrorKind::NonUtf8 => "non_utf8",
            ErrorKind::BadHeader => "bad_header",
            ErrorKind::Io => "io",
        }
    }

    /// Index into an `[u64; ERROR_KINDS.len()]` counter array.
    pub fn index(self) -> usize {
        match self {
            ErrorKind::ColumnCount => 0,
            ErrorKind::BadField => 1,
            ErrorKind::NonUtf8 => 2,
            ErrorKind::BadHeader => 3,
            ErrorKind::Io => 4,
        }
    }

    /// Classify a [`TsvError`].
    pub fn of(err: &TsvError) -> ErrorKind {
        match err {
            TsvError::Io(_) => ErrorKind::Io,
            TsvError::ColumnCount { .. } => ErrorKind::ColumnCount,
            TsvError::BadField { .. } => ErrorKind::BadField,
            TsvError::NonUtf8 { .. } => ErrorKind::NonUtf8,
            TsvError::BadHeader => ErrorKind::BadHeader,
        }
    }
}

/// How many offending lines each shard keeps verbatim (beyond this, only
/// the counters grow).
pub const MAX_SAMPLES: usize = 5;

/// Longest sampled-line snippet kept, in bytes of the lossy decoding.
const MAX_SNIPPET: usize = 120;

/// One sampled offending line (or shard-level failure).
#[derive(Debug, Clone)]
pub struct SkipSample {
    /// 1-based line number within the shard (0 for shard-level failures).
    pub line: usize,
    /// Byte offset of the line start within the shard.
    pub byte_offset: u64,
    pub kind: ErrorKind,
    /// Human-readable description of the parse failure.
    pub detail: String,
    /// The offending line, lossily decoded and truncated.
    pub snippet: String,
}

/// Per-shard parse accounting: rows and bytes parsed, skips by error kind,
/// the first [`MAX_SAMPLES`] offending lines, and parse wall time.
#[derive(Debug, Clone, Default)]
pub struct ShardDiag {
    /// Shard file name (`ssl.2022-05.log`, or `ssl.log` for singletons).
    pub shard: String,
    /// Data rows successfully parsed.
    pub rows_parsed: u64,
    /// Raw bytes read from the shard.
    pub bytes_read: u64,
    /// Skipped-row counts, indexed by [`ErrorKind::index`].
    pub skipped: [u64; ERROR_KINDS.len()],
    /// First [`MAX_SAMPLES`] offending lines.
    pub samples: Vec<SkipSample>,
    /// Set when the whole shard was skipped (lenient mode only).
    pub quarantined: Option<SkipSample>,
    /// Wall time spent opening and parsing this shard.
    pub wall_micros: u64,
}

impl ShardDiag {
    pub fn new(shard: impl Into<String>) -> ShardDiag {
        ShardDiag {
            shard: shard.into(),
            ..ShardDiag::default()
        }
    }

    /// Total rows skipped, across every error kind.
    pub fn rows_skipped(&self) -> u64 {
        self.skipped.iter().sum()
    }

    /// Skip count for one error kind.
    pub fn skipped_of(&self, kind: ErrorKind) -> u64 {
        self.skipped[kind.index()]
    }

    /// Record one skipped data line.
    pub fn record_skip(&mut self, err: &TsvError, byte_offset: u64, line_no: usize, raw: &[u8]) {
        let kind = ErrorKind::of(err);
        self.skipped[kind.index()] += 1;
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(SkipSample {
                line: line_no,
                byte_offset,
                kind,
                detail: err.to_string(),
                snippet: snippet_of(raw),
            });
        }
    }

    /// Mark the whole shard as quarantined (failed to open, or bad header).
    pub fn quarantine(&mut self, err: &TsvError) {
        self.quarantined = Some(SkipSample {
            line: 0,
            byte_offset: 0,
            kind: ErrorKind::of(err),
            detail: err.to_string(),
            snippet: String::new(),
        });
    }
}

fn snippet_of(raw: &[u8]) -> String {
    let mut s = String::from_utf8_lossy(raw).into_owned();
    if s.len() > MAX_SNIPPET {
        let mut cut = MAX_SNIPPET;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
        s.push('…');
    }
    s
}

/// Aggregate diagnostics for one directory read: every shard's
/// [`ShardDiag`] plus corpus-wide totals (maintained with cheap relaxed
/// atomics inside the parallel shard pool).
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    pub mode: IngestMode,
    /// One entry per shard, in filename (chronological) order, ssl before
    /// x509 — the same order the records concatenate in.
    pub shards: Vec<ShardDiag>,
    pub rows_parsed: u64,
    pub rows_skipped: u64,
    pub bytes_read: u64,
    /// Shards skipped whole (lenient mode: open failure or bad header).
    pub shards_quarantined: u64,
    /// Wall time for the whole directory read.
    pub wall_micros: u64,
}

impl IngestStats {
    /// Skipped fraction of all attempted rows; each quarantined shard
    /// counts as one bad unit so an unreadable shard can never be free.
    /// Returns 0.0 for an empty corpus.
    pub fn error_rate(&self) -> f64 {
        let bad = self.rows_skipped + self.shards_quarantined;
        let attempted = self.rows_parsed + bad;
        if attempted == 0 {
            0.0
        } else {
            bad as f64 / attempted as f64
        }
    }

    /// Fold one shard into the totals (the serial path; the parallel pool
    /// aggregates the same numbers through atomics instead).
    pub fn absorb(&mut self, diag: ShardDiag) {
        self.rows_parsed += diag.rows_parsed;
        self.rows_skipped += diag.rows_skipped();
        self.bytes_read += diag.bytes_read;
        if diag.quarantined.is_some() {
            self.shards_quarantined += 1;
        }
        self.shards.push(diag);
    }

    /// Fold another stats block into this one — the incremental-ingest
    /// accumulator. An epoch-by-epoch walk absorbs each month's stats
    /// here so `error_rate()` is always evaluated over the *cumulative*
    /// totals: a guard checked per month would silently pass a corpus
    /// whose early months were clean and late months garbage. Wall times
    /// sum (the epochs ran sequentially).
    pub fn absorb_stats(&mut self, other: IngestStats) {
        self.rows_parsed += other.rows_parsed;
        self.rows_skipped += other.rows_skipped;
        self.bytes_read += other.bytes_read;
        self.shards_quarantined += other.shards_quarantined;
        self.wall_micros += other.wall_micros;
        self.shards.extend(other.shards);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_kind_indexes_are_consistent() {
        for (i, kind) in ERROR_KINDS.iter().enumerate() {
            assert_eq!(kind.index(), i, "{kind:?}");
        }
    }

    #[test]
    fn samples_cap_at_max() {
        let mut diag = ShardDiag::new("ssl.log");
        for i in 0..MAX_SAMPLES + 3 {
            diag.record_skip(&TsvError::BadHeader, i as u64, i + 1, b"line");
        }
        assert_eq!(diag.samples.len(), MAX_SAMPLES);
        assert_eq!(diag.rows_skipped(), (MAX_SAMPLES + 3) as u64);
    }

    #[test]
    fn snippets_truncate_on_char_boundaries() {
        let long: String = "é".repeat(200);
        let s = snippet_of(long.as_bytes());
        assert!(s.ends_with('…'));
        assert!(s.len() <= MAX_SNIPPET + '…'.len_utf8());
    }

    #[test]
    fn error_rate_counts_quarantines() {
        let stats = IngestStats {
            rows_parsed: 98,
            rows_skipped: 1,
            shards_quarantined: 1,
            ..IngestStats::default()
        };
        assert!((stats.error_rate() - 0.02).abs() < 1e-12);
        assert_eq!(IngestStats::default().error_rate(), 0.0);
    }
}
