//! The two log record types of the paper's dataset.

use crate::ip::Ipv4;

/// Negotiated TLS protocol version, as Zeek prints it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TlsVersion {
    Tls10,
    Tls11,
    Tls12,
    /// Certificates are encrypted and invisible to a passive monitor — the
    /// paper's 40.86 % blind spot (§3.3).
    Tls13,
}

impl TlsVersion {
    /// Zeek's `version` string.
    pub fn zeek_name(self) -> &'static str {
        match self {
            TlsVersion::Tls10 => "TLSv10",
            TlsVersion::Tls11 => "TLSv11",
            TlsVersion::Tls12 => "TLSv12",
            TlsVersion::Tls13 => "TLSv13",
        }
    }

    /// Parse Zeek's `version` string.
    pub fn from_zeek_name(s: &str) -> Option<TlsVersion> {
        match s {
            "TLSv10" => Some(TlsVersion::Tls10),
            "TLSv11" => Some(TlsVersion::Tls11),
            "TLSv12" => Some(TlsVersion::Tls12),
            "TLSv13" => Some(TlsVersion::Tls13),
            _ => None,
        }
    }

    /// Whether certificates are visible to a passive monitor.
    pub fn certs_visible(self) -> bool {
        !matches!(self, TlsVersion::Tls13)
    }
}

impl std::fmt::Display for TlsVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.zeek_name())
    }
}

/// One `ssl.log` record: a TLS connection observed at the border.
#[derive(Debug, Clone, PartialEq)]
pub struct SslRecord {
    /// Connection start, Unix seconds.
    pub ts: f64,
    /// Zeek connection UID.
    pub uid: String,
    /// Originator (client) endpoint.
    pub orig_h: Ipv4,
    pub orig_p: u16,
    /// Responder (server) endpoint.
    pub resp_h: Ipv4,
    pub resp_p: u16,
    /// Negotiated version.
    pub version: TlsVersion,
    /// SNI from the ClientHello, if present.
    pub server_name: Option<String>,
    /// Whether the handshake completed.
    pub established: bool,
    /// Server certificate chain fingerprints (leaf first); empty under
    /// TLS 1.3 or when no certificate was sent.
    pub cert_chain_fps: Vec<String>,
    /// Client certificate chain fingerprints (leaf first); non-empty means
    /// the connection used mutual TLS.
    pub client_cert_chain_fps: Vec<String>,
}

impl SslRecord {
    /// The paper's mutual-TLS predicate: both chains present (§3.2.1).
    pub fn is_mutual_tls(&self) -> bool {
        !self.cert_chain_fps.is_empty() && !self.client_cert_chain_fps.is_empty()
    }

    /// A client chain with no server chain (the paper attributes these to
    /// university tunneling services; they are *not* counted as mTLS).
    pub fn is_client_only(&self) -> bool {
        self.cert_chain_fps.is_empty() && !self.client_cert_chain_fps.is_empty()
    }
}

/// One `x509.log` record: a certificate observed in some TLS handshake.
#[derive(Debug, Clone, PartialEq)]
pub struct X509Record {
    /// First-seen timestamp, Unix seconds.
    pub ts: f64,
    /// SHA-256 fingerprint (lowercase hex) — the join key from `ssl.log`.
    pub fingerprint: String,
    /// Certificate version (1 or 3).
    pub version: u8,
    /// Serial number, uppercase hex as Zeek prints it.
    pub serial: String,
    /// Subject DN display string.
    pub subject: String,
    /// Issuer DN display string.
    pub issuer: String,
    /// Issuer organization (`O=`), if present — the categorization input.
    pub issuer_org: Option<String>,
    /// Subject CN, if present.
    pub subject_cn: Option<String>,
    /// notBefore / notAfter, Unix seconds (notBefore may exceed notAfter in
    /// the misconfigured population the paper studies).
    pub not_valid_before: i64,
    pub not_valid_after: i64,
    /// Key algorithm ("rsa" / "ecdsa") and length in bits.
    pub key_alg: String,
    pub key_length: u16,
    /// Declared signature algorithm name.
    pub sig_alg: String,
    /// SAN dNSName entries.
    pub san_dns: Vec<String>,
    /// SAN rfc822Name entries.
    pub san_email: Vec<String>,
    /// SAN URI entries.
    pub san_uri: Vec<String>,
    /// SAN iPAddress entries (dotted-quad / colon-hex text).
    pub san_ip: Vec<String>,
    /// Whether BasicConstraints marks this certificate as a CA.
    pub basic_constraints_ca: bool,
}

impl X509Record {
    /// Validity period in whole days (negative when dates are inverted).
    pub fn validity_days(&self) -> i64 {
        (self.not_valid_after - self.not_valid_before) / 86_400
    }

    /// The paper's §5.3.1 misconfiguration predicate (`notBefore` does not
    /// precede `notAfter`; equality counts — Fig. 3's one identical pair).
    pub fn has_incorrect_dates(&self) -> bool {
        self.not_valid_before >= self.not_valid_after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssl(server_fps: &[&str], client_fps: &[&str]) -> SslRecord {
        SslRecord {
            ts: 1.5e9,
            uid: "CUid1".into(),
            orig_h: Ipv4::new(10, 1, 2, 3),
            orig_p: 55000,
            resp_h: Ipv4::new(93, 184, 216, 34),
            resp_p: 443,
            version: TlsVersion::Tls12,
            server_name: Some("example.org".into()),
            established: true,
            cert_chain_fps: server_fps.iter().map(|s| s.to_string()).collect(),
            client_cert_chain_fps: client_fps.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn mutual_tls_predicate() {
        assert!(ssl(&["s"], &["c"]).is_mutual_tls());
        assert!(!ssl(&["s"], &[]).is_mutual_tls());
        assert!(!ssl(&[], &["c"]).is_mutual_tls());
        assert!(ssl(&[], &["c"]).is_client_only());
        assert!(!ssl(&["s"], &["c"]).is_client_only());
    }

    #[test]
    fn version_names_round_trip() {
        for v in [
            TlsVersion::Tls10,
            TlsVersion::Tls11,
            TlsVersion::Tls12,
            TlsVersion::Tls13,
        ] {
            assert_eq!(TlsVersion::from_zeek_name(v.zeek_name()), Some(v));
        }
        assert_eq!(TlsVersion::from_zeek_name("SSLv3"), None);
    }

    #[test]
    fn tls13_hides_certs() {
        assert!(!TlsVersion::Tls13.certs_visible());
        assert!(TlsVersion::Tls12.certs_visible());
    }

    #[test]
    fn x509_date_predicates() {
        let mut rec = X509Record {
            ts: 0.0,
            fingerprint: "ab".into(),
            version: 3,
            serial: "00".into(),
            subject: "CN=x".into(),
            issuer: "O=y".into(),
            issuer_org: Some("y".into()),
            subject_cn: Some("x".into()),
            not_valid_before: 0,
            not_valid_after: 86_400 * 14,
            key_alg: "rsa".into(),
            key_length: 2048,
            sig_alg: "sha256WithRSAEncryption".into(),
            san_dns: vec![],
            san_email: vec![],
            san_uri: vec![],
            san_ip: vec![],
            basic_constraints_ca: false,
        };
        assert_eq!(rec.validity_days(), 14);
        assert!(!rec.has_incorrect_dates());
        rec.not_valid_before = rec.not_valid_after + 1;
        assert!(rec.has_incorrect_dates());
    }
}
