//! SWAR (SIMD-within-a-register) byte scanning for the TSV hot path.
//!
//! The parsers spend most of their time finding `\n` and `\t` delimiters
//! and checking fields for escape bytes. These helpers do that work one
//! `u64` word (8 bytes) at a time instead of byte-by-byte, using the
//! exact zero-byte detection formula (no false positives from cross-byte
//! borrows, so both *first position* and *count* are correct):
//!
//! ```text
//! x = word ^ splat(needle)
//! mask = !(((x | 0x80..80) - 0x01..01) | x) & 0x80..80
//! ```
//!
//! Each byte's high bit in `mask` is set iff that byte equals the needle.
//! Little-endian loads put slice byte *i* in word byte *i*, so
//! `trailing_zeros / 8` recovers the first match index.
//!
//! Every public function has a scalar twin in [`scalar`]; the proptests in
//! `tests/proptests.rs` pin them byte-identical on adversarial input
//! (embedded `\r`, trailing tabs, empty slices, non-UTF-8).

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

#[inline(always)]
fn splat(b: u8) -> u64 {
    LO * b as u64
}

#[inline(always)]
fn load(hay: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(hay[i..i + 8].try_into().expect("8 bytes"))
}

/// High bit set in each byte of `w` equal to the pre-splatted needle.
#[inline(always)]
fn match_mask(w: u64, splat_needle: u64) -> u64 {
    let x = w ^ splat_needle;
    !(((x | HI).wrapping_sub(LO)) | x) & HI
}

/// First index of `needle` at or after `start`.
#[inline]
pub fn find_byte_from(hay: &[u8], start: usize, needle: u8) -> Option<usize> {
    let n = splat(needle);
    let mut i = start;
    while i + 8 <= hay.len() {
        let m = match_mask(load(hay, i), n);
        if m != 0 {
            return Some(i + (m.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    while i < hay.len() {
        if hay[i] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// First index of `needle`.
#[inline]
pub fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    find_byte_from(hay, 0, needle)
}

/// Number of occurrences of `needle`.
pub fn count_byte(hay: &[u8], needle: u8) -> usize {
    let n = splat(needle);
    let mut i = 0;
    let mut total = 0u32;
    while i + 8 <= hay.len() {
        total += match_mask(load(hay, i), n).count_ones();
        i += 8;
    }
    total as usize + hay[i..].iter().filter(|&&b| b == needle).count()
}

/// Whether any of the five needles occurs. Five is exactly the escape
/// alphabet ([`crate::tsv::escape`]'s `\t \n \r , \` check); a fixed
/// arity keeps the per-word masks fully unrolled.
pub fn contains_any5(hay: &[u8], needles: [u8; 5]) -> bool {
    let n = needles.map(splat);
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = load(hay, i);
        let m = match_mask(w, n[0])
            | match_mask(w, n[1])
            | match_mask(w, n[2])
            | match_mask(w, n[3])
            | match_mask(w, n[4]);
        if m != 0 {
            return true;
        }
        i += 8;
    }
    hay[i..].iter().any(|b| needles.contains(b))
}

/// Whether the two-byte sequence `a b` occurs (the `\x` escape probe).
/// Matches `str::contains` on the equivalent two-char pattern.
pub fn contains_seq2(hay: &[u8], a: u8, b: u8) -> bool {
    let mut i = 0;
    while let Some(p) = find_byte_from(hay, i, a) {
        if hay.get(p + 1) == Some(&b) {
            return true;
        }
        i = p + 1;
    }
    false
}

/// Split on a byte, with `slice::split` semantics: an empty input yields
/// one empty slice, and a trailing separator yields a trailing empty
/// slice. Byte-identical to `hay.split(|&x| x == needle)`.
pub fn split_byte(hay: &[u8], needle: u8) -> SplitByte<'_> {
    SplitByte {
        hay,
        needle,
        pos: 0,
        done: false,
    }
}

/// Iterator returned by [`split_byte`].
pub struct SplitByte<'a> {
    hay: &'a [u8],
    needle: u8,
    pos: usize,
    done: bool,
}

impl<'a> Iterator for SplitByte<'a> {
    type Item = &'a [u8];

    #[inline]
    fn next(&mut self) -> Option<&'a [u8]> {
        if self.done {
            return None;
        }
        match find_byte_from(self.hay, self.pos, self.needle) {
            Some(i) => {
                let chunk = &self.hay[self.pos..i];
                self.pos = i + 1;
                Some(chunk)
            }
            None => {
                self.done = true;
                Some(&self.hay[self.pos..])
            }
        }
    }
}

/// [`split_byte`] over a `&str` with an ASCII needle (always a char
/// boundary), matching `s.split(needle as char)`.
pub fn split_str(s: &str, needle: u8) -> SplitStr<'_> {
    debug_assert!(needle.is_ascii());
    SplitStr {
        s,
        inner: split_byte(s.as_bytes(), needle),
    }
}

/// Iterator returned by [`split_str`].
pub struct SplitStr<'a> {
    s: &'a str,
    inner: SplitByte<'a>,
}

impl<'a> Iterator for SplitStr<'a> {
    type Item = &'a str;

    #[inline]
    fn next(&mut self) -> Option<&'a str> {
        let chunk = self.inner.next()?;
        let start = chunk.as_ptr() as usize - self.s.as_ptr() as usize;
        // ASCII needle: both edges are char boundaries.
        Some(&self.s[start..start + chunk.len()])
    }
}

/// Scalar reference implementations — the behavior the SWAR paths must
/// reproduce byte-for-byte. Kept public so the equivalence proptests and
/// the perf gate's baseline arms measure the real thing, not a copy.
pub mod scalar {
    /// Byte-at-a-time [`super::find_byte_from`].
    pub fn find_byte_from(hay: &[u8], start: usize, needle: u8) -> Option<usize> {
        hay[start..]
            .iter()
            .position(|&b| b == needle)
            .map(|p| start + p)
    }

    /// Byte-at-a-time [`super::count_byte`].
    pub fn count_byte(hay: &[u8], needle: u8) -> usize {
        hay.iter().filter(|&&b| b == needle).count()
    }

    /// Byte-at-a-time [`super::contains_any5`].
    pub fn contains_any5(hay: &[u8], needles: [u8; 5]) -> bool {
        hay.iter().any(|b| needles.contains(b))
    }

    /// Byte-at-a-time [`super::contains_seq2`].
    pub fn contains_seq2(hay: &[u8], a: u8, b: u8) -> bool {
        hay.windows(2).any(|w| w == [a, b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The adversarial shapes the proptests also cover, pinned as units.
    const CASES: &[&[u8]] = &[
        b"",
        b"\n",
        b"\t\t\t",
        b"a",
        b"plain line with no delimiters at all, longer than a word",
        b"tab\there\nline\r\nwith crlf\n",
        b"trailing tabs\t\t\t",
        b"\xFF\xFEbinary\x00junk\n\x80\x80\x80\x80\x80\x80\x80\x80",
        b"exactly8\t", // word-boundary straddle
        b"sevenby",
        b"\\x41 escape lookalike \\ x",
        b"ends with backslash\\",
    ];

    #[test]
    fn find_matches_scalar() {
        for hay in CASES {
            for needle in [b'\n', b'\t', b'\\', b',', 0x00, 0xFF, 0x80] {
                for start in 0..=hay.len() {
                    assert_eq!(
                        find_byte_from(hay, start, needle),
                        scalar::find_byte_from(hay, start, needle),
                        "hay={hay:?} needle={needle:#x} start={start}"
                    );
                }
            }
        }
    }

    #[test]
    fn count_matches_scalar() {
        for hay in CASES {
            for needle in [b'\n', b'\t', 0x00, 0x80, 0xFF] {
                assert_eq!(
                    count_byte(hay, needle),
                    scalar::count_byte(hay, needle),
                    "hay={hay:?} needle={needle:#x}"
                );
            }
        }
    }

    #[test]
    fn contains_any5_matches_scalar() {
        let needles = [b'\t', b'\n', b'\r', b',', b'\\'];
        for hay in CASES {
            assert_eq!(
                contains_any5(hay, needles),
                scalar::contains_any5(hay, needles),
                "hay={hay:?}"
            );
        }
    }

    #[test]
    fn contains_seq2_matches_str_contains() {
        for s in [
            "", "\\", "\\x", "x\\", "a\\xb", "\\yx", "…\\x", "\\", "\\\\x",
        ] {
            assert_eq!(
                contains_seq2(s.as_bytes(), b'\\', b'x'),
                s.contains("\\x"),
                "{s:?}"
            );
        }
        // The pair may straddle a word boundary.
        let straddle = b"0123456\\x9abcdef";
        assert!(contains_seq2(straddle, b'\\', b'x'));
    }

    #[test]
    fn split_byte_matches_slice_split() {
        for hay in CASES {
            for needle in [b'\n', b'\t'] {
                let ours: Vec<&[u8]> = split_byte(hay, needle).collect();
                let std: Vec<&[u8]> = hay.split(|&b| b == needle).collect();
                assert_eq!(ours, std, "hay={hay:?} needle={needle:#x}");
            }
        }
    }

    #[test]
    fn split_str_matches_str_split() {
        for s in ["", "a\tb", "\t", "a\t", "\ta", "a,b,,c,", "é\tλ,中"] {
            for needle in [b'\t', b','] {
                let ours: Vec<&str> = split_str(s, needle).collect();
                let std: Vec<&str> = s.split(needle as char).collect();
                assert_eq!(ours, std, "s={s:?} needle={needle:#x}");
            }
        }
    }

    #[test]
    fn high_bit_bytes_never_false_positive() {
        // The naive haszero formula flags bytes above a true match; the
        // exact formula must not. 0x80 vs 0x00 is the classic trap.
        let hay = [0x80u8; 16];
        assert_eq!(find_byte(&hay, 0x00), None);
        assert_eq!(count_byte(&hay, 0x00), 0);
        let hay = [0x00u8, 0x01, 0x80, 0xFF, 0x00, 0x01, 0x80, 0xFF];
        assert_eq!(count_byte(&hay, 0x00), 2);
        assert_eq!(find_byte(&hay, 0xFF), Some(3));
    }
}
