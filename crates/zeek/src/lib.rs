//! Zeek-style log substrate.
//!
//! The reproduced paper's dataset is a pair of Zeek log streams: `ssl.log`
//! (one record per TLS connection, with the server and client certificate
//! chains referenced by fingerprint) and `x509.log` (one record per observed
//! certificate). This crate defines those record types ([`SslRecord`],
//! [`X509Record`]) and a faithful Zeek-TSV serialization (`#separator`,
//! `#fields`, `#types` headers; `-` for unset; `(empty)` for empty vectors;
//! comma-joined vector values), so the analysis pipeline can run off files
//! exactly the way the paper's did.
//!
//! # Example
//!
//! ```
//! use mtls_zeek::{write_ssl_log, read_ssl_log, Ipv4, SslRecord, TlsVersion};
//!
//! let rec = SslRecord {
//!     ts: 1_651_363_200.5,
//!     uid: "CAbc123".into(),
//!     orig_h: Ipv4::new(172, 29, 1, 10),
//!     orig_p: 40_000,
//!     resp_h: Ipv4::new(98, 100, 7, 7),
//!     resp_p: 443,
//!     version: TlsVersion::Tls12,
//!     server_name: Some("api.example.com".into()),
//!     established: true,
//!     cert_chain_fps: vec!["aa11".into()],
//!     client_cert_chain_fps: vec!["bb22".into()], // a client chain => mutual TLS
//! };
//! assert!(rec.is_mutual_tls());
//!
//! // Round-trip through the Zeek-TSV format.
//! let mut buf = Vec::new();
//! write_ssl_log(&mut buf, std::slice::from_ref(&rec)).unwrap();
//! let back = read_ssl_log(&buf[..]).unwrap();
//! assert_eq!(back, vec![rec]);
//! ```

pub mod diag;
pub mod ip;
pub mod records;
pub mod rotate;
pub mod swar;
pub mod tsv;

pub use diag::{ErrorKind, IngestMode, IngestStats, ShardDiag, SkipSample, ERROR_KINDS};
pub use ip::Ipv4;
pub use records::{SslRecord, TlsVersion, X509Record};
pub use rotate::{
    month_keys, partition_monthly, read_month_obs, read_monthly, read_monthly_obs,
    read_monthly_pool, read_monthly_serial, read_monthly_serial_obs, read_monthly_serial_with,
    read_monthly_with, write_monthly,
};
pub use tsv::{
    read_ssl_log, read_ssl_log_with, read_x509_log, read_x509_log_with, write_ssl_log,
    write_x509_log, TsvError,
};
