//! IPv4 addresses and the /24-subnet arithmetic the analysis uses.
//!
//! The paper counts distinct client IPs and measures certificate spread
//! across /24 subnets (Table 6). A tiny dedicated type keeps those
//! operations allocation-free.

/// An IPv4 address as a big-endian u32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// From dotted-quad octets.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4 {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    /// Parse dotted-quad text. Leading-zero octets (`010.0.0.1`) are
    /// rejected: `inet_aton`-style parsers read them as octal, so accepting
    /// them decimally would silently disagree about which address was seen.
    pub fn parse(s: &str) -> Option<Ipv4> {
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for o in octets.iter_mut() {
            let part = parts.next()?;
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            if part.len() > 1 && part.starts_with('0') {
                return None;
            }
            *o = part.parse().ok()?;
        }
        if parts.next().is_some() {
            return None;
        }
        Some(Ipv4(u32::from_be_bytes(octets)))
    }

    /// The four octets.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The enclosing /24 network (host byte zeroed).
    pub fn subnet24(self) -> Ipv4 {
        Ipv4(self.0 & 0xFFFF_FF00)
    }

    /// Whether the address lies inside `network/prefix_len`.
    pub fn in_subnet(self, network: Ipv4, prefix_len: u8) -> bool {
        debug_assert!(prefix_len <= 32);
        if prefix_len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - u32::from(prefix_len));
        (self.0 & mask) == (network.0 & mask)
    }

    /// Address at `offset` hosts above this one (wrapping).
    pub fn offset(self, n: u32) -> Ipv4 {
        Ipv4(self.0.wrapping_add(n))
    }
}

impl std::fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0.0.0.0", "10.0.0.1", "192.168.255.254", "255.255.255.255"] {
            let ip = Ipv4::parse(s).unwrap();
            assert_eq!(ip.to_string(), s);
        }
    }

    #[test]
    fn rejects_malformed() {
        for s in [
            "",
            "1.2.3",
            "1.2.3.4.5",
            "256.1.1.1",
            "a.b.c.d",
            "1..2.3",
            "01x.2.3.4",
            // Leading zeros read as octal by inet_aton — reject, except a
            // bare "0" octet.
            "010.0.0.1",
            "00.0.0.0",
            "1.02.3.4",
            "1.2.3.004",
        ] {
            assert!(Ipv4::parse(s).is_none(), "{s}");
        }
        assert_eq!(Ipv4::parse("0.0.0.0"), Some(Ipv4::new(0, 0, 0, 0)));
        assert_eq!(Ipv4::parse("10.0.0.1"), Some(Ipv4::new(10, 0, 0, 1)));
    }

    #[test]
    fn subnet24() {
        let ip = Ipv4::new(10, 20, 30, 40);
        assert_eq!(ip.subnet24(), Ipv4::new(10, 20, 30, 0));
        assert_eq!(ip.subnet24().to_string(), "10.20.30.0");
    }

    #[test]
    fn in_subnet() {
        let net = Ipv4::new(172, 16, 0, 0);
        assert!(Ipv4::new(172, 16, 5, 9).in_subnet(net, 16));
        assert!(!Ipv4::new(172, 17, 0, 1).in_subnet(net, 16));
        assert!(Ipv4::new(1, 2, 3, 4).in_subnet(Ipv4::new(9, 9, 9, 9), 0));
        assert!(Ipv4::new(10, 0, 0, 7).in_subnet(Ipv4::new(10, 0, 0, 7), 32));
        assert!(!Ipv4::new(10, 0, 0, 8).in_subnet(Ipv4::new(10, 0, 0, 7), 32));
    }

    #[test]
    fn offset_wraps() {
        assert_eq!(Ipv4::new(10, 0, 0, 250).offset(10), Ipv4::new(10, 0, 1, 4));
        assert_eq!(Ipv4(u32::MAX).offset(1), Ipv4(0));
    }
}
