//! Property tests: arbitrary records must round-trip through Zeek-TSV.

use mtls_zeek::tsv::{escape, unescape};
use mtls_zeek::{read_ssl_log, read_x509_log, write_ssl_log, write_x509_log};
use mtls_zeek::{Ipv4, SslRecord, TlsVersion, X509Record};
use proptest::prelude::*;
use std::io::Cursor;

fn arb_version() -> impl Strategy<Value = TlsVersion> {
    prop_oneof![
        Just(TlsVersion::Tls10),
        Just(TlsVersion::Tls11),
        Just(TlsVersion::Tls12),
        Just(TlsVersion::Tls13),
    ]
}

// Strings with no control characters (Zeek never logs them) but with
// tabs/commas/backslashes allowed to exercise escaping.
fn arb_field() -> impl Strategy<Value = String> {
    "[ -~]{0,40}"
}

fn arb_vec_field() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[ -~]{1,20}", 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ssl_records_round_trip(
        ts in 0f64..3e9,
        uid in "[A-Za-z0-9]{1,12}",
        ip_a in any::<u32>(),
        ip_b in any::<u32>(),
        port_a in any::<u16>(),
        port_b in any::<u16>(),
        version in arb_version(),
        sni in proptest::option::of("[a-z0-9.-]{1,30}"),
        established in any::<bool>(),
        server_fps in arb_vec_field(),
        client_fps in arb_vec_field(),
    ) {
        let rec = SslRecord {
            ts,
            uid,
            orig_h: Ipv4(ip_a),
            orig_p: port_a,
            resp_h: Ipv4(ip_b),
            resp_p: port_b,
            version,
            server_name: sni,
            established,
            cert_chain_fps: server_fps,
            client_cert_chain_fps: client_fps,
        };
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, std::slice::from_ref(&rec)).unwrap();
        let parsed = read_ssl_log(Cursor::new(buf)).unwrap();
        prop_assert_eq!(parsed, vec![rec]);
    }

    #[test]
    fn x509_records_round_trip(
        fingerprint in "[a-f0-9]{8}",
        serial in "[A-F0-9]{2,16}",
        subject in arb_field(),
        issuer in arb_field(),
        issuer_org in proptest::option::of("[ -~]{1,30}"),
        subject_cn in proptest::option::of("[ -~]{1,30}"),
        nvb in -10_000_000_000i64..10_000_000_000,
        nva in -10_000_000_000i64..10_000_000_000,
        key_length in prop_oneof![Just(1024u16), Just(2048), Just(256)],
        san_dns in arb_vec_field(),
        san_email in arb_vec_field(),
        ca in any::<bool>(),
    ) {
        let rec = X509Record {
            ts: 1.0,
            fingerprint,
            version: 3,
            serial,
            subject,
            issuer,
            issuer_org,
            subject_cn,
            not_valid_before: nvb,
            not_valid_after: nva,
            key_alg: "rsa".into(),
            key_length,
            sig_alg: "sha256WithRSAEncryption".into(),
            san_dns,
            san_email,
            san_uri: vec![],
            san_ip: vec![],
            basic_constraints_ca: ca,
        };
        let mut buf = Vec::new();
        write_x509_log(&mut buf, std::slice::from_ref(&rec)).unwrap();
        let parsed = read_x509_log(Cursor::new(buf)).unwrap();
        prop_assert_eq!(parsed, vec![rec]);
    }

    #[test]
    fn ipv4_parse_display_round_trip(raw in any::<u32>()) {
        let ip = Ipv4(raw);
        prop_assert_eq!(Ipv4::parse(&ip.to_string()), Some(ip));
        prop_assert!(ip.in_subnet(ip.subnet24(), 24));
    }
}

// Failure injection: the readers accept whatever a disk hands them —
// arbitrary text and mutated valid logs must yield Ok or Err, never panic.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn readers_never_panic_on_arbitrary_text(text in "\\PC{0,600}") {
        let _ = read_ssl_log(Cursor::new(text.clone().into_bytes()));
        let _ = read_x509_log(Cursor::new(text.into_bytes()));
    }

    #[test]
    fn readers_never_panic_on_mutated_logs(
        cut in 0usize..600,
        insert_at in 0usize..600,
        junk in "\\PC{0,40}",
    ) {
        let rec = SslRecord {
            ts: 1_651_363_200.25,
            uid: "Cmut1".into(),
            orig_h: Ipv4::new(172, 29, 0, 9),
            orig_p: 40_000,
            resp_h: Ipv4::new(9, 9, 9, 9),
            resp_p: 443,
            version: TlsVersion::Tls12,
            server_name: Some("mut.example.com".into()),
            established: true,
            cert_chain_fps: vec!["aa".into()],
            client_cert_chain_fps: vec!["bb".into()],
        };
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, std::slice::from_ref(&rec)).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        // The serialized log is pure ASCII, so any index is a char boundary.
        text.truncate(cut.min(text.len()));
        let at = insert_at.min(text.len());
        if text.is_char_boundary(at) {
            text.insert_str(at, &junk);
        }
        let _ = read_ssl_log(Cursor::new(text.into_bytes()));
    }
}

// Field escaping: `escape`/`unescape` are the layer every field crosses
// twice, so they must be exact inverses on anything a record can hold, and
// `unescape` must be total (never panic, never error) on anything a
// corrupted disk can hold. The vendored proptest subset has no
// `any::<String>()`, so SOUP is the stand-in: separators (a real embedded
// tab/newline/CR), backslashes, hex digits dense enough to form accidental
// `\xNN` sequences, punctuation, and multi-byte chars.
const SOUP: &str = "[\t\n\r ,\\\\x0-9a-fA-F!\"#$%&'()*+./:;<=>?@^_`|~é中λ-]{0,60}";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn escape_round_trips_arbitrary_strings(s in SOUP) {
        prop_assert_eq!(unescape(&escape(&s)).as_ref(), s.as_str());
    }

    #[test]
    fn escape_round_trips_escape_lookalikes(s in "[\\\\x0-9a-fA-F]{0,24}") {
        // Dense runs over {\, x, hex} form literal `\xNN`-looking text: a
        // field that already contains the text "\x41" must come back as
        // that text, not as "A".
        prop_assert_eq!(unescape(&escape(&s)).as_ref(), s.as_str());
    }

    #[test]
    fn escaped_output_is_separator_free(s in SOUP) {
        let escaped = escape(&s);
        prop_assert!(!escaped.contains(['\t', '\n', '\r', ',']), "{:?}", escaped);
    }

    #[test]
    fn unescape_is_total_on_arbitrary_input(s in SOUP) {
        let out = unescape(&s);
        // No panic, and untouched input passes through verbatim.
        if !s.contains("\\x") {
            prop_assert_eq!(out.as_ref(), s.as_str());
        }
    }
}

#[test]
fn unescape_passes_truncated_escapes_through() {
    // Malformed or cut-off escape sequences — including at the very end of
    // a field, where the old reader could index past the slice — survive
    // verbatim.
    for s in [
        "\\", "\\x", "\\x4", "\\xZZ", "abc\\x", "abc\\x4", "\\x0g", "x\\",
    ] {
        assert_eq!(unescape(s).as_ref(), s, "{s:?}");
    }
    assert_eq!(unescape("\\x41\\x4").as_ref(), "A\\x4");
    assert_eq!(unescape("\\x09end\\x").as_ref(), "\tend\\x");
}

// SWAR equivalence: every u64-at-a-time scanner must be byte-identical to
// its scalar twin on adversarial bytes — embedded `\r`, trailing tabs,
// high-bit bytes (the classic haszero-formula false-positive trap), and
// lengths that straddle the 8-byte word boundary.
use mtls_zeek::swar;

// Bytes biased heavily toward the delimiters and toward 0x00/0x80/0xFF so
// word-boundary and high-bit interactions actually occur.
fn arb_hot_byte() -> impl Strategy<Value = u8> {
    prop_oneof![
        Just(b'\t'),
        Just(b'\n'),
        Just(b'\r'),
        Just(b','),
        Just(b'\\'),
        Just(b'x'),
        Just(0x00u8),
        Just(0x80u8),
        Just(0xFFu8),
        any::<u8>(),
    ]
}

fn arb_hay() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(arb_hot_byte(), 0..96)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn swar_find_matches_scalar(hay in arb_hay(), needle in arb_hot_byte(), start in 0usize..96) {
        let start = start.min(hay.len());
        prop_assert_eq!(
            swar::find_byte_from(&hay, start, needle),
            swar::scalar::find_byte_from(&hay, start, needle)
        );
    }

    #[test]
    fn swar_count_matches_scalar(hay in arb_hay(), needle in arb_hot_byte()) {
        prop_assert_eq!(swar::count_byte(&hay, needle), swar::scalar::count_byte(&hay, needle));
    }

    #[test]
    fn swar_contains_any5_matches_scalar(hay in arb_hay()) {
        let needles = [b'\t', b'\n', b'\r', b',', b'\\'];
        prop_assert_eq!(
            swar::contains_any5(&hay, needles),
            swar::scalar::contains_any5(&hay, needles)
        );
    }

    #[test]
    fn swar_contains_seq2_matches_scalar(hay in arb_hay()) {
        prop_assert_eq!(
            swar::contains_seq2(&hay, b'\\', b'x'),
            swar::scalar::contains_seq2(&hay, b'\\', b'x')
        );
    }

    #[test]
    fn swar_split_matches_slice_split(hay in arb_hay(), needle in arb_hot_byte()) {
        let ours: Vec<&[u8]> = swar::split_byte(&hay, needle).collect();
        let std: Vec<&[u8]> = hay.split(|&b| b == needle).collect();
        prop_assert_eq!(ours, std);
    }

    #[test]
    fn swar_split_str_matches_str_split(s in SOUP, tab_run in 0usize..4) {
        // Trailing tabs exercise the trailing-empty-slice semantics.
        let s = format!("{s}{}", "\t".repeat(tab_run));
        for needle in [b'\t', b','] {
            let ours: Vec<&str> = swar::split_str(&s, needle).collect();
            let std: Vec<&str> = s.split(needle as char).collect();
            prop_assert_eq!(ours, std);
        }
    }
}
