//! End-to-end: real DER certificates travel through a simulated handshake
//! and come back byte-identical out of the passive monitor.

use mtls_asn1::Asn1Time;
use mtls_crypto::Keypair;
use mtls_tlssim::{observe, simulate_handshake, HandshakeConfig, TlsVersion};
use mtls_x509::{Certificate, CertificateBuilder, DistinguishedName, GeneralName};
use proptest::prelude::*;

fn mint(cn: &str, org: &str, seed: &[u8]) -> Certificate {
    let ca = Keypair::from_seed(org.as_bytes());
    let leaf = Keypair::from_seed(seed);
    CertificateBuilder::new()
        .serial(&mtls_crypto::sha256(seed)[..6])
        .issuer(DistinguishedName::builder().organization(org).build())
        .subject(DistinguishedName::builder().common_name(cn).build())
        .san(vec![GeneralName::Dns(cn.into())])
        .validity(
            Asn1Time::from_ymd(2022, 5, 1),
            Asn1Time::from_ymd(2023, 5, 1),
        )
        .subject_key(leaf.key_id())
        .sign(&ca)
}

#[test]
fn certificates_survive_the_wire() {
    let server = mint("api.campus.example.edu", "Campus IT", b"srv");
    let inter = mint("Campus Sub CA", "Campus IT", b"int");
    let client = mint("student-device-0042", "Campus IT", b"cli");

    let cfg = HandshakeConfig {
        version: TlsVersion::Tls12,
        sni: Some("api.campus.example.edu".into()),
        server_chain: vec![server.to_der(), inter.to_der()],
        request_client_cert: true,
        client_chain: vec![client.to_der()],
        established: true,
        resumed: false,
        random_seed: 1,
    };
    let obs = observe(&simulate_handshake(&cfg)).unwrap();
    assert!(obs.is_mutual_tls());

    // Parse what the monitor saw and compare fingerprints.
    let seen_server = Certificate::from_der(&obs.server_cert_ders[0]).unwrap();
    let seen_inter = Certificate::from_der(&obs.server_cert_ders[1]).unwrap();
    let seen_client = Certificate::from_der(&obs.client_cert_ders[0]).unwrap();
    assert_eq!(seen_server.fingerprint(), server.fingerprint());
    assert_eq!(seen_inter.fingerprint(), inter.fingerprint());
    assert_eq!(seen_client.fingerprint(), client.fingerprint());
    assert_eq!(
        seen_client.subject().common_name(),
        Some("student-device-0042")
    );
}

#[test]
fn tls13_blinds_the_monitor_to_real_certs() {
    let server = mint("www.cloud.example", "Cloud CA", b"s13");
    let client = mint("edge-agent", "Cloud CA", b"c13");
    let cfg = HandshakeConfig {
        version: TlsVersion::Tls13,
        sni: Some("www.cloud.example".into()),
        server_chain: vec![server.to_der()],
        request_client_cert: true,
        client_chain: vec![client.to_der()],
        established: true,
        resumed: false,
        random_seed: 2,
    };
    let obs = observe(&simulate_handshake(&cfg)).unwrap();
    assert_eq!(obs.version, Some(TlsVersion::Tls13));
    assert!(obs.server_cert_ders.is_empty());
    assert!(obs.client_cert_ders.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_chain_shapes_round_trip(
        n_server in 0usize..4,
        n_client in 0usize..3,
        request in any::<bool>(),
        established in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let server_chain: Vec<Vec<u8>> = (0..n_server)
            .map(|i| mint(&format!("s{i}.example"), "Org S", &[i as u8, 1]).to_der())
            .collect();
        let client_chain: Vec<Vec<u8>> = (0..n_client)
            .map(|i| mint(&format!("c{i}"), "Org C", &[i as u8, 2]).to_der())
            .collect();
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            sni: None,
            server_chain: server_chain.clone(),
            request_client_cert: request,
            client_chain: client_chain.clone(),
            established,
            resumed: false,
            random_seed: seed,
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        prop_assert_eq!(obs.server_cert_ders, server_chain);
        let expected_client: Vec<Vec<u8>> = if request { client_chain } else { Vec::new() };
        prop_assert_eq!(obs.client_cert_ders, expected_client);
        prop_assert_eq!(obs.established, established);
        prop_assert_eq!(obs.client_cert_requested, request);
    }
}

// Failure injection: a passive monitor on a span port sees whatever the
// network delivers — damaged captures must degrade, never panic.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn monitor_never_panics_on_garbage(
        blobs in proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec(any::<u8>(), 0..256)),
            0..6,
        ),
    ) {
        use mtls_tlssim::handshake::{Direction, TranscriptRecord};
        let transcript: Vec<TranscriptRecord> = blobs
            .into_iter()
            .map(|(c2s, bytes)| TranscriptRecord {
                direction: if c2s { Direction::ClientToServer } else { Direction::ServerToClient },
                bytes,
            })
            .collect();
        let _ = observe(&transcript); // Ok or Err, both fine; panic is not.
    }

    #[test]
    fn monitor_never_panics_on_corrupted_handshakes(
        flip_at in 0usize..2048,
        flip_bit in 0u8..8,
        truncate_to in 0usize..2048,
        seed in any::<u64>(),
    ) {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            sni: Some("fuzz.example.com".into()),
            server_chain: vec![mint("fuzz.example.com", "Fuzz Org", b"fz").to_der()],
            request_client_cert: true,
            client_chain: vec![mint("fuzz-client", "Fuzz Org", b"fc").to_der()],
            established: true,
            resumed: false,
            random_seed: seed,
        };
        let mut transcript = simulate_handshake(&cfg);
        // Corrupt one bit somewhere in the concatenated capture, then
        // truncate one record — both happen on real span ports.
        let mut offset = flip_at;
        for rec in &mut transcript {
            if offset < rec.bytes.len() {
                rec.bytes[offset] ^= 1 << flip_bit;
                break;
            }
            offset -= rec.bytes.len();
        }
        if let Some(rec) = transcript.last_mut() {
            let keep = truncate_to.min(rec.bytes.len());
            rec.bytes.truncate(keep);
        }
        let _ = observe(&transcript);
    }
}
