//! TLS wire simulation.
//!
//! The reproduced paper observes TLS passively: Zeek sits on a border span
//! port, detects TLS by content (dynamic protocol detection, not port
//! numbers), parses handshakes it can see, and records certificate chains.
//! This crate rebuilds that observational model end to end:
//!
//! * [`wire`] — TLS record framing (`type | version | length | payload`);
//! * [`msgs`] — the handshake messages that matter to a passive observer:
//!   ClientHello (with SNI and supported_versions), ServerHello (with
//!   version negotiation), Certificate, and CertificateRequest;
//! * [`handshake`] — a transcript generator: given both endpoints'
//!   configuration it emits the direction-tagged record bytes a span port
//!   would capture. Under TLS 1.3 everything after ServerHello is wrapped
//!   in opaque `application_data` records, so certificates are invisible —
//!   reproducing the paper's 40.86 % blind spot;
//! * [`monitor`] — the passive analyzer: content-based protocol detection
//!   and handshake parsing that turns a byte stream back into a
//!   [`monitor::ConnectionObservation`] (version, SNI, server chain, client
//!   chain, establishment);
//! * [`stream`] — the record layer over real byte streams: an incremental
//!   [`stream::RecordDeframer`] / [`stream::HandshakeAssembler`] pair
//!   (tolerant of arbitrary chunk boundaries and cross-record handshake
//!   messages) plus [`stream::RecordReader`] / [`stream::RecordWriter`]
//!   bound to `std::io`, which is what `mtlscope serve` terminates mutual
//!   TLS with on live sockets.
//!
//! The framing is true to RFC 5246/8446 for everything a passive monitor
//! inspects; cryptographic payloads (Finished, key exchange) are elided
//! because no passive measurement reads them.
//!
//! # Example
//!
//! ```
//! use mtls_tlssim::{simulate_handshake, observe, HandshakeConfig, TlsVersion};
//!
//! // A mutual-TLS 1.2 handshake: the monitor sees both chains.
//! let cfg = HandshakeConfig {
//!     version: TlsVersion::Tls12,
//!     sni: Some("api.example.com".into()),
//!     server_chain: vec![b"server-der".to_vec()],
//!     request_client_cert: true,
//!     client_chain: vec![b"client-der".to_vec()],
//!     ..HandshakeConfig::default()
//! };
//! let seen = observe(&simulate_handshake(&cfg)).unwrap();
//! assert_eq!(seen.sni.as_deref(), Some("api.example.com"));
//! assert_eq!(seen.server_cert_ders.len(), 1);
//! assert_eq!(seen.client_cert_ders.len(), 1);
//!
//! // The same exchange under TLS 1.3: certificates are encrypted, so the
//! // passive observer records none — the paper's 40.86 % blind spot.
//! let seen13 = observe(&simulate_handshake(&HandshakeConfig {
//!     version: TlsVersion::Tls13,
//!     ..cfg
//! }))
//! .unwrap();
//! assert_eq!(seen13.version, Some(TlsVersion::Tls13));
//! assert!(seen13.server_cert_ders.is_empty());
//! assert!(seen13.client_cert_ders.is_empty());
//! ```

pub mod handshake;
pub mod monitor;
pub mod msgs;
pub mod stream;
pub mod wire;

pub use handshake::{simulate_handshake, Direction, HandshakeConfig, TranscriptRecord};
pub use monitor::{identity_exposure, observe, ConnectionObservation, IdentityExposure};
pub use msgs::{ClientHello, ServerHello};
pub use stream::{HandshakeAssembler, RecordDeframer, RecordReader, RecordWriter, StreamError};
pub use wire::{ContentType, RecordHeader, WireError};

pub use mtls_zeek::TlsVersion;
