//! The passive monitor: Zeek's observational model.
//!
//! Given a direction-tagged transcript, [`observe`] runs content-based
//! protocol detection and reassembles what a span-port analyzer can know:
//! the negotiated version, the SNI, the server and client certificate
//! chains (when the version leaves them in the clear), and whether the
//! handshake completed. Anything after ServerHello in a TLS 1.3 connection
//! is opaque, so certificate fields stay empty — precisely the blind spot
//! the paper quantifies.
//!
//! A capture device hands the monitor *bytes*, not records: one
//! `TranscriptRecord` may end mid-record, carry three records, or hold one
//! third of a handshake message whose remainder arrives two chunks later.
//! Observation therefore runs each direction through a
//! [`RecordDeframer`](crate::stream::RecordDeframer) and a
//! [`HandshakeAssembler`](crate::stream::HandshakeAssembler), which makes
//! the result invariant under any re-chunking that preserves per-direction
//! byte order (pinned by a property test below).

use crate::handshake::{Direction, TranscriptRecord};
use crate::msgs::{
    parse_certificate_body, ClientHello, ServerHello, HS_CERTIFICATE, HS_CERTIFICATE_REQUEST,
    HS_CLIENT_HELLO, HS_FINISHED, HS_SERVER_HELLO,
};
use crate::stream::{HandshakeAssembler, RecordDeframer};
use crate::wire::{looks_like_tls, ContentType, WireError};
use mtls_zeek::TlsVersion;

/// What a passive observer learned about one connection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnectionObservation {
    /// Negotiated version (from ServerHello, incl. supported_versions).
    pub version: Option<TlsVersion>,
    /// SNI from the ClientHello.
    pub sni: Option<String>,
    /// Server certificate chain DER blobs (leaf first). Empty under 1.3.
    pub server_cert_ders: Vec<Vec<u8>>,
    /// Client certificate chain DER blobs (leaf first). Empty under 1.3.
    pub client_cert_ders: Vec<Vec<u8>>,
    /// Whether a CertificateRequest was seen (clear-text versions only).
    pub client_cert_requested: bool,
    /// Whether the connection reached Finished/application data both ways.
    pub established: bool,
}

impl ConnectionObservation {
    /// The paper's mTLS predicate applied at observation level.
    pub fn is_mutual_tls(&self) -> bool {
        !self.server_cert_ders.is_empty() && !self.client_cert_ders.is_empty()
    }

    /// Account the cleartext-visible client-identity bytes of this
    /// observation (see [`identity_exposure`]).
    pub fn identity_exposure(&self) -> IdentityExposure {
        identity_exposure(self.version, &self.client_cert_ders)
    }
}

/// What a passive observer can learn about the *client's identity* from
/// one connection — the paper's privacy finding, quantified in bytes.
///
/// In TLS 1.2 and below the client Certificate message crosses the wire
/// unencrypted, so every field of the leaf (CN, SANs, issuer DN) and the
/// full chain are harvestable by anyone on the path. TLS 1.3 encrypts
/// the client certificate, so the exposure there is zero by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdentityExposure {
    /// Whether the client chain was visible in cleartext at all
    /// (a chain was presented under TLS ≤ 1.2).
    pub cleartext: bool,
    /// Certificates in the visible chain.
    pub chain_len: usize,
    /// Total DER bytes of the visible chain.
    pub chain_bytes: u64,
    /// Bytes of the leaf subject CN (the de-facto identity field).
    pub leaf_cn_bytes: u64,
    /// SAN entries on the leaf.
    pub san_count: u64,
    /// Display bytes of those SAN entries.
    pub san_bytes: u64,
    /// Display bytes of the leaf issuer DN.
    pub issuer_dn_bytes: u64,
}

impl IdentityExposure {
    /// The headline number: identity-bearing bytes a passive observer
    /// harvested (leaf CN + SANs + issuer DN). Zero for TLS 1.3.
    pub fn identity_bytes(&self) -> u64 {
        self.leaf_cn_bytes + self.san_bytes + self.issuer_dn_bytes
    }
}

/// Account the cleartext-visible client-identity bytes for a connection
/// that negotiated `version` and presented `client_chain` (leaf-first
/// DER blobs, as captured off the wire).
///
/// TLS 1.3 returns the zero exposure — the client Certificate flies
/// encrypted there, which is exactly the contrast the paper draws. An
/// unparseable leaf still counts its chain bytes (the observer has the
/// blobs either way) but no field-level identity bytes.
pub fn identity_exposure(
    version: Option<TlsVersion>,
    client_chain: &[Vec<u8>],
) -> IdentityExposure {
    if version == Some(TlsVersion::Tls13) || client_chain.is_empty() {
        return IdentityExposure::default();
    }
    let mut exp = IdentityExposure {
        cleartext: true,
        chain_len: client_chain.len(),
        chain_bytes: client_chain.iter().map(|der| der.len() as u64).sum(),
        ..IdentityExposure::default()
    };
    if let Ok(leaf) = mtls_x509::Certificate::from_der(&client_chain[0]) {
        exp.leaf_cn_bytes = leaf
            .subject()
            .common_name()
            .map(|cn| cn.len() as u64)
            .unwrap_or(0);
        exp.issuer_dn_bytes = leaf.issuer().to_display_string().len() as u64;
        for san in leaf.subject_alt_names() {
            exp.san_count += 1;
            exp.san_bytes += match &san {
                mtls_x509::GeneralName::Email(s)
                | mtls_x509::GeneralName::Dns(s)
                | mtls_x509::GeneralName::Uri(s) => s.len() as u64,
                mtls_x509::GeneralName::Ip(bytes) => bytes.len() as u64,
                mtls_x509::GeneralName::Other(_, bytes) => bytes.len() as u64,
            };
        }
    }
    exp
}

/// Per-direction reassembly state: the record deframer, the handshake
/// assembler stacked on top, and a dead flag once the byte stream stops
/// making sense (a monitor cannot resync a corrupt TCP stream).
#[derive(Default)]
struct DirectionState {
    deframer: RecordDeframer,
    assembler: HandshakeAssembler,
    dead: bool,
}

/// Run DPD + passive handshake parsing over a transcript.
///
/// Returns `Err(NotTls)` if the stream does not look like TLS (the DPD
/// rejection path), otherwise best-effort observation — mid-stream parse
/// errors stop analysis of that direction but keep what was already
/// extracted, matching how a real monitor degrades on truncated captures.
pub fn observe(transcript: &[TranscriptRecord]) -> Result<ConnectionObservation, WireError> {
    let first_client: Vec<u8> = transcript
        .iter()
        .filter(|r| r.direction == Direction::ClientToServer)
        .flat_map(|r| r.bytes.iter().copied())
        .collect();
    if !looks_like_tls(&first_client) {
        return Err(WireError::NotTls);
    }

    let mut obs = ConnectionObservation::default();
    let mut saw_client_activity_after_hello = false;
    let mut saw_server_finished = false;
    let mut saw_client_finished = false;
    let mut client = DirectionState::default();
    let mut server = DirectionState::default();

    for rec in transcript {
        let state = match rec.direction {
            Direction::ClientToServer => &mut client,
            Direction::ServerToClient => &mut server,
        };
        if state.dead {
            continue;
        }
        state.deframer.push(&rec.bytes);
        loop {
            let (header, payload) = match state.deframer.next_record() {
                Ok(Some(rec)) => rec,
                Ok(None) => break, // mid-record: wait for the next chunk
                Err(_) => {
                    state.dead = true; // corrupt stream: keep what we have
                    break;
                }
            };
            match header.content_type {
                ContentType::Handshake => {
                    state.assembler.push(&payload);
                    loop {
                        let (msg_type, body) = match state.assembler.next_message() {
                            Ok(Some(msg)) => msg,
                            Ok(None) => break, // message spans records: wait
                            Err(_) => {
                                state.dead = true;
                                break;
                            }
                        };
                        match (rec.direction, msg_type) {
                            (Direction::ClientToServer, HS_CLIENT_HELLO) => {
                                if let Ok(ch) = ClientHello::parse(&body) {
                                    obs.sni = ch.sni;
                                }
                            }
                            (Direction::ServerToClient, HS_SERVER_HELLO) => {
                                if let Ok(sh) = ServerHello::parse(&body) {
                                    obs.version = Some(sh.version);
                                }
                            }
                            (Direction::ServerToClient, HS_CERTIFICATE) => {
                                if let Ok(chain) = parse_certificate_body(&body) {
                                    obs.server_cert_ders = chain;
                                }
                            }
                            (Direction::ServerToClient, HS_CERTIFICATE_REQUEST) => {
                                obs.client_cert_requested = true;
                            }
                            (Direction::ClientToServer, HS_CERTIFICATE) => {
                                if let Ok(chain) = parse_certificate_body(&body) {
                                    obs.client_cert_ders = chain;
                                }
                            }
                            (Direction::ServerToClient, HS_FINISHED) => {
                                saw_server_finished = true;
                            }
                            (Direction::ClientToServer, HS_FINISHED) => {
                                saw_client_finished = true;
                            }
                            _ => {}
                        }
                    }
                }
                ContentType::ApplicationData => {
                    if rec.direction == Direction::ClientToServer {
                        saw_client_activity_after_hello = true;
                    }
                }
                ContentType::Alert | ContentType::ChangeCipherSpec => {}
            }
            if state.dead {
                break;
            }
        }
    }

    // Establishment: clear-text versions show both Finished messages;
    // TLS 1.3 shows client-direction application data after the hellos.
    obs.established = (saw_server_finished && saw_client_finished)
        || (obs.version == Some(TlsVersion::Tls13) && saw_client_activity_after_hello);
    Ok(obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::{simulate_handshake, HandshakeConfig};

    fn der(n: u8) -> Vec<u8> {
        vec![0x30, 3, n, n, n]
    }

    fn mutual_cfg(version: TlsVersion) -> HandshakeConfig {
        HandshakeConfig {
            version,
            sni: Some("portal.health.example.edu".into()),
            server_chain: vec![der(1), der(2)],
            request_client_cert: true,
            client_chain: vec![der(3), der(4)],
            established: true,
            resumed: false,
            random_seed: 99,
        }
    }

    #[test]
    fn observes_mutual_tls12() {
        let obs = observe(&simulate_handshake(&mutual_cfg(TlsVersion::Tls12))).unwrap();
        assert_eq!(obs.version, Some(TlsVersion::Tls12));
        assert_eq!(obs.sni.as_deref(), Some("portal.health.example.edu"));
        assert_eq!(obs.server_cert_ders, vec![der(1), der(2)]);
        assert_eq!(obs.client_cert_ders, vec![der(3), der(4)]);
        assert!(obs.client_cert_requested);
        assert!(obs.established);
        assert!(obs.is_mutual_tls());
    }

    #[test]
    fn tls13_is_opaque() {
        let obs = observe(&simulate_handshake(&mutual_cfg(TlsVersion::Tls13))).unwrap();
        assert_eq!(obs.version, Some(TlsVersion::Tls13));
        assert_eq!(obs.sni.as_deref(), Some("portal.health.example.edu"));
        assert!(obs.server_cert_ders.is_empty());
        assert!(obs.client_cert_ders.is_empty());
        assert!(!obs.is_mutual_tls()); // the blind spot, quantified in §3.3
        assert!(obs.established);
    }

    #[test]
    fn plain_tls_has_no_client_chain() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            server_chain: vec![der(9)],
            ..Default::default()
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        assert!(!obs.client_cert_requested);
        assert!(obs.client_cert_ders.is_empty());
        assert!(!obs.is_mutual_tls());
        assert!(obs.established);
    }

    #[test]
    fn failed_handshake_not_established() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            server_chain: vec![der(1)],
            established: false,
            ..Default::default()
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        assert!(!obs.established);
        assert_eq!(obs.server_cert_ders, vec![der(1)]);
    }

    #[test]
    fn non_tls_stream_rejected_by_dpd() {
        let fake = vec![TranscriptRecord {
            direction: Direction::ClientToServer,
            bytes: b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        }];
        assert_eq!(observe(&fake), Err(WireError::NotTls));
    }

    #[test]
    fn empty_client_cert_message_observed_as_empty() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            server_chain: vec![der(1)],
            request_client_cert: true,
            client_chain: vec![],
            ..Default::default()
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        assert!(obs.client_cert_requested);
        assert!(obs.client_cert_ders.is_empty());
        assert!(!obs.is_mutual_tls());
    }

    #[test]
    fn truncated_capture_degrades_gracefully() {
        let mut t = simulate_handshake(&mutual_cfg(TlsVersion::Tls12));
        // Cut the last record short.
        let last = t.last_mut().unwrap();
        last.bytes.truncate(3);
        let obs = observe(&t).unwrap();
        // Certificates were before the cut; they survive.
        assert!(obs.is_mutual_tls());
    }

    #[test]
    fn client_only_chain_connection() {
        // No server chain, client chain present (tunneling pattern).
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            server_chain: vec![],
            request_client_cert: true,
            client_chain: vec![der(5)],
            ..Default::default()
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        assert!(obs.server_cert_ders.is_empty());
        assert_eq!(obs.client_cert_ders, vec![der(5)]);
        assert!(!obs.is_mutual_tls());
    }

    #[test]
    fn oversized_chain_observed_across_record_fragments() {
        // The other half of the >64 KiB regression: a chain whose
        // Certificate message fragments across many records must come back
        // byte-identical through cross-record reassembly.
        let big_server = vec![vec![0xAA; 30_000], vec![0xBB; 30_000], vec![0xCC; 30_000]];
        let big_client = vec![vec![0x11; 40_000], vec![0x22; 40_000]];
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            server_chain: big_server.clone(),
            request_client_cert: true,
            client_chain: big_client.clone(),
            ..Default::default()
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        assert_eq!(obs.server_cert_ders, big_server);
        assert_eq!(obs.client_cert_ders, big_client);
        assert!(obs.established);
        assert!(obs.is_mutual_tls());
    }

    #[test]
    fn mid_stream_garbage_keeps_earlier_observation() {
        let mut t = simulate_handshake(&mutual_cfg(TlsVersion::Tls12));
        // Corrupt a server record after the certificates but keep the
        // client direction clean: server-side parsing stops, client keeps.
        let idx = t
            .iter()
            .rposition(|r| r.direction == Direction::ServerToClient)
            .unwrap();
        t[idx].bytes = vec![0xFF; 16];
        let obs = observe(&t).unwrap();
        assert_eq!(obs.server_cert_ders.len(), 2);
        assert_eq!(obs.client_cert_ders.len(), 2);
    }
}

#[cfg(test)]
mod rechunk_tests {
    use super::*;
    use crate::handshake::{simulate_handshake, HandshakeConfig};

    /// Deterministic xorshift64* for re-chunk fuzzing without a rand dep.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Split the transcript into arbitrary direction-preserving chunks:
    /// flatten each direction's bytes, then interleave randomly-sized
    /// slices of the two streams in random order.
    fn rechunk(transcript: &[TranscriptRecord], rng: &mut XorShift) -> Vec<TranscriptRecord> {
        let flat = |d: Direction| -> Vec<u8> {
            transcript
                .iter()
                .filter(|r| r.direction == d)
                .flat_map(|r| r.bytes.iter().copied())
                .collect()
        };
        let streams = [
            (Direction::ClientToServer, flat(Direction::ClientToServer)),
            (Direction::ServerToClient, flat(Direction::ServerToClient)),
        ];
        let mut pos = [0usize; 2];
        let mut out = Vec::new();
        loop {
            let live: Vec<usize> = (0..2).filter(|&i| pos[i] < streams[i].1.len()).collect();
            if live.is_empty() {
                break;
            }
            let pick = live[rng.below(live.len())];
            let remaining = streams[pick].1.len() - pos[pick];
            // Chunk sizes from 1 byte to a few records' worth.
            let take = (1 + rng.below(40_000)).min(remaining);
            out.push(TranscriptRecord {
                direction: streams[pick].0,
                bytes: streams[pick].1[pos[pick]..pos[pick] + take].to_vec(),
            });
            pos[pick] += take;
        }
        out
    }

    fn scenarios() -> Vec<HandshakeConfig> {
        let der = |n: u8, len: usize| {
            let mut v = vec![0x30, 3, n];
            v.resize(len, n);
            v
        };
        vec![
            HandshakeConfig {
                version: TlsVersion::Tls12,
                sni: Some("portal.example.edu".into()),
                server_chain: vec![der(1, 900), der(2, 1200)],
                request_client_cert: true,
                client_chain: vec![der(3, 700)],
                ..Default::default()
            },
            // The fragmentation-heavy case: chains far past one record.
            HandshakeConfig {
                version: TlsVersion::Tls12,
                server_chain: vec![der(4, 30_000), der(5, 40_000)],
                request_client_cert: true,
                client_chain: vec![der(6, 50_000)],
                ..Default::default()
            },
            HandshakeConfig {
                version: TlsVersion::Tls13,
                sni: Some("dark.example.com".into()),
                server_chain: vec![der(7, 2_000)],
                request_client_cert: true,
                client_chain: vec![der(8, 2_000)],
                ..Default::default()
            },
            HandshakeConfig {
                version: TlsVersion::Tls12,
                server_chain: vec![der(9, 500)],
                established: false,
                ..Default::default()
            },
            HandshakeConfig {
                version: TlsVersion::Tls12,
                resumed: true,
                ..Default::default()
            },
        ]
    }

    #[test]
    fn observation_invariant_under_rechunking() {
        // The satellite-2 property: for any direction-preserving re-split
        // of the byte streams — 1-byte trickles, records glued together,
        // handshake messages torn across chunks — observe() returns
        // exactly what it returned for the pristine transcript.
        let mut rng = XorShift(0x1D5E_92A7_33C4_0F6B);
        for (i, cfg) in scenarios().into_iter().enumerate() {
            let transcript = simulate_handshake(&cfg);
            let baseline = observe(&transcript).unwrap();
            for round in 0..30 {
                let chunked = rechunk(&transcript, &mut rng);
                let got = observe(&chunked).unwrap();
                assert_eq!(got, baseline, "scenario {i}, round {round}");
            }
        }
    }

    #[test]
    fn single_byte_trickle_matches_baseline() {
        // Degenerate extreme of the property: every chunk is one byte.
        let cfg = scenarios().remove(1);
        let transcript = simulate_handshake(&cfg);
        let baseline = observe(&transcript).unwrap();
        let trickled: Vec<TranscriptRecord> = transcript
            .iter()
            .flat_map(|r| {
                r.bytes.iter().map(move |b| TranscriptRecord {
                    direction: r.direction,
                    bytes: vec![*b],
                })
            })
            .collect();
        assert_eq!(observe(&trickled).unwrap(), baseline);
    }

    #[test]
    fn glued_records_match_baseline() {
        // Opposite extreme: each direction arrives as ONE giant chunk.
        for cfg in scenarios() {
            let transcript = simulate_handshake(&cfg);
            let baseline = observe(&transcript).unwrap();
            let glue = |d: Direction| TranscriptRecord {
                direction: d,
                bytes: transcript
                    .iter()
                    .filter(|r| r.direction == d)
                    .flat_map(|r| r.bytes.iter().copied())
                    .collect(),
            };
            let glued = vec![
                glue(Direction::ClientToServer),
                glue(Direction::ServerToClient),
            ];
            assert_eq!(observe(&glued).unwrap(), baseline);
        }
    }
}

#[cfg(test)]
mod resumption_tests {
    use super::*;
    use crate::handshake::{simulate_handshake, HandshakeConfig};

    #[test]
    fn resumed_sessions_show_no_certificates() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            sni: Some("cached.example.com".into()),
            server_chain: vec![vec![0x30, 1, 0]],
            request_client_cert: true,
            client_chain: vec![vec![0x30, 1, 1]],
            established: true,
            resumed: true,
            random_seed: 5,
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        assert_eq!(obs.version, Some(TlsVersion::Tls12));
        assert_eq!(obs.sni.as_deref(), Some("cached.example.com"));
        assert!(obs.server_cert_ders.is_empty(), "abbreviated handshake");
        assert!(obs.client_cert_ders.is_empty());
        assert!(!obs.client_cert_requested);
        assert!(obs.established, "Finished still flows both ways");
    }

    #[test]
    fn failed_resumption_not_established() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            resumed: true,
            established: false,
            ..Default::default()
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        assert!(!obs.established);
    }

    /// A realistic leaf (CN + SANs + issuer DN) for the exposure tests.
    fn identity_leaf() -> Vec<u8> {
        use mtls_x509::{CertificateBuilder, DistinguishedName, GeneralName};
        let key = mtls_crypto::Keypair::from_seed(b"exposure-leaf");
        CertificateBuilder::new()
            .issuer(
                DistinguishedName::builder()
                    .organization("Campus Private CA")
                    .common_name("Campus Root")
                    .build(),
            )
            .subject(
                DistinguishedName::builder()
                    .common_name("tenant-alpha")
                    .build(),
            )
            .san(vec![
                GeneralName::Dns("tenant-alpha.campus.example".into()),
                GeneralName::Email("alpha@campus.example".into()),
            ])
            .validity(
                mtls_asn1::Asn1Time::from_ymd(2022, 1, 1),
                mtls_asn1::Asn1Time::from_ymd(2023, 1, 1),
            )
            .subject_key(key.key_id())
            .sign(&key)
            .to_der()
    }

    #[test]
    fn tls12_chain_exposes_identity_bytes() {
        let leaf = identity_leaf();
        let issuer_blob = vec![0x30, 3, 9, 9, 9];
        let chain = vec![leaf.clone(), issuer_blob.clone()];
        let exp = identity_exposure(Some(TlsVersion::Tls12), &chain);
        assert!(exp.cleartext);
        assert_eq!(exp.chain_len, 2);
        assert_eq!(exp.chain_bytes, (leaf.len() + issuer_blob.len()) as u64);
        assert_eq!(exp.leaf_cn_bytes, "tenant-alpha".len() as u64);
        assert_eq!(exp.san_count, 2);
        assert_eq!(
            exp.san_bytes,
            ("tenant-alpha.campus.example".len() + "alpha@campus.example".len()) as u64
        );
        let leaf_cert = mtls_x509::Certificate::from_der(&leaf).unwrap();
        assert_eq!(
            exp.issuer_dn_bytes,
            leaf_cert.issuer().to_display_string().len() as u64
        );
        assert_eq!(
            exp.identity_bytes(),
            exp.leaf_cn_bytes + exp.san_bytes + exp.issuer_dn_bytes
        );
        assert!(exp.identity_bytes() > 0);
    }

    #[test]
    fn tls13_exposure_is_zero_by_construction() {
        let chain = vec![identity_leaf()];
        let exp = identity_exposure(Some(TlsVersion::Tls13), &chain);
        assert_eq!(exp, IdentityExposure::default());
        assert_eq!(exp.identity_bytes(), 0);
        assert!(!exp.cleartext);
    }

    #[test]
    fn empty_chain_means_no_exposure() {
        let exp = identity_exposure(Some(TlsVersion::Tls12), &[]);
        assert_eq!(exp, IdentityExposure::default());
    }

    #[test]
    fn unparseable_leaf_still_counts_chain_bytes() {
        let chain = vec![b"not der at all".to_vec()];
        let exp = identity_exposure(Some(TlsVersion::Tls11), &chain);
        assert!(exp.cleartext);
        assert_eq!(exp.chain_bytes, 14);
        assert_eq!(exp.identity_bytes(), 0, "no fields parsed");
    }

    #[test]
    fn observation_method_routes_version_and_chain() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            sni: None,
            server_chain: vec![vec![0x30, 3, 1, 1, 1]],
            request_client_cert: true,
            client_chain: vec![identity_leaf()],
            established: true,
            resumed: false,
            random_seed: 3,
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        let exp = obs.identity_exposure();
        assert!(exp.cleartext);
        assert!(exp.identity_bytes() > 0);

        let cfg13 = HandshakeConfig {
            version: TlsVersion::Tls13,
            ..cfg
        };
        let obs13 = observe(&simulate_handshake(&cfg13)).unwrap();
        assert_eq!(obs13.identity_exposure(), IdentityExposure::default());
    }
}
