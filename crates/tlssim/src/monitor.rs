//! The passive monitor: Zeek's observational model.
//!
//! Given a direction-tagged transcript, [`observe`] runs content-based
//! protocol detection and reassembles what a span-port analyzer can know:
//! the negotiated version, the SNI, the server and client certificate
//! chains (when the version leaves them in the clear), and whether the
//! handshake completed. Anything after ServerHello in a TLS 1.3 connection
//! is opaque, so certificate fields stay empty — precisely the blind spot
//! the paper quantifies.

use crate::handshake::{Direction, TranscriptRecord};
use crate::msgs::{
    parse_certificate_body, parse_envelope, ClientHello, ServerHello, HS_CERTIFICATE,
    HS_CERTIFICATE_REQUEST, HS_CLIENT_HELLO, HS_FINISHED, HS_SERVER_HELLO,
};
use crate::wire::{looks_like_tls, read_record, ContentType, WireError};
use mtls_zeek::TlsVersion;

/// What a passive observer learned about one connection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnectionObservation {
    /// Negotiated version (from ServerHello, incl. supported_versions).
    pub version: Option<TlsVersion>,
    /// SNI from the ClientHello.
    pub sni: Option<String>,
    /// Server certificate chain DER blobs (leaf first). Empty under 1.3.
    pub server_cert_ders: Vec<Vec<u8>>,
    /// Client certificate chain DER blobs (leaf first). Empty under 1.3.
    pub client_cert_ders: Vec<Vec<u8>>,
    /// Whether a CertificateRequest was seen (clear-text versions only).
    pub client_cert_requested: bool,
    /// Whether the connection reached Finished/application data both ways.
    pub established: bool,
}

impl ConnectionObservation {
    /// The paper's mTLS predicate applied at observation level.
    pub fn is_mutual_tls(&self) -> bool {
        !self.server_cert_ders.is_empty() && !self.client_cert_ders.is_empty()
    }
}

/// Run DPD + passive handshake parsing over a transcript.
///
/// Returns `Err(NotTls)` if the stream does not look like TLS (the DPD
/// rejection path), otherwise best-effort observation — mid-stream parse
/// errors terminate analysis but keep what was already extracted, matching
/// how a real monitor degrades on truncated captures.
pub fn observe(transcript: &[TranscriptRecord]) -> Result<ConnectionObservation, WireError> {
    let first_client: Vec<u8> = transcript
        .iter()
        .filter(|r| r.direction == Direction::ClientToServer)
        .flat_map(|r| r.bytes.iter().copied())
        .collect();
    if !looks_like_tls(&first_client) {
        return Err(WireError::NotTls);
    }

    let mut obs = ConnectionObservation::default();
    let mut saw_client_activity_after_hello = false;
    let mut saw_server_finished = false;
    let mut saw_client_finished = false;

    for rec in transcript {
        let mut cursor = &rec.bytes[..];
        let Ok((header, payload)) = read_record(&mut cursor) else {
            break; // truncated capture: keep what we have
        };
        match header.content_type {
            ContentType::Handshake => {
                // A record may carry several handshake messages; walk them.
                let mut hs = &payload[..];
                while !hs.is_empty() {
                    let Ok((msg_type, body)) = parse_envelope(hs) else {
                        break;
                    };
                    let consumed = 4 + body.len();
                    match (rec.direction, msg_type) {
                        (Direction::ClientToServer, HS_CLIENT_HELLO) => {
                            if let Ok(ch) = ClientHello::parse(body) {
                                obs.sni = ch.sni;
                            }
                        }
                        (Direction::ServerToClient, HS_SERVER_HELLO) => {
                            if let Ok(sh) = ServerHello::parse(body) {
                                obs.version = Some(sh.version);
                            }
                        }
                        (Direction::ServerToClient, HS_CERTIFICATE) => {
                            if let Ok(chain) = parse_certificate_body(body) {
                                obs.server_cert_ders = chain;
                            }
                        }
                        (Direction::ServerToClient, HS_CERTIFICATE_REQUEST) => {
                            obs.client_cert_requested = true;
                        }
                        (Direction::ClientToServer, HS_CERTIFICATE) => {
                            if let Ok(chain) = parse_certificate_body(body) {
                                obs.client_cert_ders = chain;
                            }
                        }
                        (Direction::ServerToClient, HS_FINISHED) => {
                            saw_server_finished = true;
                        }
                        (Direction::ClientToServer, HS_FINISHED) => {
                            saw_client_finished = true;
                        }
                        _ => {}
                    }
                    hs = &hs[consumed..];
                }
            }
            ContentType::ApplicationData => {
                if rec.direction == Direction::ClientToServer {
                    saw_client_activity_after_hello = true;
                }
            }
            ContentType::Alert | ContentType::ChangeCipherSpec => {}
        }
    }

    // Establishment: clear-text versions show both Finished messages;
    // TLS 1.3 shows client-direction application data after the hellos.
    obs.established = (saw_server_finished && saw_client_finished)
        || (obs.version == Some(TlsVersion::Tls13) && saw_client_activity_after_hello);
    Ok(obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::{simulate_handshake, HandshakeConfig};

    fn der(n: u8) -> Vec<u8> {
        vec![0x30, 3, n, n, n]
    }

    fn mutual_cfg(version: TlsVersion) -> HandshakeConfig {
        HandshakeConfig {
            version,
            sni: Some("portal.health.example.edu".into()),
            server_chain: vec![der(1), der(2)],
            request_client_cert: true,
            client_chain: vec![der(3), der(4)],
            established: true,
            resumed: false,
            random_seed: 99,
        }
    }

    #[test]
    fn observes_mutual_tls12() {
        let obs = observe(&simulate_handshake(&mutual_cfg(TlsVersion::Tls12))).unwrap();
        assert_eq!(obs.version, Some(TlsVersion::Tls12));
        assert_eq!(obs.sni.as_deref(), Some("portal.health.example.edu"));
        assert_eq!(obs.server_cert_ders, vec![der(1), der(2)]);
        assert_eq!(obs.client_cert_ders, vec![der(3), der(4)]);
        assert!(obs.client_cert_requested);
        assert!(obs.established);
        assert!(obs.is_mutual_tls());
    }

    #[test]
    fn tls13_is_opaque() {
        let obs = observe(&simulate_handshake(&mutual_cfg(TlsVersion::Tls13))).unwrap();
        assert_eq!(obs.version, Some(TlsVersion::Tls13));
        assert_eq!(obs.sni.as_deref(), Some("portal.health.example.edu"));
        assert!(obs.server_cert_ders.is_empty());
        assert!(obs.client_cert_ders.is_empty());
        assert!(!obs.is_mutual_tls()); // the blind spot, quantified in §3.3
        assert!(obs.established);
    }

    #[test]
    fn plain_tls_has_no_client_chain() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            server_chain: vec![der(9)],
            ..Default::default()
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        assert!(!obs.client_cert_requested);
        assert!(obs.client_cert_ders.is_empty());
        assert!(!obs.is_mutual_tls());
        assert!(obs.established);
    }

    #[test]
    fn failed_handshake_not_established() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            server_chain: vec![der(1)],
            established: false,
            ..Default::default()
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        assert!(!obs.established);
        assert_eq!(obs.server_cert_ders, vec![der(1)]);
    }

    #[test]
    fn non_tls_stream_rejected_by_dpd() {
        let fake = vec![TranscriptRecord {
            direction: Direction::ClientToServer,
            bytes: b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        }];
        assert_eq!(observe(&fake), Err(WireError::NotTls));
    }

    #[test]
    fn empty_client_cert_message_observed_as_empty() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            server_chain: vec![der(1)],
            request_client_cert: true,
            client_chain: vec![],
            ..Default::default()
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        assert!(obs.client_cert_requested);
        assert!(obs.client_cert_ders.is_empty());
        assert!(!obs.is_mutual_tls());
    }

    #[test]
    fn truncated_capture_degrades_gracefully() {
        let mut t = simulate_handshake(&mutual_cfg(TlsVersion::Tls12));
        // Cut the last record short.
        let last = t.last_mut().unwrap();
        last.bytes.truncate(3);
        let obs = observe(&t).unwrap();
        // Certificates were before the cut; they survive.
        assert!(obs.is_mutual_tls());
    }

    #[test]
    fn client_only_chain_connection() {
        // No server chain, client chain present (tunneling pattern).
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            server_chain: vec![],
            request_client_cert: true,
            client_chain: vec![der(5)],
            ..Default::default()
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        assert!(obs.server_cert_ders.is_empty());
        assert_eq!(obs.client_cert_ders, vec![der(5)]);
        assert!(!obs.is_mutual_tls());
    }
}

#[cfg(test)]
mod resumption_tests {
    use super::*;
    use crate::handshake::{simulate_handshake, HandshakeConfig};

    #[test]
    fn resumed_sessions_show_no_certificates() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            sni: Some("cached.example.com".into()),
            server_chain: vec![vec![0x30, 1, 0]],
            request_client_cert: true,
            client_chain: vec![vec![0x30, 1, 1]],
            established: true,
            resumed: true,
            random_seed: 5,
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        assert_eq!(obs.version, Some(TlsVersion::Tls12));
        assert_eq!(obs.sni.as_deref(), Some("cached.example.com"));
        assert!(obs.server_cert_ders.is_empty(), "abbreviated handshake");
        assert!(obs.client_cert_ders.is_empty());
        assert!(!obs.client_cert_requested);
        assert!(obs.established, "Finished still flows both ways");
    }

    #[test]
    fn failed_resumption_not_established() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            resumed: true,
            established: false,
            ..Default::default()
        };
        let obs = observe(&simulate_handshake(&cfg)).unwrap();
        assert!(!obs.established);
    }
}
