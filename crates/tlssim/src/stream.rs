//! Streaming record transport: the record layer over real byte streams.
//!
//! [`wire`](crate::wire) parses one record out of a complete in-memory
//! slice. A socket delivers bytes at arbitrary boundaries: a `read()` may
//! end mid-header, mid-payload, or hand back three records at once, and a
//! handshake message may span several records (RFC 5246 §6.2.1). This
//! module supplies the incremental layers a real transport needs:
//!
//! * [`RecordDeframer`] — push bytes in any chunking, pull complete
//!   records. Pure state machine, no I/O.
//! * [`HandshakeAssembler`] — push handshake-record payloads, pull
//!   complete `(msg_type, body)` messages, reassembling messages split
//!   across records.
//! * [`RecordReader`] / [`RecordWriter`] — the same machinery bound to
//!   `std::io` streams, used by `mtlscope serve` to terminate mutual TLS
//!   on a live `TcpStream`.
//!
//! The passive monitor's [`observe`](crate::monitor::observe) runs on the
//! same deframer + assembler, which is what makes its output invariant
//! under re-chunking of the captured bytes.

use crate::wire::{
    read_record, write_fragmented, write_record, ContentType, RecordHeader, WireError, MAX_FRAGMENT,
};
use bytes::BytesMut;
use std::io::{Read, Write};

/// Upper bound on a single reassembled handshake message. The u24 length
/// field allows 16 MiB - 1; no certificate chain is anywhere near that,
/// and the cap keeps a hostile peer from ballooning the buffer.
pub const MAX_HANDSHAKE_MESSAGE: usize = 1 << 20;

/// Error from a streaming transport: either the wire said no, or the
/// underlying I/O did.
#[derive(Debug)]
pub enum StreamError {
    /// Record- or handshake-layer rejection.
    Wire(WireError),
    /// Transport failure.
    Io(std::io::Error),
    /// The peer closed the stream mid-record or mid-message.
    UnexpectedEof,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Wire(e) => write!(f, "wire error: {e}"),
            StreamError::Io(e) => write!(f, "i/o error: {e}"),
            StreamError::UnexpectedEof => f.write_str("peer closed mid-record"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<WireError> for StreamError {
    fn from(e: WireError) -> StreamError {
        StreamError::Wire(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> StreamError {
        StreamError::Io(e)
    }
}

/// Incremental record parser: feed bytes in arbitrary chunks, pull
/// complete records. Once a hard wire error is seen the deframer stays
/// dead — TLS has no way to resynchronize a corrupt record stream.
#[derive(Debug, Default)]
pub struct RecordDeframer {
    buf: Vec<u8>,
    pos: usize,
    dead: Option<WireError>,
}

impl RecordDeframer {
    /// Fresh, empty deframer.
    pub fn new() -> RecordDeframer {
        RecordDeframer::default()
    }

    /// Append raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.dead.is_none() {
            self.compact();
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes buffered but not yet consumed as complete records.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The error that killed the stream, if any.
    pub fn error(&self) -> Option<WireError> {
        self.dead
    }

    fn compact(&mut self) {
        // Reclaim consumed prefix once it dominates the buffer.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Pull the next complete record. `Ok(None)` means "need more bytes";
    /// an error is terminal.
    pub fn next_record(&mut self) -> Result<Option<(RecordHeader, Vec<u8>)>, WireError> {
        if let Some(e) = self.dead {
            return Err(e);
        }
        let mut cursor = &self.buf[self.pos..];
        let before = cursor.len();
        match read_record(&mut cursor) {
            Ok((header, payload)) => {
                self.pos += before - cursor.len();
                Ok(Some((header, payload)))
            }
            Err(WireError::Truncated) => Ok(None),
            Err(e) => {
                self.dead = Some(e);
                Err(e)
            }
        }
    }
}

/// Incremental handshake-message reassembler: push the payloads of
/// handshake records (in stream order), pull complete
/// `(msg_type, body)` messages — even when one message spans several
/// records or one record carries several messages.
#[derive(Debug, Default)]
pub struct HandshakeAssembler {
    buf: Vec<u8>,
    pos: usize,
}

impl HandshakeAssembler {
    /// Fresh, empty assembler.
    pub fn new() -> HandshakeAssembler {
        HandshakeAssembler::default()
    }

    /// Append one handshake-record payload.
    pub fn push(&mut self, payload: &[u8]) {
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(payload);
    }

    /// Bytes buffered but not yet consumed as complete messages.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pull the next complete handshake message. `Ok(None)` means a
    /// partial message is waiting for more records.
    pub fn next_message(&mut self) -> Result<Option<(u8, Vec<u8>)>, WireError> {
        let data = &self.buf[self.pos..];
        if data.len() < 4 {
            return Ok(None);
        }
        let len = usize::from(data[1]) << 16 | usize::from(data[2]) << 8 | usize::from(data[3]);
        if len > MAX_HANDSHAKE_MESSAGE {
            return Err(WireError::BadLength);
        }
        if data.len() < 4 + len {
            return Ok(None);
        }
        let msg_type = data[0];
        let body = data[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some((msg_type, body)))
    }
}

/// Blocking record reader over any `io::Read` (a `TcpStream` in `serve`).
pub struct RecordReader<R: Read> {
    inner: R,
    deframer: RecordDeframer,
    chunk: Box<[u8; 8192]>,
    eof: bool,
}

impl<R: Read> RecordReader<R> {
    /// Wrap a byte stream.
    pub fn new(inner: R) -> RecordReader<R> {
        RecordReader {
            inner,
            deframer: RecordDeframer::new(),
            chunk: Box::new([0u8; 8192]),
            eof: false,
        }
    }

    /// Read the next record, blocking for more bytes as needed.
    /// `Ok(None)` is a clean EOF on a record boundary; EOF mid-record is
    /// [`StreamError::UnexpectedEof`].
    pub fn read_record(&mut self) -> Result<Option<(RecordHeader, Vec<u8>)>, StreamError> {
        loop {
            if let Some(rec) = self.deframer.next_record()? {
                return Ok(Some(rec));
            }
            if self.eof {
                return if self.deframer.pending() == 0 {
                    Ok(None)
                } else {
                    Err(StreamError::UnexpectedEof)
                };
            }
            match self.inner.read(&mut self.chunk[..]) {
                Ok(0) => self.eof = true,
                Ok(n) => self.deframer.push(&self.chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(StreamError::Io(e)),
            }
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }
}

/// Record writer over any `io::Write`: fragments big payloads at the 2^14
/// limit and never emits the silent-wrap corruption the old
/// `write_record` allowed.
pub struct RecordWriter<W: Write> {
    inner: W,
    version: [u8; 2],
}

impl<W: Write> RecordWriter<W> {
    /// Wrap a byte stream; `version` goes into every record header.
    pub fn new(inner: W, version: [u8; 2]) -> RecordWriter<W> {
        RecordWriter { inner, version }
    }

    /// Write one payload, fragmenting across records as needed, and flush.
    pub fn write(&mut self, ct: ContentType, payload: &[u8]) -> Result<(), StreamError> {
        let mut buf = BytesMut::with_capacity(payload.len() + 5 + payload.len() / MAX_FRAGMENT * 5);
        write_fragmented(&mut buf, ct, self.version, payload);
        self.inner.write_all(&buf)?;
        self.inner.flush()?;
        Ok(())
    }

    /// Write one payload that must fit a single record (control messages).
    pub fn write_single(&mut self, ct: ContentType, payload: &[u8]) -> Result<(), StreamError> {
        let mut buf = BytesMut::with_capacity(payload.len() + 5);
        write_record(&mut buf, ct, self.version, payload)?;
        self.inner.write_all(&buf)?;
        self.inner.flush()?;
        Ok(())
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msgs::handshake_envelope;

    fn framed(ct: ContentType, payload: &[u8]) -> Vec<u8> {
        let mut b = BytesMut::new();
        write_fragmented(&mut b, ct, [3, 3], payload);
        b.to_vec()
    }

    #[test]
    fn deframer_handles_any_chunking() {
        let mut stream = framed(ContentType::Handshake, b"abc");
        stream.extend(framed(ContentType::ApplicationData, &[9u8; 300]));
        for chunk_len in [1usize, 2, 3, 5, 7, 64, 10_000] {
            let mut d = RecordDeframer::new();
            let mut records = Vec::new();
            for chunk in stream.chunks(chunk_len) {
                d.push(chunk);
                while let Some(rec) = d.next_record().unwrap() {
                    records.push(rec);
                }
            }
            assert_eq!(records.len(), 2, "chunk_len={chunk_len}");
            assert_eq!(records[0].1, b"abc");
            assert_eq!(records[1].1, vec![9u8; 300]);
            assert_eq!(d.pending(), 0);
        }
    }

    #[test]
    fn deframer_dies_on_garbage_and_stays_dead() {
        let mut d = RecordDeframer::new();
        d.push(b"GET / HTTP/1.1\r\n");
        assert_eq!(d.next_record(), Err(WireError::NotTls));
        assert_eq!(d.next_record(), Err(WireError::NotTls));
        d.push(&framed(ContentType::Handshake, b"x"));
        assert_eq!(d.next_record(), Err(WireError::NotTls));
    }

    #[test]
    fn deframer_rejects_ssl30() {
        let mut d = RecordDeframer::new();
        d.push(&[22, 3, 0, 0, 1, 1]);
        assert_eq!(d.next_record(), Err(WireError::BadVersion));
    }

    #[test]
    fn assembler_reassembles_across_records() {
        // One 70,000-byte handshake message, fragmented across records.
        let body = vec![0xABu8; 70_000];
        let msg = handshake_envelope(11, &body);
        let stream = framed(ContentType::Handshake, &msg);
        let mut d = RecordDeframer::new();
        let mut a = HandshakeAssembler::new();
        d.push(&stream);
        let mut messages = Vec::new();
        while let Some((h, payload)) = d.next_record().unwrap() {
            assert_eq!(h.content_type, ContentType::Handshake);
            a.push(&payload);
            while let Some(m) = a.next_message().unwrap() {
                messages.push(m);
            }
        }
        assert_eq!(messages.len(), 1);
        assert_eq!(messages[0].0, 11);
        assert_eq!(messages[0].1, body);
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn assembler_handles_multiple_messages_per_record() {
        let mut payload = handshake_envelope(1, b"one");
        payload.extend(handshake_envelope(2, b"two"));
        let mut a = HandshakeAssembler::new();
        a.push(&payload);
        assert_eq!(a.next_message().unwrap(), Some((1, b"one".to_vec())));
        assert_eq!(a.next_message().unwrap(), Some((2, b"two".to_vec())));
        assert_eq!(a.next_message().unwrap(), None);
    }

    #[test]
    fn reader_writer_round_trip_over_io() {
        let mut wire = Vec::new();
        {
            let mut w = RecordWriter::new(&mut wire, [3, 3]);
            w.write(ContentType::Handshake, &vec![5u8; 40_000]).unwrap();
            w.write(ContentType::ApplicationData, b"req").unwrap();
        }
        let mut r = RecordReader::new(std::io::Cursor::new(wire));
        let mut total_hs = 0usize;
        loop {
            match r.read_record().unwrap() {
                Some((h, payload)) if h.content_type == ContentType::Handshake => {
                    assert!(payload.len() <= MAX_FRAGMENT);
                    total_hs += payload.len();
                }
                Some((h, payload)) => {
                    assert_eq!(h.content_type, ContentType::ApplicationData);
                    assert_eq!(payload, b"req");
                }
                None => break,
            }
        }
        assert_eq!(total_hs, 40_000);
    }

    #[test]
    fn reader_flags_eof_mid_record() {
        let stream = framed(ContentType::Handshake, b"hello");
        let cut = &stream[..stream.len() - 2];
        let mut r = RecordReader::new(std::io::Cursor::new(cut.to_vec()));
        assert!(matches!(r.read_record(), Err(StreamError::UnexpectedEof)));
    }

    #[test]
    fn assembler_caps_message_size() {
        // A u24 length of 0xFFFFFF is the cap; the assembler must not sit
        // buffering forever on an insane claim — it errors at the cap.
        let mut a = HandshakeAssembler::new();
        a.push(&[1, 0xFF, 0xFF, 0xFF]);
        assert_eq!(a.next_message(), Err(WireError::BadLength));
    }
}
