//! Handshake transcript simulation.
//!
//! Produces the direction-tagged record bytes a border span port would see
//! for one TLS connection. The generator is deliberately *not* a real
//! implementation of the key schedule — a passive monitor never sees inside
//! it — but every byte the monitor does inspect (record headers, hellos,
//! certificate messages, the point where 1.3 goes dark) is framed exactly
//! as on the wire.

use crate::msgs::{
    encode_certificate_body, encode_certificate_request_body, handshake_envelope, ClientHello,
    ServerHello, HS_CERTIFICATE, HS_CERTIFICATE_REQUEST, HS_CLIENT_HELLO, HS_FINISHED,
    HS_SERVER_HELLO, HS_SERVER_HELLO_DONE,
};
use crate::wire::{legacy_version_bytes, write_fragmented, ContentType};
use bytes::BytesMut;
use mtls_zeek::TlsVersion;

/// Who sent a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    ClientToServer,
    ServerToClient,
}

/// One captured record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranscriptRecord {
    pub direction: Direction,
    pub bytes: Vec<u8>,
}

/// Everything the two endpoints bring to one handshake.
#[derive(Debug, Clone)]
pub struct HandshakeConfig {
    /// Version the endpoints will settle on.
    pub version: TlsVersion,
    /// SNI the client offers (absent in a large slice of the paper's
    /// inbound mTLS traffic).
    pub sni: Option<String>,
    /// Server certificate chain, leaf first, as DER blobs. May be empty
    /// (e.g. tunneling endpoints that only take client certs).
    pub server_chain: Vec<Vec<u8>>,
    /// Whether the server sends CertificateRequest.
    pub request_client_cert: bool,
    /// Client certificate chain, leaf first. Only sent when requested.
    pub client_chain: Vec<Vec<u8>>,
    /// Whether the handshake completes (failed handshakes never reach
    /// Finished and carry no application data).
    pub established: bool,
    /// Session resumption (abbreviated handshake, RFC 5246 §7.3): the
    /// client offers a non-empty session id, the server echoes it, and *no*
    /// Certificate or CertificateRequest messages are sent — a passive
    /// monitor sees an established TLS connection with no chains on either
    /// side, even below TLS 1.3.
    pub resumed: bool,
    /// Seed for the two hello randoms (keeps transcripts deterministic).
    pub random_seed: u64,
}

impl Default for HandshakeConfig {
    fn default() -> Self {
        HandshakeConfig {
            version: TlsVersion::Tls12,
            sni: None,
            server_chain: Vec::new(),
            request_client_cert: false,
            client_chain: Vec::new(),
            established: true,
            resumed: false,
            random_seed: 0,
        }
    }
}

fn seeded_random(seed: u64, label: u8) -> [u8; 32] {
    // Cheap deterministic fill; not cryptographic, not meant to be.
    let mut out = [0u8; 32];
    let mut state = seed ^ (u64::from(label) << 56) ^ 0x9E37_79B9_7F4A_7C15;
    for chunk in out.chunks_mut(8) {
        state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(31);
        chunk.copy_from_slice(&state.to_be_bytes());
    }
    out
}

/// Generate the transcript for one connection.
pub fn simulate_handshake(cfg: &HandshakeConfig) -> Vec<TranscriptRecord> {
    let mut transcript = Vec::new();
    let legacy = legacy_version_bytes(cfg.version);
    let mut push = |direction: Direction, ct: ContentType, payload: &[u8]| {
        // A handshake message larger than 2^14 (a fat certificate chain)
        // must fragment across records — a single record would silently
        // wrap its u16 length field. RFC 5246 §6.2.1.
        let mut buf = BytesMut::with_capacity(payload.len() + 5);
        write_fragmented(&mut buf, ct, legacy, payload);
        transcript.push(TranscriptRecord {
            direction,
            bytes: buf.to_vec(),
        });
    };

    // ClientHello — always visible.
    let ch = ClientHello {
        legacy_version: cfg.version.min(TlsVersion::Tls12),
        sni: cfg.sni.clone(),
        supported_versions: if cfg.version == TlsVersion::Tls13 {
            vec![TlsVersion::Tls13, TlsVersion::Tls12]
        } else {
            Vec::new()
        },
    };
    push(
        Direction::ClientToServer,
        ContentType::Handshake,
        &handshake_envelope(
            HS_CLIENT_HELLO,
            &ch.encode(&seeded_random(cfg.random_seed, 1)),
        ),
    );

    // ServerHello — always visible.
    let sh = ServerHello {
        version: cfg.version,
    };
    push(
        Direction::ServerToClient,
        ContentType::Handshake,
        &handshake_envelope(
            HS_SERVER_HELLO,
            &sh.encode(&seeded_random(cfg.random_seed, 2)),
        ),
    );

    if cfg.resumed && cfg.version != TlsVersion::Tls13 {
        // Abbreviated handshake: straight to ChangeCipherSpec/Finished.
        if cfg.established {
            push(
                Direction::ServerToClient,
                ContentType::ChangeCipherSpec,
                &[1],
            );
            push(
                Direction::ServerToClient,
                ContentType::Handshake,
                &handshake_envelope(HS_FINISHED, &[0u8; 12]),
            );
            push(
                Direction::ClientToServer,
                ContentType::ChangeCipherSpec,
                &[1],
            );
            push(
                Direction::ClientToServer,
                ContentType::Handshake,
                &handshake_envelope(HS_FINISHED, &[0u8; 12]),
            );
            push(
                Direction::ClientToServer,
                ContentType::ApplicationData,
                &[0u8; 96],
            );
        } else {
            push(Direction::ServerToClient, ContentType::Alert, &[2, 40]);
        }
        return transcript;
    }

    if cfg.version == TlsVersion::Tls13 {
        // Everything after ServerHello is encrypted: certificates (either
        // direction) travel inside opaque application_data records. The
        // monitor sees size, not content.
        let mut blob = encode_certificate_body(&cfg.server_chain);
        if cfg.request_client_cert {
            blob.extend_from_slice(&encode_certificate_body(&cfg.client_chain));
        }
        // Pad to hide exact sizes a little, like real 1.3 stacks do.
        blob.resize(blob.len() + 64, 0);
        for chunk in blob.chunks(16 * 1024 - 1) {
            push(
                Direction::ServerToClient,
                ContentType::ApplicationData,
                chunk,
            );
        }
        if cfg.established {
            push(
                Direction::ClientToServer,
                ContentType::ApplicationData,
                &[0u8; 48],
            );
        }
        return transcript;
    }

    // TLS 1.2 and below: certificates in the clear.
    if !cfg.server_chain.is_empty() {
        push(
            Direction::ServerToClient,
            ContentType::Handshake,
            &handshake_envelope(HS_CERTIFICATE, &encode_certificate_body(&cfg.server_chain)),
        );
    }
    if cfg.request_client_cert {
        push(
            Direction::ServerToClient,
            ContentType::Handshake,
            &handshake_envelope(HS_CERTIFICATE_REQUEST, &encode_certificate_request_body()),
        );
    }
    push(
        Direction::ServerToClient,
        ContentType::Handshake,
        &handshake_envelope(HS_SERVER_HELLO_DONE, &[]),
    );
    if cfg.request_client_cert {
        // RFC 5246 §7.4.6: a client with no suitable certificate sends an
        // empty Certificate message.
        push(
            Direction::ClientToServer,
            ContentType::Handshake,
            &handshake_envelope(HS_CERTIFICATE, &encode_certificate_body(&cfg.client_chain)),
        );
    }
    if cfg.established {
        push(
            Direction::ClientToServer,
            ContentType::ChangeCipherSpec,
            &[1],
        );
        push(
            Direction::ClientToServer,
            ContentType::Handshake,
            &handshake_envelope(HS_FINISHED, &[0u8; 12]),
        );
        push(
            Direction::ServerToClient,
            ContentType::ChangeCipherSpec,
            &[1],
        );
        push(
            Direction::ServerToClient,
            ContentType::Handshake,
            &handshake_envelope(HS_FINISHED, &[0u8; 12]),
        );
        push(
            Direction::ClientToServer,
            ContentType::ApplicationData,
            &[0u8; 96],
        );
    } else {
        push(Direction::ServerToClient, ContentType::Alert, &[2, 40]); // fatal handshake_failure
    }
    transcript
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_record, ContentType};

    fn der(n: u8) -> Vec<u8> {
        vec![0x30, 3, n, n, n]
    }

    #[test]
    fn tls12_mutual_transcript_shape() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            sni: Some("x.example".into()),
            server_chain: vec![der(1), der(2)],
            request_client_cert: true,
            client_chain: vec![der(3)],
            established: true,
            resumed: false,
            random_seed: 42,
        };
        let t = simulate_handshake(&cfg);
        // CH, SH, Cert, CertReq, SHD, client Cert, CCS, Fin, CCS, Fin, AppData
        assert_eq!(t.len(), 11);
        assert_eq!(t[0].direction, Direction::ClientToServer);
        assert_eq!(t[1].direction, Direction::ServerToClient);
        // All records must parse at the record layer.
        for rec in &t {
            let mut cursor = &rec.bytes[..];
            read_record(&mut cursor).unwrap();
            assert!(cursor.is_empty());
        }
    }

    #[test]
    fn tls13_hides_certificates() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls13,
            server_chain: vec![der(1)],
            request_client_cert: true,
            client_chain: vec![der(2)],
            ..Default::default()
        };
        let t = simulate_handshake(&cfg);
        // After the two hellos, only application_data records.
        for rec in &t[2..] {
            let mut cursor = &rec.bytes[..];
            let (h, _) = read_record(&mut cursor).unwrap();
            assert_eq!(h.content_type, ContentType::ApplicationData);
        }
    }

    #[test]
    fn failed_handshake_ends_in_alert() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            server_chain: vec![der(1)],
            established: false,
            ..Default::default()
        };
        let t = simulate_handshake(&cfg);
        let last = t.last().unwrap();
        let mut cursor = &last.bytes[..];
        let (h, payload) = read_record(&mut cursor).unwrap();
        assert_eq!(h.content_type, ContentType::Alert);
        assert_eq!(payload, vec![2, 40]);
    }

    #[test]
    fn requested_but_absent_client_cert_sends_empty_message() {
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            server_chain: vec![der(1)],
            request_client_cert: true,
            client_chain: vec![],
            ..Default::default()
        };
        let t = simulate_handshake(&cfg);
        // Find the client-direction Certificate message.
        let client_cert = t
            .iter()
            .filter(|r| r.direction == Direction::ClientToServer)
            .nth(1)
            .unwrap();
        let mut cursor = &client_cert.bytes[..];
        let (_, payload) = read_record(&mut cursor).unwrap();
        let (ty, body) = crate::msgs::parse_envelope(&payload).unwrap();
        assert_eq!(ty, crate::msgs::HS_CERTIFICATE);
        assert!(crate::msgs::parse_certificate_body(body)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn oversized_chain_fragments_instead_of_wrapping() {
        // Regression: payload.len() as u16 used to wrap silently in release
        // builds, so a >64 KiB certificate chain emitted a corrupt record.
        // Mint a chain well past 65535 bytes and check every emitted record
        // parses and respects the 2^14 fragment limit.
        let big = vec![vec![0xAA; 30_000], vec![0xBB; 30_000], vec![0xCC; 30_000]];
        let cfg = HandshakeConfig {
            version: TlsVersion::Tls12,
            server_chain: big.clone(),
            request_client_cert: true,
            client_chain: big,
            ..Default::default()
        };
        let t = simulate_handshake(&cfg);
        let mut total_hs_bytes = 0usize;
        for rec in &t {
            let mut cursor = &rec.bytes[..];
            // A fragmented TranscriptRecord holds several wire records.
            while !cursor.is_empty() {
                let (h, payload) = read_record(&mut cursor).unwrap();
                assert!(payload.len() <= crate::wire::MAX_FRAGMENT);
                if h.content_type == ContentType::Handshake {
                    total_hs_bytes += payload.len();
                }
            }
        }
        // Both 90 KiB chains made it onto the wire intact.
        assert!(total_hs_bytes > 2 * 90_000, "chains truncated or wrapped");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = HandshakeConfig {
            random_seed: 7,
            ..Default::default()
        };
        assert_eq!(simulate_handshake(&cfg), simulate_handshake(&cfg));
        let cfg2 = HandshakeConfig {
            random_seed: 8,
            ..Default::default()
        };
        assert_ne!(simulate_handshake(&cfg), simulate_handshake(&cfg2));
    }
}
