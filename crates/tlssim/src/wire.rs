//! TLS record-layer framing.
//!
//! `struct { ContentType type; ProtocolVersion version; uint16 length;
//! opaque fragment[length]; }` — the five-byte header every TLS record
//! starts with, and the first thing dynamic protocol detection looks at.

use bytes::{Buf, BufMut, BytesMut};

/// RFC 5246/8446 §5.1: a record fragment carries at most 2^14 bytes.
/// [`write_record`] refuses anything larger; [`write_fragmented`] splits
/// handshake payloads across records at this boundary instead.
pub const MAX_FRAGMENT: usize = 1 << 14;

/// TLS record content types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentType {
    ChangeCipherSpec,
    Alert,
    Handshake,
    ApplicationData,
}

impl ContentType {
    /// Wire byte.
    pub fn byte(self) -> u8 {
        match self {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
        }
    }

    /// From wire byte.
    pub fn from_byte(b: u8) -> Option<ContentType> {
        match b {
            20 => Some(ContentType::ChangeCipherSpec),
            21 => Some(ContentType::Alert),
            22 => Some(ContentType::Handshake),
            23 => Some(ContentType::ApplicationData),
            _ => None,
        }
    }
}

/// Legacy record-layer version bytes. TLS 1.3 puts 0x0303 on the record
/// layer and negotiates the real version in an extension — faithfully
/// modelled because the monitor must dig into extensions to see 1.3.
pub fn legacy_version_bytes(v: mtls_zeek::TlsVersion) -> [u8; 2] {
    use mtls_zeek::TlsVersion::*;
    match v {
        Tls10 => [3, 1],
        Tls11 => [3, 2],
        Tls12 | Tls13 => [3, 3],
    }
}

/// The 2-byte version used *inside* ClientHello/ServerHello bodies and the
/// supported_versions extension.
pub fn version_bytes(v: mtls_zeek::TlsVersion) -> [u8; 2] {
    use mtls_zeek::TlsVersion::*;
    match v {
        Tls10 => [3, 1],
        Tls11 => [3, 2],
        Tls12 => [3, 3],
        Tls13 => [3, 4],
    }
}

/// Inverse of [`version_bytes`].
pub fn version_from_bytes(b: [u8; 2]) -> Option<mtls_zeek::TlsVersion> {
    use mtls_zeek::TlsVersion::*;
    match b {
        [3, 1] => Some(Tls10),
        [3, 2] => Some(Tls11),
        [3, 3] => Some(Tls12),
        [3, 4] => Some(Tls13),
        _ => None,
    }
}

/// A parsed record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    pub content_type: ContentType,
    pub version: [u8; 2],
    pub length: u16,
}

/// Errors from record-layer parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a complete record.
    Truncated,
    /// First byte is not a known content type — DPD says "not TLS".
    NotTls,
    /// Version bytes are not a plausible TLS version.
    BadVersion,
    /// A length field points beyond the available data.
    BadLength,
    /// A handshake body failed structural parsing.
    Malformed,
    /// A single-record write was asked to carry more than [`MAX_FRAGMENT`]
    /// bytes. Before this was a hard error, `payload.len() as u16` silently
    /// wrapped in release builds and emitted a corrupt record.
    Oversize,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::Truncated => "truncated TLS record",
            WireError::NotTls => "not a TLS stream",
            WireError::BadVersion => "implausible TLS version",
            WireError::BadLength => "bad length field",
            WireError::Malformed => "malformed handshake body",
            WireError::Oversize => "payload exceeds the 2^14 record limit",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

/// Frame a payload into one record. Payloads above [`MAX_FRAGMENT`] are a
/// hard error (`Oversize`): the old `payload.len() as u16` cast wrapped
/// silently in release builds for payloads over 65535 bytes, corrupting
/// every record that carried a large certificate chain. Callers with big
/// handshake payloads use [`write_fragmented`].
pub fn write_record(
    out: &mut BytesMut,
    ct: ContentType,
    version: [u8; 2],
    payload: &[u8],
) -> Result<(), WireError> {
    if payload.len() > MAX_FRAGMENT {
        return Err(WireError::Oversize);
    }
    out.put_u8(ct.byte());
    out.put_slice(&version);
    out.put_u16(payload.len() as u16);
    out.put_slice(payload);
    Ok(())
}

/// Frame a payload across as many records as the 2^14 fragment limit
/// demands (RFC 5246 §6.2.1: a handshake message may be split across
/// records). An empty payload still emits one (empty) record so the
/// message boundary stays observable.
pub fn write_fragmented(out: &mut BytesMut, ct: ContentType, version: [u8; 2], payload: &[u8]) {
    if payload.is_empty() {
        write_record(out, ct, version, payload).expect("empty fits");
        return;
    }
    for chunk in payload.chunks(MAX_FRAGMENT) {
        write_record(out, ct, version, chunk).expect("chunk fits");
    }
}

/// Read one record from the front of `buf`, advancing it. Returns the header
/// and the payload slice (copied out).
pub fn read_record(buf: &mut &[u8]) -> Result<(RecordHeader, Vec<u8>), WireError> {
    if buf.len() < 5 {
        return Err(WireError::Truncated);
    }
    let ct = ContentType::from_byte(buf[0]).ok_or(WireError::NotTls)?;
    let version = [buf[1], buf[2]];
    // [3, 0] is SSL 3.0: `version_from_bytes` cannot map it, so letting it
    // through here only deferred the rejection to a confusing place.
    if version[0] != 3 || version[1] == 0 || version[1] > 4 {
        return Err(WireError::BadVersion);
    }
    let length = u16::from_be_bytes([buf[3], buf[4]]) as usize;
    if buf.len() < 5 + length {
        return Err(WireError::Truncated);
    }
    let payload = buf[5..5 + length].to_vec();
    buf.advance(5 + length);
    Ok((
        RecordHeader {
            content_type: ct,
            version,
            length: length as u16,
        },
        payload,
    ))
}

/// Content-based protocol detection: does this byte stream *look like* TLS?
/// (Zeek's DPD analogue — checks structure, not the port.) Requires a
/// syntactically valid handshake record carrying a ClientHello (0x01) or
/// ServerHello (0x02) first byte.
pub fn looks_like_tls(stream: &[u8]) -> bool {
    let mut cursor = stream;
    match read_record(&mut cursor) {
        Ok((h, payload)) => {
            h.content_type == ContentType::Handshake && matches!(payload.first(), Some(1) | Some(2))
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtls_zeek::TlsVersion;

    #[test]
    fn record_round_trip() {
        let mut buf = BytesMut::new();
        write_record(&mut buf, ContentType::Handshake, [3, 3], b"hello").unwrap();
        let bytes = buf.freeze();
        let mut cursor = &bytes[..];
        let (h, payload) = read_record(&mut cursor).unwrap();
        assert_eq!(h.content_type, ContentType::Handshake);
        assert_eq!(h.version, [3, 3]);
        assert_eq!(payload, b"hello");
        assert!(cursor.is_empty());
    }

    #[test]
    fn truncated_detected() {
        let mut buf = BytesMut::new();
        write_record(&mut buf, ContentType::Handshake, [3, 3], b"hello").unwrap();
        let bytes = buf.freeze();
        let mut cursor = &bytes[..bytes.len() - 1];
        assert_eq!(read_record(&mut cursor), Err(WireError::Truncated));
    }

    #[test]
    fn non_tls_detected() {
        let http = b"GET / HTTP/1.1\r\nHost: example.org\r\n\r\n";
        let mut cursor = &http[..];
        assert_eq!(read_record(&mut cursor), Err(WireError::NotTls));
        assert!(!looks_like_tls(http));
    }

    #[test]
    fn ssh_banner_is_not_tls() {
        assert!(!looks_like_tls(b"SSH-2.0-OpenSSH_9.3\r\n"));
    }

    #[test]
    fn dpd_requires_hello() {
        // A handshake record whose first payload byte is not 1/2.
        let mut buf = BytesMut::new();
        write_record(&mut buf, ContentType::Handshake, [3, 3], &[11, 0, 0, 0]).unwrap();
        assert!(!looks_like_tls(&buf));
        let mut buf2 = BytesMut::new();
        write_record(&mut buf2, ContentType::Handshake, [3, 3], &[1, 0, 0, 0]).unwrap();
        assert!(looks_like_tls(&buf2));
    }

    #[test]
    fn version_byte_mappings() {
        for v in [
            TlsVersion::Tls10,
            TlsVersion::Tls11,
            TlsVersion::Tls12,
            TlsVersion::Tls13,
        ] {
            assert_eq!(version_from_bytes(version_bytes(v)), Some(v));
        }
        // 1.3 hides behind the 1.2 legacy bytes on the record layer.
        assert_eq!(legacy_version_bytes(TlsVersion::Tls13), [3, 3]);
        assert_eq!(version_from_bytes([9, 9]), None);
    }

    #[test]
    fn bad_version_rejected() {
        let raw = [22u8, 9, 9, 0, 1, 0];
        let mut cursor = &raw[..];
        assert_eq!(read_record(&mut cursor), Err(WireError::BadVersion));
    }

    #[test]
    fn ssl30_record_version_rejected() {
        // [3, 0] is SSL 3.0 — version_from_bytes cannot map it, so the
        // record layer must reject it up front instead of passing it on.
        let raw = [22u8, 3, 0, 0, 1, 1];
        let mut cursor = &raw[..];
        assert_eq!(read_record(&mut cursor), Err(WireError::BadVersion));
        assert!(!looks_like_tls(&raw));
    }

    #[test]
    fn oversized_single_record_write_is_hard_error() {
        // The old code's `payload.len() as u16` wrapped for > 65535 bytes
        // in release builds; both that case and 2^14..=65535 must error.
        let mut buf = BytesMut::new();
        for len in [MAX_FRAGMENT + 1, 70_000] {
            let payload = vec![0u8; len];
            assert_eq!(
                write_record(&mut buf, ContentType::Handshake, [3, 3], &payload),
                Err(WireError::Oversize)
            );
            assert!(buf.is_empty(), "failed write must emit nothing");
        }
        let payload = vec![7u8; MAX_FRAGMENT];
        write_record(&mut buf, ContentType::Handshake, [3, 3], &payload).unwrap();
        let mut cursor = &buf[..];
        let (h, got) = read_record(&mut cursor).unwrap();
        assert_eq!(h.length as usize, MAX_FRAGMENT);
        assert_eq!(got, payload);
    }

    #[test]
    fn fragmented_write_splits_at_record_limit() {
        let payload: Vec<u8> = (0..70_000u32).map(|i| i as u8).collect();
        let mut buf = BytesMut::new();
        write_fragmented(&mut buf, ContentType::Handshake, [3, 3], &payload);
        let mut cursor = &buf[..];
        let mut reassembled = Vec::new();
        let mut records = 0;
        while !cursor.is_empty() {
            let (h, chunk) = read_record(&mut cursor).unwrap();
            assert_eq!(h.content_type, ContentType::Handshake);
            assert!(chunk.len() <= MAX_FRAGMENT);
            reassembled.extend_from_slice(&chunk);
            records += 1;
        }
        assert_eq!(records, 70_000usize.div_ceil(MAX_FRAGMENT));
        assert_eq!(reassembled, payload);
    }

    #[test]
    fn fragmented_empty_payload_emits_one_record() {
        let mut buf = BytesMut::new();
        write_fragmented(&mut buf, ContentType::Handshake, [3, 3], &[]);
        let mut cursor = &buf[..];
        let (h, payload) = read_record(&mut cursor).unwrap();
        assert_eq!(h.length, 0);
        assert!(payload.is_empty() && cursor.is_empty());
    }
}
