//! TLS record-layer framing.
//!
//! `struct { ContentType type; ProtocolVersion version; uint16 length;
//! opaque fragment[length]; }` — the five-byte header every TLS record
//! starts with, and the first thing dynamic protocol detection looks at.

use bytes::{Buf, BufMut, BytesMut};

/// TLS record content types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentType {
    ChangeCipherSpec,
    Alert,
    Handshake,
    ApplicationData,
}

impl ContentType {
    /// Wire byte.
    pub fn byte(self) -> u8 {
        match self {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
        }
    }

    /// From wire byte.
    pub fn from_byte(b: u8) -> Option<ContentType> {
        match b {
            20 => Some(ContentType::ChangeCipherSpec),
            21 => Some(ContentType::Alert),
            22 => Some(ContentType::Handshake),
            23 => Some(ContentType::ApplicationData),
            _ => None,
        }
    }
}

/// Legacy record-layer version bytes. TLS 1.3 puts 0x0303 on the record
/// layer and negotiates the real version in an extension — faithfully
/// modelled because the monitor must dig into extensions to see 1.3.
pub fn legacy_version_bytes(v: mtls_zeek::TlsVersion) -> [u8; 2] {
    use mtls_zeek::TlsVersion::*;
    match v {
        Tls10 => [3, 1],
        Tls11 => [3, 2],
        Tls12 | Tls13 => [3, 3],
    }
}

/// The 2-byte version used *inside* ClientHello/ServerHello bodies and the
/// supported_versions extension.
pub fn version_bytes(v: mtls_zeek::TlsVersion) -> [u8; 2] {
    use mtls_zeek::TlsVersion::*;
    match v {
        Tls10 => [3, 1],
        Tls11 => [3, 2],
        Tls12 => [3, 3],
        Tls13 => [3, 4],
    }
}

/// Inverse of [`version_bytes`].
pub fn version_from_bytes(b: [u8; 2]) -> Option<mtls_zeek::TlsVersion> {
    use mtls_zeek::TlsVersion::*;
    match b {
        [3, 1] => Some(Tls10),
        [3, 2] => Some(Tls11),
        [3, 3] => Some(Tls12),
        [3, 4] => Some(Tls13),
        _ => None,
    }
}

/// A parsed record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    pub content_type: ContentType,
    pub version: [u8; 2],
    pub length: u16,
}

/// Errors from record-layer parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a complete record.
    Truncated,
    /// First byte is not a known content type — DPD says "not TLS".
    NotTls,
    /// Version bytes are not a plausible TLS version.
    BadVersion,
    /// A length field points beyond the available data.
    BadLength,
    /// A handshake body failed structural parsing.
    Malformed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::Truncated => "truncated TLS record",
            WireError::NotTls => "not a TLS stream",
            WireError::BadVersion => "implausible TLS version",
            WireError::BadLength => "bad length field",
            WireError::Malformed => "malformed handshake body",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

/// Frame a payload into one record.
pub fn write_record(out: &mut BytesMut, ct: ContentType, version: [u8; 2], payload: &[u8]) {
    debug_assert!(payload.len() <= u16::MAX as usize);
    out.put_u8(ct.byte());
    out.put_slice(&version);
    out.put_u16(payload.len() as u16);
    out.put_slice(payload);
}

/// Read one record from the front of `buf`, advancing it. Returns the header
/// and the payload slice (copied out).
pub fn read_record(buf: &mut &[u8]) -> Result<(RecordHeader, Vec<u8>), WireError> {
    if buf.len() < 5 {
        return Err(WireError::Truncated);
    }
    let ct = ContentType::from_byte(buf[0]).ok_or(WireError::NotTls)?;
    let version = [buf[1], buf[2]];
    if version[0] != 3 || version[1] > 4 {
        return Err(WireError::BadVersion);
    }
    let length = u16::from_be_bytes([buf[3], buf[4]]) as usize;
    if buf.len() < 5 + length {
        return Err(WireError::Truncated);
    }
    let payload = buf[5..5 + length].to_vec();
    buf.advance(5 + length);
    Ok((
        RecordHeader {
            content_type: ct,
            version,
            length: length as u16,
        },
        payload,
    ))
}

/// Content-based protocol detection: does this byte stream *look like* TLS?
/// (Zeek's DPD analogue — checks structure, not the port.) Requires a
/// syntactically valid handshake record carrying a ClientHello (0x01) or
/// ServerHello (0x02) first byte.
pub fn looks_like_tls(stream: &[u8]) -> bool {
    let mut cursor = stream;
    match read_record(&mut cursor) {
        Ok((h, payload)) => {
            h.content_type == ContentType::Handshake && matches!(payload.first(), Some(1) | Some(2))
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtls_zeek::TlsVersion;

    #[test]
    fn record_round_trip() {
        let mut buf = BytesMut::new();
        write_record(&mut buf, ContentType::Handshake, [3, 3], b"hello");
        let bytes = buf.freeze();
        let mut cursor = &bytes[..];
        let (h, payload) = read_record(&mut cursor).unwrap();
        assert_eq!(h.content_type, ContentType::Handshake);
        assert_eq!(h.version, [3, 3]);
        assert_eq!(payload, b"hello");
        assert!(cursor.is_empty());
    }

    #[test]
    fn truncated_detected() {
        let mut buf = BytesMut::new();
        write_record(&mut buf, ContentType::Handshake, [3, 3], b"hello");
        let bytes = buf.freeze();
        let mut cursor = &bytes[..bytes.len() - 1];
        assert_eq!(read_record(&mut cursor), Err(WireError::Truncated));
    }

    #[test]
    fn non_tls_detected() {
        let http = b"GET / HTTP/1.1\r\nHost: example.org\r\n\r\n";
        let mut cursor = &http[..];
        assert_eq!(read_record(&mut cursor), Err(WireError::NotTls));
        assert!(!looks_like_tls(http));
    }

    #[test]
    fn ssh_banner_is_not_tls() {
        assert!(!looks_like_tls(b"SSH-2.0-OpenSSH_9.3\r\n"));
    }

    #[test]
    fn dpd_requires_hello() {
        // A handshake record whose first payload byte is not 1/2.
        let mut buf = BytesMut::new();
        write_record(&mut buf, ContentType::Handshake, [3, 3], &[11, 0, 0, 0]);
        assert!(!looks_like_tls(&buf));
        let mut buf2 = BytesMut::new();
        write_record(&mut buf2, ContentType::Handshake, [3, 3], &[1, 0, 0, 0]);
        assert!(looks_like_tls(&buf2));
    }

    #[test]
    fn version_byte_mappings() {
        for v in [
            TlsVersion::Tls10,
            TlsVersion::Tls11,
            TlsVersion::Tls12,
            TlsVersion::Tls13,
        ] {
            assert_eq!(version_from_bytes(version_bytes(v)), Some(v));
        }
        // 1.3 hides behind the 1.2 legacy bytes on the record layer.
        assert_eq!(legacy_version_bytes(TlsVersion::Tls13), [3, 3]);
        assert_eq!(version_from_bytes([9, 9]), None);
    }

    #[test]
    fn bad_version_rejected() {
        let raw = [22u8, 9, 9, 0, 1, 0];
        let mut cursor = &raw[..];
        assert_eq!(read_record(&mut cursor), Err(WireError::BadVersion));
    }
}
