//! Handshake message encoding/decoding — the subset a passive monitor reads.

use crate::wire::{version_bytes, version_from_bytes, WireError};
use bytes::{BufMut, BytesMut};
use mtls_zeek::TlsVersion;

/// Handshake message types.
pub const HS_CLIENT_HELLO: u8 = 1;
pub const HS_SERVER_HELLO: u8 = 2;
pub const HS_CERTIFICATE: u8 = 11;
pub const HS_CERTIFICATE_REQUEST: u8 = 13;
pub const HS_SERVER_HELLO_DONE: u8 = 14;
pub const HS_FINISHED: u8 = 20;

/// Extension numbers.
pub const EXT_SNI: u16 = 0;
pub const EXT_SUPPORTED_VERSIONS: u16 = 43;

/// Wrap a handshake body in the `msg_type | uint24 length | body` envelope.
pub fn handshake_envelope(msg_type: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 4);
    out.push(msg_type);
    let len = body.len() as u32;
    out.extend_from_slice(&len.to_be_bytes()[1..]);
    out.extend_from_slice(body);
    out
}

/// Split a handshake envelope into `(msg_type, body)`.
pub fn parse_envelope(data: &[u8]) -> Result<(u8, &[u8]), WireError> {
    if data.len() < 4 {
        return Err(WireError::Truncated);
    }
    let len = usize::from(data[1]) << 16 | usize::from(data[2]) << 8 | usize::from(data[3]);
    if data.len() < 4 + len {
        return Err(WireError::Truncated);
    }
    Ok((data[0], &data[4..4 + len]))
}

/// A ClientHello as the monitor sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// Highest version offered in the legacy field.
    pub legacy_version: TlsVersion,
    /// SNI host_name, if the extension is present.
    pub sni: Option<String>,
    /// Versions listed in supported_versions (empty when absent).
    pub supported_versions: Vec<TlsVersion>,
}

impl ClientHello {
    /// Encode the body (inside the handshake envelope).
    pub fn encode(&self, random: &[u8; 32]) -> Vec<u8> {
        let mut b = BytesMut::with_capacity(128);
        b.put_slice(&version_bytes(self.legacy_version.min(TlsVersion::Tls12)));
        b.put_slice(random);
        b.put_u8(0); // session_id length
                     // One plausible cipher suite pair keeps real parsers happy.
        b.put_u16(2);
        b.put_u16(0xC02F); // ECDHE-RSA-AES128-GCM-SHA256
        b.put_u8(1); // compression methods length
        b.put_u8(0); // null compression

        let mut exts = BytesMut::new();
        if let Some(sni) = &self.sni {
            let name = sni.as_bytes();
            let mut ext = BytesMut::with_capacity(name.len() + 5);
            ext.put_u16((name.len() + 3) as u16); // server_name_list length
            ext.put_u8(0); // name_type host_name
            ext.put_u16(name.len() as u16);
            ext.put_slice(name);
            exts.put_u16(EXT_SNI);
            exts.put_u16(ext.len() as u16);
            exts.put_slice(&ext);
        }
        if !self.supported_versions.is_empty() {
            let mut ext = BytesMut::new();
            ext.put_u8((self.supported_versions.len() * 2) as u8);
            for v in &self.supported_versions {
                ext.put_slice(&version_bytes(*v));
            }
            exts.put_u16(EXT_SUPPORTED_VERSIONS);
            exts.put_u16(ext.len() as u16);
            exts.put_slice(&ext);
        }
        b.put_u16(exts.len() as u16);
        b.put_slice(&exts);
        b.to_vec()
    }

    /// Parse a ClientHello body.
    pub fn parse(body: &[u8]) -> Result<ClientHello, WireError> {
        let mut c = Cursor::new(body);
        let legacy = c.take(2)?;
        let legacy_version =
            version_from_bytes([legacy[0], legacy[1]]).ok_or(WireError::BadVersion)?;
        c.skip(32)?; // random
        let sid_len = usize::from(c.u8()?);
        c.skip(sid_len)?;
        let cs_len = usize::from(c.u16()?);
        c.skip(cs_len)?;
        let comp_len = usize::from(c.u8()?);
        c.skip(comp_len)?;

        let mut sni = None;
        let mut supported_versions = Vec::new();
        if !c.done() {
            let ext_total = usize::from(c.u16()?);
            let exts = c.take(ext_total)?;
            let mut e = Cursor::new(exts);
            while !e.done() {
                let ty = e.u16()?;
                let len = usize::from(e.u16()?);
                let data = e.take(len)?;
                match ty {
                    EXT_SNI => {
                        let mut s = Cursor::new(data);
                        let _list_len = s.u16()?;
                        let _name_type = s.u8()?;
                        let nlen = usize::from(s.u16()?);
                        let name = s.take(nlen)?;
                        sni = Some(
                            String::from_utf8(name.to_vec()).map_err(|_| WireError::Malformed)?,
                        );
                    }
                    EXT_SUPPORTED_VERSIONS => {
                        let mut s = Cursor::new(data);
                        let vlen = usize::from(s.u8()?);
                        let list = s.take(vlen)?;
                        for pair in list.chunks_exact(2) {
                            if let Some(v) = version_from_bytes([pair[0], pair[1]]) {
                                supported_versions.push(v);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(ClientHello {
            legacy_version,
            sni,
            supported_versions,
        })
    }
}

/// A ServerHello as the monitor sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// The negotiated version: from supported_versions when present (1.3),
    /// else the legacy field.
    pub version: TlsVersion,
}

impl ServerHello {
    /// Encode the body.
    pub fn encode(&self, random: &[u8; 32]) -> Vec<u8> {
        let mut b = BytesMut::with_capacity(80);
        b.put_slice(&version_bytes(self.version.min(TlsVersion::Tls12)));
        b.put_slice(random);
        b.put_u8(0); // session_id
        b.put_u16(0xC02F);
        b.put_u8(0); // compression
        let mut exts = BytesMut::new();
        if self.version == TlsVersion::Tls13 {
            exts.put_u16(EXT_SUPPORTED_VERSIONS);
            exts.put_u16(2);
            exts.put_slice(&version_bytes(TlsVersion::Tls13));
        }
        b.put_u16(exts.len() as u16);
        b.put_slice(&exts);
        b.to_vec()
    }

    /// Parse a ServerHello body.
    pub fn parse(body: &[u8]) -> Result<ServerHello, WireError> {
        let mut c = Cursor::new(body);
        let legacy = c.take(2)?;
        let mut version =
            version_from_bytes([legacy[0], legacy[1]]).ok_or(WireError::BadVersion)?;
        c.skip(32)?;
        let sid_len = usize::from(c.u8()?);
        c.skip(sid_len)?;
        c.skip(2)?; // cipher suite
        c.skip(1)?; // compression
        if !c.done() {
            let ext_total = usize::from(c.u16()?);
            let exts = c.take(ext_total)?;
            let mut e = Cursor::new(exts);
            while !e.done() {
                let ty = e.u16()?;
                let len = usize::from(e.u16()?);
                let data = e.take(len)?;
                if ty == EXT_SUPPORTED_VERSIONS && data.len() == 2 {
                    if let Some(v) = version_from_bytes([data[0], data[1]]) {
                        version = v;
                    }
                }
            }
        }
        Ok(ServerHello { version })
    }
}

/// Encode a Certificate message body: `uint24 total | (uint24 len | DER)*`.
pub fn encode_certificate_body(chain: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = chain.iter().map(|c| c.len() + 3).sum();
    let mut out = Vec::with_capacity(total + 3);
    out.extend_from_slice(&(total as u32).to_be_bytes()[1..]);
    for cert in chain {
        out.extend_from_slice(&(cert.len() as u32).to_be_bytes()[1..]);
        out.extend_from_slice(cert);
    }
    out
}

/// Parse a Certificate message body into DER blobs.
pub fn parse_certificate_body(body: &[u8]) -> Result<Vec<Vec<u8>>, WireError> {
    let mut c = Cursor::new(body);
    let total = c.u24()?;
    let list = c.take(total)?;
    let mut l = Cursor::new(list);
    let mut chain = Vec::new();
    while !l.done() {
        let len = l.u24()?;
        chain.push(l.take(len)?.to_vec());
    }
    Ok(chain)
}

/// Minimal CertificateRequest body (certificate_types + empty DN list).
pub fn encode_certificate_request_body() -> Vec<u8> {
    vec![
        1, 1, // one certificate type: rsa_sign
        0, 0, // supported_signature_algorithms length (omitted semantics)
        0, 0, // certificate_authorities length
    ]
}

/// Byte cursor with explicit errors (no panics on malformed input).
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    fn done(&self) -> bool {
        self.pos >= self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.data.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn skip(&mut self, n: usize) -> Result<(), WireError> {
        self.take(n).map(|_| ())
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u24(&mut self) -> Result<usize, WireError> {
        let b = self.take(3)?;
        Ok(usize::from(b[0]) << 16 | usize::from(b[1]) << 8 | usize::from(b[2]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_hello_round_trip_with_sni() {
        let ch = ClientHello {
            legacy_version: TlsVersion::Tls12,
            sni: Some("www.example.org".into()),
            supported_versions: vec![],
        };
        let body = ch.encode(&[7u8; 32]);
        assert_eq!(ClientHello::parse(&body).unwrap(), ch);
    }

    #[test]
    fn client_hello_round_trip_tls13() {
        let ch = ClientHello {
            legacy_version: TlsVersion::Tls12,
            sni: None,
            supported_versions: vec![TlsVersion::Tls13, TlsVersion::Tls12],
        };
        let body = ch.encode(&[0u8; 32]);
        assert_eq!(ClientHello::parse(&body).unwrap(), ch);
    }

    #[test]
    fn server_hello_negotiates_13_via_extension() {
        let sh = ServerHello {
            version: TlsVersion::Tls13,
        };
        let body = sh.encode(&[1u8; 32]);
        // Legacy field says 1.2; extension upgrades to 1.3.
        assert_eq!(&body[..2], &[3, 3]);
        assert_eq!(
            ServerHello::parse(&body).unwrap().version,
            TlsVersion::Tls13
        );
    }

    #[test]
    fn server_hello_plain_12() {
        let sh = ServerHello {
            version: TlsVersion::Tls12,
        };
        let body = sh.encode(&[1u8; 32]);
        assert_eq!(
            ServerHello::parse(&body).unwrap().version,
            TlsVersion::Tls12
        );
    }

    #[test]
    fn certificate_body_round_trip() {
        let chain = vec![vec![1u8, 2, 3], vec![4u8; 300], vec![]];
        let body = encode_certificate_body(&chain);
        assert_eq!(parse_certificate_body(&body).unwrap(), chain);
    }

    #[test]
    fn empty_certificate_body() {
        let body = encode_certificate_body(&[]);
        assert!(parse_certificate_body(&body).unwrap().is_empty());
    }

    #[test]
    fn envelope_round_trip() {
        let env = handshake_envelope(HS_CERTIFICATE, b"payload");
        let (ty, body) = parse_envelope(&env).unwrap();
        assert_eq!(ty, HS_CERTIFICATE);
        assert_eq!(body, b"payload");
    }

    #[test]
    fn truncated_envelope_rejected() {
        let env = handshake_envelope(HS_FINISHED, b"123456");
        assert_eq!(parse_envelope(&env[..5]), Err(WireError::Truncated));
        assert_eq!(parse_envelope(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn malformed_hellos_do_not_panic() {
        for len in 0..40 {
            let junk = vec![0xAAu8; len];
            let _ = ClientHello::parse(&junk);
            let _ = ServerHello::parse(&junk);
            let _ = parse_certificate_body(&junk);
        }
    }
}
