//! Shared fixtures for the benchmark suite: one corpus, built once, reused
//! by every per-experiment bench so Criterion measures analysis cost, not
//! generation cost.

use mtls_core::corpus::MetaKnowledge;
use mtls_core::Corpus;
use mtls_intern::Interner;
use mtls_netsim::{generate, SimConfig, SimOutput};
use std::sync::OnceLock;

/// The benchmark corpus scale (≈ 13 k connections, ≈ 5 k certificates).
pub const BENCH_SCALE: f64 = 0.05;

/// The simulator output, generated once.
pub fn sim_output() -> &'static SimOutput {
    static CELL: OnceLock<SimOutput> = OnceLock::new();
    CELL.get_or_init(|| {
        generate(&SimConfig {
            seed: 0xBEEF,
            scale: BENCH_SCALE,
            ..Default::default()
        })
    })
}

/// The built corpus (interception filter applied), built once.
pub fn corpus() -> &'static Corpus {
    static CELL: OnceLock<Corpus> = OnceLock::new();
    CELL.get_or_init(|| {
        let sim = sim_output();
        let meta = MetaKnowledge::from_sim(&sim.meta);
        let mut interner = Interner::with_capacity(sim.x509.len());
        let (excluded, issuers) = mtls_core::pipeline::interception::filter(
            &sim.ssl,
            &sim.x509,
            &sim.ct,
            &meta,
            &mut interner,
        );
        Corpus::build(
            sim.ssl.clone(),
            sim.x509.clone(),
            meta,
            &excluded,
            issuers,
            interner,
        )
    })
}

/// An unfiltered corpus build (for the ablation benches).
pub fn build_corpus_unfiltered() -> Corpus {
    let sim = sim_output();
    Corpus::build(
        sim.ssl.clone(),
        sim.x509.clone(),
        MetaKnowledge::from_sim(&sim.meta),
        &Default::default(),
        vec![],
        Interner::new(),
    )
}
