//! Hot-path throughput smoke: stable medians for the byte-level fast
//! paths (SWAR TSV scanning, block-batched SHA-256, table-driven hex, the
//! columnar analyzer scan) plus end-to-end ingest and a worker-scaling
//! sweep, written as JSON for `ci/check_bench.py` to gate.
//!
//! Every fast path is measured against its in-tree reference twin in the
//! same process (SWAR vs scalar module, one-shot vs streaming SHA, column
//! vs row scan), so the *ratios* are meaningful even on a noisy box; the
//! absolute MB/s only gate when the committed baseline was captured on a
//! machine with the same core count.
//!
//! Usage: `cargo run --release -p mtls-bench --bin perf_smoke [--quick] [OUT.json]`

use mtls_bench::{corpus, sim_output};
use mtls_core::columns::conn_flag;
use mtls_core::ingest::load_dir_obs;
use mtls_core::{build_corpus_obs, Direction, IngestMode};
use mtls_crypto::{hex, sha256, sha256_batch, sha256_x4, Sha256};
use mtls_obs::Obs;
use mtls_zeek::{read_monthly_pool, swar, write_ssl_log};
use std::hint::black_box;
use std::time::Instant;

struct Rounds {
    warmup: usize,
    measured: usize,
}

const FULL: Rounds = Rounds {
    warmup: 3,
    measured: 15,
};
const QUICK: Rounds = Rounds {
    warmup: 1,
    measured: 5,
};

/// Median wall micros of `rounds.measured` runs of `f`.
fn median_micros(rounds: &Rounds, mut f: impl FnMut()) -> u64 {
    for _ in 0..rounds.warmup {
        f();
    }
    let mut times = Vec::with_capacity(rounds.measured);
    for _ in 0..rounds.measured {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_micros() as u64);
    }
    times.sort_unstable();
    times[times.len() / 2]
}

fn mb_per_s(bytes_per_run: usize, micros: u64) -> f64 {
    bytes_per_run as f64 / micros.max(1) as f64
}

fn ratio(fast: f64, slow: f64) -> f64 {
    if slow <= 0.0 {
        0.0
    } else {
        fast / slow
    }
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_speed.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other => out_path = other.to_string(),
        }
    }
    let rounds = if quick { QUICK } else { FULL };
    let cpu_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // ---- fixture: a real serialized ssl.log shard (authentic delimiter
    // density) and the shared bench corpus.
    let sim = sim_output();
    let mut tsv_buf = Vec::new();
    write_ssl_log(&mut tsv_buf, sim.ssl.iter()).expect("write to vec");
    let tsv = &tsv_buf[..];
    let corpus = corpus();

    // ---- SWAR vs scalar scanning over the shard bytes.
    let scan_iters = if quick { 4 } else { 16 };
    let scan_bytes = tsv.len() * scan_iters;
    let swar_count = median_micros(&rounds, || {
        for _ in 0..scan_iters {
            black_box(swar::count_byte(black_box(tsv), b'\n'));
        }
    });
    let scalar_count = median_micros(&rounds, || {
        for _ in 0..scan_iters {
            black_box(swar::scalar::count_byte(black_box(tsv), b'\n'));
        }
    });
    let swar_split = median_micros(&rounds, || {
        for _ in 0..scan_iters {
            let mut n = 0usize;
            for part in swar::split_byte(black_box(tsv), b'\t') {
                n = n.wrapping_add(part.len());
            }
            black_box(n);
        }
    });
    let scalar_split = median_micros(&rounds, || {
        for _ in 0..scan_iters {
            let mut n = 0usize;
            for part in black_box(tsv).split(|&b| b == b'\t') {
                n = n.wrapping_add(part.len());
            }
            black_box(n);
        }
    });

    // ---- SHA-256: one-shot vs streaming (the pre-rewrite path shape) vs
    // 4-way batch, on certificate-blob-sized messages.
    let blob = vec![0xA5u8; 4096];
    let sha_iters = if quick { 64 } else { 256 };
    let sha_bytes = blob.len() * sha_iters;
    let sha_oneshot = median_micros(&rounds, || {
        for _ in 0..sha_iters {
            black_box(sha256(black_box(&blob)));
        }
    });
    let sha_streaming = median_micros(&rounds, || {
        for _ in 0..sha_iters {
            let mut h = Sha256::new();
            // The seed's one-shot was update()+finalize() through the
            // partial-block buffer; 64-byte feeding makes the buffer copy
            // visible the way parsing-loop callers hit it.
            for chunk in black_box(&blob).chunks(64) {
                h.update(chunk);
            }
            black_box(h.finalize());
        }
    });
    let quads: Vec<&[u8]> = (0..4).map(|_| blob.as_slice()).collect();
    let sha_batch = median_micros(&rounds, || {
        for _ in 0..sha_iters / 4 {
            black_box(sha256_batch(black_box(&quads)));
        }
    });
    let sha_x4 = median_micros(&rounds, || {
        for _ in 0..sha_iters / 4 {
            black_box(sha256_x4([black_box(&blob), &blob, &blob, &blob]));
        }
    });

    // ---- hex encode/decode.
    let raw: Vec<u8> = (0..1 << 18).map(|i| (i * 131) as u8).collect();
    let encoded = hex::encode(&raw);
    let hex_encode = median_micros(&rounds, || {
        black_box(hex::encode(black_box(&raw)));
    });
    let hex_decode = median_micros(&rounds, || {
        black_box(hex::decode(black_box(&encoded)).expect("valid hex"));
    });

    // ---- columnar vs row analyzer scan (the Table 2 inner loop shape):
    // count live mTLS inbound connections and fold their ports.
    let scan_rounds = if quick { 8 } else { 32 };
    let columnar_scan = median_micros(&rounds, || {
        for _ in 0..scan_rounds {
            let cols = &corpus.conn_cols;
            let mut acc = 0u64;
            for ((&flags, &dir), &port) in cols.flags.iter().zip(&cols.direction).zip(&cols.resp_p)
            {
                if flags & (conn_flag::EXCLUDED | conn_flag::MTLS) == conn_flag::MTLS
                    && dir == Direction::Inbound
                {
                    acc = acc.wrapping_add(port as u64);
                }
            }
            black_box(acc);
        }
    });
    let row_scan = median_micros(&rounds, || {
        for _ in 0..scan_rounds {
            let mut acc = 0u64;
            for conn in &corpus.conns {
                if !conn.excluded && conn.mtls && conn.direction == Direction::Inbound {
                    acc = acc.wrapping_add(conn.rec.resp_p as u64);
                }
            }
            black_box(acc);
        }
    });

    // ---- end-to-end ingest + parse component + worker scaling over the
    // rotated fixture directory.
    let dir = std::env::temp_dir().join(format!("mtlscope-perf-smoke-{}", std::process::id()));
    sim.write_to_dir_rotated(&dir)
        .expect("write rotated fixture");
    let ingest_e2e = median_micros(&rounds, || {
        let (inputs, diag) =
            load_dir_obs(&dir, IngestMode::Strict, &Obs::noop(), None).expect("ingest");
        let corpus = build_corpus_obs(inputs, &Obs::noop(), None);
        black_box((corpus.certs.len(), diag.stats.rows_parsed));
    });
    let parse_component = median_micros(&rounds, || {
        let (ssl, x509, stats) =
            read_monthly_pool(&dir, IngestMode::Strict, 1).expect("read shards");
        black_box((ssl.len(), x509.len(), stats.rows_parsed));
    });
    let mut scaling = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let t = median_micros(&rounds, || {
            let out = read_monthly_pool(&dir, IngestMode::Strict, workers).expect("read shards");
            black_box((out.0.len(), out.1.len()));
        });
        scaling.push((workers, t));
    }
    std::fs::remove_dir_all(&dir).ok();

    // ---- report.
    let scan_speedup_count = ratio(scalar_count as f64, swar_count as f64);
    let scan_speedup_split = ratio(scalar_split as f64, swar_split as f64);
    let sha_speedup_oneshot = ratio(sha_streaming as f64, sha_oneshot as f64);
    let sha_speedup_batch = ratio(sha_oneshot as f64, sha_batch as f64);
    let sha_speedup_x4 = ratio(sha_oneshot as f64, sha_x4 as f64);
    let columnar_speedup = ratio(row_scan as f64, columnar_scan as f64);
    let scaling_json = scaling
        .iter()
        .map(|(w, t)| {
            format!(
                "{{\"workers\": {w}, \"median_ms\": {:.2}}}",
                *t as f64 / 1000.0
            )
        })
        .collect::<Vec<_>>()
        .join(", ");

    let json = format!(
        "{{\n  \"bench\": \"crates/bench/src/bin/perf_smoke.rs\",\n  \
         \"command\": \"cargo run --release -p mtls-bench --bin perf_smoke\",\n  \
         \"quick\": {quick},\n  \
         \"environment\": {{\"cpu_cores\": {cpu_cores}, \"variance_note\": \"this box shows +/-10-40% run-to-run noise; ci/check_bench.py gates medians with a matching noise band and only when cpu_cores matches\"}},\n  \
         \"rounds\": {{\"warmup\": {}, \"measured\": {}}},\n  \
         \"scan_mb_per_s\": {{\n    \
         \"swar_count_newlines\": {:.1},\n    \
         \"scalar_count_newlines\": {:.1},\n    \
         \"swar_split_tabs\": {:.1},\n    \
         \"scalar_split_tabs\": {:.1},\n    \
         \"speedup_count\": {scan_speedup_count:.2},\n    \
         \"speedup_split\": {scan_speedup_split:.2}\n  }},\n  \
         \"sha256_mb_per_s\": {{\n    \
         \"oneshot\": {:.1},\n    \
         \"streaming_64b_chunks\": {:.1},\n    \
         \"batch_dispatch\": {:.1},\n    \
         \"interleaved_x4\": {:.1},\n    \
         \"oneshot_speedup_vs_streaming\": {sha_speedup_oneshot:.2},\n    \
         \"batch_speedup_vs_oneshot\": {sha_speedup_batch:.2},\n    \
         \"x4_speedup_vs_oneshot\": {sha_speedup_x4:.2}\n  }},\n  \
         \"hex_mb_per_s\": {{\"encode\": {:.1}, \"decode\": {:.1}}},\n  \
         \"analyzer_scan_us\": {{\n    \
         \"columnar_ports_fold\": {columnar_scan},\n    \
         \"row_ports_fold\": {row_scan},\n    \
         \"columnar_speedup\": {columnar_speedup:.2}\n  }},\n  \
         \"ingest_ms\": {{\n    \
         \"end_to_end_median\": {:.2},\n    \
         \"parse_component_median\": {:.2}\n  }},\n  \
         \"worker_scaling\": [{scaling_json}],\n  \
         \"note\": \"MB/s medians of {} rounds. Reference twins run in-process: scalar_* is the byte-at-a-time module the SWAR scanners must match bit-for-bit, streaming SHA is the partial-block-buffer path, row scan strides ConnInfo structs. interleaved_x4 is the 4-lane variant measured explicitly; on baseline x86-64 LLVM keeps the lanes scalar so batch_dispatch falls back to the one-shot loop there (it only routes quads through x4 when the build targets AVX2). Worker scaling is shard-level; on a 1-core box all worker counts collapse to the serial path.\"\n}}\n",
        rounds.warmup,
        rounds.measured,
        mb_per_s(scan_bytes, swar_count),
        mb_per_s(scan_bytes, scalar_count),
        mb_per_s(scan_bytes, swar_split),
        mb_per_s(scan_bytes, scalar_split),
        mb_per_s(sha_bytes, sha_oneshot),
        mb_per_s(sha_bytes, sha_streaming),
        mb_per_s(sha_bytes, sha_batch),
        mb_per_s(sha_bytes, sha_x4),
        mb_per_s(raw.len(), hex_encode),
        mb_per_s(encoded.len(), hex_decode),
        ingest_e2e as f64 / 1000.0,
        parse_component as f64 / 1000.0,
        rounds.measured,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_speed.json");
    println!(
        "perf smoke: swar-count x{scan_speedup_count:.2}, swar-split x{scan_speedup_split:.2}, \
         sha-oneshot x{sha_speedup_oneshot:.2}, columnar x{columnar_speedup:.2}, \
         ingest {:.1}ms",
        ingest_e2e as f64 / 1000.0
    );
    println!("written to {out_path}");
}
