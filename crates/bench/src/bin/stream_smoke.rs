//! Streaming-ingest smoke: proves the PR-7 acceptance claims at scale and
//! regenerates the `streaming` + `worker_scaling` sections of
//! `BENCH_ingest.json` (gated by `ci/check_bench.py --ingest`).
//!
//! Four claims, each measured in its own *child process* so every arm
//! reports a clean per-process peak RSS (`VmHWM` is a high-water mark; a
//! shared process would smear the batch arm's peak over the streaming
//! arms):
//!
//! 1. **Identity** — full-window streaming produces a byte-identical
//!    report to the batch build on the same rotated fixture (sha256 of
//!    `PipelineOutput::render_all`).
//! 2. **Bounded memory** — with `--window 1mo` the builder's peak
//!    retained-heap estimate stays ≤ 2× the largest single month's
//!    footprint (deterministic, environment-independent), and the
//!    process peak RSS stays ≤ 2× the RSS of a batch run over the
//!    largest single month (the paper-scale "1-month footprint").
//! 3. **Scale** — the fixture is generated at ≥ 10× the committed bench
//!    fixture's scale (`--quick`: 10×, full: 100×).
//! 4. **Worker scaling** — the `read_monthly_pool` sweep stays regression-
//!    gated (absolute medians compared only on matching `cpu_cores`).
//!
//! Usage: `stream_smoke [--quick] [OUT_JSON]` (default
//! `bench-ingest-fresh.json`). Children are invoked internally as
//! `stream_smoke --phase <gen|batch|stream-full|stream-window> DIR [ARG]`.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use mtls_core::{
    load_dir_obs, run_pipeline_parallel_obs, run_pipeline_streamed_parallel_obs, IngestMode,
    StreamOptions,
};
use mtls_crypto::{hex, sha256};
use mtls_netsim::{generate, SimConfig};
use mtls_obs::{read_self_rss, Obs};

/// Scale of the committed `BENCH_ingest.json` fixture; the smoke runs at
/// a multiple of this (claim 3).
const FIXTURE_SCALE: f64 = 0.05;
const SEED: u64 = 11;

struct Rounds {
    warmup: usize,
    measured: usize,
}

const FULL: Rounds = Rounds {
    warmup: 2,
    measured: 5,
};
const QUICK: Rounds = Rounds {
    warmup: 1,
    measured: 3,
};

fn median_micros(rounds: &Rounds, mut f: impl FnMut()) -> u64 {
    for _ in 0..rounds.warmup {
        f();
    }
    let mut samples: Vec<u64> = (0..rounds.measured)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_micros() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn peak_rss_bytes() -> u64 {
    read_self_rss().map(|s| s.peak_rss_bytes).unwrap_or(0)
}

fn report_sha(report: &str) -> String {
    hex::encode(&sha256(report.as_bytes()))
}

// ---------------------------------------------------------------------
// Child phases. Each prints exactly one `RESULT {...}` line on stdout.
// ---------------------------------------------------------------------

fn phase_gen(dir: &Path, scale: f64) {
    let cfg = SimConfig {
        seed: SEED,
        scale,
        ..SimConfig::default()
    };
    let out = generate(&cfg);
    let (ssl_rows, x509_rows) = (out.ssl.len(), out.x509.len());
    out.write_to_dir_rotated(dir).expect("write fixture");
    let bytes: u64 = std::fs::read_dir(dir)
        .expect("read fixture dir")
        .filter_map(|e| e.ok()?.metadata().ok())
        .map(|m| m.len())
        .sum();
    println!("RESULT {{\"ssl_rows\":{ssl_rows},\"x509_rows\":{x509_rows},\"bytes\":{bytes}}}");
}

fn phase_batch(dir: &Path) {
    let obs = Obs::noop();
    let t = Instant::now();
    let (inputs, _diag) = load_dir_obs(dir, IngestMode::Strict, &obs, None).expect("batch load");
    let out = run_pipeline_parallel_obs(inputs, &obs, None);
    let wall_ms = t.elapsed().as_millis();
    let sha = report_sha(&out.render_all());
    println!(
        "RESULT {{\"wall_ms\":{wall_ms},\"peak_rss_bytes\":{},\"report_sha\":\"{sha}\"}}",
        peak_rss_bytes()
    );
}

fn phase_stream(dir: &Path, window: Option<usize>) {
    let obs = Obs::noop();
    let opts = StreamOptions {
        window_months: window,
    };
    let t = Instant::now();
    let (parts, ct, gossip, _diag) =
        mtls_core::load_dir_streaming_obs(dir, IngestMode::Strict, opts, &obs, None)
            .expect("streaming load");
    let summary = parts.summary.clone();
    let out = run_pipeline_streamed_parallel_obs(parts, &ct, &gossip, &obs, None);
    let wall_ms = t.elapsed().as_millis();
    let sha = report_sha(&out.render_all());
    println!(
        "RESULT {{\"wall_ms\":{wall_ms},\"peak_rss_bytes\":{},\"report_sha\":\"{sha}\",\
         \"peak_footprint_bytes\":{},\"max_epoch_footprint_bytes\":{},\
         \"epochs_pushed\":{},\"epochs_retired\":{}}}",
        peak_rss_bytes(),
        summary.peak_footprint_bytes,
        summary.max_epoch_footprint_bytes,
        summary.epochs_pushed,
        summary.epochs_retired,
    );
}

// ---------------------------------------------------------------------
// Parent: orchestrate phases, sweep workers, assemble the JSON.
// ---------------------------------------------------------------------

fn run_phase(exe: &Path, args: &[&str]) -> String {
    let out = Command::new(exe)
        .arg("--phase")
        .args(args)
        .output()
        .expect("spawn phase");
    if !out.status.success() {
        eprintln!("{}", String::from_utf8_lossy(&out.stderr));
        panic!("phase {args:?} failed: {}", out.status);
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("RESULT "))
        .unwrap_or_else(|| panic!("phase {args:?} printed no RESULT line"))
        .to_string()
}

/// Minimal field extraction from the flat one-line JSON the phases print.
fn ju64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let rest = &json[json
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {json}"))
        + pat.len()..];
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {key} in {json}"))
}

fn jstr<'a>(json: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":\"");
    let start = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {json}"))
        + pat.len();
    let end = json[start..].find('"').expect("unterminated string") + start;
    &json[start..end]
}

/// Copy the largest month's shards (by ssl shard size) plus the meta
/// sidecars into a sibling dir — the "1-month footprint" reference.
fn build_one_month_dir(fixture: &Path) -> (PathBuf, String) {
    let mut best: Option<(String, u64)> = None;
    for entry in std::fs::read_dir(fixture).expect("read fixture dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(month) = name
            .strip_prefix("ssl.")
            .and_then(|n| n.strip_suffix(".log"))
        {
            let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
            if best.as_ref().is_none_or(|(_, l)| len > *l) {
                best = Some((month.to_string(), len));
            }
        }
    }
    let (month, _) = best.expect("no monthly ssl shards in fixture");
    let dir = fixture.with_file_name(format!(
        "{}-month1",
        fixture.file_name().unwrap().to_string_lossy()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create month dir");
    for name in [
        format!("ssl.{month}.log"),
        format!("x509.{month}.log"),
        "meta.tsv".to_string(),
        "ct.log".to_string(),
    ] {
        let src = fixture.join(&name);
        if src.exists() {
            std::fs::copy(&src, dir.join(&name)).expect("copy shard");
        }
    }
    (dir, month)
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        f64::NAN
    } else {
        num as f64 / den as f64
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    // Child dispatch.
    if args.get(1).map(String::as_str) == Some("--phase") {
        let phase = args.get(2).expect("--phase needs a name").as_str();
        let dir = PathBuf::from(args.get(3).expect("--phase needs DIR"));
        match phase {
            "gen" => phase_gen(&dir, args[4].parse().expect("bad scale")),
            "batch" => phase_batch(&dir),
            "stream-full" => phase_stream(&dir, None),
            "stream-window" => phase_stream(&dir, Some(args[4].parse().expect("bad window"))),
            other => panic!("unknown phase {other}"),
        }
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "bench-ingest-fresh.json".to_string());
    let rounds = if quick { QUICK } else { FULL };
    let scale_factor: f64 = if quick { 10.0 } else { 100.0 };
    let scale = FIXTURE_SCALE * scale_factor;
    let cpu_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let exe = std::env::current_exe().expect("current_exe");

    let fixture = std::env::temp_dir().join(format!(
        "mtls_stream_smoke_{}x",
        scale_factor.round() as u64
    ));
    let _ = std::fs::remove_dir_all(&fixture);
    std::fs::create_dir_all(&fixture).expect("create fixture dir");
    let fixture_str = fixture.to_string_lossy().into_owned();

    eprintln!("stream_smoke: generating fixture at scale {scale} ({scale_factor}x bench fixture)");
    let gen = run_phase(&exe, &["gen", &fixture_str, &scale.to_string()]);
    let (one_month_dir, largest_month) = build_one_month_dir(&fixture);
    let one_month_str = one_month_dir.to_string_lossy().into_owned();

    eprintln!("stream_smoke: batch arm");
    let batch = run_phase(&exe, &["batch", &fixture_str]);
    eprintln!("stream_smoke: stream-full arm");
    let sfull = run_phase(&exe, &["stream-full", &fixture_str]);
    eprintln!("stream_smoke: stream-window arm (--window 1mo)");
    let swin = run_phase(&exe, &["stream-window", &fixture_str, "1"]);
    eprintln!("stream_smoke: 1-month reference arm ({largest_month})");
    let month1 = run_phase(&exe, &["batch", &one_month_str]);

    let identical = jstr(&batch, "report_sha") == jstr(&sfull, "report_sha");
    let footprint_ratio = ratio(
        ju64(&swin, "peak_footprint_bytes"),
        ju64(&swin, "max_epoch_footprint_bytes"),
    );
    let rss_ratio = ratio(
        ju64(&swin, "peak_rss_bytes"),
        ju64(&month1, "peak_rss_bytes"),
    );
    let batch_over_windowed = ratio(
        ju64(&batch, "peak_rss_bytes"),
        ju64(&swin, "peak_rss_bytes"),
    );

    eprintln!("stream_smoke: worker-scaling sweep (read_monthly_pool)");
    let mut points = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let micros = median_micros(&rounds, || {
            let parsed = mtls_zeek::read_monthly_pool(&fixture, IngestMode::Strict, workers)
                .expect("pool read");
            std::hint::black_box(&parsed);
        });
        points.push(format!(
            "      {{ \"workers\": {workers}, \"median_ms\": {:.2} }}",
            micros as f64 / 1000.0
        ));
    }

    let json = format!(
        r#"{{
  "bench": "stream_smoke",
  "command": "cargo run --release -p mtls-bench --bin stream_smoke -- {mode_flag}{out_path}",
  "fixture": {{
    "layout": "rotated (ssl.YYYY-MM.log / x509.YYYY-MM.log + meta.tsv + ct.log)",
    "seed": {SEED},
    "scale": {scale},
    "scale_factor_vs_bench_fixture": {scale_factor},
    "ssl_rows": {ssl_rows},
    "x509_rows": {x509_rows},
    "size_bytes": {bytes}
  }},
  "environment": {{
    "cpu_cores": {cpu_cores},
    "note": "peak RSS is per-process VmHWM; each arm runs in its own child process",
    "variance_note": "footprint ratios are deterministic; RSS and wall times vary with the host"
  }},
  "streaming": {{
    "months": {months},
    "largest_month": "{largest_month}",
    "report_identity": {{
      "batch_sha256": "{batch_sha}",
      "stream_full_sha256": "{stream_sha}",
      "identical": {identical}
    }},
    "footprint": {{
      "windowed_peak_bytes": {win_peak_fp},
      "max_epoch_bytes": {max_epoch_fp},
      "ratio_peak_over_max_epoch": {footprint_ratio:.4},
      "full_stream_peak_bytes": {full_peak_fp}
    }},
    "rss": {{
      "batch_full_bytes": {batch_rss},
      "stream_full_bytes": {sfull_rss},
      "windowed_bytes": {swin_rss},
      "one_month_bytes": {month1_rss},
      "ratio_windowed_over_one_month": {rss_ratio:.4},
      "ratio_batch_over_windowed": {batch_over_windowed:.4}
    }},
    "wall_ms": {{
      "batch": {batch_wall},
      "stream_full": {sfull_wall},
      "stream_windowed": {swin_wall}
    }},
    "windowed_epochs_retired": {retired}
  }},
  "worker_scaling": {{
    "cpu_cores": {cpu_cores},
    "points": [
{points}
    ]
  }}
}}
"#,
        mode_flag = if quick { "--quick " } else { "" },
        ssl_rows = ju64(&gen, "ssl_rows"),
        x509_rows = ju64(&gen, "x509_rows"),
        bytes = ju64(&gen, "bytes"),
        months = ju64(&sfull, "epochs_pushed"),
        batch_sha = jstr(&batch, "report_sha"),
        stream_sha = jstr(&sfull, "report_sha"),
        win_peak_fp = ju64(&swin, "peak_footprint_bytes"),
        max_epoch_fp = ju64(&swin, "max_epoch_footprint_bytes"),
        full_peak_fp = ju64(&sfull, "peak_footprint_bytes"),
        batch_rss = ju64(&batch, "peak_rss_bytes"),
        sfull_rss = ju64(&sfull, "peak_rss_bytes"),
        swin_rss = ju64(&swin, "peak_rss_bytes"),
        month1_rss = ju64(&month1, "peak_rss_bytes"),
        batch_wall = ju64(&batch, "wall_ms"),
        sfull_wall = ju64(&sfull, "wall_ms"),
        swin_wall = ju64(&swin, "wall_ms"),
        retired = ju64(&swin, "epochs_retired"),
        points = points.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench json");

    println!(
        "stream_smoke: scale {scale_factor}x | identical={identical} | \
         footprint peak/max-epoch {footprint_ratio:.2}x | \
         rss windowed/one-month {rss_ratio:.2}x | batch/windowed rss {batch_over_windowed:.2}x | \
         wrote {out_path}"
    );
    assert!(identical, "streaming report diverged from batch");
}
