//! Observability overhead guard: measures the cost of running the ingest →
//! corpus hot path with a live [`Obs`] handle (spans + batched counters +
//! histograms) against the same path through the no-op handle, and writes
//! the result to `BENCH_obs.json`.
//!
//! Each measured round runs the arms ABBA (plain, instrumented,
//! instrumented, plain) in one process and the guard is judged on the
//! *median of the per-round paired differences* — back-to-back passes share
//! their machine state, so common-mode drift (scheduler, cache, CI
//! neighbors) cancels out of each difference, and the ABBA order cancels
//! drift that is linear within a round. Min-of-N for both arms is recorded
//! alongside. Exits non-zero when the overhead exceeds the budget
//! (`OBS_OVERHEAD_MAX_PCT`, default 3%), which is what CI enforces.
//!
//! Usage: `cargo run --release -p mtls-bench --bin obs_overhead [OUT.json]`

use mtls_bench::sim_output;
use mtls_core::ingest::load_dir_obs;
use mtls_core::{build_corpus_obs, IngestMode};
use mtls_obs::Obs;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

const WARMUP_ROUNDS: usize = 3;
const MEASURED_ROUNDS: usize = 31;
const DEFAULT_MAX_PCT: f64 = 3.0;

/// One full pass of the guarded hot path: rotated-directory ingest plus
/// corpus build, all through `obs` (a no-op handle makes this the
/// uninstrumented arm). Returns wall micros.
fn one_pass(dir: &Path, obs: &Obs) -> u64 {
    let t0 = Instant::now();
    let (inputs, diag) = load_dir_obs(dir, IngestMode::Strict, obs, None).expect("ingest");
    let corpus = build_corpus_obs(inputs, obs, None);
    black_box((corpus.certs.len(), diag.stats.rows_parsed));
    t0.elapsed().as_micros() as u64
}

fn median(sorted: &[u64]) -> u64 {
    sorted[sorted.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_obs.json".to_string());
    let max_pct: f64 = std::env::var("OBS_OVERHEAD_MAX_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_PCT);

    let dir = std::env::temp_dir().join(format!("mtlscope-obs-overhead-{}", std::process::id()));
    sim_output()
        .write_to_dir_rotated(&dir)
        .expect("write rotated fixture");

    for _ in 0..WARMUP_ROUNDS {
        one_pass(&dir, &Obs::noop());
        one_pass(&dir, &Obs::new());
    }
    let mut plain = Vec::with_capacity(MEASURED_ROUNDS);
    let mut instrumented = Vec::with_capacity(MEASURED_ROUNDS);
    for _ in 0..MEASURED_ROUNDS {
        // ABBA within the round: averaging the outer pair against the inner
        // pair cancels any drift that is linear across the four passes.
        let a1 = one_pass(&dir, &Obs::noop());
        let b1 = one_pass(&dir, &Obs::new());
        let b2 = one_pass(&dir, &Obs::new());
        let a2 = one_pass(&dir, &Obs::noop());
        plain.push((a1 + a2) / 2);
        instrumented.push((b1 + b2) / 2);
    }
    std::fs::remove_dir_all(&dir).ok();

    // Per-round paired differences: the asserted metric. Each difference is
    // taken between passes that ran back to back in one ABBA round, so
    // machine-wide noise largely cancels; the median of the differences
    // rejects the outliers that remain.
    let mut diffs: Vec<i64> = plain
        .iter()
        .zip(&instrumented)
        .map(|(&p, &i)| i as i64 - p as i64)
        .collect();
    diffs.sort_unstable();
    let median_diff_micros = diffs[diffs.len() / 2];

    plain.sort_unstable();
    instrumented.sort_unstable();
    let (plain_min, instr_min) = (plain[0], instrumented[0]);
    let min_overhead_pct = 100.0 * (instr_min as f64 - plain_min as f64) / plain_min as f64;
    let overhead_pct = 100.0 * median_diff_micros as f64 / median(&plain) as f64;
    let passed = overhead_pct < max_pct;

    let json = format!(
        "{{\n  \"bench\": \"crates/bench/src/bin/obs_overhead.rs\",\n  \
         \"command\": \"cargo run --release -p mtls-bench --bin obs_overhead\",\n  \
         \"path\": \"load_dir_obs (rotated 23-month dir, strict) -> build_corpus_obs\",\n  \
         \"arms\": {{\n    \
         \"uninstrumented\": \"Obs::noop() — every obs call short-circuits\",\n    \
         \"instrumented\": \"Obs::new() — live span tree, counters, histograms\"\n  }},\n  \
         \"rounds\": {{\"warmup\": {WARMUP_ROUNDS}, \"measured\": {MEASURED_ROUNDS}, \
         \"interleaved\": true}},\n  \
         \"uninstrumented_micros\": {{\"min\": {plain_min}, \"median\": {}}},\n  \
         \"instrumented_micros\": {{\"min\": {instr_min}, \"median\": {}}},\n  \
         \"median_paired_diff_micros\": {median_diff_micros},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \
         \"overhead_pct_of_min\": {min_overhead_pct:.3},\n  \
         \"budget_pct\": {max_pct},\n  \
         \"passed\": {passed},\n  \
         \"note\": \"overhead_pct is the asserted metric: median of per-round back-to-back differences over the median baseline, which cancels machine-wide drift. Instrumentation batches one counter add and one histogram record per shard, never per row, so the true cost is microseconds on a ~50ms pass.\"\n}}\n",
        median(&plain),
        median(&instrumented),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_obs.json");
    println!(
        "obs overhead: {overhead_pct:.3}% of {:.1}ms baseline (budget {max_pct}%) -> {}",
        plain_min as f64 / 1000.0,
        if passed { "ok" } else { "OVER BUDGET" },
    );
    println!("written to {out_path}");
    if !passed {
        std::process::exit(1);
    }
}
