//! Serve smoke: starts the demo `mtlscope serve` deployment in-process,
//! proves the acceptance claims of the serve issues, and regenerates
//! `BENCH_serve.json` (gated by `ci/check_bench.py --serve`).
//!
//! Claims measured:
//!
//! 1. **Identity** — a verdict served over mutual TLS is byte-identical
//!    to the offline pipeline's verdict for the same input, for all
//!    three shapes: a DER blob, a Zeek x509 shard, and a malformed blob
//!    (the parse-error verdict).
//! 2. **Quota** — a low-quota tenant sees `RESP_THROTTLED` once its
//!    bucket drains; a fresh tenant is unaffected.
//! 3. **Throughput** — pooled keep-alive bench threads sustain ≥ 10k
//!    req/s on the ping round trip (the record-layer + framing floor)
//!    and report the verdict-workload rate alongside, with per-kind
//!    `p99_us` latencies.
//! 4. **Rejection** — the expired demo chain is refused at the door
//!    with a fatal alert, not served.
//! 5. **Taxonomy** — the four planted failures (expired chain, rogue-CA
//!    "unknown tenant", oversize frame, throttle) land in exactly the
//!    expected per-cause counter vector, byte-identical across two
//!    independent runs.
//! 6. **Observed overhead** — the full telemetry layer (taxonomy
//!    counters, latency histograms, flight recorder, privacy meter)
//!    costs < 3% req/s versus the uninstrumented server, judged ABBA on
//!    the median of per-round paired differences.
//! 7. **Metrics frame** — an ops-class tenant pulls the live snapshot
//!    over the same mTLS channel (`REQ_METRICS`), the snapshot shows
//!    nonzero cleartext identity exposure for the TLS 1.2 deployment,
//!    and a non-ops tenant is refused.
//!
//! Usage: `serve_smoke [--quick] [OUT_JSON]` (default
//! `bench-serve-fresh.json`; the metrics-frame snapshot lands next to it
//! as `bench-serve-metrics.json`).

use mtls_core::verdict::{cert_verdict_der, shard_verdict};
use mtls_obs::Obs;
use mtls_serve::bench::{run_bench, BenchConfig, BenchReport};
use mtls_serve::client::{ClientPool, ClientSession, Response};
use mtls_serve::demo::{demo_server_config, demo_verdict_context, demo_world, DemoWorld};
use mtls_serve::server::{Server, DEFAULT_FLIGHT_CAPACITY};
use mtls_serve::tls::EndpointConfig;

fn clone_endpoint(e: &EndpointConfig) -> EndpointConfig {
    EndpointConfig {
        version: e.version,
        chain: e.chain.clone(),
        random_seed: e.random_seed,
    }
}

fn latency_json(r: &BenchReport) -> String {
    format!(
        "{{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        r.latency.p50, r.latency.p90, r.latency.p99, r.latency.max
    )
}

/// Render a counter list the way the planted-vector claim compares it:
/// one sorted JSON object, no whitespace variance.
fn counter_vector_json(counters: &[(String, u64)]) -> String {
    let mut out = String::from("{");
    for (i, (name, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{name}\": {v}"));
    }
    out.push('}');
    out
}

/// Claim 5: drive the four planted failures against a fresh low-quota
/// deployment and return the resulting counter vector as canonical JSON.
fn planted_counter_vector(world: &DemoWorld) -> String {
    let obs = Obs::new();
    let cfg = demo_server_config(world, "127.0.0.1:0", 2, 1, obs.clone());
    let server = Server::start(cfg).expect("bind planted-failure server");
    let addr = server.local_addr().to_string();

    // Planted failure 1: expired chain → authz.err.chain.expired.
    assert!(
        ClientSession::connect(&addr, &world.expired_endpoint, None).is_err(),
        "expired chain must be refused"
    );
    // Planted failure 2: rogue CA ("unknown tenant") — the chain's
    // issuer key is not registered, so signature verification fails.
    assert!(
        ClientSession::connect(&addr, &world.rogue_endpoint, None).is_err(),
        "rogue chain must be refused"
    );
    // Planted failure 3: oversize frame, refused at the header without
    // taking a quota token.
    let mut c = ClientSession::connect(&addr, &world.tenant_endpoint, None)
        .expect("tenant connect (oversize probe)");
    c.send_oversize_header().expect("send oversize header");
    assert!(c.expect_close(), "oversize frame must close the connection");
    drop(c);
    // Planted failure 4: throttle — the 1/s bucket covers one DER
    // verdict, not two back-to-back.
    let mut c = ClientSession::connect(&addr, &world.tenant_endpoint, None)
        .expect("tenant connect (throttle)");
    assert!(matches!(
        c.request_der(&world.sample_der).unwrap(),
        Response::Verdict(_)
    ));
    assert!(matches!(
        c.request_der(&world.sample_der).unwrap(),
        Response::Throttled
    ));
    drop(c);
    server.shutdown();

    counter_vector_json(&obs.snapshot().counters)
}

/// The exact vector claim 5 expects — derived from the scenario, with
/// the privacy byte count computed from the demo tenant chain the same
/// way the server computes it.
fn expected_planted_vector(world: &DemoWorld) -> String {
    let idb = mtls_tlssim::identity_exposure(
        Some(world.tenant_endpoint.version),
        &world.tenant_endpoint.chain,
    )
    .identity_bytes();
    let expected: &[(&str, u64)] = &[
        ("serve.authz.err.chain.bad_signature", 1),
        ("serve.authz.err.chain.expired", 1),
        ("serve.conn.closed_clean", 1),
        ("serve.conn.closed_error", 1),
        ("serve.connections", 4),
        ("serve.handshake.ok", 2),
        ("serve.privacy.cleartext_connections", 2),
        ("serve.privacy.identity_bytes_total", 2 * idb),
        ("serve.request.err.oversize_frame", 1),
        ("serve.request.err.unknown_kind", 0),
        ("serve.requests", 2),
        ("serve.requests.der", 2),
        ("serve.requests.metrics", 0),
        ("serve.requests.ping", 0),
        ("serve.requests.shard", 0),
        ("serve.throttled", 1),
    ];
    let owned: Vec<(String, u64)> = expected.iter().map(|(n, v)| (n.to_string(), *v)).collect();
    counter_vector_json(&owned)
}

/// One arm of the claim-6 overhead guard: a long-lived server plus warm
/// keep-alive pools. The instrumented arm runs live obs and the default
/// flight ring; the plain arm runs `Obs::noop` and a capacity-0
/// recorder — the exact same code paths, bookkeeping on vs off. Keeping
/// both arms alive across the whole measurement means a burst costs
/// nothing but the pings themselves, so the ABBA alternation happens
/// fast enough for machine drift to cancel out of the paired difference.
struct OverheadArm {
    server: Server,
    pools: Vec<ClientPool>,
}

fn overhead_arm(world: &DemoWorld, instrumented: bool, threads: usize) -> OverheadArm {
    let obs = if instrumented {
        Obs::new()
    } else {
        Obs::noop()
    };
    let mut cfg = demo_server_config(world, "127.0.0.1:0", threads * 2 + 1, 10_000_000, obs);
    cfg.flight_capacity = if instrumented {
        DEFAULT_FLIGHT_CAPACITY
    } else {
        0
    };
    let server = Server::start(cfg).expect("bind overhead server");
    let addr = server.local_addr().to_string();
    let pools = (0..threads)
        .map(|_| {
            ClientPool::connect(&addr, &world.tenant_endpoint, None, 2).expect("overhead pool")
        })
        .collect();
    OverheadArm { server, pools }
}

/// One ping burst over the arm's warm pools; returns aggregate req/s.
fn ping_burst(arm: &mut OverheadArm, requests_per_thread: usize) -> f64 {
    let t0 = std::time::Instant::now();
    let total: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = arm
            .pools
            .iter_mut()
            .map(|pool| {
                scope.spawn(move || {
                    for _ in 0..requests_per_thread {
                        assert!(matches!(
                            pool.checkout().ping().expect("overhead ping"),
                            Response::Pong
                        ));
                    }
                    requests_per_thread
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("burst")).sum()
    });
    total as f64 / t0.elapsed().as_secs_f64()
}

fn median_f64(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN rates"));
    values[values.len() / 2]
}

/// Pull an unsigned integer out of a JSON document by its quoted key —
/// enough structure-awareness for the smoke's self-checks.
fn extract_u64(doc: &str, name: &str) -> u64 {
    let key = format!("\"{name}\": ");
    doc.find(&key)
        .and_then(|i| {
            doc[i + key.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .ok()
        })
        .unwrap_or(0)
}

fn main() {
    let mut quick = false;
    let mut out_path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other => out_path = Some(other.to_string()),
        }
    }
    let out_path = out_path.unwrap_or_else(|| "bench-serve-fresh.json".to_string());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let world = demo_world();
    let ctx = demo_verdict_context();

    // One worker per planned bench connection plus one spare: a live
    // keep-alive session occupies its worker, so the pool must cover the
    // whole bench fleet or the surplus handshakes queue forever.
    let threads = cores.clamp(2, 4);
    let workers = threads * 2 + 1;

    // ---- Claim 1: identity (exact bytes, three input shapes). -------
    let obs = Obs::new();
    let cfg = demo_server_config(&world, "127.0.0.1:0", workers, 10_000_000, obs.clone());
    let server = Server::start(cfg).expect("bind serve smoke server");
    let addr = server.local_addr().to_string();

    let mut c = ClientSession::connect(
        &addr,
        &world.tenant_endpoint,
        Some("mtlscope-serve.campus.example"),
    )
    .expect("tenant connect");
    let served_der = match c.request_der(&world.sample_der).unwrap() {
        Response::Verdict(v) => v,
        other => panic!("expected verdict, got {other:?}"),
    };
    let served_shard = match c.request_shard(&world.sample_shard).unwrap() {
        Response::Verdict(v) => v,
        other => panic!("expected verdict, got {other:?}"),
    };
    let served_bad = match c.request_der(b"not DER at all").unwrap() {
        Response::Verdict(v) => v,
        other => panic!("expected verdict, got {other:?}"),
    };
    let der_identical = served_der == cert_verdict_der(&world.sample_der, &ctx);
    let shard_identical = served_shard == shard_verdict(&world.sample_shard, &ctx);
    let error_identical = served_bad == cert_verdict_der(b"not DER at all", &ctx);
    drop(c);

    // ---- Claim 4: the expired chain is refused. ---------------------
    let rejected = ClientSession::connect(&addr, &world.expired_endpoint, None).is_err();

    // ---- Claim 3: throughput (ping floor + verdict workload). -------
    let requests = if quick { 2_000 } else { 10_000 };
    let ping_report = run_bench(&BenchConfig {
        addr: addr.clone(),
        client: clone_endpoint(&world.tenant_endpoint),
        sni: None,
        threads,
        connections_per_thread: 2,
        requests_per_thread: requests,
        der: Vec::new(),
        obs: obs.clone(),
    });
    let verdict_report = run_bench(&BenchConfig {
        addr: addr.clone(),
        client: clone_endpoint(&world.tenant_endpoint),
        sni: None,
        threads,
        connections_per_thread: 2,
        requests_per_thread: requests / 2,
        der: world.sample_der.clone(),
        obs: obs.clone(),
    });

    // ---- Claim 7: the REQ_METRICS admin frame, ops-gated. -----------
    let mut plain_tenant =
        ClientSession::connect(&addr, &world.tenant_endpoint, None).expect("tenant connect");
    let non_ops_denied = matches!(
        plain_tenant.request_metrics().expect("metrics round trip"),
        Response::Error(_)
    );
    drop(plain_tenant);
    let mut ops = ClientSession::connect(&addr, &world.ops_endpoint, None).expect("ops connect");
    let (ops_granted, metrics_body) = match ops.request_metrics().expect("ops metrics") {
        Response::Metrics(json) => (true, json),
        other => (false, format!("{other:?}")),
    };
    drop(ops);
    server.shutdown();
    let metrics_path = "bench-serve-metrics.json";
    std::fs::write(metrics_path, &metrics_body).expect("write metrics snapshot");
    let privacy_bytes = extract_u64(&metrics_body, "serve.privacy.identity_bytes_total");

    // ---- Claim 2: quota, against a low-quota deployment. ------------
    let quota_obs = Obs::noop();
    let qcfg = demo_server_config(&world, "127.0.0.1:0", 1, 5, quota_obs);
    let qserver = Server::start(qcfg).expect("bind quota server");
    let qaddr = qserver.local_addr().to_string();
    let mut qc = ClientSession::connect(&qaddr, &world.tenant_endpoint, None).unwrap();
    let mut throttled_seen = 0u32;
    for _ in 0..8 {
        if matches!(
            qc.request_der(&world.sample_der).unwrap(),
            Response::Throttled
        ) {
            throttled_seen += 1;
        }
    }
    drop(qc);
    qserver.shutdown();

    // ---- Claim 5: the planted-failure taxonomy vector, twice. -------
    let vector_run1 = planted_counter_vector(&world);
    let vector_run2 = planted_counter_vector(&world);
    let expected_vector = expected_planted_vector(&world);
    let taxonomy_identical = vector_run1 == vector_run2;
    let taxonomy_expected = vector_run1 == expected_vector;
    if !taxonomy_expected {
        eprintln!("serve_smoke: planted vector mismatch\n  got:  {vector_run1}\n  want: {expected_vector}");
    }

    // ---- Claim 6: ABBA observed-overhead guard. ---------------------
    let budget_pct: f64 = std::env::var("SERVE_OVERHEAD_MAX_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let overhead_rounds = if quick { 15 } else { 25 };
    let per_burst = if quick { 1_000 } else { 2_000 };
    let mut plain_arm = overhead_arm(&world, false, threads);
    let mut instr_arm = overhead_arm(&world, true, threads);
    // Warm both arms (page in code, settle the worker threads).
    ping_burst(&mut plain_arm, per_burst);
    ping_burst(&mut instr_arm, per_burst);
    let mut diffs = Vec::with_capacity(overhead_rounds);
    let mut plain_rates = Vec::with_capacity(overhead_rounds);
    let mut instr_rates = Vec::with_capacity(overhead_rounds);
    for _ in 0..overhead_rounds {
        // ABBA within the round: common-mode drift cancels out of the
        // paired difference.
        let a1 = ping_burst(&mut plain_arm, per_burst);
        let b1 = ping_burst(&mut instr_arm, per_burst);
        let b2 = ping_burst(&mut instr_arm, per_burst);
        let a2 = ping_burst(&mut plain_arm, per_burst);
        let plain = (a1 + a2) / 2.0;
        let instr = (b1 + b2) / 2.0;
        plain_rates.push(plain);
        instr_rates.push(instr);
        diffs.push(100.0 * (plain - instr) / plain);
    }
    drop(plain_arm.pools);
    plain_arm.server.shutdown();
    drop(instr_arm.pools);
    instr_arm.server.shutdown();
    let overhead_pct = median_f64(&mut diffs);
    let plain_rps = median_f64(&mut plain_rates);
    let instr_rps = median_f64(&mut instr_rates);
    let overhead_passed = overhead_pct < budget_pct;

    let json = format!(
        r#"{{
  "bench": "crates/bench/src/bin/serve_smoke.rs",
  "command": "cargo run --release -p mtls-bench --bin serve_smoke",
  "quick": {quick},
  "environment": {{"cpu_cores": {cores}, "variance_note": "throughput medians carry the box's +/-10-40% noise; ci/check_bench.py --serve gates identity/quota/rejection/taxonomy/metrics hard and absolute rates only within the noise band on matching cpu_cores, plus the 10k req/s ping floor; the overhead guard is a median of ABBA paired differences, so it travels"}},
  "identity": {{"der_identical": {der_identical}, "shard_identical": {shard_identical}, "error_identical": {error_identical}}},
  "rejection": {{"expired_chain_refused": {rejected}}},
  "quota": {{"rate_per_sec": 5, "burst_requests": 8, "throttled_seen": {throttled_seen}}},
  "taxonomy": {{"matches_expected": {taxonomy_expected}, "identical_across_runs": {taxonomy_identical}, "planted": ["expired_chain", "rogue_ca", "oversize_frame", "throttle"], "counters": {vector_run1}}},
  "observed_overhead": {{"plain_rps": {plain_rps:.1}, "instrumented_rps": {instr_rps:.1}, "overhead_pct": {overhead_pct:.3}, "budget_pct": {budget_pct}, "rounds": {overhead_rounds}, "passed": {overhead_passed}}},
  "metrics_frame": {{"ops_granted": {ops_granted}, "non_ops_denied": {non_ops_denied}, "privacy_identity_bytes": {privacy_bytes}, "snapshot_file": "{metrics_path}"}},
  "ping": {{"req_per_sec": {ping_rps:.1}, "requests": {ping_n}, "errors": {ping_err}, "p99_us": {ping_p99}, "latency_us": {ping_lat}}},
  "verdict": {{"req_per_sec": {v_rps:.1}, "requests": {v_n}, "errors": {v_err}, "throttled": {v_thr}, "p99_us": {v_p99}, "latency_us": {v_lat}}},
  "pool": {{"threads": {threads}, "connections": {conns}, "connect_secs": {csecs:.4}}},
  "note": "in-process server on loopback; ping is the pure record-layer+framing round trip, verdict is the full DER parse -> classify -> audit -> privacy pipeline per request. Identity compares served bytes against mtls_core::verdict offline output; the taxonomy vector is the full sorted counter snapshot after the four planted failures; the metrics frame is the REQ_METRICS admin envelope as served to the ops tenant."
}}
"#,
        ping_rps = ping_report.req_per_sec,
        ping_n = ping_report.requests,
        ping_err = ping_report.errors,
        ping_p99 = ping_report.latency.p99,
        ping_lat = latency_json(&ping_report),
        v_rps = verdict_report.req_per_sec,
        v_n = verdict_report.requests,
        v_err = verdict_report.errors,
        v_thr = verdict_report.throttled,
        v_p99 = verdict_report.latency.p99,
        v_lat = latency_json(&verdict_report),
        conns = ping_report.connections,
        csecs = ping_report.connect_secs,
    );
    std::fs::write(&out_path, &json).expect("write serve bench json");

    println!(
        "serve_smoke: identity der={der_identical} shard={shard_identical} err={error_identical}, \
         rejected={rejected}, throttled={throttled_seen}/8, \
         taxonomy expected={taxonomy_expected} identical={taxonomy_identical}, \
         overhead {overhead_pct:.2}% (budget {budget_pct}%), \
         metrics ops={ops_granted} denied={non_ops_denied} privacy_bytes={privacy_bytes}, \
         ping {:.0} req/s, verdict {:.0} req/s -> {out_path}",
        ping_report.req_per_sec, verdict_report.req_per_sec
    );
    assert!(
        der_identical && shard_identical && error_identical,
        "identity violated"
    );
    assert!(rejected, "expired chain was admitted");
    assert!(throttled_seen > 0, "quota never throttled");
    assert!(
        taxonomy_expected && taxonomy_identical,
        "planted-failure taxonomy vector violated"
    );
    assert!(
        ops_granted && non_ops_denied && privacy_bytes > 0,
        "metrics frame claims violated"
    );
    assert!(
        overhead_passed,
        "telemetry overhead {overhead_pct:.2}% exceeds the {budget_pct}% budget"
    );
}
