//! Serve smoke: starts the demo `mtlscope serve` deployment in-process,
//! proves the acceptance claims of the serve issue, and regenerates
//! `BENCH_serve.json` (gated by `ci/check_bench.py --serve`).
//!
//! Claims measured:
//!
//! 1. **Identity** — a verdict served over mutual TLS is byte-identical
//!    to the offline pipeline's verdict for the same input, for all
//!    three shapes: a DER blob, a Zeek x509 shard, and a malformed blob
//!    (the parse-error verdict).
//! 2. **Quota** — a low-quota tenant sees `RESP_THROTTLED` once its
//!    bucket drains; a fresh tenant is unaffected.
//! 3. **Throughput** — pooled keep-alive bench threads sustain ≥ 10k
//!    req/s on the ping round trip (the record-layer + framing floor)
//!    and report the verdict-workload rate alongside.
//! 4. **Rejection** — the expired demo chain is refused at the door
//!    with a fatal alert, not served.
//!
//! Usage: `serve_smoke [--quick] [OUT_JSON]` (default
//! `bench-serve-fresh.json`).

use mtls_core::verdict::{cert_verdict_der, shard_verdict};
use mtls_obs::Obs;
use mtls_serve::bench::{run_bench, BenchConfig, BenchReport};
use mtls_serve::client::{ClientSession, Response};
use mtls_serve::demo::{demo_server_config, demo_verdict_context, demo_world};
use mtls_serve::server::Server;
use mtls_serve::tls::EndpointConfig;

fn clone_endpoint(e: &EndpointConfig) -> EndpointConfig {
    EndpointConfig {
        version: e.version,
        chain: e.chain.clone(),
        random_seed: e.random_seed,
    }
}

fn latency_json(r: &BenchReport) -> String {
    format!(
        "{{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        r.latency.p50, r.latency.p90, r.latency.p99, r.latency.max
    )
}

fn main() {
    let mut quick = false;
    let mut out_path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other => out_path = Some(other.to_string()),
        }
    }
    let out_path = out_path.unwrap_or_else(|| "bench-serve-fresh.json".to_string());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let world = demo_world();
    let ctx = demo_verdict_context();

    // One worker per planned bench connection plus one spare: a live
    // keep-alive session occupies its worker, so the pool must cover the
    // whole bench fleet or the surplus handshakes queue forever.
    let threads = cores.clamp(2, 4);
    let workers = threads * 2 + 1;

    // ---- Claim 1: identity (exact bytes, three input shapes). -------
    let obs = Obs::new();
    let cfg = demo_server_config(&world, "127.0.0.1:0", workers, 10_000_000, obs.clone());
    let server = Server::start(cfg).expect("bind serve smoke server");
    let addr = server.local_addr().to_string();

    let mut c = ClientSession::connect(
        &addr,
        &world.tenant_endpoint,
        Some("mtlscope-serve.campus.example"),
    )
    .expect("tenant connect");
    let served_der = match c.request_der(&world.sample_der).unwrap() {
        Response::Verdict(v) => v,
        other => panic!("expected verdict, got {other:?}"),
    };
    let served_shard = match c.request_shard(&world.sample_shard).unwrap() {
        Response::Verdict(v) => v,
        other => panic!("expected verdict, got {other:?}"),
    };
    let served_bad = match c.request_der(b"not DER at all").unwrap() {
        Response::Verdict(v) => v,
        other => panic!("expected verdict, got {other:?}"),
    };
    let der_identical = served_der == cert_verdict_der(&world.sample_der, &ctx);
    let shard_identical = served_shard == shard_verdict(&world.sample_shard, &ctx);
    let error_identical = served_bad == cert_verdict_der(b"not DER at all", &ctx);
    drop(c);

    // ---- Claim 4: the expired chain is refused. ---------------------
    let rejected = ClientSession::connect(&addr, &world.expired_endpoint, None).is_err();

    // ---- Claim 3: throughput (ping floor + verdict workload). -------
    let requests = if quick { 2_000 } else { 10_000 };
    let ping_report = run_bench(&BenchConfig {
        addr: addr.clone(),
        client: clone_endpoint(&world.tenant_endpoint),
        sni: None,
        threads,
        connections_per_thread: 2,
        requests_per_thread: requests,
        der: Vec::new(),
        obs: obs.clone(),
    });
    let verdict_report = run_bench(&BenchConfig {
        addr: addr.clone(),
        client: clone_endpoint(&world.tenant_endpoint),
        sni: None,
        threads,
        connections_per_thread: 2,
        requests_per_thread: requests / 2,
        der: world.sample_der.clone(),
        obs: obs.clone(),
    });
    server.shutdown();

    // ---- Claim 2: quota, against a low-quota deployment. ------------
    let quota_obs = Obs::noop();
    let qcfg = demo_server_config(&world, "127.0.0.1:0", 1, 5, quota_obs);
    let qserver = Server::start(qcfg).expect("bind quota server");
    let qaddr = qserver.local_addr().to_string();
    let mut qc = ClientSession::connect(&qaddr, &world.tenant_endpoint, None).unwrap();
    let mut throttled_seen = 0u32;
    for _ in 0..8 {
        if matches!(
            qc.request_der(&world.sample_der).unwrap(),
            Response::Throttled
        ) {
            throttled_seen += 1;
        }
    }
    drop(qc);
    qserver.shutdown();

    let json = format!(
        r#"{{
  "bench": "crates/bench/src/bin/serve_smoke.rs",
  "command": "cargo run --release -p mtls-bench --bin serve_smoke",
  "quick": {quick},
  "environment": {{"cpu_cores": {cores}, "variance_note": "throughput medians carry the box's +/-10-40% noise; ci/check_bench.py --serve gates identity/quota/rejection hard and absolute rates only within the noise band on matching cpu_cores, plus the 10k req/s ping floor"}},
  "identity": {{"der_identical": {der_identical}, "shard_identical": {shard_identical}, "error_identical": {error_identical}}},
  "rejection": {{"expired_chain_refused": {rejected}}},
  "quota": {{"rate_per_sec": 5, "burst_requests": 8, "throttled_seen": {throttled_seen}}},
  "ping": {{"req_per_sec": {ping_rps:.1}, "requests": {ping_n}, "errors": {ping_err}, "latency_us": {ping_lat}}},
  "verdict": {{"req_per_sec": {v_rps:.1}, "requests": {v_n}, "errors": {v_err}, "throttled": {v_thr}, "latency_us": {v_lat}}},
  "pool": {{"threads": {threads}, "connections": {conns}, "connect_secs": {csecs:.4}}},
  "note": "in-process server on loopback; ping is the pure record-layer+framing round trip, verdict is the full DER parse -> classify -> audit -> privacy pipeline per request. Identity compares served bytes against mtls_core::verdict offline output."
}}
"#,
        ping_rps = ping_report.req_per_sec,
        ping_n = ping_report.requests,
        ping_err = ping_report.errors,
        ping_lat = latency_json(&ping_report),
        v_rps = verdict_report.req_per_sec,
        v_n = verdict_report.requests,
        v_err = verdict_report.errors,
        v_thr = verdict_report.throttled,
        v_lat = latency_json(&verdict_report),
        conns = ping_report.connections,
        csecs = ping_report.connect_secs,
    );
    std::fs::write(&out_path, &json).expect("write serve bench json");

    println!(
        "serve_smoke: identity der={der_identical} shard={shard_identical} err={error_identical}, \
         rejected={rejected}, throttled={throttled_seen}/8, \
         ping {:.0} req/s, verdict {:.0} req/s -> {out_path}",
        ping_report.req_per_sec, verdict_report.req_per_sec
    );
    assert!(
        der_identical && shard_identical && error_identical,
        "identity violated"
    );
    assert!(rejected, "expired chain was admitted");
    assert!(throttled_seen > 0, "quota never throttled");
}
