//! Ablation benchmarks for the design decisions in DESIGN.md §4:
//!
//! 1. `ablate_intern` — fingerprint-keyed certificate interning vs
//!    re-parsing/grouping full records by value.
//! 2. `ablate_singlepass` — analyzers sharing one prebuilt corpus vs
//!    rebuilding the corpus per analyzer.
//! 3. `ablate_parallel` — running the independent analyzers on scoped
//!    threads vs sequentially.

use criterion::{criterion_group, criterion_main, Criterion};
use mtls_bench::{build_corpus_unfiltered, corpus, sim_output};
use mtls_core::analyze;
use std::collections::HashMap;
use std::hint::black_box;

/// Ablation 1: the census computed over the interned corpus vs a
/// value-grouped scan of the raw x509 rows (what a naive pipeline would do
/// for every analyzer).
fn ablate_intern(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_intern");
    let corpus = corpus();
    group.bench_function("interned_census", |b| {
        b.iter(|| black_box(analyze::cert_census::run(corpus).all.total))
    });
    let sim = sim_output();
    group.bench_function("value_grouped_census", |b| {
        b.iter(|| {
            // Re-derive everything by value from the raw logs each time.
            let mut by_fp: HashMap<&str, (bool, bool, bool)> = HashMap::new();
            for conn in &sim.ssl {
                let mtls = conn.is_mutual_tls();
                if let Some(fp) = conn.cert_chain_fps.first() {
                    let e = by_fp.entry(fp).or_default();
                    e.0 = true;
                    e.2 |= mtls;
                }
                if let Some(fp) = conn.client_cert_chain_fps.first() {
                    let e = by_fp.entry(fp).or_default();
                    e.1 = true;
                    e.2 |= mtls;
                }
            }
            // Join against the full record list by linear scan per record
            // (the naive shape: no index).
            let mut total_mtls = 0usize;
            for rec in &sim.x509 {
                if let Some((_, _, mtls)) = by_fp.get(rec.fingerprint.as_str()) {
                    if *mtls {
                        total_mtls += 1;
                    }
                }
            }
            black_box(total_mtls)
        })
    });
    group.finish();
}

/// Ablation 2: one corpus feeding three analyzers vs rebuilding the corpus
/// for each.
fn ablate_singlepass(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_singlepass");
    group.sample_size(10);
    group.bench_function("shared_corpus_three_analyzers", |b| {
        let corpus = corpus();
        b.iter(|| {
            black_box(analyze::cert_census::run(corpus).all.total);
            black_box(analyze::ports::run(corpus).inbound_mtls.total);
            black_box(analyze::validity::run(corpus).very_long);
        })
    });
    group.bench_function("rebuild_corpus_per_analyzer", |b| {
        b.iter(|| {
            black_box(
                analyze::cert_census::run(&build_corpus_unfiltered())
                    .all
                    .total,
            );
            black_box(
                analyze::ports::run(&build_corpus_unfiltered())
                    .inbound_mtls
                    .total,
            );
            black_box(analyze::validity::run(&build_corpus_unfiltered()).very_long);
        })
    });
    group.finish();
}

/// Ablation 3: independent analyzers run sequentially vs on scoped threads.
fn ablate_parallel(c: &mut Criterion) {
    let corpus = corpus();
    let mut group = c.benchmark_group("ablate_parallel");
    group.bench_function("analyzers_sequential", |b| {
        b.iter(|| {
            black_box(analyze::prevalence::run(corpus).months.len());
            black_box(analyze::ports::run(corpus).inbound_mtls.total);
            black_box(analyze::inbound::run(corpus).total_conns);
            black_box(analyze::outbound_flows::run(corpus).total);
            black_box(analyze::serial_collisions::run(corpus).groups.len());
            black_box(
                analyze::info_types::run(corpus, analyze::info_types::Slice::Mtls)
                    .columns
                    .len(),
            );
        })
    });
    group.bench_function("analyzers_scoped_threads", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                let h1 = s.spawn(|| analyze::prevalence::run(corpus).months.len());
                let h2 = s.spawn(|| analyze::ports::run(corpus).inbound_mtls.total);
                let h3 = s.spawn(|| analyze::inbound::run(corpus).total_conns);
                let h4 = s.spawn(|| analyze::outbound_flows::run(corpus).total);
                let h5 = s.spawn(|| analyze::serial_collisions::run(corpus).groups.len());
                let h6 = s.spawn(|| {
                    analyze::info_types::run(corpus, analyze::info_types::Slice::Mtls)
                        .columns
                        .len()
                });
                black_box((
                    h1.join().expect("join"),
                    h2.join().expect("join"),
                    h3.join().expect("join"),
                    h4.join().expect("join"),
                    h5.join().expect("join"),
                    h6.join().expect("join"),
                ))
            })
        })
    });
    group.finish();
}

fn ablate_interception_thresholds(c: &mut Criterion) {
    // DESIGN.md §4 ablation: the filter's (min_certs, candidate_share)
    // cutoffs are not load-bearing — cost and verdict are stable across
    // the threshold neighborhood (correctness is asserted in
    // tests/pipeline.rs::interception_thresholds_are_not_load_bearing).
    use mtls_core::pipeline::interception;
    let sim = sim_output();
    let meta = mtls_core::corpus::MetaKnowledge::from_sim(&sim.meta);
    let mut group = c.benchmark_group("ablate_interception");
    for (min_certs, share) in [(2usize, 0.5f64), (3, 0.8), (5, 0.95)] {
        group.bench_function(format!("filter_min{min_certs}_share{share}"), |b| {
            b.iter(|| {
                let mut interner = mtls_intern::Interner::new();
                let (excluded, issuers) = interception::filter_with(
                    &sim.ssl,
                    &sim.x509,
                    &sim.ct,
                    &meta,
                    min_certs,
                    share,
                    &mut interner,
                );
                black_box((excluded.len(), issuers.len()))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_intern,
    ablate_singlepass,
    ablate_parallel,
    ablate_interception_thresholds
);
criterion_main!(benches);
