//! Ingest-path benchmarks: the Zeek-directory → `Corpus` hot path.
//!
//! Two comparisons, matching the DESIGN.md "Performance" section:
//!
//! 1. `ingest_end_to_end` — the full `load_dir → build_corpus` pipeline,
//!    serial reference loader vs the sharded parallel loader over a
//!    rotated 23-month directory (the speedup recorded in
//!    `BENCH_ingest.json`).
//! 2. `fp_index` — the fingerprint index at the heart of `Corpus::build`:
//!    the old shape (owned `String` keys, SipHash `HashMap`) vs the new
//!    one (interned `Symbol` keys, FxHash map).

use criterion::{criterion_group, criterion_main, Criterion};
use mtls_bench::{sim_output, BENCH_SCALE};
use mtls_core::ingest::{load_dir, load_dir_obs, load_dir_serial};
use mtls_core::pipeline::{build_corpus, build_corpus_obs, AnalysisInputs};
use mtls_core::IngestMode;
use mtls_intern::{FxHashMap, Interner, Symbol};
use mtls_obs::Obs;
use std::collections::HashMap;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::OnceLock;

/// The pre-optimization reader, reconstructed from the seed revision of
/// `crates/zeek/src/tsv.rs`: one owned `String` per line from
/// `BufRead::lines`, a fresh `Vec<&str>` per line, and an owned `String`
/// per field even when nothing needs unescaping. Used as the end-to-end
/// baseline the BENCH_ingest.json speedup is measured against.
mod baseline {
    use mtls_zeek::{Ipv4, SslRecord, TlsVersion, X509Record};
    use std::io::BufRead;

    const UNSET: &str = "-";
    const EMPTY: &str = "(empty)";

    fn unescape(s: &str) -> String {
        if !s.contains("\\x") {
            return s.to_string();
        }
        let bytes = s.as_bytes();
        let mut out = String::with_capacity(s.len());
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'\\'
                && i + 3 < bytes.len()
                && bytes[i + 1] == b'x'
                && bytes[i + 2].is_ascii_hexdigit()
                && bytes[i + 3].is_ascii_hexdigit()
            {
                let hi = (bytes[i + 2] as char).to_digit(16).expect("hex");
                let lo = (bytes[i + 3] as char).to_digit(16).expect("hex");
                out.push(((hi * 16 + lo) as u8) as char);
                i += 4;
            } else {
                let ch = s[i..].chars().next().expect("in range");
                out.push(ch);
                i += ch.len_utf8();
            }
        }
        out
    }

    fn parse_opt(s: &str) -> Option<String> {
        if s == UNSET || s.is_empty() {
            None
        } else {
            Some(unescape(s))
        }
    }

    fn parse_vec(s: &str) -> Vec<String> {
        if s == EMPTY || s == UNSET || s.is_empty() {
            Vec::new()
        } else {
            s.split(',').map(unescape).collect()
        }
    }

    fn data_lines<R: BufRead>(reader: R) -> Vec<String> {
        let mut out = Vec::new();
        for line in reader.lines() {
            let line = line.expect("read line");
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            out.push(line);
        }
        out
    }

    pub fn read_ssl_log<R: BufRead>(reader: R) -> Vec<SslRecord> {
        let mut records = Vec::new();
        for line in data_lines(reader) {
            let cols: Vec<&str> = line.split('\t').collect();
            records.push(SslRecord {
                ts: cols[0].parse().expect("ts"),
                uid: unescape(cols[1]),
                orig_h: Ipv4::parse(cols[2]).expect("orig_h"),
                orig_p: cols[3].parse().expect("orig_p"),
                resp_h: Ipv4::parse(cols[4]).expect("resp_h"),
                resp_p: cols[5].parse().expect("resp_p"),
                version: TlsVersion::from_zeek_name(cols[6]).expect("version"),
                server_name: parse_opt(cols[7]),
                established: cols[8] == "T",
                cert_chain_fps: parse_vec(cols[9]),
                client_cert_chain_fps: parse_vec(cols[10]),
            });
        }
        records
    }

    pub fn read_x509_log<R: BufRead>(reader: R) -> Vec<X509Record> {
        let mut records = Vec::new();
        for line in data_lines(reader) {
            let cols: Vec<&str> = line.split('\t').collect();
            records.push(X509Record {
                ts: cols[0].parse().expect("ts"),
                fingerprint: unescape(cols[1]),
                version: cols[2].parse().expect("version"),
                serial: unescape(cols[3]),
                subject: unescape(cols[4]),
                issuer: unescape(cols[5]),
                issuer_org: parse_opt(cols[6]),
                subject_cn: parse_opt(cols[7]),
                not_valid_before: cols[8].parse().expect("nvb"),
                not_valid_after: cols[9].parse().expect("nva"),
                key_alg: unescape(cols[10]),
                key_length: cols[11].parse().expect("key_length"),
                sig_alg: unescape(cols[12]),
                san_dns: parse_vec(cols[13]),
                san_email: parse_vec(cols[14]),
                san_uri: parse_vec(cols[15]),
                san_ip: parse_vec(cols[16]),
                basic_constraints_ca: cols[17] == "T",
            });
        }
        records
    }

    /// Serial shard walk with the alloc-heavy reader (the seed's
    /// `read_monthly` shape).
    pub fn read_monthly(dir: &std::path::Path) -> (Vec<SslRecord>, Vec<X509Record>) {
        let mut ssl_files = Vec::new();
        let mut x509_files = Vec::new();
        for entry in std::fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("entry").path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.starts_with("ssl.") && name.ends_with(".log") && name != "ssl.log" {
                ssl_files.push(path);
            } else if name.starts_with("x509.") && name.ends_with(".log") && name != "x509.log" {
                x509_files.push(path);
            }
        }
        ssl_files.sort();
        x509_files.sort();
        let mut ssl = Vec::new();
        for path in &ssl_files {
            let f = std::fs::File::open(path).expect("open");
            ssl.extend(read_ssl_log(std::io::BufReader::new(f)));
        }
        let mut x509 = Vec::new();
        for path in &x509_files {
            let f = std::fs::File::open(path).expect("open");
            x509.extend(read_x509_log(std::io::BufReader::new(f)));
        }
        (ssl, x509)
    }
}

/// One rotated log directory, written once from the shared sim corpus.
fn fixture_dir() -> &'static PathBuf {
    static CELL: OnceLock<PathBuf> = OnceLock::new();
    CELL.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("mtlscope-bench-ingest-{}", std::process::id()));
        sim_output()
            .write_to_dir_rotated(&dir)
            .expect("write rotated fixture");
        dir
    })
}

fn bench_ingest_end_to_end(c: &mut Criterion) {
    let dir = fixture_dir();
    // meta.tsv / ct.log parsed once for the baseline arm; the optimized
    // arms re-parse them inside load_dir, so the baseline is favored if
    // anything.
    let template = load_dir_serial(dir).expect("template ingest");
    let mut group = c.benchmark_group(format!("ingest_end_to_end(scale={BENCH_SCALE})"));
    group.sample_size(10);
    group.bench_function("seed_alloc_parser_to_corpus", |b| {
        b.iter(|| {
            let (ssl, x509) = baseline::read_monthly(dir);
            let inputs = AnalysisInputs {
                ssl,
                x509,
                ct: template.ct.clone(),
                gossip: template.gossip.clone(),
                meta: template.meta.clone(),
            };
            // The seed's Corpus::build cloned every record out of borrowed
            // slices; the explicit clone here reproduces that extra
            // allocation pass against the move-based build.
            let cloned = inputs.clone();
            let n = build_corpus(cloned).certs.len();
            black_box((n, inputs.ssl.len()))
        })
    });
    group.bench_function("serial_load_dir_to_corpus", |b| {
        b.iter(|| {
            let inputs = load_dir_serial(dir).expect("serial ingest");
            black_box(build_corpus(inputs).certs.len())
        })
    });
    group.bench_function("sharded_load_dir_to_corpus", |b| {
        b.iter(|| {
            let inputs = load_dir(dir).expect("sharded ingest");
            black_box(build_corpus(inputs).certs.len())
        })
    });
    // The same path with a live Obs handle (span tree + batched counters +
    // histograms); the gap to the arm above is the instrumentation cost the
    // obs_overhead bin guards (< 3%, recorded in BENCH_obs.json).
    group.bench_function("sharded_load_dir_to_corpus_instrumented", |b| {
        b.iter(|| {
            let obs = Obs::new();
            let (inputs, _diag) =
                load_dir_obs(dir, IngestMode::Strict, &obs, None).expect("sharded ingest");
            black_box(build_corpus_obs(inputs, &obs, None).certs.len())
        })
    });
    group.finish();
}

fn bench_ingest_components(c: &mut Criterion) {
    let dir = fixture_dir();
    let template = load_dir_serial(dir).expect("template ingest");
    let mut group = c.benchmark_group("ingest_components");
    group.sample_size(10);
    group.bench_function("load_dir_serial_only", |b| {
        b.iter(|| black_box(load_dir_serial(dir).expect("ingest").ssl.len()))
    });
    group.bench_function("inputs_clone_only", |b| {
        b.iter(|| black_box(template.clone().ssl.len()))
    });
    group.bench_function("build_corpus_only", |b| {
        b.iter(|| black_box(build_corpus(template.clone()).certs.len()))
    });
    group.bench_function("interception_filter_only", |b| {
        b.iter(|| {
            let mut interner = Interner::with_capacity(template.x509.len());
            let (excluded, issuers) = mtls_core::pipeline::interception::filter(
                &template.ssl,
                &template.x509,
                &template.ct,
                &template.meta,
                &mut interner,
            );
            black_box((excluded.len(), issuers.len()))
        })
    });
    group.finish();
}

fn bench_shard_readers(c: &mut Criterion) {
    let dir = fixture_dir();
    let mut group = c.benchmark_group("shard_readers");
    group.sample_size(10);
    group.bench_function("read_monthly_serial", |b| {
        b.iter(|| {
            let (ssl, x509) = mtls_zeek::read_monthly_serial(dir).expect("read");
            black_box((ssl.len(), x509.len()))
        })
    });
    group.bench_function("read_monthly_parallel", |b| {
        b.iter(|| {
            let (ssl, x509) = mtls_zeek::read_monthly(dir).expect("read");
            black_box((ssl.len(), x509.len()))
        })
    });
    // Lenient mode on a clean corpus: measures the cost of the skip
    // accounting (diag counters, byte offsets) relative to strict.
    group.bench_function("read_monthly_parallel_lenient", |b| {
        b.iter(|| {
            let (ssl, x509, stats) =
                mtls_zeek::read_monthly_with(dir, mtls_zeek::IngestMode::Lenient).expect("read");
            black_box((ssl.len(), x509.len(), stats.rows_parsed))
        })
    });
    group.finish();
}

fn bench_fp_index(c: &mut Criterion) {
    let sim = sim_output();
    let mut group = c.benchmark_group("fp_index");
    group.bench_function("alloc_string_siphash", |b| {
        b.iter(|| {
            // The pre-interning shape: every fingerprint cloned into an
            // owned key, hashed with the default SipHash.
            let mut index: HashMap<String, usize> = HashMap::with_capacity(sim.x509.len());
            for (i, rec) in sim.x509.iter().enumerate() {
                index.insert(rec.fingerprint.clone(), i);
            }
            let mut hits = 0usize;
            for conn in &sim.ssl {
                for fp in conn
                    .cert_chain_fps
                    .iter()
                    .chain(&conn.client_cert_chain_fps)
                {
                    if index.contains_key(fp) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("interned_symbol_fxhash", |b| {
        b.iter(|| {
            let mut interner = Interner::with_capacity(sim.x509.len());
            let mut index: FxHashMap<Symbol, usize> = FxHashMap::default();
            index.reserve(sim.x509.len());
            for (i, rec) in sim.x509.iter().enumerate() {
                index.insert(interner.intern(&rec.fingerprint), i);
            }
            let mut hits = 0usize;
            for conn in &sim.ssl {
                for fp in conn
                    .cert_chain_fps
                    .iter()
                    .chain(&conn.client_cert_chain_fps)
                {
                    if interner.get(fp).is_some_and(|sym| index.contains_key(&sym)) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest_end_to_end,
    bench_ingest_components,
    bench_shard_readers,
    bench_fp_index
);
criterion_main!(benches);
