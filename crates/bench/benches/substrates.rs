//! Substrate microbenchmarks: the from-scratch building blocks the
//! reproduction rests on — DER codec, SHA-256/HMAC, certificate minting and
//! parsing, chain validation, the passive monitor, the Zeek-TSV codec, and
//! the CN/SAN classifier.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mtls_asn1::{Asn1Time, DerReader, DerWriter};
use mtls_classify::{classify, ClassifyContext};
use mtls_crypto::{hmac_sha256, sha256, KeyRegistry, Keypair};
use mtls_pki::{validate_chain, CertificateAuthority, RootProgram, TrustAnchors};
use mtls_tlssim::{observe, simulate_handshake, HandshakeConfig, TlsVersion};
use mtls_x509::{Certificate, CertificateBuilder, DistinguishedName, GeneralName};
use std::hint::black_box;
use std::io::Cursor;

fn fixture_cert() -> Certificate {
    let ca = Keypair::from_seed(b"bench-ca");
    let leaf = Keypair::from_seed(b"bench-leaf");
    CertificateBuilder::new()
        .serial(&[0x12, 0x34, 0x56, 0x78, 0x9A])
        .issuer(
            DistinguishedName::builder()
                .organization("Bench CA")
                .common_name("Bench CA R1")
                .build(),
        )
        .subject(
            DistinguishedName::builder()
                .common_name("bench.example.com")
                .build(),
        )
        .san(vec![
            GeneralName::Dns("bench.example.com".into()),
            GeneralName::Dns("alt.example.com".into()),
        ])
        .validity(
            Asn1Time::from_ymd(2023, 1, 1),
            Asn1Time::from_ymd(2024, 1, 1),
        )
        .subject_key(leaf.key_id())
        .sign(&ca)
}

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let data = vec![0xABu8; 4096];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_4k", |b| b.iter(|| black_box(sha256(&data))));
    group.bench_function("hmac_sha256_4k", |b| {
        b.iter(|| black_box(hmac_sha256(b"key", &data)))
    });
    group.finish();
}

fn bench_der(c: &mut Criterion) {
    let mut group = c.benchmark_group("der");
    group.bench_function("writer_nested_sequence", |b| {
        b.iter(|| {
            let mut w = DerWriter::new();
            w.sequence(|w| {
                w.integer_i64(123_456_789);
                w.utf8_string("mutual tls in practice");
                w.sequence(|w| {
                    w.boolean(true);
                    w.octet_string(&[0u8; 64]);
                });
            });
            black_box(w.finish().len())
        })
    });
    let encoded = {
        let mut w = DerWriter::new();
        w.sequence(|w| {
            w.integer_i64(123_456_789);
            w.utf8_string("mutual tls in practice");
            w.octet_string(&[0u8; 64]);
        });
        w.finish()
    };
    group.bench_function("reader_nested_sequence", |b| {
        b.iter(|| {
            let mut r = DerReader::new(&encoded);
            let mut seq = r.read_sequence().expect("seq");
            black_box(seq.read_integer_i64().expect("int"));
            black_box(seq.read_string().expect("str"));
            black_box(seq.read_octet_string().expect("bytes"));
        })
    });
    group.finish();
}

fn bench_x509(c: &mut Criterion) {
    let mut group = c.benchmark_group("x509");
    let ca = Keypair::from_seed(b"mint-ca");
    let leaf = Keypair::from_seed(b"mint-leaf");
    group.bench_function("mint_and_sign", |b| {
        b.iter(|| {
            let cert = CertificateBuilder::new()
                .serial(&[1, 2, 3])
                .subject(DistinguishedName::builder().common_name("x").build())
                .validity(
                    Asn1Time::from_ymd(2023, 1, 1),
                    Asn1Time::from_ymd(2024, 1, 1),
                )
                .subject_key(leaf.key_id())
                .sign(&ca);
            black_box(cert.fingerprint())
        })
    });
    let der = fixture_cert().to_der();
    group.throughput(Throughput::Bytes(der.len() as u64));
    group.bench_function("parse_from_der", |b| {
        b.iter(|| black_box(Certificate::from_der(&der).expect("parses")))
    });
    group.finish();
}

fn bench_chain_validation(c: &mut Criterion) {
    let now = Asn1Time::from_ymd(2023, 6, 1);
    let root = CertificateAuthority::new_root(
        b"bench-root",
        DistinguishedName::builder()
            .organization("Bench Trust")
            .common_name("Root")
            .build(),
        now,
    );
    let int = CertificateAuthority::new_intermediate(
        &root,
        b"bench-int",
        DistinguishedName::builder()
            .organization("Bench Trust")
            .common_name("Sub CA")
            .build(),
        now,
    );
    let mut anchors = TrustAnchors::new();
    anchors.add_to(&[RootProgram::MozillaNss], root.certificate());
    let mut registry = KeyRegistry::new();
    root.register_key(&mut registry);
    int.register_key(&mut registry);
    let leaf_key = Keypair::from_seed(b"bench-chain-leaf");
    let leaf = int.issue(
        CertificateBuilder::new()
            .subject(
                DistinguishedName::builder()
                    .common_name("leaf.bench")
                    .build(),
            )
            .validity(now.add_days(-30), now.add_days(335))
            .subject_key(leaf_key.key_id()),
    );
    let pool = vec![int.certificate().clone(), root.certificate().clone()];

    c.bench_function("pki/validate_two_hop_chain", |b| {
        b.iter(|| black_box(validate_chain(&leaf, &pool, &anchors, &registry, now).is_ok()))
    });
}

fn bench_monitor(c: &mut Criterion) {
    let cert = fixture_cert();
    let cfg = HandshakeConfig {
        version: TlsVersion::Tls12,
        sni: Some("bench.example.com".into()),
        server_chain: vec![cert.to_der()],
        request_client_cert: true,
        client_chain: vec![cert.to_der()],
        established: true,
        resumed: false,
        random_seed: 1,
    };
    let mut group = c.benchmark_group("tlssim");
    group.bench_function("simulate_handshake", |b| {
        b.iter(|| black_box(simulate_handshake(&cfg).len()))
    });
    let transcript = simulate_handshake(&cfg);
    group.bench_function("passive_observe", |b| {
        b.iter(|| black_box(observe(&transcript).expect("tls").is_mutual_tls()))
    });
    group.finish();
}

fn bench_zeek_tsv(c: &mut Criterion) {
    let sim = mtls_bench::sim_output();
    let records = &sim.ssl[..sim.ssl.len().min(2_000)];
    let mut group = c.benchmark_group("zeek");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("write_ssl_log_2k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(512 * 1024);
            mtls_zeek::write_ssl_log(&mut buf, records).expect("write");
            black_box(buf.len())
        })
    });
    let mut encoded = Vec::new();
    mtls_zeek::write_ssl_log(&mut encoded, records).expect("write");
    group.bench_function("read_ssl_log_2k", |b| {
        b.iter(|| {
            black_box(
                mtls_zeek::read_ssl_log(Cursor::new(&encoded))
                    .expect("read")
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let inputs = [
        "www.example.com",
        "192.168.1.10",
        "12:34:56:AB:CD:EF",
        "sip:4434@voip.example.edu",
        "user@example.org",
        "hd7gr",
        "John Smith",
        "Hybrid Runbook Worker",
        "550e8400-e29b-41d4-a716-446655440000",
        "f3a9c2d17b604e5d",
        "__transfer__",
    ];
    let ctx = ClassifyContext {
        issuer_org: Some("Commonwealth University"),
        issuer_is_campus: true,
    };
    let mut group = c.benchmark_group("classify");
    group.throughput(Throughput::Elements(inputs.len() as u64));
    group.bench_function("classify_mixed_batch", |b| {
        b.iter(|| {
            for s in &inputs {
                black_box(classify(s, ctx));
            }
        })
    });
    group.finish();
}

fn bench_policy_and_crl(c: &mut Criterion) {
    use mtls_pki::crl::{check_revocation, CrlBuilder};
    use mtls_pki::{RevocationReason, ValidationPolicy};
    use mtls_x509::SerialNumber;

    let cert = fixture_cert();
    let policy = ValidationPolicy::enterprise();
    let at = Asn1Time::from_ymd(2023, 6, 1);
    let mut group = c.benchmark_group("policy");
    group.bench_function("evaluate_enterprise", |b| {
        b.iter(|| black_box(policy.evaluate(&cert, at, false, None).len()))
    });

    let ca = CertificateAuthority::new_root(
        b"bench-crl-ca",
        DistinguishedName::builder()
            .organization("Bench CRL Org")
            .build(),
        at,
    );
    let mut builder = CrlBuilder::new(at, at.add_days(7));
    for i in 0..500u32 {
        builder = builder.revoke(
            SerialNumber::new(&i.to_be_bytes()),
            at,
            RevocationReason::Superseded,
        );
    }
    let crl = builder.sign(&ca);
    group.bench_function("crl_sign_500_entries", |b| {
        b.iter(|| {
            let mut builder = CrlBuilder::new(at, at.add_days(7));
            for i in 0..500u32 {
                builder = builder.revoke(
                    SerialNumber::new(&i.to_be_bytes()),
                    at,
                    RevocationReason::Superseded,
                );
            }
            black_box(builder.sign(&ca).to_der().len())
        })
    });
    let der = crl.to_der();
    group.bench_function("crl_parse_500_entries", |b| {
        b.iter(|| {
            black_box(
                mtls_pki::CertificateRevocationList::from_der(&der)
                    .expect("parses")
                    .entries()
                    .len(),
            )
        })
    });
    group.bench_function("revocation_lookup", |b| {
        b.iter(|| black_box(check_revocation(&cert, Some(&crl), at).is_ok()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_der,
    bench_x509,
    bench_chain_validation,
    bench_monitor,
    bench_zeek_tsv,
    bench_classifier,
    bench_policy_and_crl
);
criterion_main!(benches);
