//! One Criterion benchmark per reproduced table/figure (DESIGN.md §3's
//! bench-target column), plus corpus generation and the full pipeline.
//!
//! Each `bench_*` target measures the analyzer that regenerates the
//! corresponding artifact over the shared fixture corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use mtls_bench::{corpus, sim_output, BENCH_SCALE};
use mtls_core::analyze;
use mtls_core::corpus::MetaKnowledge;
use mtls_core::{run_pipeline, AnalysisInputs};
use mtls_netsim::{generate, SimConfig};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    group.bench_function("bench_gen_corpus_scale_0.01", |b| {
        b.iter(|| {
            let out = generate(&SimConfig {
                seed: 7,
                scale: 0.01,
                ..Default::default()
            });
            black_box(out.ssl.len())
        })
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("bench_full_pipeline", |b| {
        b.iter(|| {
            let sim = sim_output();
            let out = run_pipeline(AnalysisInputs {
                meta: MetaKnowledge::from_sim(&sim.meta),
                ssl: sim.ssl.clone(),
                x509: sim.x509.clone(),
                ct: sim.ct.clone(),
                gossip: sim.gossip.clone(),
            });
            black_box(out.tab1.all.total)
        })
    });
    group.finish();
}

fn bench_experiments(c: &mut Criterion) {
    let corpus = corpus();
    let mut group = c.benchmark_group(format!("experiments(scale={BENCH_SCALE})"));

    group.bench_function("bench_pre1_interception", |b| {
        let sim = sim_output();
        let meta = MetaKnowledge::from_sim(&sim.meta);
        b.iter(|| {
            let mut interner = mtls_intern::Interner::new();
            black_box(mtls_core::pipeline::interception::filter(
                &sim.ssl,
                &sim.x509,
                &sim.ct,
                &meta,
                &mut interner,
            ))
        })
    });
    group.bench_function("bench_fig1_prevalence", |b| {
        b.iter(|| black_box(analyze::prevalence::run(corpus).months.len()))
    });
    group.bench_function("bench_tab1_census", |b| {
        b.iter(|| black_box(analyze::cert_census::run(corpus).all.total))
    });
    group.bench_function("bench_tab2_ports", |b| {
        b.iter(|| black_box(analyze::ports::run(corpus).inbound_mtls.total))
    });
    group.bench_function("bench_tab3_inbound", |b| {
        b.iter(|| black_box(analyze::inbound::run(corpus).total_conns))
    });
    group.bench_function("bench_fig2_flows", |b| {
        b.iter(|| black_box(analyze::outbound_flows::run(corpus).total))
    });
    group.bench_function("bench_tab4_dummy", |b| {
        b.iter(|| black_box(analyze::dummy_issuers::run(corpus).rows.len()))
    });
    group.bench_function("bench_ser1_serials", |b| {
        b.iter(|| black_box(analyze::serial_collisions::run(corpus).groups.len()))
    });
    group.bench_function("bench_tab5_sharing", |b| {
        b.iter(|| black_box(analyze::cert_sharing::run(corpus).shared_certs))
    });
    group.bench_function("bench_tab6_subnets", |b| {
        b.iter(|| black_box(analyze::subnet_spread::run(corpus).cross_shared_certs))
    });
    group.bench_function("bench_fig3_dates", |b| {
        b.iter(|| black_box(analyze::incorrect_dates::run(corpus).total_certs))
    });
    group.bench_function("bench_fig4_validity", |b| {
        b.iter(|| black_box(analyze::validity::run(corpus).very_long))
    });
    group.bench_function("bench_fig5_expired", |b| {
        b.iter(|| black_box(analyze::expired::run(corpus).points.len()))
    });
    group.bench_function("bench_tab7_cnsan", |b| {
        b.iter(|| black_box(analyze::cn_san_usage::run(corpus).server.total))
    });
    group.bench_function("bench_tab8_infotypes", |b| {
        b.iter(|| {
            black_box(
                analyze::info_types::run(corpus, analyze::info_types::Slice::Mtls)
                    .columns
                    .len(),
            )
        })
    });
    group.bench_function("bench_tab9_unidentified", |b| {
        b.iter(|| black_box(analyze::unidentified::run(corpus).totals.len()))
    });
    group.bench_function("bench_tab13_shared_info", |b| {
        b.iter(|| {
            black_box(
                analyze::info_types::run(corpus, analyze::info_types::Slice::SharedCerts)
                    .columns
                    .len(),
            )
        })
    });
    group.bench_function("bench_tab14_nonmtls_info", |b| {
        b.iter(|| {
            black_box(
                analyze::info_types::run(corpus, analyze::info_types::Slice::NonMtlsServers)
                    .columns
                    .len(),
            )
        })
    });
    group.bench_function("bench_ext1_validation_audit", |b| {
        b.iter(|| black_box(analyze::audit::run(corpus).flagged_conns))
    });
    group.bench_function("bench_ext2_tracking", |b| {
        b.iter(|| black_box(analyze::tracking::run(corpus).trackable))
    });
    group.bench_function("bench_gen1_generalization", |b| {
        b.iter(|| black_box(analyze::generalization::run(corpus).external_cloud_server_share))
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_pipeline, bench_experiments);
criterion_main!(benches);
