//! Per-tenant token-bucket quotas.
//!
//! Each tenant (derived from their client certificate by
//! [`mtls_pki::Authorizer`]) gets one bucket: capacity = one second of
//! their rate, refilled continuously. The bucket is driven by explicit
//! elapsed time, not wall-clock reads, so tests are deterministic and the
//! server owns the single `Instant` clock.

use std::collections::HashMap;

/// One tenant's bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: f64,
    capacity: f64,
    refill_per_sec: f64,
}

impl TokenBucket {
    /// A full bucket refilling at `rate_per_sec` (minimum 1).
    pub fn new(rate_per_sec: u32) -> TokenBucket {
        let rate = f64::from(rate_per_sec.max(1));
        TokenBucket {
            tokens: rate,
            capacity: rate,
            refill_per_sec: rate,
        }
    }

    /// Advance the bucket by `elapsed_secs` and try to take one token.
    pub fn try_take(&mut self, elapsed_secs: f64) -> bool {
        self.tokens = (self.tokens + elapsed_secs * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (test introspection).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// The server's quota table: tenant name → bucket.
#[derive(Debug, Default)]
pub struct QuotaTable {
    buckets: HashMap<String, TokenBucket>,
}

impl QuotaTable {
    /// Empty table.
    pub fn new() -> QuotaTable {
        QuotaTable::default()
    }

    /// Take one token for `tenant`, creating the bucket at
    /// `rate_per_sec` on first sight. `elapsed_secs` is the time since
    /// this tenant's previous request (0 for the first).
    pub fn try_take(&mut self, tenant: &str, rate_per_sec: u32, elapsed_secs: f64) -> bool {
        self.buckets
            .entry(tenant.to_string())
            .or_insert_with(|| TokenBucket::new(rate_per_sec))
            .try_take(elapsed_secs)
    }

    /// Number of tenants with a live bucket.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no tenant has a bucket yet.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_up_to_capacity_then_throttled() {
        let mut b = TokenBucket::new(10);
        for _ in 0..10 {
            assert!(b.try_take(0.0));
        }
        assert!(!b.try_take(0.0), "11th immediate request must throttle");
    }

    #[test]
    fn refills_with_elapsed_time() {
        let mut b = TokenBucket::new(10);
        for _ in 0..10 {
            assert!(b.try_take(0.0));
        }
        assert!(!b.try_take(0.0));
        // 0.5 s at 10/s refills 5 tokens.
        assert!(b.try_take(0.5));
        assert!(b.available() > 3.9 && b.available() < 4.1);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut b = TokenBucket::new(5);
        assert!(b.try_take(1000.0));
        assert!(b.available() <= 5.0);
    }

    #[test]
    fn zero_rate_clamps_to_one() {
        let mut b = TokenBucket::new(0);
        assert!(b.try_take(0.0));
        assert!(!b.try_take(0.0));
    }

    #[test]
    fn table_isolates_tenants() {
        let mut q = QuotaTable::new();
        assert!(q.try_take("a", 1, 0.0));
        assert!(!q.try_take("a", 1, 0.0), "a exhausted");
        assert!(q.try_take("b", 1, 0.0), "b unaffected");
        assert_eq!(q.len(), 2);
    }
}
