//! Per-tenant token-bucket quotas.
//!
//! Each tenant (derived from their client certificate by
//! [`mtls_pki::Authorizer`]) gets one bucket: capacity = one second of
//! their rate, refilled continuously. The bucket is driven by explicit
//! elapsed time, not wall-clock reads, so tests are deterministic and the
//! server owns the single `Instant` clock.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One tenant's bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: f64,
    capacity: f64,
    refill_per_sec: f64,
}

impl TokenBucket {
    /// A full bucket refilling at `rate_per_sec` (minimum 1).
    pub fn new(rate_per_sec: u32) -> TokenBucket {
        let rate = f64::from(rate_per_sec.max(1));
        TokenBucket {
            tokens: rate,
            capacity: rate,
            refill_per_sec: rate,
        }
    }

    /// Advance the bucket by `elapsed_secs` and try to take one token.
    pub fn try_take(&mut self, elapsed_secs: f64) -> bool {
        self.tokens = (self.tokens + elapsed_secs * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (test introspection).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// The server's quota table: tenant name → bucket.
#[derive(Debug, Default)]
pub struct QuotaTable {
    buckets: HashMap<String, TokenBucket>,
}

impl QuotaTable {
    /// Empty table.
    pub fn new() -> QuotaTable {
        QuotaTable::default()
    }

    /// Take one token for `tenant`, creating the bucket at
    /// `rate_per_sec` on first sight. `elapsed_secs` is the time since
    /// this tenant's previous request (0 for the first).
    pub fn try_take(&mut self, tenant: &str, rate_per_sec: u32, elapsed_secs: f64) -> bool {
        self.buckets
            .entry(tenant.to_string())
            .or_insert_with(|| TokenBucket::new(rate_per_sec))
            .try_take(elapsed_secs)
    }

    /// Number of tenants with a live bucket.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no tenant has a bucket yet.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Drop one tenant's bucket (idle eviction).
    pub fn remove(&mut self, tenant: &str) {
        self.buckets.remove(tenant);
    }
}

/// Tenants idle this long are evicted (bucket + last-seen entry). A
/// returning tenant simply gets a fresh full bucket — for anyone idle
/// past the horizon that is indistinguishable from a kept, fully
/// refilled one, so eviction never changes throttling behavior.
pub const IDLE_EVICT_HORIZON: Duration = Duration::from_secs(600);

/// An eviction scan runs every this many takes, amortizing the O(n)
/// retain across the request stream.
const EVICT_SCAN_EVERY: usize = 512;

/// Per-tenant quota bookkeeping: the bucket table plus each tenant's
/// last-request instant (the elapsed-time source for refills).
///
/// Both maps are **bounded**: tenants idle past [`IDLE_EVICT_HORIZON`]
/// are evicted together with their bucket by a scan that runs every few
/// hundred takes, so live memory is proportional to tenants active in
/// the last ten minutes — not every tenant name ever seen. (PR 8's
/// `last_seen` grew forever; a churning fleet of fingerprint-named
/// tenants would have leaked it unboundedly.)
#[derive(Debug, Default)]
pub struct QuotaClock {
    table: QuotaTable,
    last_seen: HashMap<String, Instant>,
    takes_since_scan: usize,
}

impl QuotaClock {
    /// Empty clock.
    pub fn new() -> QuotaClock {
        QuotaClock::default()
    }

    /// Advance `tenant`'s bucket by their elapsed time since the
    /// previous take (computed against `now` — the caller owns the one
    /// clock) and try to take a token.
    pub fn try_take(&mut self, tenant: &str, rate_per_sec: u32, now: Instant) -> bool {
        let elapsed = match self.last_seen.insert(tenant.to_string(), now) {
            Some(prev) => now.saturating_duration_since(prev).as_secs_f64(),
            None => 0.0,
        };
        self.takes_since_scan += 1;
        if self.takes_since_scan >= EVICT_SCAN_EVERY {
            self.evict_idle(now);
        }
        self.table.try_take(tenant, rate_per_sec, elapsed)
    }

    /// Evict every tenant idle past [`IDLE_EVICT_HORIZON`] as of `now`,
    /// removing bucket and last-seen entry together.
    pub fn evict_idle(&mut self, now: Instant) {
        self.takes_since_scan = 0;
        let table = &mut self.table;
        self.last_seen.retain(|name, seen| {
            let keep = now.saturating_duration_since(*seen) < IDLE_EVICT_HORIZON;
            if !keep {
                table.remove(name);
            }
            keep
        });
    }

    /// Tenants currently tracked (post-eviction bound introspection).
    pub fn tracked(&self) -> usize {
        self.last_seen.len()
    }

    /// Buckets currently live (always equals [`QuotaClock::tracked`]
    /// after a scan — the two maps evict together).
    pub fn buckets(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_up_to_capacity_then_throttled() {
        let mut b = TokenBucket::new(10);
        for _ in 0..10 {
            assert!(b.try_take(0.0));
        }
        assert!(!b.try_take(0.0), "11th immediate request must throttle");
    }

    #[test]
    fn refills_with_elapsed_time() {
        let mut b = TokenBucket::new(10);
        for _ in 0..10 {
            assert!(b.try_take(0.0));
        }
        assert!(!b.try_take(0.0));
        // 0.5 s at 10/s refills 5 tokens.
        assert!(b.try_take(0.5));
        assert!(b.available() > 3.9 && b.available() < 4.1);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut b = TokenBucket::new(5);
        assert!(b.try_take(1000.0));
        assert!(b.available() <= 5.0);
    }

    #[test]
    fn zero_rate_clamps_to_one() {
        let mut b = TokenBucket::new(0);
        assert!(b.try_take(0.0));
        assert!(!b.try_take(0.0));
    }

    #[test]
    fn table_isolates_tenants() {
        let mut q = QuotaTable::new();
        assert!(q.try_take("a", 1, 0.0));
        assert!(!q.try_take("a", 1, 0.0), "a exhausted");
        assert!(q.try_take("b", 1, 0.0), "b unaffected");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn clock_throttles_like_the_raw_table() {
        let mut q = QuotaClock::new();
        let t0 = Instant::now();
        assert!(q.try_take("a", 1, t0));
        assert!(!q.try_take("a", 1, t0), "no time passed, bucket empty");
        // Two synthetic seconds later the 1/s bucket has refilled.
        assert!(q.try_take("a", 1, t0 + Duration::from_secs(2)));
        assert_eq!(q.tracked(), 1);
        assert_eq!(q.buckets(), 1);
    }

    #[test]
    fn idle_tenants_evict_with_their_buckets() {
        let mut q = QuotaClock::new();
        let t0 = Instant::now();
        for i in 0..5000u64 {
            q.try_take(&format!("tenant-{i}"), 10, t0 + Duration::from_millis(i));
        }
        // Everyone's last request is within a few seconds of t0; one
        // horizon later they are all idle.
        q.evict_idle(t0 + Duration::from_secs(5) + IDLE_EVICT_HORIZON);
        assert_eq!(q.tracked(), 0, "all idle tenants evicted");
        assert_eq!(q.buckets(), 0, "buckets evicted alongside");

        // A returning tenant just gets a fresh bucket.
        assert!(q.try_take("tenant-0", 10, t0 + Duration::from_secs(700)));
        assert_eq!(q.tracked(), 1);
    }

    /// The satellite claim: the map stays bounded even under an endless
    /// churn of one-shot tenant names — the periodic scan holds tracked
    /// entries to (horizon-active tenants + one scan interval).
    #[test]
    fn tracked_tenants_stay_bounded_under_name_churn() {
        let mut q = QuotaClock::new();
        let t0 = Instant::now();
        // One brand-new tenant per simulated second, for well over the
        // horizon: an unbounded map would end at 5000 entries.
        let mut max_tracked = 0usize;
        for i in 0..5000u64 {
            q.try_take(&format!("one-shot-{i}"), 1, t0 + Duration::from_secs(i));
            max_tracked = max_tracked.max(q.tracked());
        }
        let horizon_secs = IDLE_EVICT_HORIZON.as_secs() as usize;
        let bound = horizon_secs + EVICT_SCAN_EVERY + 1;
        assert!(
            max_tracked <= bound,
            "tracked peaked at {max_tracked}, bound {bound}"
        );
        assert!(
            q.buckets() <= bound,
            "buckets grew past the bound: {}",
            q.buckets()
        );
        // And an explicit final scan leaves exactly the horizon window.
        q.evict_idle(t0 + Duration::from_secs(5000));
        assert!(q.tracked() <= horizon_secs + 1);
        assert_eq!(q.tracked(), q.buckets(), "the two maps evict together");
    }
}
