//! The serve metric taxonomy: every counter name the live path can
//! emit, in one place.
//!
//! PR 8 lumped every failed connection into `serve.handshake_failed`,
//! which told an operator nothing — a flaky client, an expired fleet
//! credential, and an active probe all looked identical. This module
//! replaces the lump with a per-cause taxonomy and is the **single
//! source of truth** for the names: the server emits only names minted
//! here, `Server::obs` documentation points here, DESIGN.md's metric
//! table is asserted against [`ALL_COUNTERS`] by a test, and
//! `ci/check_metrics.py --serve` carries a mirrored copy it validates
//! snapshots against.
//!
//! Name scheme: `serve.handshake.err.*` for pre-authorization protocol
//! failures, `serve.authz.err.*` (with a `chain.` sub-tree mirroring
//! [`ChainError`]) for refused client chains, `serve.request.err.*` for
//! per-frame refusals, `serve.privacy.*` for the cleartext-identity
//! meter, and bare `serve.*` for the PR 8 counters that survived.

use crate::tls::SessionError;
use mtls_pki::authz::AuthzError;
use mtls_pki::ChainError;

/// Every fixed counter name the serve path can emit. Latency histograms
/// (`serve.latency_us.<kind>[.<tenant>]`) are name-templated, not fixed,
/// so they live in [`HISTOGRAMS`]/[`LATENCY_PREFIX`] instead.
pub const ALL_COUNTERS: &[&str] = &[
    "serve.connections",
    "serve.handshake.ok",
    "serve.handshake.err.bad_record",
    "serve.handshake.err.unexpected_message",
    "serve.handshake.err.peer_alert",
    "serve.handshake.err.bad_frame",
    "serve.authz.err.no_certificate",
    "serve.authz.err.malformed",
    "serve.authz.err.policy",
    "serve.authz.err.chain.issuer_not_found",
    "serve.authz.err.chain.bad_signature",
    "serve.authz.err.chain.expired",
    "serve.authz.err.chain.incorrect_dates",
    "serve.authz.err.chain.untrusted_root",
    "serve.authz.err.chain.not_a_ca",
    "serve.authz.err.chain.too_deep",
    "serve.requests",
    "serve.requests.ping",
    "serve.requests.der",
    "serve.requests.shard",
    "serve.requests.metrics",
    "serve.request.err.unknown_kind",
    "serve.request.err.oversize_frame",
    "serve.request.err.metrics_forbidden",
    "serve.throttled",
    "serve.conn.closed_clean",
    "serve.conn.closed_error",
    "serve.privacy.cleartext_connections",
    "serve.privacy.identity_bytes_total",
];

/// Fixed histogram names (log2 buckets, microseconds unless stated).
pub const HISTOGRAMS: &[&str] = &[
    "serve.request_bytes",
    "serve.handshake_us",
    "serve.queue_wait_us",
    "serve.conn_lifetime_us",
    "serve.privacy.identity_bytes",
    "serve.privacy.chain_certs",
    "serve.privacy.san_count",
];

/// Per-kind / per-tenant latency histograms hang off this prefix:
/// `serve.latency_us.<kind>` and `serve.latency_us.<kind>.<tenant>`.
pub const LATENCY_PREFIX: &str = "serve.latency_us.";

/// Gauge names.
pub const GAUGES: &[&str] = &[
    "serve.privacy.max_identity_bytes",
    "serve.quota.tracked_tenants",
];

/// Whether `name` is a metric this taxonomy mints (used by the
/// doc-drift test to catch names the server emits but nothing owns).
pub fn is_known_metric(name: &str) -> bool {
    ALL_COUNTERS.contains(&name)
        || HISTOGRAMS.contains(&name)
        || GAUGES.contains(&name)
        || name.starts_with(LATENCY_PREFIX)
}

/// The counter a failed `tls::accept` maps to. Authorization refusals
/// route through [`authz_error_counter`]; everything else is a
/// handshake-layer cause.
pub fn handshake_error_counter(err: &SessionError) -> &'static str {
    match err {
        SessionError::Authz(e) => authz_error_counter(e),
        SessionError::Stream(_) => "serve.handshake.err.bad_record",
        SessionError::UnexpectedMessage(_) => "serve.handshake.err.unexpected_message",
        SessionError::PeerAlert => "serve.handshake.err.peer_alert",
        SessionError::BadFrame => "serve.handshake.err.bad_frame",
    }
}

/// The counter an [`AuthzError`] refusal maps to, with chain-validation
/// failures broken out per [`ChainError`] kind.
pub fn authz_error_counter(err: &AuthzError) -> &'static str {
    match err {
        AuthzError::NoCertificate => "serve.authz.err.no_certificate",
        AuthzError::Malformed => "serve.authz.err.malformed",
        AuthzError::Policy(_) => "serve.authz.err.policy",
        AuthzError::Chain(e) => match e {
            ChainError::IssuerNotFound => "serve.authz.err.chain.issuer_not_found",
            ChainError::BadSignature => "serve.authz.err.chain.bad_signature",
            ChainError::Expired => "serve.authz.err.chain.expired",
            ChainError::IncorrectDates => "serve.authz.err.chain.incorrect_dates",
            ChainError::UntrustedRoot => "serve.authz.err.chain.untrusted_root",
            ChainError::NotACa => "serve.authz.err.chain.not_a_ca",
            ChainError::TooDeep => "serve.authz.err.chain.too_deep",
        },
    }
}

/// The per-kind counter for a request frame, `None` for unknown kinds
/// (those count into `serve.request.err.unknown_kind` instead).
pub fn request_kind_counter(kind: u8) -> Option<&'static str> {
    match kind {
        crate::frame::REQ_PING => Some("serve.requests.ping"),
        crate::frame::REQ_DER => Some("serve.requests.der"),
        crate::frame::REQ_SHARD => Some("serve.requests.shard"),
        crate::frame::REQ_METRICS => Some("serve.requests.metrics"),
        _ => None,
    }
}

/// Short label for a request kind, used to template latency histogram
/// names (`serve.latency_us.<label>`).
pub fn request_kind_label(kind: u8) -> &'static str {
    match kind {
        crate::frame::REQ_PING => "ping",
        crate::frame::REQ_DER => "der",
        crate::frame::REQ_SHARD => "shard",
        crate::frame::REQ_METRICS => "metrics",
        _ => "unknown",
    }
}

/// Client-side mirror of [`handshake_error_counter`] for `serve::bench`:
/// the same taxonomy under the `bench.` prefix, so a bench run's view of
/// connection failures lines up cause-for-cause with the server's.
pub fn client_handshake_error_counter(err: &SessionError) -> &'static str {
    match err {
        // The client never sees the server's authz verdict directly —
        // a refusal arrives as the fatal alert.
        SessionError::Authz(_) | SessionError::PeerAlert => "bench.handshake.err.peer_alert",
        SessionError::Stream(_) => "bench.handshake.err.bad_record",
        SessionError::UnexpectedMessage(_) => "bench.handshake.err.unexpected_message",
        SessionError::BadFrame => "bench.handshake.err.bad_frame",
    }
}

/// Client-mirror counter names `serve::bench` emits.
pub const BENCH_COUNTERS: &[&str] = &[
    "bench.handshake.ok",
    "bench.handshake.err.bad_record",
    "bench.handshake.err.unexpected_message",
    "bench.handshake.err.peer_alert",
    "bench.handshake.err.bad_frame",
    "bench.resp.verdict",
    "bench.resp.pong",
    "bench.resp.throttled",
    "bench.resp.error",
    "bench.err.transport",
];

#[cfg(test)]
mod tests {
    use super::*;
    use mtls_tlssim::StreamError;

    #[test]
    fn every_mapped_counter_is_in_the_master_list() {
        let session_errors = [
            SessionError::Stream(StreamError::UnexpectedEof),
            SessionError::UnexpectedMessage("x"),
            SessionError::PeerAlert,
            SessionError::BadFrame,
            SessionError::Authz(AuthzError::NoCertificate),
            SessionError::Authz(AuthzError::Malformed),
            SessionError::Authz(AuthzError::Policy(Vec::new())),
        ];
        for e in &session_errors {
            let name = handshake_error_counter(e);
            assert!(ALL_COUNTERS.contains(&name), "{name} missing");
        }
        let chain_errors = [
            ChainError::IssuerNotFound,
            ChainError::BadSignature,
            ChainError::Expired,
            ChainError::IncorrectDates,
            ChainError::UntrustedRoot,
            ChainError::NotACa,
            ChainError::TooDeep,
        ];
        for e in chain_errors {
            let name = authz_error_counter(&AuthzError::Chain(e));
            assert!(ALL_COUNTERS.contains(&name), "{name} missing");
        }
        for kind in 0..=u8::MAX {
            if let Some(name) = request_kind_counter(kind) {
                assert!(ALL_COUNTERS.contains(&name), "{name} missing");
            }
        }
    }

    #[test]
    fn client_mirror_names_are_registered() {
        let session_errors = [
            SessionError::Stream(StreamError::UnexpectedEof),
            SessionError::UnexpectedMessage("x"),
            SessionError::PeerAlert,
            SessionError::BadFrame,
            SessionError::Authz(AuthzError::NoCertificate),
        ];
        for e in &session_errors {
            let name = client_handshake_error_counter(e);
            assert!(BENCH_COUNTERS.contains(&name), "{name} missing");
        }
    }

    #[test]
    fn known_metric_covers_all_families() {
        assert!(is_known_metric("serve.connections"));
        assert!(is_known_metric("serve.handshake_us"));
        assert!(is_known_metric("serve.quota.tracked_tenants"));
        assert!(is_known_metric("serve.latency_us.ping"));
        assert!(is_known_metric("serve.latency_us.der.tenant-alpha"));
        assert!(!is_known_metric("serve.handshake_failed"), "the old lump");
        assert!(!is_known_metric("serve.authz_rejected"), "the old lump");
    }

    #[test]
    fn kind_labels_and_counters_agree() {
        for kind in [
            crate::frame::REQ_PING,
            crate::frame::REQ_DER,
            crate::frame::REQ_SHARD,
            crate::frame::REQ_METRICS,
        ] {
            let label = request_kind_label(kind);
            assert_ne!(label, "unknown");
            assert_eq!(
                request_kind_counter(kind).unwrap(),
                format!("serve.requests.{label}")
            );
        }
        assert_eq!(request_kind_label(0x7F), "unknown");
        assert_eq!(request_kind_counter(0x7F), None);
    }

    /// The doc-drift satellite: DESIGN.md's Telemetry table must name
    /// every counter, histogram, and gauge this taxonomy mints.
    #[test]
    fn design_doc_names_every_metric() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
        let doc = std::fs::read_to_string(path).expect("read DESIGN.md");
        for name in ALL_COUNTERS.iter().chain(HISTOGRAMS).chain(GAUGES) {
            assert!(
                doc.contains(name),
                "DESIGN.md is missing metric `{name}` — regenerate the Telemetry table"
            );
        }
        assert!(
            doc.contains(LATENCY_PREFIX),
            "DESIGN.md must document the latency histogram template"
        );
    }
}
