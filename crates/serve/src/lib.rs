//! `mtls-serve` — the mTLS-terminated analysis service and its bench
//! client, built entirely on the mtlscope stack.
//!
//! The offline pipeline reads Zeek logs from disk; this crate puts the
//! same analysis behind a socket. A long-running TCP server terminates
//! mutual TLS using our own record layer ([`mtls_tlssim::stream`]),
//! authorizes the presented client chain through
//! [`mtls_pki::Authorizer`] to derive a tenant identity, enforces
//! per-tenant token-bucket quotas, and streams back verdicts that are
//! byte-identical to the offline pipeline — the verdict renderer in
//! [`mtls_core::verdict`] is the single shared implementation.
//!
//! Layers, bottom to top:
//!
//! - [`frame`] — `kind | u32 len | payload` application framing with an
//!   incremental reassembler (frames span records).
//! - [`quota`] — per-tenant token buckets driven by explicit elapsed
//!   time, so the server owns the only clock.
//! - [`tls`] — session establishment: the mutual-TLS handshake over any
//!   `Read`/`Write` pair, fragmenting and reassembling certificate
//!   flights at the 2^14 record boundary.
//! - [`taxonomy`] — the single source of truth for every metric name
//!   the serve path emits (per-cause handshake/authz counters, latency
//!   and privacy histograms, the client-side `bench.*` mirror).
//! - [`server`] — `TcpListener` accept loop with a bounded worker pool,
//!   request dispatch, per-cause `mtls-obs` instrumentation, a
//!   connection flight recorder, and the cleartext-identity privacy
//!   meter.
//! - [`client`] — blocking client session plus a keep-alive connection
//!   pool.
//! - [`bench`] — the `bench-client` driver: pooled connections, latency
//!   histograms, and a JSON report for CI gating.

pub mod bench;
pub mod client;
pub mod demo;
pub mod frame;
pub mod quota;
pub mod server;
pub mod taxonomy;
pub mod tls;

pub use bench::{run_bench, BenchConfig, BenchReport};
pub use client::{ClientPool, ClientSession, Response};
pub use frame::{encode_frame, Frame, FrameAssembler};
pub use quota::{QuotaClock, QuotaTable, TokenBucket};
pub use server::{Server, ServerConfig, METRICS_SCHEMA};
pub use tls::{accept, connect, Accepted, EndpointConfig, Session, SessionError};
