//! Mutual-TLS session establishment over real sockets, on our own stack.
//!
//! Both sides speak the `tlssim` wire format through the streaming
//! [`RecordReader`]/[`RecordWriter`] layers: ClientHello → ServerHello +
//! Certificate + CertificateRequest + ServerHelloDone → client
//! Certificate + ChangeCipherSpec + Finished → (server validates the
//! chain through [`mtls_pki::Authorizer`]) → server ChangeCipherSpec +
//! Finished → framed application data. Certificate messages fragment at
//! the 2^14 record limit and reassemble on the far side — the exact paths
//! the record-layer bugfix sweep hardened.
//!
//! The simulation stack has no key schedule (a passive-measurement
//! reproduction never needed one), so `application_data` payloads are
//! structurally framed but not encrypted; DESIGN.md §11 spells out this
//! boundary. Everything else — framing, fragmentation, chain validation,
//! identity derivation — is the real protocol shape.

use crate::frame::{encode_frame, Frame, FrameAssembler};
use mtls_pki::{Authorizer, AuthzError, Tenant};
use mtls_tlssim::msgs::{
    encode_certificate_body, encode_certificate_request_body, handshake_envelope,
    parse_certificate_body, ClientHello, ServerHello, HS_CERTIFICATE, HS_CERTIFICATE_REQUEST,
    HS_CLIENT_HELLO, HS_FINISHED, HS_SERVER_HELLO, HS_SERVER_HELLO_DONE,
};
use mtls_tlssim::stream::{HandshakeAssembler, RecordReader, RecordWriter, StreamError};
use mtls_tlssim::wire::{legacy_version_bytes, ContentType};
use mtls_tlssim::TlsVersion;
use std::io::{Read, Write};

/// Fatal alert payload: `handshake_failure` (RFC 5246 §7.2.2).
const ALERT_HANDSHAKE_FAILURE: [u8; 2] = [2, 40];
/// Fatal alert payload: `bad_certificate`.
const ALERT_BAD_CERTIFICATE: [u8; 2] = [2, 42];

/// Why a session could not be established or continued.
#[derive(Debug)]
pub enum SessionError {
    /// Transport or record-layer failure.
    Stream(StreamError),
    /// The peer sent something other than the expected handshake message.
    UnexpectedMessage(&'static str),
    /// The peer closed or alerted mid-handshake.
    PeerAlert,
    /// The client chain was refused.
    Authz(AuthzError),
    /// A frame length field was implausible.
    BadFrame,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Stream(e) => write!(f, "stream error: {e}"),
            SessionError::UnexpectedMessage(what) => write!(f, "unexpected message: {what}"),
            SessionError::PeerAlert => f.write_str("peer sent a fatal alert"),
            SessionError::Authz(e) => write!(f, "client chain refused: {e}"),
            SessionError::BadFrame => f.write_str("oversized frame"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<StreamError> for SessionError {
    fn from(e: StreamError) -> SessionError {
        SessionError::Stream(e)
    }
}

/// What each endpoint brings to the handshake.
pub struct EndpointConfig {
    /// Version to negotiate (the service speaks TLS 1.2 so chains stay
    /// visible to a passive monitor, matching the paper's main corpus).
    pub version: TlsVersion,
    /// Certificate chain to present, leaf first, DER blobs.
    pub chain: Vec<Vec<u8>>,
    /// Deterministic seed for hello randoms.
    pub random_seed: u64,
}

fn seeded_random(seed: u64, label: u8) -> [u8; 32] {
    let mut out = [0u8; 32];
    let mut state = seed ^ (u64::from(label) << 56) ^ 0x9E37_79B9_7F4A_7C15;
    for chunk in out.chunks_mut(8) {
        state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(31);
        chunk.copy_from_slice(&state.to_be_bytes());
    }
    out
}

/// An established session over a (read, write) stream pair — for a
/// `TcpStream`, `(stream.try_clone()?, stream)`.
pub struct Session<R: Read, W: Write> {
    reader: RecordReader<R>,
    writer: RecordWriter<W>,
    assembler: HandshakeAssembler,
    frames: FrameAssembler,
}

/// Read handshake messages until one arrives, skipping ChangeCipherSpec,
/// erroring on alerts and application data.
fn next_handshake<R: Read>(
    reader: &mut RecordReader<R>,
    assembler: &mut HandshakeAssembler,
) -> Result<(u8, Vec<u8>), SessionError> {
    loop {
        if let Some(msg) = assembler
            .next_message()
            .map_err(|e| SessionError::Stream(StreamError::Wire(e)))?
        {
            return Ok(msg);
        }
        let Some((header, payload)) = reader.read_record()? else {
            return Err(SessionError::Stream(StreamError::UnexpectedEof));
        };
        match header.content_type {
            ContentType::Handshake => assembler.push(&payload),
            ContentType::ChangeCipherSpec => {}
            ContentType::Alert => return Err(SessionError::PeerAlert),
            ContentType::ApplicationData => {
                return Err(SessionError::UnexpectedMessage("application data"))
            }
        }
    }
}

/// What a successful server-side handshake yields.
pub struct Accepted<R: Read, W: Write> {
    /// The established session.
    pub session: Session<R, W>,
    /// The identity the client chain mapped to.
    pub tenant: Tenant,
    /// The DER chain the client presented (leaf first) — the same
    /// cleartext bytes a passive on-path observer captured, handed up
    /// so the server can account the privacy exposure
    /// ([`mtls_tlssim::identity_exposure`]).
    pub client_chain: Vec<Vec<u8>>,
}

/// Server side: run the handshake, authorize the client chain, return the
/// session, tenant, and presented chain. On an authorization failure the
/// peer gets a fatal alert and the error comes back to the caller.
pub fn accept<R: Read, W: Write>(
    read: R,
    write: W,
    cfg: &EndpointConfig,
    authorizer: &Authorizer,
    now: mtls_asn1::Asn1Time,
) -> Result<Accepted<R, W>, SessionError> {
    let version = legacy_version_bytes(cfg.version);
    let mut reader = RecordReader::new(read);
    let mut writer = RecordWriter::new(write, version);
    let mut assembler = HandshakeAssembler::new();

    // ClientHello.
    let (msg_type, _body) = next_handshake(&mut reader, &mut assembler)?;
    if msg_type != HS_CLIENT_HELLO {
        return Err(SessionError::UnexpectedMessage("expected ClientHello"));
    }

    // ServerHello + Certificate + CertificateRequest + ServerHelloDone,
    // one fragmented flight.
    let sh = ServerHello {
        version: cfg.version,
    };
    let mut flight = handshake_envelope(
        HS_SERVER_HELLO,
        &sh.encode(&seeded_random(cfg.random_seed, 2)),
    );
    flight.extend(handshake_envelope(
        HS_CERTIFICATE,
        &encode_certificate_body(&cfg.chain),
    ));
    flight.extend(handshake_envelope(
        HS_CERTIFICATE_REQUEST,
        &encode_certificate_request_body(),
    ));
    flight.extend(handshake_envelope(HS_SERVER_HELLO_DONE, &[]));
    writer.write(ContentType::Handshake, &flight)?;

    // Client Certificate.
    let (msg_type, body) = next_handshake(&mut reader, &mut assembler)?;
    if msg_type != HS_CERTIFICATE {
        return Err(SessionError::UnexpectedMessage(
            "expected client Certificate",
        ));
    }
    let chain =
        parse_certificate_body(&body).map_err(|e| SessionError::Stream(StreamError::Wire(e)))?;

    // Client Finished.
    let (msg_type, _body) = next_handshake(&mut reader, &mut assembler)?;
    if msg_type != HS_FINISHED {
        return Err(SessionError::UnexpectedMessage("expected client Finished"));
    }

    // The authorization gate: refuse the chain → fatal alert.
    let tenant = match authorizer.authorize(&chain, now) {
        Ok(t) => t,
        Err(e) => {
            let alert = match &e {
                AuthzError::NoCertificate => ALERT_HANDSHAKE_FAILURE,
                _ => ALERT_BAD_CERTIFICATE,
            };
            let _ = writer.write_single(ContentType::Alert, &alert);
            return Err(SessionError::Authz(e));
        }
    };

    writer.write_single(ContentType::ChangeCipherSpec, &[1])?;
    writer.write(
        ContentType::Handshake,
        &handshake_envelope(HS_FINISHED, &[0u8; 12]),
    )?;

    Ok(Accepted {
        session: Session {
            reader,
            writer,
            assembler,
            frames: FrameAssembler::new(),
        },
        tenant,
        client_chain: chain,
    })
}

/// Client side: run the handshake against an accepting server.
pub fn connect<R: Read, W: Write>(
    read: R,
    write: W,
    cfg: &EndpointConfig,
    sni: Option<&str>,
) -> Result<Session<R, W>, SessionError> {
    let version = legacy_version_bytes(cfg.version);
    let mut reader = RecordReader::new(read);
    let mut writer = RecordWriter::new(write, version);
    let mut assembler = HandshakeAssembler::new();

    let ch = ClientHello {
        legacy_version: cfg.version.min(TlsVersion::Tls12),
        sni: sni.map(str::to_owned),
        supported_versions: Vec::new(),
    };
    writer.write(
        ContentType::Handshake,
        &handshake_envelope(
            HS_CLIENT_HELLO,
            &ch.encode(&seeded_random(cfg.random_seed, 1)),
        ),
    )?;

    // ServerHello, then the rest of the server flight.
    let (msg_type, _) = next_handshake(&mut reader, &mut assembler)?;
    if msg_type != HS_SERVER_HELLO {
        return Err(SessionError::UnexpectedMessage("expected ServerHello"));
    }
    let mut cert_req_seen = false;
    loop {
        let (msg_type, _body) = next_handshake(&mut reader, &mut assembler)?;
        match msg_type {
            HS_CERTIFICATE => {}
            HS_CERTIFICATE_REQUEST => cert_req_seen = true,
            HS_SERVER_HELLO_DONE => break,
            _ => return Err(SessionError::UnexpectedMessage("in server flight")),
        }
    }
    if !cert_req_seen {
        return Err(SessionError::UnexpectedMessage(
            "server did not request a client certificate",
        ));
    }

    // Client Certificate + CCS + Finished.
    writer.write(
        ContentType::Handshake,
        &handshake_envelope(HS_CERTIFICATE, &encode_certificate_body(&cfg.chain)),
    )?;
    writer.write_single(ContentType::ChangeCipherSpec, &[1])?;
    writer.write(
        ContentType::Handshake,
        &handshake_envelope(HS_FINISHED, &[0u8; 12]),
    )?;

    // Server CCS + Finished — or the authorization alert.
    let (msg_type, _) = next_handshake(&mut reader, &mut assembler)?;
    if msg_type != HS_FINISHED {
        return Err(SessionError::UnexpectedMessage("expected server Finished"));
    }

    Ok(Session {
        reader,
        writer,
        assembler,
        frames: FrameAssembler::new(),
    })
}

impl<R: Read, W: Write> Session<R, W> {
    /// Send one frame inside `application_data` records.
    pub fn send_frame(&mut self, kind: u8, payload: &[u8]) -> Result<(), SessionError> {
        let frame = encode_frame(kind, payload);
        self.writer.write(ContentType::ApplicationData, &frame)?;
        Ok(())
    }

    /// Send raw bytes as `application_data` without frame encoding —
    /// the hook the planted-failure harness uses to put a framing
    /// violation (e.g. an oversize length field) on the wire.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), SessionError> {
        self.writer.write(ContentType::ApplicationData, bytes)?;
        Ok(())
    }

    /// Receive the next frame; `Ok(None)` is a clean peer close.
    pub fn recv_frame(&mut self) -> Result<Option<Frame>, SessionError> {
        loop {
            match self.frames.next_frame() {
                Ok(Some(frame)) => return Ok(Some(frame)),
                Ok(None) => {}
                Err(_) => return Err(SessionError::BadFrame),
            }
            let Some((header, payload)) = self.reader.read_record()? else {
                return if self.frames.pending() == 0 {
                    Ok(None)
                } else {
                    Err(SessionError::Stream(StreamError::UnexpectedEof))
                };
            };
            match header.content_type {
                ContentType::ApplicationData => self.frames.push(&payload),
                ContentType::Alert => return Err(SessionError::PeerAlert),
                // Ignore stray handshake/CCS records post-establishment;
                // the assembler keeps its place for renegotiation-shaped
                // noise without acting on it.
                ContentType::Handshake => self.assembler.push(&payload),
                ContentType::ChangeCipherSpec => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtls_asn1::Asn1Time;
    use mtls_crypto::{KeyRegistry, Keypair};
    use mtls_pki::{CertificateAuthority, TrustAnchors, ValidationPolicy};
    use mtls_x509::{CertificateBuilder, DistinguishedName};

    fn now() -> Asn1Time {
        Asn1Time::from_ymd(2022, 6, 1)
    }

    fn world() -> (CertificateAuthority, Authorizer) {
        let root = CertificateAuthority::new_root(
            b"tls-test-root",
            DistinguishedName::builder()
                .organization("Serve Test CA")
                .build(),
            Asn1Time::from_ymd(2022, 1, 1),
        );
        let mut registry = KeyRegistry::new();
        root.register_key(&mut registry);
        let authorizer = Authorizer {
            anchors: TrustAnchors::new(),
            registry,
            policy: ValidationPolicy::enterprise(),
            quota_public: 500,
            quota_private: 100,
        };
        (root, authorizer)
    }

    fn leaf(ca: &CertificateAuthority, cn: &str) -> Vec<u8> {
        let key = Keypair::from_seed(cn.as_bytes());
        ca.issue(
            CertificateBuilder::new()
                .subject(DistinguishedName::builder().common_name(cn).build())
                .validity(
                    Asn1Time::from_ymd(2022, 1, 1),
                    Asn1Time::from_ymd(2023, 1, 1),
                )
                .subject_key(key.key_id()),
        )
        .to_der()
    }

    /// Drive client and server through in-memory pipes without threads:
    /// run the client against a buffer, feed its output to the server,
    /// and so on, alternating full flights.
    #[test]
    fn in_memory_handshake_establishes_and_frames_flow() {
        let (root, authorizer) = world();
        let server_cfg = EndpointConfig {
            version: TlsVersion::Tls12,
            chain: vec![leaf(&root, "serve.example"), root.certificate().to_der()],
            random_seed: 7,
        };
        let client_cfg = EndpointConfig {
            version: TlsVersion::Tls12,
            chain: vec![leaf(&root, "tenant-a"), root.certificate().to_der()],
            random_seed: 8,
        };

        // The client blocks for the server flight mid-connect, so the
        // test needs real duplex plumbing: a loopback socket pair with
        // the client on its own thread.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_thread = std::thread::spawn(move || {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            let mut session = connect(
                stream.try_clone().unwrap(),
                stream,
                &client_cfg,
                Some("serve.example"),
            )
            .unwrap();
            session.send_frame(crate::frame::REQ_PING, b"").unwrap();
            let resp = session.recv_frame().unwrap().unwrap();
            assert_eq!(resp.kind, crate::frame::RESP_PONG);
        });
        let (stream, _) = listener.accept().unwrap();
        let accepted = accept(
            stream.try_clone().unwrap(),
            stream,
            &server_cfg,
            &authorizer,
            now(),
        )
        .unwrap();
        assert_eq!(accepted.tenant.name, "tenant-a");
        assert!(!accepted.tenant.publicly_trusted);
        assert_eq!(
            accepted.client_chain.len(),
            2,
            "presented chain handed back for the privacy meter"
        );
        let mut session = accepted.session;
        let req = session.recv_frame().unwrap().unwrap();
        assert_eq!(req.kind, crate::frame::REQ_PING);
        session.send_frame(crate::frame::RESP_PONG, b"").unwrap();
        client_thread.join().unwrap();
    }

    #[test]
    fn expired_client_cert_gets_alert() {
        let (root, authorizer) = world();
        let server_cfg = EndpointConfig {
            version: TlsVersion::Tls12,
            chain: vec![leaf(&root, "serve.example"), root.certificate().to_der()],
            random_seed: 7,
        };
        let key = Keypair::from_seed(b"expired-tenant");
        let expired = root
            .issue(
                CertificateBuilder::new()
                    .subject(DistinguishedName::builder().common_name("late").build())
                    .validity(
                        Asn1Time::from_ymd(2021, 1, 1),
                        Asn1Time::from_ymd(2021, 6, 1),
                    )
                    .subject_key(key.key_id()),
            )
            .to_der();
        let client_cfg = EndpointConfig {
            version: TlsVersion::Tls12,
            chain: vec![expired, root.certificate().to_der()],
            random_seed: 9,
        };

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_thread = std::thread::spawn(move || {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            match connect(stream.try_clone().unwrap(), stream, &client_cfg, None) {
                Err(SessionError::PeerAlert) => {}
                Err(e) => panic!("expected PeerAlert, got {e}"),
                Ok(_) => panic!("handshake unexpectedly succeeded"),
            }
        });
        let (stream, _) = listener.accept().unwrap();
        match accept(
            stream.try_clone().unwrap(),
            stream,
            &server_cfg,
            &authorizer,
            now(),
        ) {
            Err(SessionError::Authz(_)) => {}
            Err(e) => panic!("expected Authz error, got {e}"),
            Ok(_) => panic!("accept unexpectedly succeeded"),
        }
        client_thread.join().unwrap();
    }

    #[test]
    fn big_chain_fragments_through_the_session() {
        // A chain fat enough that the Certificate message spans several
        // records end-to-end over a real socket.
        let (root, authorizer) = world();
        let mut chain = vec![leaf(&root, "serve.example")];
        chain.push(root.certificate().to_der());
        let server_cfg = EndpointConfig {
            version: TlsVersion::Tls12,
            chain,
            random_seed: 7,
        };
        // Client presents its leaf + root + a pile of unrelated extra
        // certs, pushing the Certificate message far past 2^14 bytes.
        let mut client_chain = vec![leaf(&root, "fat-tenant"), root.certificate().to_der()];
        for i in 0..40 {
            client_chain.push(leaf(&root, &format!("padding-cert-{i}")));
        }
        let total: usize = client_chain.iter().map(Vec::len).sum();
        assert!(
            total > 1 << 14,
            "test needs a multi-record chain, got {total}"
        );
        let client_cfg = EndpointConfig {
            version: TlsVersion::Tls12,
            chain: client_chain,
            random_seed: 10,
        };

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_thread = std::thread::spawn(move || {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            let mut session =
                connect(stream.try_clone().unwrap(), stream, &client_cfg, None).unwrap();
            session.send_frame(crate::frame::REQ_PING, b"").unwrap();
            assert_eq!(
                session.recv_frame().unwrap().unwrap().kind,
                crate::frame::RESP_PONG
            );
        });
        let (stream, _) = listener.accept().unwrap();
        let accepted = accept(
            stream.try_clone().unwrap(),
            stream,
            &server_cfg,
            &authorizer,
            now(),
        )
        .unwrap();
        assert_eq!(accepted.tenant.name, "fat-tenant");
        assert_eq!(accepted.client_chain.len(), 42);
        let mut session = accepted.session;
        let req = session.recv_frame().unwrap().unwrap();
        assert_eq!(req.kind, crate::frame::REQ_PING);
        session.send_frame(crate::frame::RESP_PONG, b"").unwrap();
        client_thread.join().unwrap();
    }
}
