//! A self-contained demo world for the serve stack: a private CA, a
//! server identity, tenant client chains (one valid, one expired), and a
//! verdict context matching the offline campus analysis. The e2e tests,
//! the CI serve smoke, and the `mtlscope serve --demo` binary all start
//! from here so they exercise the same credentials.

use crate::server::ServerConfig;
use crate::tls::EndpointConfig;
use mtls_asn1::Asn1Time;
use mtls_core::testutil;
use mtls_core::verdict::VerdictContext;
use mtls_crypto::{hex, sha256, KeyRegistry, Keypair};
use mtls_obs::Obs;
use mtls_pki::{Authorizer, CertificateAuthority, CtLog, TrustAnchors, ValidationPolicy};
use mtls_tlssim::TlsVersion;
use mtls_x509::{CertificateBuilder, DistinguishedName, GeneralName};

/// The demo epoch: validation happens mid-2022, inside every minted
/// chain's validity window (matching the offline testutil corpus).
pub fn demo_now() -> Asn1Time {
    Asn1Time::from_ymd(2022, 6, 1)
}

/// Credentials and sample inputs for a demo serve deployment.
pub struct DemoWorld {
    /// The private root everything chains to.
    pub root: CertificateAuthority,
    /// What the server presents.
    pub server_endpoint: EndpointConfig,
    /// A valid tenant chain (CN `tenant-alpha`).
    pub tenant_endpoint: EndpointConfig,
    /// An expired tenant chain the authorizer must refuse.
    pub expired_endpoint: EndpointConfig,
    /// An ops-class tenant chain (CN `tenant-ops`, OU
    /// [`mtls_pki::OPS_ORGANIZATIONAL_UNIT`]) — allowed to pull the
    /// `REQ_METRICS` admin frame.
    pub ops_endpoint: EndpointConfig,
    /// A chain minted by a rogue CA whose key the demo authorizer never
    /// registered: the chain carries its own "root", but the issuer
    /// signature cannot be verified, so authorization fails with
    /// `ChainError::BadSignature` — the "unknown tenant" planted
    /// failure.
    pub rogue_endpoint: EndpointConfig,
    /// A standalone DER blob to submit as a `REQ_DER` workload.
    pub sample_der: Vec<u8>,
    /// A two-row Zeek `x509.log` shard to submit as `REQ_SHARD`.
    pub sample_shard: Vec<u8>,
}

fn issue_der(root: &CertificateAuthority, cn: &str, from: Asn1Time, to: Asn1Time) -> Vec<u8> {
    let key = Keypair::from_seed(cn.as_bytes());
    root.issue(
        CertificateBuilder::new()
            .subject(DistinguishedName::builder().common_name(cn).build())
            .san(vec![GeneralName::Dns(cn.into())])
            .validity(from, to)
            .subject_key(key.key_id()),
    )
    .to_der()
}

/// Build the demo world deterministically (same bytes every run).
pub fn demo_world() -> DemoWorld {
    let root = CertificateAuthority::new_root(
        b"serve-demo-root",
        DistinguishedName::builder()
            .organization("Commonwealth University")
            .common_name("Commonwealth University Root CA")
            .build(),
        Asn1Time::from_ymd(2022, 1, 1),
    );
    let ok_from = Asn1Time::from_ymd(2022, 1, 1);
    let ok_to = Asn1Time::from_ymd(2023, 1, 1);
    let root_der = root.certificate().to_der();

    let server_endpoint = EndpointConfig {
        version: TlsVersion::Tls12,
        chain: vec![
            issue_der(&root, "mtlscope-serve.campus.example", ok_from, ok_to),
            root_der.clone(),
        ],
        random_seed: 0x5e12,
    };
    let tenant_endpoint = EndpointConfig {
        version: TlsVersion::Tls12,
        chain: vec![
            issue_der(&root, "tenant-alpha", ok_from, ok_to),
            root_der.clone(),
        ],
        random_seed: 0xa11a,
    };
    let expired_endpoint = EndpointConfig {
        version: TlsVersion::Tls12,
        chain: vec![
            issue_der(
                &root,
                "tenant-stale",
                Asn1Time::from_ymd(2021, 1, 1),
                Asn1Time::from_ymd(2021, 6, 1),
            ),
            root_der.clone(),
        ],
        random_seed: 0xdead,
    };

    // Ops identity: same root, leaf carries the ops OU.
    let ops_key = Keypair::from_seed(b"tenant-ops");
    let ops_leaf = root
        .issue(
            CertificateBuilder::new()
                .subject(
                    DistinguishedName::builder()
                        .common_name("tenant-ops")
                        .organizational_unit(mtls_pki::OPS_ORGANIZATIONAL_UNIT)
                        .build(),
                )
                .san(vec![GeneralName::Dns("tenant-ops".into())])
                .validity(ok_from, ok_to)
                .subject_key(ops_key.key_id()),
        )
        .to_der();
    let ops_endpoint = EndpointConfig {
        version: TlsVersion::Tls12,
        chain: vec![ops_leaf, root_der],
        random_seed: 0x0b5e,
    };

    // Rogue identity: a whole parallel CA the authorizer knows nothing
    // about. Chain shape is fine; the signature can't be verified.
    let rogue_root = CertificateAuthority::new_root(
        b"serve-rogue-root",
        DistinguishedName::builder()
            .organization("Rogue Issuance Bureau")
            .common_name("Rogue Root CA")
            .build(),
        Asn1Time::from_ymd(2022, 1, 1),
    );
    let rogue_endpoint = EndpointConfig {
        version: TlsVersion::Tls12,
        chain: vec![
            issue_der(&rogue_root, "tenant-rogue", ok_from, ok_to),
            rogue_root.certificate().to_der(),
        ],
        random_seed: 0x0666,
    };

    // Sample workloads: one DER blob and one shard built from two
    // records, mapped exactly the way the traffic emitter logs them.
    let sample_der = issue_der(&root, "portal.campus.example", ok_from, ok_to);
    let at = demo_now().unix() as f64;
    let records: Vec<mtls_zeek::X509Record> = [
        issue_der(&root, "vpn.campus.example", ok_from, ok_to),
        issue_der(&root, "mail.campus.example", ok_from, ok_to),
    ]
    .iter()
    .map(|der| {
        let cert = mtls_x509::Certificate::from_der(der).expect("demo cert");
        mtls_netsim::to_x509_record(&cert, &hex::encode(&sha256(der)), at)
    })
    .collect();
    let mut sample_shard = Vec::new();
    mtls_zeek::write_x509_log(&mut sample_shard, &records).expect("demo shard");

    DemoWorld {
        root,
        server_endpoint,
        tenant_endpoint,
        expired_endpoint,
        ops_endpoint,
        rogue_endpoint,
        sample_der,
        sample_shard,
    }
}

/// An authorizer that recognizes the demo root's key (private anchor,
/// enterprise policy — the paper's dominant deployment shape).
pub fn demo_authorizer(world: &DemoWorld, quota_public: u32, quota_private: u32) -> Authorizer {
    let mut registry = KeyRegistry::new();
    world.root.register_key(&mut registry);
    Authorizer {
        anchors: TrustAnchors::new(),
        registry,
        policy: ValidationPolicy::enterprise(),
        quota_public,
        quota_private,
    }
}

/// The verdict context the demo server renders against — the same
/// campus world knowledge the offline testutil corpus uses.
pub fn demo_verdict_context() -> VerdictContext {
    VerdictContext {
        policy: ValidationPolicy::enterprise(),
        meta: testutil::meta(),
        ct: CtLog::new(),
        at: demo_now().unix() as f64,
    }
}

/// A ready-to-start demo server config bound to `addr` with
/// `quota_private` requests/second per private tenant. The flight
/// recorder gets the default ring; override `flight_capacity` on the
/// returned config to shrink or disable it (the uninstrumented
/// overhead-guard arm runs with 0).
pub fn demo_server_config(
    world: &DemoWorld,
    addr: &str,
    workers: usize,
    quota_private: u32,
    obs: Obs,
) -> ServerConfig {
    ServerConfig {
        addr: addr.to_string(),
        workers,
        endpoint: EndpointConfig {
            version: world.server_endpoint.version,
            chain: world.server_endpoint.chain.clone(),
            random_seed: world.server_endpoint.random_seed,
        },
        authorizer: demo_authorizer(world, quota_private.saturating_mul(5), quota_private),
        verdict: demo_verdict_context(),
        now: demo_now(),
        obs,
        flight_capacity: crate::server::DEFAULT_FLIGHT_CAPACITY,
    }
}
