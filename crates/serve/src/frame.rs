//! Application framing inside the mTLS tunnel.
//!
//! Once the handshake completes, requests and responses travel as frames
//! inside `application_data` records: `kind (u8) | length (u32 BE) |
//! payload`. A frame is larger than a record on purpose — a 1 MiB shard
//! upload spans many records — so the receiving side reassembles frames
//! from record payloads exactly the way the handshake layer reassembles
//! messages, with the same tolerance for arbitrary boundaries.

/// Request: one raw DER certificate blob.
pub const REQ_DER: u8 = 1;
/// Request: one Zeek `x509.log` shard (TSV bytes).
pub const REQ_SHARD: u8 = 2;
/// Request: liveness probe, empty payload.
pub const REQ_PING: u8 = 3;
/// Request: the live metrics + flight-recorder snapshot (admin frame,
/// ops-class tenants only; empty payload).
pub const REQ_METRICS: u8 = 4;
/// Response: a verdict (UTF-8 text, byte-identical to the offline path).
pub const RESP_VERDICT: u8 = 0x81;
/// Response: a request-level error (UTF-8 text).
pub const RESP_ERROR: u8 = 0x82;
/// Response: the tenant's token bucket is empty.
pub const RESP_THROTTLED: u8 = 0x83;
/// Response: pong, empty payload.
pub const RESP_PONG: u8 = 0x84;
/// Response: the metrics snapshot (JSON envelope, UTF-8 text).
pub const RESP_METRICS: u8 = 0x85;

/// Upper bound on a frame payload: large enough for any realistic shard,
/// small enough that a hostile length field cannot balloon the buffer.
pub const MAX_FRAME_PAYLOAD: usize = 8 << 20;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: u8,
    pub payload: Vec<u8>,
}

/// Framing violation: a length field past [`MAX_FRAME_PAYLOAD`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge(pub usize);

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame payload of {} bytes exceeds the limit", self.0)
    }
}

impl std::error::Error for FrameTooLarge {}

/// Encode one frame.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame reassembler over record payloads.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameAssembler {
    /// Fresh, empty assembler.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Append one `application_data` record payload.
    pub fn push(&mut self, payload: &[u8]) {
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(payload);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pull the next complete frame; `Ok(None)` means "need more bytes".
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameTooLarge> {
        let data = &self.buf[self.pos..];
        if data.len() < 5 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([data[1], data[2], data[3], data[4]]) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(FrameTooLarge(len));
        }
        if data.len() < 5 + len {
            return Ok(None);
        }
        let frame = Frame {
            kind: data[0],
            payload: data[5..5 + len].to_vec(),
        };
        self.pos += 5 + len;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_any_chunking() {
        let mut wire = encode_frame(REQ_DER, b"der-bytes");
        wire.extend(encode_frame(REQ_PING, b""));
        wire.extend(encode_frame(REQ_SHARD, &vec![7u8; 100_000]));
        for chunk_len in [1usize, 3, 16, 1000, 1 << 20] {
            let mut a = FrameAssembler::new();
            let mut frames = Vec::new();
            for chunk in wire.chunks(chunk_len) {
                a.push(chunk);
                while let Some(f) = a.next_frame().unwrap() {
                    frames.push(f);
                }
            }
            assert_eq!(frames.len(), 3, "chunk_len={chunk_len}");
            assert_eq!(frames[0].kind, REQ_DER);
            assert_eq!(frames[0].payload, b"der-bytes");
            assert_eq!(frames[1].kind, REQ_PING);
            assert!(frames[1].payload.is_empty());
            assert_eq!(frames[2].payload.len(), 100_000);
            assert_eq!(a.pending(), 0);
        }
    }

    #[test]
    fn oversize_length_rejected() {
        let mut a = FrameAssembler::new();
        let mut hdr = vec![REQ_SHARD];
        hdr.extend_from_slice(&(u32::MAX).to_be_bytes());
        a.push(&hdr);
        assert!(a.next_frame().is_err());
    }
}
