//! Blocking client for the serve protocol: one mTLS session per TCP
//! connection, plus a keep-alive pool that round-robins requests across
//! several warm connections (the shape the bench client measures).

use crate::frame::{
    encode_frame, Frame, MAX_FRAME_PAYLOAD, REQ_DER, REQ_METRICS, REQ_PING, REQ_SHARD,
    RESP_METRICS, RESP_PONG, RESP_VERDICT,
};
use crate::tls::{self, EndpointConfig, Session, SessionError};
use mtls_tlssim::StreamError;
use std::io;
use std::net::TcpStream;

/// What a request came back as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The rendered verdict text.
    Verdict(String),
    /// Liveness ack.
    Pong,
    /// The server refused the request for this cycle.
    Throttled,
    /// A request-level error message from the server.
    Error(String),
    /// The metrics snapshot JSON (ops-class tenants only).
    Metrics(String),
}

/// One established connection to the server.
pub struct ClientSession {
    session: Session<TcpStream, TcpStream>,
}

impl ClientSession {
    /// Connect and run the mutual-TLS handshake, presenting `cfg.chain`.
    pub fn connect(
        addr: &str,
        cfg: &EndpointConfig,
        sni: Option<&str>,
    ) -> io::Result<ClientSession> {
        ClientSession::connect_tls(addr, cfg, sni)
            .map_err(|e| io::Error::new(io::ErrorKind::ConnectionRefused, e.to_string()))
    }

    /// Like [`ClientSession::connect`] but preserving the
    /// [`SessionError`] cause, so the bench client can mirror the
    /// server's handshake-failure taxonomy (`bench.handshake.err.*`).
    pub fn connect_tls(
        addr: &str,
        cfg: &EndpointConfig,
        sni: Option<&str>,
    ) -> Result<ClientSession, SessionError> {
        let stream = TcpStream::connect(addr).map_err(|e| SessionError::Stream(e.into()))?;
        let _ = stream.set_nodelay(true);
        let read = stream
            .try_clone()
            .map_err(|e| SessionError::Stream(e.into()))?;
        let session = tls::connect(read, stream, cfg, sni)?;
        Ok(ClientSession { session })
    }

    fn round_trip(&mut self, kind: u8, payload: &[u8]) -> Result<Response, SessionError> {
        self.session.send_frame(kind, payload)?;
        let frame = self
            .session
            .recv_frame()?
            .ok_or(SessionError::Stream(StreamError::UnexpectedEof))?;
        Ok(decode_response(frame))
    }

    /// Submit one DER certificate blob for a verdict.
    pub fn request_der(&mut self, der: &[u8]) -> Result<Response, SessionError> {
        self.round_trip(REQ_DER, der)
    }

    /// Submit one Zeek x509 shard (TSV bytes) for a verdict.
    pub fn request_shard(&mut self, tsv: &[u8]) -> Result<Response, SessionError> {
        self.round_trip(REQ_SHARD, tsv)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response, SessionError> {
        self.round_trip(REQ_PING, &[])
    }

    /// Fetch the live metrics + flight-recorder snapshot (the admin
    /// frame; the server answers only ops-class tenants).
    pub fn request_metrics(&mut self) -> Result<Response, SessionError> {
        self.round_trip(REQ_METRICS, &[])
    }

    /// Round-trip an arbitrary frame kind — the probe path the planted
    /// failure scenarios use to exercise `serve.request.err.unknown_kind`.
    pub fn request_raw(&mut self, kind: u8, payload: &[u8]) -> Result<Response, SessionError> {
        self.round_trip(kind, payload)
    }

    /// Send a frame header whose length field exceeds
    /// [`MAX_FRAME_PAYLOAD`] without the body — the cheapest way to
    /// plant an oversize-frame violation. The server must reject it at
    /// the header (and close) without ever taking a quota token.
    pub fn send_oversize_header(&mut self) -> Result<(), SessionError> {
        let mut header = encode_frame(REQ_DER, &[]);
        header[1..5].copy_from_slice(&((MAX_FRAME_PAYLOAD as u32) + 1).to_be_bytes());
        self.session.send_raw(&header)
    }

    /// Whether the server closed the connection (next read is EOF or an
    /// error). Consumes the stream position, so only call when no
    /// response is expected.
    pub fn expect_close(&mut self) -> bool {
        !matches!(self.session.recv_frame(), Ok(Some(_)))
    }
}

fn decode_response(frame: Frame) -> Response {
    match frame.kind {
        RESP_VERDICT => Response::Verdict(String::from_utf8_lossy(&frame.payload).into_owned()),
        RESP_PONG => Response::Pong,
        crate::frame::RESP_THROTTLED => Response::Throttled,
        RESP_METRICS => Response::Metrics(String::from_utf8_lossy(&frame.payload).into_owned()),
        _ => Response::Error(String::from_utf8_lossy(&frame.payload).into_owned()),
    }
}

/// A fixed-size pool of keep-alive sessions, handed out round-robin.
/// Each session carries the same client identity; the point of the pool
/// is amortizing handshakes across many requests, exactly what a real
/// service client does.
pub struct ClientPool {
    sessions: Vec<ClientSession>,
    next: usize,
}

impl ClientPool {
    /// Open `size` connections up front (handshakes happen here, not on
    /// the request path).
    pub fn connect(
        addr: &str,
        cfg: &EndpointConfig,
        sni: Option<&str>,
        size: usize,
    ) -> io::Result<ClientPool> {
        let size = size.max(1);
        let mut sessions = Vec::with_capacity(size);
        for _ in 0..size {
            sessions.push(ClientSession::connect(addr, cfg, sni)?);
        }
        Ok(ClientPool { sessions, next: 0 })
    }

    /// Wrap already-established sessions (the bench driver connects them
    /// one at a time so it can account each handshake outcome).
    pub fn from_sessions(sessions: Vec<ClientSession>) -> ClientPool {
        ClientPool { sessions, next: 0 }
    }

    /// Number of pooled connections.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the pool is empty (never true after `connect`).
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The next session, round-robin.
    pub fn checkout(&mut self) -> &mut ClientSession {
        let i = self.next;
        self.next = (self.next + 1) % self.sessions.len();
        &mut self.sessions[i]
    }
}
