//! Blocking client for the serve protocol: one mTLS session per TCP
//! connection, plus a keep-alive pool that round-robins requests across
//! several warm connections (the shape the bench client measures).

use crate::frame::{Frame, REQ_DER, REQ_PING, REQ_SHARD, RESP_PONG, RESP_VERDICT};
use crate::tls::{self, EndpointConfig, Session, SessionError};
use std::io;
use std::net::TcpStream;

/// What a request came back as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The rendered verdict text.
    Verdict(String),
    /// Liveness ack.
    Pong,
    /// The server refused the request for this cycle.
    Throttled,
    /// A request-level error message from the server.
    Error(String),
}

/// One established connection to the server.
pub struct ClientSession {
    session: Session<TcpStream, TcpStream>,
}

impl ClientSession {
    /// Connect and run the mutual-TLS handshake, presenting `cfg.chain`.
    pub fn connect(
        addr: &str,
        cfg: &EndpointConfig,
        sni: Option<&str>,
    ) -> io::Result<ClientSession> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read = stream.try_clone()?;
        let session = tls::connect(read, stream, cfg, sni)
            .map_err(|e| io::Error::new(io::ErrorKind::ConnectionRefused, e.to_string()))?;
        Ok(ClientSession { session })
    }

    fn round_trip(&mut self, kind: u8, payload: &[u8]) -> Result<Response, SessionError> {
        self.session.send_frame(kind, payload)?;
        let frame = self.session.recv_frame()?.ok_or(SessionError::Stream(
            mtls_tlssim::StreamError::UnexpectedEof,
        ))?;
        Ok(decode_response(frame))
    }

    /// Submit one DER certificate blob for a verdict.
    pub fn request_der(&mut self, der: &[u8]) -> Result<Response, SessionError> {
        self.round_trip(REQ_DER, der)
    }

    /// Submit one Zeek x509 shard (TSV bytes) for a verdict.
    pub fn request_shard(&mut self, tsv: &[u8]) -> Result<Response, SessionError> {
        self.round_trip(REQ_SHARD, tsv)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response, SessionError> {
        self.round_trip(REQ_PING, &[])
    }
}

fn decode_response(frame: Frame) -> Response {
    match frame.kind {
        RESP_VERDICT => Response::Verdict(String::from_utf8_lossy(&frame.payload).into_owned()),
        RESP_PONG => Response::Pong,
        crate::frame::RESP_THROTTLED => Response::Throttled,
        _ => Response::Error(String::from_utf8_lossy(&frame.payload).into_owned()),
    }
}

/// A fixed-size pool of keep-alive sessions, handed out round-robin.
/// Each session carries the same client identity; the point of the pool
/// is amortizing handshakes across many requests, exactly what a real
/// service client does.
pub struct ClientPool {
    sessions: Vec<ClientSession>,
    next: usize,
}

impl ClientPool {
    /// Open `size` connections up front (handshakes happen here, not on
    /// the request path).
    pub fn connect(
        addr: &str,
        cfg: &EndpointConfig,
        sni: Option<&str>,
        size: usize,
    ) -> io::Result<ClientPool> {
        let size = size.max(1);
        let mut sessions = Vec::with_capacity(size);
        for _ in 0..size {
            sessions.push(ClientSession::connect(addr, cfg, sni)?);
        }
        Ok(ClientPool { sessions, next: 0 })
    }

    /// Number of pooled connections.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the pool is empty (never true after `connect`).
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The next session, round-robin.
    pub fn checkout(&mut self) -> &mut ClientSession {
        let i = self.next;
        self.next = (self.next + 1) % self.sessions.len();
        &mut self.sessions[i]
    }
}
