//! The `mtlscope serve` server: a `TcpListener` accept loop feeding a
//! bounded worker pool, each worker terminating mutual TLS and answering
//! framed analysis requests.
//!
//! Design constraints (DESIGN.md §11):
//!
//! - **std-only.** No async runtime; N worker threads block on a shared
//!   `mpsc` channel of accepted sockets. The channel is the backpressure
//!   point — accepted-but-unclaimed connections queue there.
//! - **One clock.** Workers read `Instant::now()` once per request and
//!   pass explicit elapsed seconds into the quota table, which itself
//!   never reads time. Tests drive the same table with synthetic clocks.
//! - **Shared verdict path.** Request handling calls
//!   [`mtls_core::verdict`] — the same functions the offline pipeline
//!   uses — so a served verdict is byte-identical to the offline one.

use crate::frame::{
    Frame, MAX_FRAME_PAYLOAD, REQ_DER, REQ_PING, REQ_SHARD, RESP_ERROR, RESP_PONG, RESP_THROTTLED,
    RESP_VERDICT,
};
use crate::quota::QuotaTable;
use crate::tls::{self, EndpointConfig, SessionError};
use mtls_asn1::Asn1Time;
use mtls_core::verdict::{cert_verdict_der, shard_verdict, VerdictContext};
use mtls_obs::Obs;
use mtls_pki::{Authorizer, Tenant};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Everything the server needs at startup.
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads; each handles one connection at a time, for that
    /// connection's whole lifetime (thread-per-connection with a bounded
    /// pool). Size this at the expected number of concurrent keep-alive
    /// sessions: surplus accepted connections queue until a worker
    /// frees, which for a client that never closes means forever.
    pub workers: usize,
    /// TLS identity the server presents.
    pub endpoint: EndpointConfig,
    /// Client-chain gate.
    pub authorizer: Authorizer,
    /// The shared analysis context verdicts are rendered against.
    pub verdict: VerdictContext,
    /// Validation time for client chains (fixed per server run — the
    /// service analyzes a corpus epoch, it does not track wall time).
    pub now: Asn1Time,
    /// Metrics sink.
    pub obs: Obs,
}

/// Per-tenant quota bookkeeping: the bucket table plus each tenant's
/// last-request instant (the elapsed-time source for refills).
struct QuotaClock {
    table: QuotaTable,
    last_seen: HashMap<String, Instant>,
}

struct Shared {
    endpoint: EndpointConfig,
    authorizer: Authorizer,
    verdict: VerdictContext,
    now: Asn1Time,
    obs: Obs,
    quota: Mutex<QuotaClock>,
    stop: AtomicBool,
}

/// A running server. Dropping it without [`Server::shutdown`] leaks the
/// listener thread, so call shutdown (the binary does on ctrl-level
/// teardown, tests always do).
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the pool, and start accepting.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            endpoint: cfg.endpoint,
            authorizer: cfg.authorizer,
            verdict: cfg.verdict,
            now: cfg.now,
            obs: cfg.obs,
            quota: Mutex::new(QuotaClock {
                table: QuotaTable::new(),
                last_seen: HashMap::new(),
            }),
            stop: AtomicBool::new(false),
        });

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let worker_count = cfg.workers.max(1);
        let mut workers = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || loop {
                // Holding the lock only while receiving keeps the pool
                // work-stealing: any idle worker claims the next socket.
                let stream = match rx.lock().expect("worker channel lock").recv() {
                    Ok(s) => s,
                    Err(_) => return,
                };
                handle_connection(stream, &shared);
            }));
        }

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                match stream {
                    Ok(s) => {
                        accept_shared.obs.counter_add("serve.connections", 1);
                        if tx.send(s).is_err() {
                            return;
                        }
                    }
                    Err(_) => continue,
                }
            }
        });

        Ok(Server {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// Where the server is listening (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Metrics handle (counters: `serve.connections`, `serve.requests`,
    /// `serve.throttled`, `serve.authz_rejected`; histogram:
    /// `serve.request_bytes`).
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// Stop accepting, drain the pool, join every thread. In-flight
    /// connections finish their current request loop (workers exit when
    /// the socket channel closes and their connection ends).
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept thread owned `tx`; its exit closed the channel, so
        // workers drain what was queued and return.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Serve one connection start to finish.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let read = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let (mut session, tenant) = match tls::accept(
        read,
        stream,
        &shared.endpoint,
        &shared.authorizer,
        shared.now,
    ) {
        Ok(ok) => ok,
        Err(SessionError::Authz(_)) => {
            shared.obs.counter_add("serve.authz_rejected", 1);
            return;
        }
        Err(_) => {
            shared.obs.counter_add("serve.handshake_failed", 1);
            return;
        }
    };

    loop {
        let frame = match session.recv_frame() {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(_) => return,
        };
        if serve_frame(&mut session, &tenant, frame, shared).is_err() {
            return;
        }
    }
}

/// Answer one request frame. `Err` means the connection is unusable.
fn serve_frame<R: io::Read, W: io::Write>(
    session: &mut tls::Session<R, W>,
    tenant: &Tenant,
    frame: Frame,
    shared: &Shared,
) -> Result<(), SessionError> {
    shared.obs.counter_add("serve.requests", 1);
    shared
        .obs
        .histogram_record("serve.request_bytes", frame.payload.len() as u64);

    match frame.kind {
        REQ_PING => session.send_frame(RESP_PONG, &[]),
        REQ_DER | REQ_SHARD => {
            if !take_quota(tenant, shared) {
                shared.obs.counter_add("serve.throttled", 1);
                return session.send_frame(RESP_THROTTLED, &[]);
            }
            if frame.payload.len() > MAX_FRAME_PAYLOAD {
                return session.send_frame(RESP_ERROR, b"payload too large");
            }
            let verdict = if frame.kind == REQ_DER {
                cert_verdict_der(&frame.payload, &shared.verdict)
            } else {
                shard_verdict(&frame.payload, &shared.verdict)
            };
            session.send_frame(RESP_VERDICT, verdict.as_bytes())
        }
        other => {
            let msg = format!("unknown request kind {other:#04x}");
            session.send_frame(RESP_ERROR, msg.as_bytes())
        }
    }
}

/// Advance this tenant's bucket by their real elapsed time and try to
/// take a token.
fn take_quota(tenant: &Tenant, shared: &Shared) -> bool {
    let mut q = shared.quota.lock().expect("quota lock");
    let now = Instant::now();
    let elapsed = match q.last_seen.insert(tenant.name.clone(), now) {
        Some(prev) => now.duration_since(prev).as_secs_f64(),
        None => 0.0,
    };
    q.table
        .try_take(&tenant.name, tenant.quota_per_sec, elapsed)
}
