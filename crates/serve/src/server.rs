//! The `mtlscope serve` server: a `TcpListener` accept loop feeding a
//! bounded worker pool, each worker terminating mutual TLS and answering
//! framed analysis requests.
//!
//! Design constraints (DESIGN.md §11):
//!
//! - **std-only.** No async runtime; N worker threads block on a shared
//!   `mpsc` channel of accepted sockets. The channel is the backpressure
//!   point — accepted-but-unclaimed connections queue there, and the
//!   `serve.queue_wait_us` histogram makes that queue visible.
//! - **One clock.** Workers read `Instant::now()` once per request and
//!   pass it into the quota clock, which itself never reads time. Tests
//!   drive the same clock with synthetic instants.
//! - **Shared verdict path.** Request handling calls
//!   [`mtls_core::verdict`] — the same functions the offline pipeline
//!   uses — so a served verdict is byte-identical to the offline one.
//! - **Cheap telemetry.** Hot-path metrics go through pre-registered
//!   lock-free [`Counter`]/[`Histogram`] handles; the registry mutex is
//!   touched once per name at startup (or once per tenant-kind pair per
//!   connection), never per request. The observed-overhead guard in the
//!   serve smoke holds the whole layer under 3%.

use crate::frame::{
    Frame, REQ_DER, REQ_METRICS, REQ_PING, REQ_SHARD, RESP_ERROR, RESP_METRICS, RESP_PONG,
    RESP_THROTTLED, RESP_VERDICT,
};
use crate::quota::QuotaClock;
use crate::taxonomy;
use crate::tls::{self, EndpointConfig, SessionError};
use mtls_asn1::Asn1Time;
use mtls_core::verdict::{cert_verdict_der, shard_verdict, VerdictContext};
use mtls_obs::flight::{close, FlightEvent, FlightRecorder};
use mtls_obs::{Counter, Histogram, Obs};
use mtls_pki::{Authorizer, Tenant};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Schema tag on the `RESP_METRICS` JSON envelope.
pub const METRICS_SCHEMA: &str = "mtlscope-serve-metrics-1";

/// Default flight-recorder capacity (events).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Everything the server needs at startup.
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads; each handles one connection at a time, for that
    /// connection's whole lifetime (thread-per-connection with a bounded
    /// pool). Size this at the expected number of concurrent keep-alive
    /// sessions: surplus accepted connections queue until a worker
    /// frees, which for a client that never closes means forever.
    pub workers: usize,
    /// TLS identity the server presents.
    pub endpoint: EndpointConfig,
    /// Client-chain gate.
    pub authorizer: Authorizer,
    /// The shared analysis context verdicts are rendered against.
    pub verdict: VerdictContext,
    /// Validation time for client chains (fixed per server run — the
    /// service analyzes a corpus epoch, it does not track wall time).
    pub now: Asn1Time,
    /// Metrics sink.
    pub obs: Obs,
    /// Flight-recorder ring size in connection events
    /// ([`DEFAULT_FLIGHT_CAPACITY`] is a sensible default; 0 disables
    /// recording — the uninstrumented overhead-guard arm runs that way).
    pub flight_capacity: usize,
}

/// Hot-path metric handles, registered once at startup. Request kinds
/// get a (counter, latency histogram) pair each; the per-tenant latency
/// twin is registered lazily per connection (see [`ConnLatency`]).
struct HotMetrics {
    requests: Counter,
    request_bytes: Histogram,
    throttled: Counter,
    unknown_kind: Counter,
    kinds: [KindMetrics; 4],
}

struct KindMetrics {
    count: Counter,
    latency: Histogram,
}

/// Index of a request kind in [`HotMetrics::kinds`], `None` = unknown.
fn kind_index(kind: u8) -> Option<usize> {
    match kind {
        REQ_PING => Some(0),
        REQ_DER => Some(1),
        REQ_SHARD => Some(2),
        REQ_METRICS => Some(3),
        _ => None,
    }
}

const KIND_ORDER: [u8; 4] = [REQ_PING, REQ_DER, REQ_SHARD, REQ_METRICS];

impl HotMetrics {
    fn new(obs: &Obs) -> HotMetrics {
        HotMetrics {
            requests: obs.counter("serve.requests"),
            request_bytes: obs.histogram("serve.request_bytes"),
            throttled: obs.counter("serve.throttled"),
            unknown_kind: obs.counter("serve.request.err.unknown_kind"),
            kinds: KIND_ORDER.map(|kind| KindMetrics {
                count: obs.counter(
                    taxonomy::request_kind_counter(kind).expect("known kind has a counter"),
                ),
                latency: obs.histogram(&format!(
                    "{}{}",
                    taxonomy::LATENCY_PREFIX,
                    taxonomy::request_kind_label(kind)
                )),
            }),
        }
    }
}

/// Per-connection lazily-registered `serve.latency_us.<kind>.<tenant>`
/// handles: one registry hit per kind actually used on the connection.
#[derive(Default)]
struct ConnLatency {
    per_kind: [Option<Histogram>; 4],
}

impl ConnLatency {
    fn record(&mut self, idx: usize, tenant: &str, obs: &Obs, us: u64) {
        let h = self.per_kind[idx].get_or_insert_with(|| {
            obs.histogram(&format!(
                "{}{}.{}",
                taxonomy::LATENCY_PREFIX,
                taxonomy::request_kind_label(KIND_ORDER[idx]),
                tenant
            ))
        });
        h.record(us);
    }
}

struct Shared {
    endpoint: EndpointConfig,
    authorizer: Authorizer,
    verdict: VerdictContext,
    now: Asn1Time,
    obs: Obs,
    hot: HotMetrics,
    flight: FlightRecorder,
    quota: Mutex<QuotaClock>,
    stop: AtomicBool,
}

/// A running server. Dropping it without [`Server::shutdown`] leaks the
/// listener thread, so call shutdown (the binary does on ctrl-level
/// teardown, tests always do).
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the pool, and start accepting.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let hot = HotMetrics::new(&cfg.obs);
        let shared = Arc::new(Shared {
            endpoint: cfg.endpoint,
            authorizer: cfg.authorizer,
            verdict: cfg.verdict,
            now: cfg.now,
            obs: cfg.obs,
            hot,
            flight: FlightRecorder::new(cfg.flight_capacity),
            quota: Mutex::new(QuotaClock::new()),
            stop: AtomicBool::new(false),
        });

        let (tx, rx) = mpsc::channel::<(TcpStream, Instant)>();
        let rx = Arc::new(Mutex::new(rx));
        let worker_count = cfg.workers.max(1);
        let mut workers = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || loop {
                // Holding the lock only while receiving keeps the pool
                // work-stealing: any idle worker claims the next socket.
                let (stream, accepted_at) = match rx.lock().expect("worker channel lock").recv() {
                    Ok(s) => s,
                    Err(_) => return,
                };
                handle_connection(stream, accepted_at, &shared);
            }));
        }

        let accept_shared = Arc::clone(&shared);
        let connections = accept_shared.obs.counter("serve.connections");
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                match stream {
                    Ok(s) => {
                        connections.add(1);
                        if tx.send((s, Instant::now())).is_err() {
                            return;
                        }
                    }
                    Err(_) => continue,
                }
            }
        });

        Ok(Server {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// Where the server is listening (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Metrics handle. Every counter the serve path emits is minted by
    /// [`crate::taxonomy`] ([`taxonomy::ALL_COUNTERS`] is the full
    /// list, asserted against DESIGN.md's Telemetry table by a test);
    /// histograms are [`taxonomy::HISTOGRAMS`] plus the
    /// `serve.latency_us.<kind>[.<tenant>]` family, gauges are
    /// [`taxonomy::GAUGES`].
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// The connection flight recorder (dump it any time; shutdown also
    /// returns the final dump).
    pub fn flight(&self) -> &FlightRecorder {
        &self.shared.flight
    }

    /// The metrics/flight snapshot exactly as `REQ_METRICS` serves it:
    /// a JSON envelope tagged [`METRICS_SCHEMA`] wrapping the obs
    /// snapshot and the flight-recorder dump.
    pub fn metrics_json(&self) -> String {
        metrics_envelope(&self.shared)
    }

    /// Stop accepting, drain the pool, join every thread, and return
    /// the flight recorder's final dump (deterministic: all workers
    /// have exited, so the ring is quiesced and seq-sorted). In-flight
    /// connections finish their current request loop (workers exit when
    /// the socket channel closes and their connection ends).
    pub fn shutdown(mut self) -> Vec<FlightEvent> {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept thread owned `tx`; its exit closed the channel, so
        // workers drain what was queued and return.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.flight.dump()
    }
}

fn saturating_us(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_micros() as u64
}

fn clamp_u32(us: u64) -> u32 {
    us.min(u64::from(u32::MAX)) as u32
}

/// Serve one connection start to finish. `accepted_at` is when the
/// accept loop queued the socket; the gap to now is the queue wait — the
/// thread-per-connection backpressure signal.
fn handle_connection(stream: TcpStream, accepted_at: Instant, shared: &Shared) {
    let claimed_at = Instant::now();
    let queue_wait_us = saturating_us(accepted_at, claimed_at);
    shared
        .obs
        .histogram_record("serve.queue_wait_us", queue_wait_us);

    let _ = stream.set_nodelay(true);
    let read = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let accepted = match tls::accept(
        read,
        stream,
        &shared.endpoint,
        &shared.authorizer,
        shared.now,
    ) {
        Ok(a) => a,
        Err(e) => {
            shared
                .obs
                .counter_add(taxonomy::handshake_error_counter(&e), 1);
            let mut ev = FlightEvent::with_tenant("-");
            ev.close = match e {
                SessionError::Authz(_) => close::AUTHZ,
                _ => close::HANDSHAKE,
            };
            ev.queue_wait_us = clamp_u32(queue_wait_us);
            ev.handshake_us = clamp_u32(saturating_us(claimed_at, Instant::now()));
            ev.lifetime_us = saturating_us(claimed_at, Instant::now());
            shared.flight.record(ev);
            return;
        }
    };
    let handshake_us = saturating_us(claimed_at, Instant::now());
    shared.obs.counter_add("serve.handshake.ok", 1);
    shared
        .obs
        .histogram_record("serve.handshake_us", handshake_us);

    // The privacy meter: what a passive observer on the path just
    // harvested from this client's cleartext Certificate message.
    let exposure =
        mtls_tlssim::identity_exposure(Some(shared.endpoint.version), &accepted.client_chain);
    if exposure.cleartext {
        let idb = exposure.identity_bytes();
        shared
            .obs
            .counter_add("serve.privacy.cleartext_connections", 1);
        shared
            .obs
            .counter_add("serve.privacy.identity_bytes_total", idb);
        shared
            .obs
            .histogram_record("serve.privacy.identity_bytes", idb);
        shared
            .obs
            .histogram_record("serve.privacy.chain_certs", exposure.chain_len as u64);
        shared
            .obs
            .histogram_record("serve.privacy.san_count", exposure.san_count);
        shared.obs.gauge_max(
            "serve.privacy.max_identity_bytes",
            idb.min(i64::MAX as u64) as i64,
        );
    }

    let tenant = accepted.tenant;
    let mut session = accepted.session;
    let mut stats = ConnStats::default();
    let mut latency = ConnLatency::default();
    let close_cause = loop {
        let frame = match session.recv_frame() {
            Ok(Some(f)) => f,
            Ok(None) => break close::CLEAN,
            // An oversize length field is caught at the frame header by
            // the assembler — the frame never materializes, no quota
            // token is ever taken for it.
            Err(SessionError::BadFrame) => {
                shared
                    .obs
                    .counter_add("serve.request.err.oversize_frame", 1);
                break close::BAD_FRAME;
            }
            Err(SessionError::PeerAlert) => break close::PEER_ALERT,
            Err(_) => break close::STREAM,
        };
        if serve_frame(
            &mut session,
            &tenant,
            frame,
            shared,
            &mut stats,
            &mut latency,
        )
        .is_err()
        {
            break close::STREAM;
        }
    };

    shared.obs.counter_add(
        if close_cause == close::CLEAN {
            "serve.conn.closed_clean"
        } else {
            "serve.conn.closed_error"
        },
        1,
    );
    let lifetime_us = saturating_us(claimed_at, Instant::now());
    shared
        .obs
        .histogram_record("serve.conn_lifetime_us", lifetime_us);
    {
        let q = shared.quota.lock().expect("quota lock");
        shared
            .obs
            .gauge_set("serve.quota.tracked_tenants", q.tracked() as i64);
    }

    let mut ev = FlightEvent::with_tenant(&tenant.name);
    ev.close = close_cause;
    ev.handshake_us = clamp_u32(handshake_us);
    ev.queue_wait_us = clamp_u32(queue_wait_us);
    ev.frames = stats.frames;
    ev.bytes_in = stats.bytes_in;
    ev.bytes_out = stats.bytes_out;
    ev.lifetime_us = lifetime_us;
    shared.flight.record(ev);
}

/// Per-connection request accounting feeding the flight recorder.
#[derive(Default)]
struct ConnStats {
    frames: u32,
    bytes_in: u64,
    bytes_out: u64,
}

fn send_counted<R: io::Read, W: io::Write>(
    session: &mut tls::Session<R, W>,
    stats: &mut ConnStats,
    kind: u8,
    payload: &[u8],
) -> Result<(), SessionError> {
    stats.bytes_out += 5 + payload.len() as u64;
    session.send_frame(kind, payload)
}

/// Answer one request frame. `Err` means the connection is unusable.
fn serve_frame<R: io::Read, W: io::Write>(
    session: &mut tls::Session<R, W>,
    tenant: &Tenant,
    frame: Frame,
    shared: &Shared,
    stats: &mut ConnStats,
    latency: &mut ConnLatency,
) -> Result<(), SessionError> {
    let t0 = Instant::now();
    stats.frames += 1;
    stats.bytes_in += 5 + frame.payload.len() as u64;
    shared.hot.requests.add(1);
    shared.hot.request_bytes.record(frame.payload.len() as u64);
    let idx = kind_index(frame.kind);
    match idx {
        Some(i) => shared.hot.kinds[i].count.add(1),
        None => shared.hot.unknown_kind.add(1),
    }

    let result = match frame.kind {
        REQ_PING => send_counted(session, stats, RESP_PONG, &[]),
        REQ_DER | REQ_SHARD => {
            if !take_quota(tenant, shared) {
                shared.hot.throttled.add(1);
                send_counted(session, stats, RESP_THROTTLED, &[])
            } else {
                let verdict = if frame.kind == REQ_DER {
                    cert_verdict_der(&frame.payload, &shared.verdict)
                } else {
                    shard_verdict(&frame.payload, &shared.verdict)
                };
                send_counted(session, stats, RESP_VERDICT, verdict.as_bytes())
            }
        }
        // The admin frame: ops-class tenants (leaf OU
        // `mtlscope-ops`) get the live snapshot; everyone else gets a
        // refusal. No quota token — operators polling metrics must not
        // eat their own serving budget.
        REQ_METRICS => {
            if tenant.ops {
                let payload = metrics_envelope(shared);
                send_counted(session, stats, RESP_METRICS, payload.as_bytes())
            } else {
                shared
                    .obs
                    .counter_add("serve.request.err.metrics_forbidden", 1);
                send_counted(
                    session,
                    stats,
                    RESP_ERROR,
                    b"metrics requires an ops-class tenant",
                )
            }
        }
        other => {
            let msg = format!("unknown request kind {other:#04x}");
            send_counted(session, stats, RESP_ERROR, msg.as_bytes())
        }
    };

    let us = saturating_us(t0, Instant::now());
    if let Some(i) = idx {
        shared.hot.kinds[i].latency.record(us);
        latency.record(i, &tenant.name, &shared.obs, us);
    }
    result
}

/// Render the `RESP_METRICS` envelope: schema tag, the deterministic
/// obs snapshot, and the flight-recorder dump.
fn metrics_envelope(shared: &Shared) -> String {
    let metrics = shared.obs.snapshot().to_json();
    format!(
        "{{\"schema\": \"{}\", \"metrics\": {}, \"flight\": {}}}\n",
        METRICS_SCHEMA,
        metrics.trim_end(),
        shared.flight.to_json()
    )
}

/// Advance this tenant's bucket by their real elapsed time and try to
/// take a token.
fn take_quota(tenant: &Tenant, shared: &Shared) -> bool {
    let mut q = shared.quota.lock().expect("quota lock");
    q.try_take(&tenant.name, tenant.quota_per_sec, Instant::now())
}
