//! The `mtlscope bench-client` driver: hammer a serve endpoint with
//! pooled keep-alive connections and report latency/throughput.
//!
//! Each bench thread owns a [`ClientPool`] and issues serial round trips
//! (request → verdict) round-robin across its pool; threads run
//! concurrently, so the client and server pipelines overlap even on one
//! core. Every round trip's latency lands both in an exact sample vector
//! (for true percentiles) and in an `mtls-obs` log2 histogram (the
//! cross-run comparable shape that goes into `BENCH_serve.json`).

use crate::client::{ClientPool, ClientSession, Response};
use crate::taxonomy;
use crate::tls::EndpointConfig;
use mtls_obs::Obs;
use std::time::Instant;

/// One bench run's parameters.
pub struct BenchConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Client identity (chain + version) every connection presents.
    pub client: EndpointConfig,
    /// SNI to send, if any.
    pub sni: Option<String>,
    /// Concurrent bench threads.
    pub threads: usize,
    /// Keep-alive connections per thread.
    pub connections_per_thread: usize,
    /// Round trips per thread.
    pub requests_per_thread: usize,
    /// DER blob submitted as the `REQ_DER` workload; when empty the
    /// workload is pings only.
    pub der: Vec<u8>,
    /// Metrics sink for the latency histogram.
    pub obs: Obs,
}

/// Latency percentiles in microseconds, from exact samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyUs {
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

/// What one run measured.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Round trips completed (verdicts + pongs).
    pub requests: usize,
    /// `RESP_VERDICT` responses.
    pub verdicts: usize,
    /// `RESP_THROTTLED` responses (still round trips).
    pub throttled: usize,
    /// `RESP_ERROR` responses or transport failures.
    pub errors: usize,
    /// Wall time for the request phase (handshakes excluded — the pool
    /// connects before the clock starts).
    pub elapsed_secs: f64,
    /// requests / elapsed_secs.
    pub req_per_sec: f64,
    /// Request-phase latency distribution.
    pub latency: LatencyUs,
    /// Wall time to establish all pooled connections (full handshakes).
    pub connect_secs: f64,
    /// Total connections established.
    pub connections: usize,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run the bench. Panics on connection failure (a bench against a dead
/// or refusing server is a setup error, not a measurement).
pub fn run_bench(cfg: &BenchConfig) -> BenchReport {
    let threads = cfg.threads.max(1);
    let connect_start = Instant::now();
    let mut pools = Vec::with_capacity(threads);
    for _ in 0..threads {
        // Connect one session at a time so every handshake outcome lands
        // in the client-side mirror of the server's taxonomy
        // (`bench.handshake.ok` / `bench.handshake.err.*`) before a
        // failure aborts the run.
        let mut sessions = Vec::with_capacity(cfg.connections_per_thread.max(1));
        for _ in 0..cfg.connections_per_thread.max(1) {
            match ClientSession::connect_tls(&cfg.addr, &cfg.client, cfg.sni.as_deref()) {
                Ok(s) => {
                    cfg.obs.counter_add("bench.handshake.ok", 1);
                    sessions.push(s);
                }
                Err(e) => {
                    cfg.obs
                        .counter_add(taxonomy::client_handshake_error_counter(&e), 1);
                    panic!("bench: connect pool: {e}");
                }
            }
        }
        pools.push(ClientPool::from_sessions(sessions));
    }
    let connect_secs = connect_start.elapsed().as_secs_f64();
    let connections = pools.iter().map(ClientPool::len).sum();

    struct ThreadResult {
        latencies: Vec<u64>,
        verdicts: usize,
        throttled: usize,
        errors: usize,
    }

    let start = Instant::now();
    let results: Vec<ThreadResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = pools
            .into_iter()
            .map(|mut pool| {
                scope.spawn(move || {
                    let mut r = ThreadResult {
                        latencies: Vec::with_capacity(cfg.requests_per_thread),
                        verdicts: 0,
                        throttled: 0,
                        errors: 0,
                    };
                    let kind_label = if cfg.der.is_empty() { "ping" } else { "der" };
                    let latency_all = cfg.obs.histogram("bench.latency_us");
                    let latency_kind = cfg.obs.histogram(&format!("bench.latency_us.{kind_label}"));
                    let c_verdict = cfg.obs.counter("bench.resp.verdict");
                    let c_pong = cfg.obs.counter("bench.resp.pong");
                    let c_throttled = cfg.obs.counter("bench.resp.throttled");
                    let c_error = cfg.obs.counter("bench.resp.error");
                    let c_transport = cfg.obs.counter("bench.err.transport");
                    for _ in 0..cfg.requests_per_thread {
                        let session = pool.checkout();
                        let t0 = Instant::now();
                        let resp = if cfg.der.is_empty() {
                            session.ping()
                        } else {
                            session.request_der(&cfg.der)
                        };
                        let us = t0.elapsed().as_micros() as u64;
                        r.latencies.push(us);
                        latency_all.record(us);
                        latency_kind.record(us);
                        match resp {
                            Ok(Response::Verdict(_)) => {
                                c_verdict.add(1);
                                r.verdicts += 1;
                            }
                            Ok(Response::Pong) => c_pong.add(1),
                            Ok(Response::Throttled) => {
                                c_throttled.add(1);
                                r.throttled += 1;
                            }
                            Ok(Response::Error(_) | Response::Metrics(_)) => {
                                c_error.add(1);
                                r.errors += 1;
                            }
                            Err(_) => {
                                c_transport.add(1);
                                r.errors += 1;
                            }
                        }
                    }
                    r
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench thread"))
            .collect()
    });
    let elapsed_secs = start.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::new();
    let mut report = BenchReport {
        connections,
        connect_secs,
        elapsed_secs,
        ..BenchReport::default()
    };
    for r in results {
        report.requests += r.latencies.len();
        report.verdicts += r.verdicts;
        report.throttled += r.throttled;
        report.errors += r.errors;
        latencies.extend(r.latencies);
    }
    latencies.sort_unstable();
    report.latency = LatencyUs {
        p50: percentile(&latencies, 0.50),
        p90: percentile(&latencies, 0.90),
        p99: percentile(&latencies, 0.99),
        max: latencies.last().copied().unwrap_or(0),
    };
    report.req_per_sec = if elapsed_secs > 0.0 {
        report.requests as f64 / elapsed_secs
    } else {
        0.0
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_expected_ranks() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 51);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
