//! End-to-end tests: a real [`mtls_serve::Server`] on a loopback socket,
//! real clients, and the acceptance claims from the serve issue —
//! byte-identical verdicts, quota throttling, authorization rejection,
//! and keep-alive reuse.

use mtls_core::verdict::{cert_verdict_der, shard_verdict};
use mtls_obs::Obs;
use mtls_serve::client::{ClientSession, Response};
use mtls_serve::demo::{demo_server_config, demo_verdict_context, demo_world, DemoWorld};
use mtls_serve::server::Server;

fn start_demo(workers: usize, quota_private: u32) -> (Server, DemoWorld, Obs) {
    let world = demo_world();
    let obs = Obs::new();
    let cfg = demo_server_config(&world, "127.0.0.1:0", workers, quota_private, obs.clone());
    let server = Server::start(cfg).expect("bind demo server");
    (server, world, obs)
}

fn connect_tenant(server: &Server, world: &DemoWorld) -> ClientSession {
    ClientSession::connect(
        &server.local_addr().to_string(),
        &world.tenant_endpoint,
        Some("mtlscope-serve.campus.example"),
    )
    .expect("tenant connect")
}

#[test]
fn served_der_verdict_is_byte_identical_to_offline() {
    let (server, world, _obs) = start_demo(2, 1000);
    let mut client = connect_tenant(&server, &world);

    let served = match client.request_der(&world.sample_der).unwrap() {
        Response::Verdict(v) => v,
        other => panic!("expected verdict, got {other:?}"),
    };
    let offline = cert_verdict_der(&world.sample_der, &demo_verdict_context());
    assert_eq!(served, offline, "served verdict diverged from offline");
    assert!(served.contains("parse: ok"), "{served}");

    drop(client);
    server.shutdown();
}

#[test]
fn served_shard_verdict_is_byte_identical_to_offline() {
    let (server, world, _obs) = start_demo(2, 1000);
    let mut client = connect_tenant(&server, &world);

    let served = match client.request_shard(&world.sample_shard).unwrap() {
        Response::Verdict(v) => v,
        other => panic!("expected verdict, got {other:?}"),
    };
    let offline = shard_verdict(&world.sample_shard, &demo_verdict_context());
    assert_eq!(served, offline);
    assert!(
        served.starts_with("verdict: shard\nrecords: 2\n"),
        "{served}"
    );

    drop(client);
    server.shutdown();
}

#[test]
fn keep_alive_session_serves_many_requests() {
    let (server, world, obs) = start_demo(2, 10_000);
    let mut client = connect_tenant(&server, &world);

    for _ in 0..50 {
        match client.request_der(&world.sample_der).unwrap() {
            Response::Verdict(_) => {}
            other => panic!("expected verdict, got {other:?}"),
        }
    }
    assert!(matches!(client.ping().unwrap(), Response::Pong));
    drop(client);
    server.shutdown();

    let snap = obs.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(counter("serve.connections"), 1, "one keep-alive connection");
    assert_eq!(counter("serve.requests"), 51);
    assert_eq!(counter("serve.throttled"), 0);
}

#[test]
fn quota_exhaustion_throttles_then_burst_is_bounded() {
    // quota 5/s: the first 5 immediate requests pass, the 6th throttles.
    let (server, world, obs) = start_demo(1, 5);
    let mut client = connect_tenant(&server, &world);

    let mut ok = 0;
    let mut throttled = 0;
    for _ in 0..8 {
        match client.request_der(&world.sample_der).unwrap() {
            Response::Verdict(_) => ok += 1,
            Response::Throttled => throttled += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(ok, 5, "burst bounded by bucket capacity");
    assert_eq!(throttled, 3);

    drop(client);
    server.shutdown();
    let snap = obs.snapshot();
    let got = snap
        .counters
        .iter()
        .find(|(n, _)| n == "serve.throttled")
        .map(|(_, v)| *v);
    assert_eq!(got, Some(3));
}

#[test]
fn expired_tenant_is_rejected_at_the_door() {
    let (server, world, obs) = start_demo(1, 100);
    let msg = match ClientSession::connect(
        &server.local_addr().to_string(),
        &world.expired_endpoint,
        None,
    ) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("expired chain must not establish"),
    };
    assert!(msg.contains("alert"), "{msg}");

    // A valid tenant still gets in afterwards — the reject didn't wedge
    // a worker.
    let mut client = connect_tenant(&server, &world);
    assert!(matches!(client.ping().unwrap(), Response::Pong));
    drop(client);
    server.shutdown();

    let snap = obs.snapshot();
    let got = snap
        .counters
        .iter()
        .find(|(n, _)| n == "serve.authz_rejected")
        .map(|(_, v)| *v);
    assert_eq!(got, Some(1));
}

#[test]
fn garbage_der_gets_parse_error_verdict_not_connection_drop() {
    let (server, world, _obs) = start_demo(1, 100);
    let mut client = connect_tenant(&server, &world);

    let served = match client.request_der(b"definitely not DER").unwrap() {
        Response::Verdict(v) => v,
        other => panic!("expected verdict, got {other:?}"),
    };
    assert!(served.contains("parse: error:"), "{served}");
    // Same bytes as the offline twin even for the error shape.
    assert_eq!(
        served,
        cert_verdict_der(b"definitely not DER", &demo_verdict_context())
    );
    // Connection is still usable.
    assert!(matches!(client.ping().unwrap(), Response::Pong));

    drop(client);
    server.shutdown();
}

#[test]
fn concurrent_tenants_are_served_by_the_pool() {
    let (server, world, _obs) = start_demo(4, 10_000);
    let addr = server.local_addr().to_string();
    let der = world.sample_der.clone();
    let offline = cert_verdict_der(&der, &demo_verdict_context());

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let der = der.clone();
            let offline = offline.clone();
            let endpoint = mtls_serve::tls::EndpointConfig {
                version: world.tenant_endpoint.version,
                chain: world.tenant_endpoint.chain.clone(),
                random_seed: world.tenant_endpoint.random_seed,
            };
            std::thread::spawn(move || {
                let mut c = ClientSession::connect(&addr, &endpoint, None).unwrap();
                for _ in 0..20 {
                    match c.request_der(&der).unwrap() {
                        Response::Verdict(v) => assert_eq!(v, offline),
                        other => panic!("unexpected {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}
