//! End-to-end tests: a real [`mtls_serve::Server`] on a loopback socket,
//! real clients, and the acceptance claims from the serve issue —
//! byte-identical verdicts, quota throttling, authorization rejection,
//! and keep-alive reuse.

use mtls_core::verdict::{cert_verdict_der, shard_verdict};
use mtls_obs::Obs;
use mtls_serve::client::{ClientSession, Response};
use mtls_serve::demo::{demo_server_config, demo_verdict_context, demo_world, DemoWorld};
use mtls_serve::server::Server;

fn start_demo(workers: usize, quota_private: u32) -> (Server, DemoWorld, Obs) {
    let world = demo_world();
    let obs = Obs::new();
    let cfg = demo_server_config(&world, "127.0.0.1:0", workers, quota_private, obs.clone());
    let server = Server::start(cfg).expect("bind demo server");
    (server, world, obs)
}

fn connect_tenant(server: &Server, world: &DemoWorld) -> ClientSession {
    ClientSession::connect(
        &server.local_addr().to_string(),
        &world.tenant_endpoint,
        Some("mtlscope-serve.campus.example"),
    )
    .expect("tenant connect")
}

#[test]
fn served_der_verdict_is_byte_identical_to_offline() {
    let (server, world, _obs) = start_demo(2, 1000);
    let mut client = connect_tenant(&server, &world);

    let served = match client.request_der(&world.sample_der).unwrap() {
        Response::Verdict(v) => v,
        other => panic!("expected verdict, got {other:?}"),
    };
    let offline = cert_verdict_der(&world.sample_der, &demo_verdict_context());
    assert_eq!(served, offline, "served verdict diverged from offline");
    assert!(served.contains("parse: ok"), "{served}");

    drop(client);
    server.shutdown();
}

#[test]
fn served_shard_verdict_is_byte_identical_to_offline() {
    let (server, world, _obs) = start_demo(2, 1000);
    let mut client = connect_tenant(&server, &world);

    let served = match client.request_shard(&world.sample_shard).unwrap() {
        Response::Verdict(v) => v,
        other => panic!("expected verdict, got {other:?}"),
    };
    let offline = shard_verdict(&world.sample_shard, &demo_verdict_context());
    assert_eq!(served, offline);
    assert!(
        served.starts_with("verdict: shard\nrecords: 2\n"),
        "{served}"
    );

    drop(client);
    server.shutdown();
}

#[test]
fn keep_alive_session_serves_many_requests() {
    let (server, world, obs) = start_demo(2, 10_000);
    let mut client = connect_tenant(&server, &world);

    for _ in 0..50 {
        match client.request_der(&world.sample_der).unwrap() {
            Response::Verdict(_) => {}
            other => panic!("expected verdict, got {other:?}"),
        }
    }
    assert!(matches!(client.ping().unwrap(), Response::Pong));
    drop(client);
    server.shutdown();

    let snap = obs.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(counter("serve.connections"), 1, "one keep-alive connection");
    assert_eq!(counter("serve.requests"), 51);
    assert_eq!(counter("serve.throttled"), 0);
}

#[test]
fn quota_exhaustion_throttles_then_burst_is_bounded() {
    // quota 5/s: the first 5 immediate requests pass, the 6th throttles.
    let (server, world, obs) = start_demo(1, 5);
    let mut client = connect_tenant(&server, &world);

    let mut ok = 0;
    let mut throttled = 0;
    for _ in 0..8 {
        match client.request_der(&world.sample_der).unwrap() {
            Response::Verdict(_) => ok += 1,
            Response::Throttled => throttled += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(ok, 5, "burst bounded by bucket capacity");
    assert_eq!(throttled, 3);

    drop(client);
    server.shutdown();
    let snap = obs.snapshot();
    let got = snap
        .counters
        .iter()
        .find(|(n, _)| n == "serve.throttled")
        .map(|(_, v)| *v);
    assert_eq!(got, Some(3));
}

#[test]
fn expired_tenant_is_rejected_at_the_door() {
    let (server, world, obs) = start_demo(1, 100);
    let msg = match ClientSession::connect(
        &server.local_addr().to_string(),
        &world.expired_endpoint,
        None,
    ) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("expired chain must not establish"),
    };
    assert!(msg.contains("alert"), "{msg}");

    // A valid tenant still gets in afterwards — the reject didn't wedge
    // a worker.
    let mut client = connect_tenant(&server, &world);
    assert!(matches!(client.ping().unwrap(), Response::Pong));
    drop(client);
    server.shutdown();

    let snap = obs.snapshot();
    let got = snap
        .counters
        .iter()
        .find(|(n, _)| n == "serve.authz.err.chain.expired")
        .map(|(_, v)| *v);
    assert_eq!(got, Some(1), "per-cause taxonomy names the expiry exactly");
}

#[test]
fn garbage_der_gets_parse_error_verdict_not_connection_drop() {
    let (server, world, _obs) = start_demo(1, 100);
    let mut client = connect_tenant(&server, &world);

    let served = match client.request_der(b"definitely not DER").unwrap() {
        Response::Verdict(v) => v,
        other => panic!("expected verdict, got {other:?}"),
    };
    assert!(served.contains("parse: error:"), "{served}");
    // Same bytes as the offline twin even for the error shape.
    assert_eq!(
        served,
        cert_verdict_der(b"definitely not DER", &demo_verdict_context())
    );
    // Connection is still usable.
    assert!(matches!(client.ping().unwrap(), Response::Pong));

    drop(client);
    server.shutdown();
}

fn counter_of(snap: &mtls_obs::Snapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

#[test]
fn oversize_frame_is_refused_at_the_header_without_burning_quota() {
    // quota 1/s: if the oversize path took a token, the follow-up
    // request on a fresh connection would throttle.
    let (server, world, obs) = start_demo(1, 1);
    let mut client = connect_tenant(&server, &world);
    client.send_oversize_header().expect("probe header");
    assert!(client.expect_close(), "server must drop the connection");
    drop(client);

    let mut client2 = connect_tenant(&server, &world);
    match client2.request_der(&world.sample_der).unwrap() {
        Response::Verdict(_) => {}
        other => panic!("oversize frame burned the quota token: {other:?}"),
    }
    drop(client2);

    let events = server.shutdown();
    let snap = obs.snapshot();
    assert_eq!(counter_of(&snap, "serve.request.err.oversize_frame"), 1);
    assert_eq!(counter_of(&snap, "serve.throttled"), 0);
    assert_eq!(counter_of(&snap, "serve.conn.closed_error"), 1);
    assert_eq!(counter_of(&snap, "serve.conn.closed_clean"), 1);
    assert!(
        events
            .iter()
            .any(|e| e.close == mtls_obs::flight::close::BAD_FRAME),
        "flight recorder names the bad-frame close"
    );
}

#[test]
fn metrics_frame_is_ops_gated_and_reports_privacy_exposure() {
    let (server, world, obs) = start_demo(2, 1000);

    let mut tenant = connect_tenant(&server, &world);
    match tenant.request_metrics().unwrap() {
        Response::Error(msg) => assert!(msg.contains("ops"), "{msg}"),
        other => panic!("non-ops tenant must be refused: {other:?}"),
    }
    assert!(
        matches!(tenant.ping().unwrap(), Response::Pong),
        "refusal is request-level, not a connection drop"
    );

    let mut ops =
        ClientSession::connect(&server.local_addr().to_string(), &world.ops_endpoint, None)
            .expect("ops connect");
    let body = match ops.request_metrics().unwrap() {
        Response::Metrics(json) => json,
        other => panic!("ops tenant must get the snapshot: {other:?}"),
    };
    assert!(
        body.starts_with("{\"schema\": \"mtlscope-serve-metrics-1\""),
        "{body}"
    );
    assert!(body.contains("\"metrics\""));
    assert!(body.contains("\"flight\""));
    assert!(body.contains("serve.privacy.identity_bytes_total"));
    assert_eq!(body, server.metrics_json(), "same renderer as the frame");

    drop(tenant);
    drop(ops);
    server.shutdown();
    let snap = obs.snapshot();
    assert_eq!(counter_of(&snap, "serve.request.err.metrics_forbidden"), 1);
    // Both connections spoke TLS 1.2: their client chains crossed in
    // cleartext, so the exposure meter is nonzero.
    assert_eq!(counter_of(&snap, "serve.privacy.cleartext_connections"), 2);
    assert!(counter_of(&snap, "serve.privacy.identity_bytes_total") > 0);
}

#[test]
fn every_emitted_metric_name_comes_from_the_taxonomy() {
    // Drive every family: verdicts, pings, shards, an unknown kind, a
    // metrics pull (granted and refused), an authz reject, a rogue CA,
    // and a throttle.
    let (server, world, obs) = start_demo(2, 1);
    let addr = server.local_addr().to_string();

    let mut tenant = connect_tenant(&server, &world);
    let _ = tenant.request_der(&world.sample_der).unwrap();
    let _ = tenant.request_der(&world.sample_der).unwrap(); // throttles
    let _ = tenant.request_shard(&world.sample_shard).unwrap();
    let _ = tenant.ping().unwrap();
    let _ = tenant.request_raw(0x77, b"?").unwrap();
    let _ = tenant.request_metrics().unwrap(); // refused, counted
    drop(tenant);

    let mut ops = ClientSession::connect(&addr, &world.ops_endpoint, None).unwrap();
    let _ = ops.request_metrics().unwrap();
    drop(ops);

    assert!(ClientSession::connect(&addr, &world.expired_endpoint, None).is_err());
    assert!(ClientSession::connect(&addr, &world.rogue_endpoint, None).is_err());

    server.shutdown();
    let snap = obs.snapshot();
    assert!(!snap.counters.is_empty());
    for (name, _) in &snap.counters {
        assert!(
            mtls_serve::taxonomy::is_known_metric(name),
            "counter `{name}` is not minted by the taxonomy"
        );
    }
    for h in &snap.histograms {
        assert!(
            mtls_serve::taxonomy::is_known_metric(&h.name),
            "histogram `{}` is not minted by the taxonomy",
            h.name
        );
    }
    for (name, _) in &snap.gauges {
        assert!(
            mtls_serve::taxonomy::is_known_metric(name),
            "gauge `{name}` is not minted by the taxonomy"
        );
    }
    // The rogue CA maps to the signature-verification failure, the
    // expired chain to expiry — per-cause, not a lump.
    assert_eq!(counter_of(&snap, "serve.authz.err.chain.bad_signature"), 1);
    assert_eq!(counter_of(&snap, "serve.authz.err.chain.expired"), 1);
    assert_eq!(counter_of(&snap, "serve.request.err.unknown_kind"), 1);
    // The 1/s bucket had one token: the second DER and the shard both
    // throttled (unless the test stalled a full second mid-flight).
    assert!(counter_of(&snap, "serve.throttled") >= 1);
}

#[test]
fn flight_recorder_captures_connection_lifecycles() {
    let (server, world, _obs) = start_demo(1, 1000);
    let addr = server.local_addr().to_string();

    let mut client = connect_tenant(&server, &world);
    let _ = client.request_der(&world.sample_der).unwrap();
    let _ = client.ping().unwrap();
    drop(client);

    assert!(ClientSession::connect(&addr, &world.expired_endpoint, None).is_err());

    let events = server.shutdown();
    assert_eq!(events.len(), 2, "one served + one rejected connection");
    assert!(
        events.windows(2).all(|w| w[0].seq < w[1].seq),
        "dump is seq-ordered"
    );
    let served = events
        .iter()
        .find(|e| e.tenant_str() == "tenant-alpha")
        .expect("served connection recorded");
    assert_eq!(served.close, mtls_obs::flight::close::CLEAN);
    assert_eq!(served.frames, 2);
    assert!(served.bytes_in > 0 && served.bytes_out > 0);
    assert!(served.lifetime_us > 0);
    let rejected = events
        .iter()
        .find(|e| e.tenant_str() == "-")
        .expect("rejected connection recorded");
    assert_eq!(rejected.close, mtls_obs::flight::close::AUTHZ);
    assert_eq!(rejected.frames, 0);
}

#[test]
fn latency_and_queue_wait_histograms_fill_in() {
    let (server, world, obs) = start_demo(2, 1000);
    let mut client = connect_tenant(&server, &world);
    for _ in 0..5 {
        let _ = client.request_der(&world.sample_der).unwrap();
    }
    let _ = client.ping().unwrap();
    drop(client);
    server.shutdown();

    let snap = obs.snapshot();
    let hist = |name: &str| {
        snap.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| h.count)
            .unwrap_or(0)
    };
    assert_eq!(hist("serve.latency_us.der"), 5);
    assert_eq!(hist("serve.latency_us.der.tenant-alpha"), 5);
    assert_eq!(hist("serve.latency_us.ping"), 1);
    assert_eq!(hist("serve.queue_wait_us"), 1, "one accepted connection");
    assert_eq!(hist("serve.handshake_us"), 1);
    assert_eq!(hist("serve.conn_lifetime_us"), 1);
    assert_eq!(hist("serve.request_bytes"), 6);
}

#[test]
fn concurrent_tenants_are_served_by_the_pool() {
    let (server, world, _obs) = start_demo(4, 10_000);
    let addr = server.local_addr().to_string();
    let der = world.sample_der.clone();
    let offline = cert_verdict_der(&der, &demo_verdict_context());

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let der = der.clone();
            let offline = offline.clone();
            let endpoint = mtls_serve::tls::EndpointConfig {
                version: world.tenant_endpoint.version,
                chain: world.tenant_endpoint.chain.clone(),
                random_seed: world.tenant_endpoint.random_seed,
            };
            std::thread::spawn(move || {
                let mut c = ClientSession::connect(&addr, &endpoint, None).unwrap();
                for _ in 0..20 {
                    match c.request_der(&der).unwrap() {
                        Response::Verdict(v) => assert_eq!(v, offline),
                        other => panic!("unexpected {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}
