//! DER encoder.
//!
//! `DerWriter` appends TLVs to an internal buffer. Nested constructed types
//! (`SEQUENCE`, `SET`, explicit context tags) are written through closures:
//! the body is rendered into a scratch writer first so the definite length is
//! known before the header is emitted — DER forbids indefinite lengths.

use crate::oid::Oid;
use crate::tag::Tag;
use crate::time::Asn1Time;

/// An append-only DER encoder.
#[derive(Debug, Default)]
pub struct DerWriter {
    buf: Vec<u8>,
}

impl DerWriter {
    /// A fresh, empty writer.
    pub fn new() -> DerWriter {
        DerWriter { buf: Vec::new() }
    }

    /// A writer with pre-allocated capacity, for hot paths that know their
    /// approximate output size (certificate minting mints millions).
    pub fn with_capacity(cap: usize) -> DerWriter {
        DerWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consume the writer and return the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a complete TLV with the given tag and content.
    pub fn tlv(&mut self, tag: Tag, content: &[u8]) {
        self.buf.push(tag.octet());
        write_length(&mut self.buf, content.len());
        self.buf.extend_from_slice(content);
    }

    /// Append pre-encoded DER bytes verbatim (e.g. a nested certificate).
    pub fn raw(&mut self, der: &[u8]) {
        self.buf.extend_from_slice(der);
    }

    /// Write a constructed value: the closure fills the body.
    pub fn constructed(&mut self, tag: Tag, f: impl FnOnce(&mut DerWriter)) {
        debug_assert!(
            tag.is_constructed(),
            "constructed() needs a constructed tag"
        );
        let mut inner = DerWriter::new();
        f(&mut inner);
        self.tlv(tag, &inner.buf);
    }

    /// Write a `SEQUENCE`.
    pub fn sequence(&mut self, f: impl FnOnce(&mut DerWriter)) {
        self.constructed(Tag::SEQUENCE, f);
    }

    /// Write a `SET`.
    pub fn set(&mut self, f: impl FnOnce(&mut DerWriter)) {
        self.constructed(Tag::SET, f);
    }

    /// Write an explicit context tag `[n]` wrapping the closure's body.
    pub fn explicit(&mut self, n: u8, f: impl FnOnce(&mut DerWriter)) {
        self.constructed(Tag::context_constructed(n), f);
    }

    /// Write a BOOLEAN (DER canonical: 0xFF / 0x00).
    pub fn boolean(&mut self, value: bool) {
        self.tlv(Tag::BOOLEAN, &[if value { 0xFF } else { 0x00 }]);
    }

    /// Write an INTEGER from a signed native value.
    pub fn integer_i64(&mut self, value: i64) {
        let bytes = value.to_be_bytes();
        let content = minimal_signed(&bytes, value < 0);
        self.tlv(Tag::INTEGER, content);
    }

    /// Write an INTEGER from unsigned big-endian magnitude bytes (serial
    /// numbers). A leading zero octet is added if the high bit is set, and
    /// redundant leading zeros are stripped; an empty slice encodes zero.
    pub fn integer_bytes(&mut self, magnitude: &[u8]) {
        let mut start = 0;
        while start < magnitude.len() && magnitude[start] == 0 {
            start += 1;
        }
        let trimmed = &magnitude[start..];
        if trimmed.is_empty() {
            self.tlv(Tag::INTEGER, &[0]);
        } else if trimmed[0] & 0x80 != 0 {
            let mut content = Vec::with_capacity(trimmed.len() + 1);
            content.push(0);
            content.extend_from_slice(trimmed);
            self.tlv(Tag::INTEGER, &content);
        } else {
            self.tlv(Tag::INTEGER, trimmed);
        }
    }

    /// Write a BIT STRING with zero unused bits (signatures, key bits).
    pub fn bit_string(&mut self, bits: &[u8]) {
        let mut content = Vec::with_capacity(bits.len() + 1);
        content.push(0);
        content.extend_from_slice(bits);
        self.tlv(Tag::BIT_STRING, &content);
    }

    /// Write an OCTET STRING.
    pub fn octet_string(&mut self, bytes: &[u8]) {
        self.tlv(Tag::OCTET_STRING, bytes);
    }

    /// Write a NULL.
    pub fn null(&mut self) {
        self.tlv(Tag::NULL, &[]);
    }

    /// Write an ENUMERATED (same content rules as INTEGER; used by CRL
    /// reason codes).
    pub fn enumerated(&mut self, value: i64) {
        let bytes = value.to_be_bytes();
        let content = minimal_signed(&bytes, value < 0);
        self.tlv(Tag::ENUMERATED, content);
    }

    /// Write an OBJECT IDENTIFIER.
    pub fn oid(&mut self, oid: &Oid) {
        self.tlv(Tag::OID, &oid.to_der_content());
    }

    /// Write a UTF8String.
    pub fn utf8_string(&mut self, s: &str) {
        self.tlv(Tag::UTF8_STRING, s.as_bytes());
    }

    /// Write a PrintableString. The caller must ensure the character set is
    /// legal (`is_printable_string`); minting code uses UTF8String otherwise.
    pub fn printable_string(&mut self, s: &str) {
        debug_assert!(is_printable_string(s));
        self.tlv(Tag::PRINTABLE_STRING, s.as_bytes());
    }

    /// Write an IA5String (ASCII; used for DNS names, email, URIs in SAN).
    pub fn ia5_string(&mut self, s: &str) {
        debug_assert!(s.is_ascii());
        self.tlv(Tag::IA5_STRING, s.as_bytes());
    }

    /// Write a context-specific *primitive* tag `[n]` with raw content
    /// (GeneralName alternatives in SAN).
    pub fn context_primitive(&mut self, n: u8, content: &[u8]) {
        self.tlv(Tag::context(n), content);
    }

    /// Write a time value, choosing UTCTime vs GeneralizedTime per RFC 5280.
    pub fn time(&mut self, t: Asn1Time) {
        let (s, is_utc) = t.to_der_string();
        let tag = if is_utc {
            Tag::UTC_TIME
        } else {
            Tag::GENERALIZED_TIME
        };
        self.tlv(tag, s.as_bytes());
    }
}

/// Minimal two's-complement representation of a big-endian signed value.
fn minimal_signed(bytes: &[u8; 8], negative: bool) -> &[u8] {
    let pad = if negative { 0xFF } else { 0x00 };
    let mut start = 0;
    while start < 7 {
        let sign_ok = if negative {
            bytes[start + 1] & 0x80 != 0
        } else {
            bytes[start + 1] & 0x80 == 0
        };
        if bytes[start] == pad && sign_ok {
            start += 1;
        } else {
            break;
        }
    }
    &bytes[start..]
}

/// DER definite length: short form < 0x80, else long form with minimal bytes.
/// Widened to u64 so content lengths ≥ 2^32 encode correctly (the previous
/// `as u32` cast silently truncated them to their low 32 bits).
pub(crate) fn write_length(buf: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        buf.push(len as u8);
    } else {
        let be = (len as u64).to_be_bytes();
        let skip = be.iter().take_while(|&&b| b == 0).count();
        buf.push(0x80 | (8 - skip) as u8);
        buf.extend_from_slice(&be[skip..]);
    }
}

/// PrintableString character set per X.680.
pub fn is_printable_string(s: &str) -> bool {
    s.bytes().all(|b| {
        b.is_ascii_alphanumeric()
            || matches!(
                b,
                b' ' | b'\'' | b'(' | b')' | b'+' | b',' | b'-' | b'.' | b'/' | b':' | b'=' | b'?'
            )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_and_long_lengths() {
        let mut buf = Vec::new();
        write_length(&mut buf, 0x7F);
        assert_eq!(buf, vec![0x7F]);

        buf.clear();
        write_length(&mut buf, 0x80);
        assert_eq!(buf, vec![0x81, 0x80]);

        buf.clear();
        write_length(&mut buf, 0x1234);
        assert_eq!(buf, vec![0x82, 0x12, 0x34]);

        buf.clear();
        write_length(&mut buf, 0xFF);
        assert_eq!(buf, vec![0x81, 0xFF]);

        buf.clear();
        write_length(&mut buf, 0x100);
        assert_eq!(buf, vec![0x82, 0x01, 0x00]);

        buf.clear();
        write_length(&mut buf, 0xFFFF);
        assert_eq!(buf, vec![0x82, 0xFF, 0xFF]);

        buf.clear();
        write_length(&mut buf, 0x1_0000);
        assert_eq!(buf, vec![0x83, 0x01, 0x00, 0x00]);

        buf.clear();
        write_length(&mut buf, 0x0101_0101);
        assert_eq!(buf, vec![0x84, 0x01, 0x01, 0x01, 0x01]);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn lengths_beyond_u32_do_not_truncate() {
        // 2^32 used to wrap to 0 via the `as u32` cast, emitting `0x80` —
        // the (forbidden) indefinite-length marker. Call the helper
        // directly: no 4 GiB buffer needed to pin the header bytes.
        let mut buf = Vec::new();
        write_length(&mut buf, 0x1_0000_0000);
        assert_eq!(buf, vec![0x85, 0x01, 0x00, 0x00, 0x00, 0x00]);

        buf.clear();
        write_length(&mut buf, 0xFFFF_FFFF);
        assert_eq!(buf, vec![0x84, 0xFF, 0xFF, 0xFF, 0xFF]);

        buf.clear();
        write_length(&mut buf, 0x0123_4567_89AB_CDEF);
        assert_eq!(
            buf,
            vec![0x88, 0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF]
        );
    }

    #[test]
    fn integer_encodings_are_canonical() {
        let enc = |v: i64| {
            let mut w = DerWriter::new();
            w.integer_i64(v);
            w.finish()
        };
        assert_eq!(enc(0), vec![0x02, 0x01, 0x00]);
        assert_eq!(enc(127), vec![0x02, 0x01, 0x7F]);
        assert_eq!(enc(128), vec![0x02, 0x02, 0x00, 0x80]);
        assert_eq!(enc(256), vec![0x02, 0x02, 0x01, 0x00]);
        assert_eq!(enc(-1), vec![0x02, 0x01, 0xFF]);
        assert_eq!(enc(-128), vec![0x02, 0x01, 0x80]);
        assert_eq!(enc(-129), vec![0x02, 0x02, 0xFF, 0x7F]);
    }

    #[test]
    fn integer_bytes_pads_high_bit() {
        let mut w = DerWriter::new();
        w.integer_bytes(&[0x80]);
        assert_eq!(w.finish(), vec![0x02, 0x02, 0x00, 0x80]);
    }

    #[test]
    fn integer_bytes_strips_leading_zeros() {
        let mut w = DerWriter::new();
        w.integer_bytes(&[0x00, 0x00, 0x24, 0x68, 0x00]);
        assert_eq!(w.finish(), vec![0x02, 0x03, 0x24, 0x68, 0x00]);
    }

    #[test]
    fn integer_bytes_zero() {
        let mut w = DerWriter::new();
        w.integer_bytes(&[]);
        assert_eq!(w.finish(), vec![0x02, 0x01, 0x00]);
        let mut w = DerWriter::new();
        w.integer_bytes(&[0, 0]);
        assert_eq!(w.finish(), vec![0x02, 0x01, 0x00]);
    }

    #[test]
    fn nested_sequences() {
        let mut w = DerWriter::new();
        w.sequence(|w| {
            w.sequence(|w| w.null());
            w.boolean(true);
        });
        assert_eq!(
            w.finish(),
            vec![0x30, 0x07, 0x30, 0x02, 0x05, 0x00, 0x01, 0x01, 0xFF]
        );
    }

    #[test]
    fn bit_string_has_unused_bits_prefix() {
        let mut w = DerWriter::new();
        w.bit_string(&[0xAB, 0xCD]);
        assert_eq!(w.finish(), vec![0x03, 0x03, 0x00, 0xAB, 0xCD]);
    }

    #[test]
    fn printable_string_charset() {
        assert!(is_printable_string("Globus Online"));
        assert!(is_printable_string("Acme Co"));
        assert!(!is_printable_string("a@b")); // '@' not allowed
        assert!(!is_printable_string("x_y")); // '_' not allowed
    }
}
