//! ASN.1 time values (`UTCTime` / `GeneralizedTime`) and the civil-calendar
//! arithmetic they need.
//!
//! X.509 `Validity` uses UTCTime for years 1950–2049 and GeneralizedTime
//! otherwise (RFC 5280 §4.1.2.5). The paper's dataset contains certificates
//! with `notAfter` values in 1757 and `notBefore` values in 2157, so the full
//! proleptic-Gregorian range must round-trip. All values are UTC ("Z").

use crate::{Error, Result};

/// Seconds in a day.
const DAY: i64 = 86_400;

/// A UTC timestamp with second precision, stored as seconds since the Unix
/// epoch (may be negative: the paper observes certificates dated 1757).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn1Time {
    unix: i64,
}

impl Asn1Time {
    /// From raw Unix seconds.
    pub fn from_unix(unix: i64) -> Asn1Time {
        Asn1Time { unix }
    }

    /// From a civil date/time (UTC). Panics on out-of-range month/day/time
    /// components; callers construct these from validated parses or literals.
    pub fn from_ymd_hms(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        min: u32,
        sec: u32,
    ) -> Asn1Time {
        assert!((1..=12).contains(&month), "month out of range");
        assert!((1..=31).contains(&day), "day out of range");
        assert!(hour < 24 && min < 60 && sec < 60, "time out of range");
        let days = days_from_civil(year, month, day);
        Asn1Time {
            unix: days * DAY + i64::from(hour) * 3600 + i64::from(min) * 60 + i64::from(sec),
        }
    }

    /// Midnight UTC on the given civil date.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Asn1Time {
        Asn1Time::from_ymd_hms(year, month, day, 0, 0, 0)
    }

    /// Seconds since the Unix epoch.
    pub fn unix(self) -> i64 {
        self.unix
    }

    /// The civil (year, month, day, hour, minute, second) in UTC.
    pub fn to_civil(self) -> (i32, u32, u32, u32, u32, u32) {
        let days = self.unix.div_euclid(DAY);
        let secs = self.unix.rem_euclid(DAY);
        let (y, m, d) = civil_from_days(days);
        (
            y,
            m,
            d,
            (secs / 3600) as u32,
            ((secs % 3600) / 60) as u32,
            (secs % 60) as u32,
        )
    }

    /// The civil year.
    pub fn year(self) -> i32 {
        self.to_civil().0
    }

    /// Add a whole number of days (may be negative).
    pub fn add_days(self, days: i64) -> Asn1Time {
        Asn1Time {
            unix: self.unix + days * DAY,
        }
    }

    /// Add seconds (may be negative).
    pub fn add_secs(self, secs: i64) -> Asn1Time {
        Asn1Time {
            unix: self.unix + secs,
        }
    }

    /// Whole days from `self` to `other`, floored. `div_euclid` rather
    /// than `/`: truncation toward zero would make a negative
    /// partial-day span (the direction the expired/validity analyses
    /// traverse) one day too small in magnitude — `-36` hours must count
    /// as `-2` elapsed days, not `-1`.
    pub fn days_until(self, other: Asn1Time) -> i64 {
        (other.unix - self.unix).div_euclid(DAY)
    }

    /// Whether RFC 5280 requires UTCTime (1950–2049) for this value.
    pub fn fits_utc_time(self) -> bool {
        let y = self.year();
        (1950..=2049).contains(&y)
    }

    /// Render as DER content bytes: `YYMMDDHHMMSSZ` for UTCTime range,
    /// otherwise `YYYYMMDDHHMMSSZ` (GeneralizedTime). Returns the string and
    /// whether it is a UTCTime.
    pub fn to_der_string(self) -> (String, bool) {
        let (y, mo, d, h, mi, s) = self.to_civil();
        if self.fits_utc_time() {
            let yy = y % 100;
            (format!("{yy:02}{mo:02}{d:02}{h:02}{mi:02}{s:02}Z"), true)
        } else {
            (format!("{y:04}{mo:02}{d:02}{h:02}{mi:02}{s:02}Z"), false)
        }
    }

    /// Parse UTCTime content bytes (`YYMMDDHHMMSSZ`).
    pub fn parse_utc_time(content: &[u8]) -> Result<Asn1Time> {
        let s = std::str::from_utf8(content).map_err(|_| Error::BadTime)?;
        if s.len() != 13 || !s.ends_with('Z') {
            return Err(Error::BadTime);
        }
        let yy = digits(s, 0..2)? as i32;
        // RFC 5280: two-digit years 00–49 are 2000s, 50–99 are 1900s.
        let year = if yy < 50 { 2000 + yy } else { 1900 + yy };
        parse_tail(year, &s[2..12])
    }

    /// Parse GeneralizedTime content bytes (`YYYYMMDDHHMMSSZ`).
    pub fn parse_generalized_time(content: &[u8]) -> Result<Asn1Time> {
        let s = std::str::from_utf8(content).map_err(|_| Error::BadTime)?;
        if s.len() != 15 || !s.ends_with('Z') {
            return Err(Error::BadTime);
        }
        let year = digits(s, 0..4)? as i32;
        parse_tail(year, &s[4..14])
    }

    /// ISO-8601 text (`YYYY-MM-DDTHH:MM:SSZ`), for reports.
    pub fn to_iso8601(self) -> String {
        let (y, mo, d, h, mi, s) = self.to_civil();
        format!("{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}Z")
    }

    /// Date-only text (`YYYY-MM-DD`), for reports.
    pub fn to_date_string(self) -> String {
        let (y, mo, d, ..) = self.to_civil();
        format!("{y:04}-{mo:02}-{d:02}")
    }
}

/// Parse a fixed-width decimal field, accepting ASCII digits only.
/// `str::parse` alone would also take a leading `+`/`-` sign (so `"+5"`
/// would parse as month 5), which DER time strings forbid.
fn digits(s: &str, range: std::ops::Range<usize>) -> Result<u32> {
    let field = s.get(range).ok_or(Error::BadTime)?;
    if field.is_empty() || !field.bytes().all(|b| b.is_ascii_digit()) {
        return Err(Error::BadTime);
    }
    field.parse().map_err(|_| Error::BadTime)
}

fn parse_tail(year: i32, rest: &str) -> Result<Asn1Time> {
    let month = digits(rest, 0..2)?;
    let day = digits(rest, 2..4)?;
    let hour = digits(rest, 4..6)?;
    let min = digits(rest, 6..8)?;
    let sec = digits(rest, 8..10)?;
    if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
        return Err(Error::BadTime);
    }
    if hour >= 24 || min >= 60 || sec >= 60 {
        return Err(Error::BadTime);
    }
    Ok(Asn1Time::from_ymd_hms(year, month, day, hour, min, sec))
}

/// Days in a month of the proleptic Gregorian calendar.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Proleptic Gregorian leap-year rule.
pub fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11]
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (inverse of `days_from_civil`).
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(Asn1Time::from_ymd(1970, 1, 1).unix(), 0);
        assert_eq!(Asn1Time::from_unix(0).to_civil(), (1970, 1, 1, 0, 0, 0));
    }

    #[test]
    fn known_timestamp() {
        // 2022-05-01T00:00:00Z == 1651363200
        assert_eq!(Asn1Time::from_ymd(2022, 5, 1).unix(), 1_651_363_200);
    }

    #[test]
    fn civil_round_trip_across_centuries() {
        for &(y, m, d) in &[
            (1757, 6, 15),
            (1849, 10, 24),
            (1970, 1, 1),
            (2000, 2, 29),
            (2022, 5, 1),
            (2049, 12, 31),
            (2050, 1, 1),
            (2157, 3, 9),
            (2250, 7, 4),
        ] {
            let t = Asn1Time::from_ymd(y, m, d);
            let (yy, mm, dd, ..) = t.to_civil();
            assert_eq!((yy, mm, dd), (y, m, d));
        }
    }

    #[test]
    fn utc_time_round_trip() {
        let t = Asn1Time::from_ymd_hms(2023, 8, 9, 12, 34, 56);
        let (s, is_utc) = t.to_der_string();
        assert!(is_utc);
        assert_eq!(s, "230809123456Z");
        assert_eq!(Asn1Time::parse_utc_time(s.as_bytes()).unwrap(), t);
    }

    #[test]
    fn utc_time_pivot() {
        // 99 => 1999, 49 => 2049, 50 => 1950
        assert_eq!(
            Asn1Time::parse_utc_time(b"991231235959Z").unwrap().year(),
            1999
        );
        assert_eq!(
            Asn1Time::parse_utc_time(b"490101000000Z").unwrap().year(),
            2049
        );
        assert_eq!(
            Asn1Time::parse_utc_time(b"500101000000Z").unwrap().year(),
            1950
        );
    }

    #[test]
    fn generalized_time_round_trip_pre_1950() {
        let t = Asn1Time::from_ymd_hms(1849, 10, 24, 0, 0, 0);
        let (s, is_utc) = t.to_der_string();
        assert!(!is_utc);
        assert_eq!(s, "18491024000000Z");
        assert_eq!(Asn1Time::parse_generalized_time(s.as_bytes()).unwrap(), t);
    }

    #[test]
    fn generalized_time_round_trip_post_2049() {
        let t = Asn1Time::from_ymd_hms(2157, 3, 9, 1, 2, 3);
        let (s, is_utc) = t.to_der_string();
        assert!(!is_utc);
        assert_eq!(Asn1Time::parse_generalized_time(s.as_bytes()).unwrap(), t);
    }

    #[test]
    fn rejects_bad_times() {
        assert!(Asn1Time::parse_utc_time(b"230230000000Z").is_err()); // Feb 30
        assert!(Asn1Time::parse_utc_time(b"231301000000Z").is_err()); // month 13
        assert!(Asn1Time::parse_utc_time(b"2308091234Z").is_err()); // too short
        assert!(Asn1Time::parse_utc_time(b"230809123456+").is_err()); // no Z
        assert!(Asn1Time::parse_generalized_time(b"20230809123456").is_err());
        assert!(Asn1Time::parse_utc_time(b"230809250000Z").is_err()); // hour 25
    }

    #[test]
    fn rejects_sign_characters_in_numeric_fields() {
        // `str::parse` accepts "+5" as 5; every field must be digits-only.
        assert!(Asn1Time::parse_utc_time(b"+30809123456Z").is_err()); // year "+3"
        assert!(Asn1Time::parse_utc_time(b"-30809123456Z").is_err());
        assert!(Asn1Time::parse_utc_time(b"23+809123456Z").is_err()); // month "+8"
        assert!(Asn1Time::parse_utc_time(b"2308+9123456Z").is_err()); // day "+9"
        assert!(Asn1Time::parse_utc_time(b"230809+23456Z").is_err()); // hour "+2"
        assert!(Asn1Time::parse_utc_time(b"23080912+456Z").is_err()); // min "+4"
        assert!(Asn1Time::parse_utc_time(b"2308091234+6Z").is_err()); // sec "+6"
        assert!(Asn1Time::parse_utc_time(b"23 809123456Z").is_err()); // space pad
        assert!(Asn1Time::parse_generalized_time(b"+0230809123456Z").is_err());
        assert!(Asn1Time::parse_generalized_time(b"2023+809123456Z").is_err());
        assert!(Asn1Time::parse_generalized_time(b"20230809+23456Z").is_err());
        // Unicode digits that `char::is_numeric` would bless are not ASCII.
        assert!(Asn1Time::parse_utc_time("２30809123456Z".as_bytes()).is_err());
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(2024));
        assert!(!is_leap(2023));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2023, 2), 28);
    }

    #[test]
    fn day_arithmetic() {
        let a = Asn1Time::from_ymd(2022, 5, 1);
        let b = a.add_days(700);
        assert_eq!(a.days_until(b), 700);
        assert_eq!(b.days_until(a), -700);
    }

    #[test]
    fn days_until_floors_partial_days() {
        let a = Asn1Time::from_ymd(2022, 5, 1);
        // Exact-day boundaries are unchanged in both directions.
        assert_eq!(a.days_until(a), 0);
        assert_eq!(a.days_until(a.add_days(1)), 1);
        assert_eq!(a.days_until(a.add_days(-1)), -1);
        // A positive partial day floors down (one second short of a day).
        assert_eq!(a.days_until(a.add_secs(DAY - 1)), 0);
        assert_eq!(a.days_until(a.add_secs(DAY + 1)), 1);
        // A negative partial day floors *away* from zero: -1 second is
        // day -1, -36 hours is day -2 (truncation gave 0 and -1).
        assert_eq!(a.days_until(a.add_secs(-1)), -1);
        assert_eq!(a.days_until(a.add_secs(-DAY - DAY / 2)), -2);
        assert_eq!(a.days_until(a.add_secs(-DAY)), -1);
    }

    #[test]
    fn negative_unix_times() {
        let t = Asn1Time::from_ymd(1849, 10, 24);
        assert!(t.unix() < 0);
        let (y, m, d, ..) = t.to_civil();
        assert_eq!((y, m, d), (1849, 10, 24));
    }
}
