//! Strict DER (Distinguished Encoding Rules) encoder/decoder.
//!
//! This crate implements the subset of X.690 DER required to build and parse
//! X.509 certificates from scratch: definite-length TLV framing, the
//! universal types used by RFC 5280 (`INTEGER`, `BIT STRING`, `OCTET STRING`,
//! `NULL`, `OBJECT IDENTIFIER`, `UTF8String`, `PrintableString`, `IA5String`,
//! `UTCTime`, `GeneralizedTime`, `SEQUENCE`, `SET`, `BOOLEAN`) and
//! context-specific tagging (both primitive, for `GeneralName`, and
//! constructed, for the `[0] EXPLICIT` version field and `[3]` extensions).
//!
//! Design goals, in order: correctness (strict DER — minimal lengths,
//! canonical integer encoding), simplicity, and zero surprises. The reader is
//! zero-copy: it hands out subslices of the input buffer.
//!
//! # Example
//!
//! ```
//! use mtls_asn1::{DerWriter, DerReader, Tag};
//!
//! let mut w = DerWriter::new();
//! w.sequence(|w| {
//!     w.integer_i64(42);
//!     w.utf8_string("hello");
//! });
//! let der = w.finish();
//!
//! let mut r = DerReader::new(&der);
//! let mut seq = r.read_sequence().unwrap();
//! assert_eq!(seq.read_integer_i64().unwrap(), 42);
//! assert_eq!(seq.read_string().unwrap(), "hello");
//! assert!(seq.is_empty());
//! ```

pub mod oid;
pub mod reader;
pub mod tag;
pub mod time;
pub mod writer;

pub use oid::Oid;
pub use reader::DerReader;
pub use tag::{Class, Tag};
pub use time::Asn1Time;
pub use writer::DerWriter;

/// Errors produced while decoding DER.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended before a complete TLV could be read.
    Truncated,
    /// A length octet sequence was not minimally encoded or exceeded 4 bytes.
    BadLength,
    /// The tag that was read does not match the tag the caller expected.
    UnexpectedTag { expected: u8, got: u8 },
    /// An INTEGER had a non-canonical (padded) encoding or was empty.
    BadInteger,
    /// An INTEGER did not fit in the requested native type.
    IntegerOverflow,
    /// An OBJECT IDENTIFIER was empty or had a malformed arc.
    BadOid,
    /// A string type contained bytes invalid for its character set.
    BadString,
    /// A UTCTime/GeneralizedTime was malformed.
    BadTime,
    /// A BIT STRING had an invalid unused-bits octet.
    BadBitString,
    /// A BOOLEAN content octet was not 0x00 or 0xFF (DER requires canonical).
    BadBoolean,
    /// Trailing bytes remained after a complete parse where none are allowed.
    TrailingData,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Truncated => write!(f, "DER input truncated"),
            Error::BadLength => write!(f, "non-minimal or oversized DER length"),
            Error::UnexpectedTag { expected, got } => {
                write!(
                    f,
                    "unexpected DER tag: expected 0x{expected:02x}, got 0x{got:02x}"
                )
            }
            Error::BadInteger => write!(f, "non-canonical DER INTEGER"),
            Error::IntegerOverflow => write!(f, "DER INTEGER does not fit native type"),
            Error::BadOid => write!(f, "malformed OBJECT IDENTIFIER"),
            Error::BadString => write!(f, "invalid characters for DER string type"),
            Error::BadTime => write!(f, "malformed DER time"),
            Error::BadBitString => write!(f, "malformed BIT STRING"),
            Error::BadBoolean => write!(f, "non-canonical BOOLEAN"),
            Error::TrailingData => write!(f, "trailing bytes after DER value"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias for DER operations.
pub type Result<T> = std::result::Result<T, Error>;
