//! DER decoder.
//!
//! `DerReader` walks a byte slice, peeling TLVs. Constructed types return a
//! nested reader borrowing the same buffer — no copies. Strictness follows
//! DER: minimal lengths, canonical integers and booleans are enforced;
//! anything else is an `Error`, because the consumers of this crate (the
//! passive monitor, the analysis pipeline) must never silently mis-measure.

use crate::oid::Oid;
use crate::tag::Tag;
use crate::time::Asn1Time;
use crate::{Error, Result};

/// A cursor over DER bytes.
#[derive(Debug, Clone)]
pub struct DerReader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> DerReader<'a> {
    /// Start reading at the beginning of `input`.
    pub fn new(input: &'a [u8]) -> DerReader<'a> {
        DerReader { input, pos: 0 }
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Peek the next tag octet without consuming it.
    pub fn peek_tag(&self) -> Option<Tag> {
        self.input.get(self.pos).map(|&b| Tag(b))
    }

    /// Read one TLV of any tag; returns `(tag, content)`.
    pub fn read_any(&mut self) -> Result<(Tag, &'a [u8])> {
        let tag = Tag(*self.input.get(self.pos).ok_or(Error::Truncated)?);
        self.pos += 1;
        let len = self.read_length()?;
        let end = self.pos.checked_add(len).ok_or(Error::BadLength)?;
        if end > self.input.len() {
            return Err(Error::Truncated);
        }
        let content = &self.input[self.pos..end];
        self.pos = end;
        Ok((tag, content))
    }

    /// Read one TLV and require a specific tag; returns the content.
    pub fn read_expected(&mut self, expected: Tag) -> Result<&'a [u8]> {
        let tag = Tag(*self.input.get(self.pos).ok_or(Error::Truncated)?);
        if tag != expected {
            return Err(Error::UnexpectedTag {
                expected: expected.octet(),
                got: tag.octet(),
            });
        }
        let (_, content) = self.read_any()?;
        Ok(content)
    }

    /// Read one complete TLV *including* its header, returned as raw bytes.
    /// Used to capture `tbsCertificate` bytes for signing/fingerprinting.
    pub fn read_raw_tlv(&mut self) -> Result<&'a [u8]> {
        let start = self.pos;
        self.read_any()?;
        Ok(&self.input[start..self.pos])
    }

    /// Read a SEQUENCE and return a reader over its body.
    pub fn read_sequence(&mut self) -> Result<DerReader<'a>> {
        Ok(DerReader::new(self.read_expected(Tag::SEQUENCE)?))
    }

    /// Read a SET and return a reader over its body.
    pub fn read_set(&mut self) -> Result<DerReader<'a>> {
        Ok(DerReader::new(self.read_expected(Tag::SET)?))
    }

    /// Read an explicit context tag `[n]` and return a reader over its body.
    pub fn read_explicit(&mut self, n: u8) -> Result<DerReader<'a>> {
        Ok(DerReader::new(
            self.read_expected(Tag::context_constructed(n))?,
        ))
    }

    /// If the next TLV is the explicit context tag `[n]`, read it.
    pub fn read_optional_explicit(&mut self, n: u8) -> Result<Option<DerReader<'a>>> {
        if self.peek_tag() == Some(Tag::context_constructed(n)) {
            Ok(Some(self.read_explicit(n)?))
        } else {
            Ok(None)
        }
    }

    /// Read a BOOLEAN (canonical DER only).
    pub fn read_boolean(&mut self) -> Result<bool> {
        let content = self.read_expected(Tag::BOOLEAN)?;
        match content {
            [0x00] => Ok(false),
            [0xFF] => Ok(true),
            _ => Err(Error::BadBoolean),
        }
    }

    /// Read an INTEGER as i64 (rejects values that do not fit).
    pub fn read_integer_i64(&mut self) -> Result<i64> {
        let content = self.read_integer_bytes_signed()?;
        if content.len() > 8 {
            return Err(Error::IntegerOverflow);
        }
        let negative = content[0] & 0x80 != 0;
        let mut acc: i64 = if negative { -1 } else { 0 };
        for &b in content {
            acc = (acc << 8) | i64::from(b);
        }
        Ok(acc)
    }

    /// Read an INTEGER, returning its canonical content bytes (two's
    /// complement). Serial numbers use this to preserve full width.
    pub fn read_integer_bytes_signed(&mut self) -> Result<&'a [u8]> {
        let content = self.read_expected(Tag::INTEGER)?;
        if content.is_empty() {
            return Err(Error::BadInteger);
        }
        if content.len() > 1 {
            // Reject padded encodings: 00 followed by a clear high bit, or
            // FF followed by a set high bit.
            if (content[0] == 0x00 && content[1] & 0x80 == 0)
                || (content[0] == 0xFF && content[1] & 0x80 != 0)
            {
                return Err(Error::BadInteger);
            }
        }
        Ok(content)
    }

    /// Read an INTEGER as unsigned magnitude bytes (the leading sign pad, if
    /// any, is stripped). Rejects negative values.
    pub fn read_integer_unsigned(&mut self) -> Result<&'a [u8]> {
        let content = self.read_integer_bytes_signed()?;
        if content[0] & 0x80 != 0 {
            return Err(Error::BadInteger);
        }
        if content.len() > 1 && content[0] == 0 {
            Ok(&content[1..])
        } else {
            Ok(content)
        }
    }

    /// Read a BIT STRING; only zero-unused-bits values are accepted (all
    /// RFC 5280 uses in this codebase are byte-aligned).
    pub fn read_bit_string(&mut self) -> Result<&'a [u8]> {
        let content = self.read_expected(Tag::BIT_STRING)?;
        match content.split_first() {
            Some((0, bits)) => Ok(bits),
            _ => Err(Error::BadBitString),
        }
    }

    /// Read an OCTET STRING.
    pub fn read_octet_string(&mut self) -> Result<&'a [u8]> {
        self.read_expected(Tag::OCTET_STRING)
    }

    /// Read a NULL.
    pub fn read_null(&mut self) -> Result<()> {
        let content = self.read_expected(Tag::NULL)?;
        if content.is_empty() {
            Ok(())
        } else {
            Err(Error::TrailingData)
        }
    }

    /// Read an OBJECT IDENTIFIER.
    pub fn read_oid(&mut self) -> Result<Oid> {
        Oid::from_der_content(self.read_expected(Tag::OID)?)
    }

    /// Read any of the directory string types as UTF-8 text. Zero-copy for
    /// the UTF-8-compatible types; see [`DerReader::read_string_lossy`] for
    /// the legacy encodings (T61String, BMPString) that real-world DNs
    /// still occasionally carry.
    pub fn read_string(&mut self) -> Result<&'a str> {
        let (tag, content) = self.read_any()?;
        match tag {
            Tag::UTF8_STRING => std::str::from_utf8(content).map_err(|_| Error::BadString),
            Tag::PRINTABLE_STRING | Tag::IA5_STRING => {
                if content.is_ascii() {
                    // ASCII is valid UTF-8.
                    Ok(std::str::from_utf8(content).expect("ascii is utf8"))
                } else {
                    Err(Error::BadString)
                }
            }
            other => Err(Error::UnexpectedTag {
                expected: Tag::UTF8_STRING.octet(),
                got: other.octet(),
            }),
        }
    }

    /// Read any directory string type, including the legacy encodings:
    /// T61String/TeletexString (treated as Latin-1, the universal de-facto
    /// interpretation) and BMPString (UTF-16BE). Allocates only when a
    /// conversion is required.
    pub fn read_string_lossy(&mut self) -> Result<std::borrow::Cow<'a, str>> {
        use std::borrow::Cow;
        let (tag, content) = self.read_any()?;
        match tag {
            Tag::UTF8_STRING => std::str::from_utf8(content)
                .map(Cow::Borrowed)
                .map_err(|_| Error::BadString),
            Tag::PRINTABLE_STRING | Tag::IA5_STRING => {
                if content.is_ascii() {
                    Ok(Cow::Borrowed(
                        std::str::from_utf8(content).expect("ascii is utf8"),
                    ))
                } else {
                    Err(Error::BadString)
                }
            }
            Tag::T61_STRING => {
                // De-facto Latin-1: every byte maps to the same code point.
                Ok(Cow::Owned(content.iter().map(|&b| b as char).collect()))
            }
            Tag::BMP_STRING => {
                if content.len() % 2 != 0 {
                    return Err(Error::BadString);
                }
                let units: Vec<u16> = content
                    .chunks_exact(2)
                    .map(|c| u16::from_be_bytes([c[0], c[1]]))
                    .collect();
                String::from_utf16(&units)
                    .map(Cow::Owned)
                    .map_err(|_| Error::BadString)
            }
            other => Err(Error::UnexpectedTag {
                expected: Tag::UTF8_STRING.octet(),
                got: other.octet(),
            }),
        }
    }

    /// Read an ENUMERATED as i64 (canonical encoding enforced, as for
    /// INTEGER).
    pub fn read_enumerated(&mut self) -> Result<i64> {
        let content = self.read_expected(Tag::ENUMERATED)?;
        if content.is_empty() || content.len() > 8 {
            return Err(Error::BadInteger);
        }
        if content.len() > 1
            && ((content[0] == 0x00 && content[1] & 0x80 == 0)
                || (content[0] == 0xFF && content[1] & 0x80 != 0))
        {
            return Err(Error::BadInteger);
        }
        let negative = content[0] & 0x80 != 0;
        let mut acc: i64 = if negative { -1 } else { 0 };
        for &b in content {
            acc = (acc << 8) | i64::from(b);
        }
        Ok(acc)
    }

    /// Read a UTCTime or GeneralizedTime.
    pub fn read_time(&mut self) -> Result<Asn1Time> {
        let (tag, content) = self.read_any()?;
        match tag {
            Tag::UTC_TIME => Asn1Time::parse_utc_time(content),
            Tag::GENERALIZED_TIME => Asn1Time::parse_generalized_time(content),
            other => Err(Error::UnexpectedTag {
                expected: Tag::UTC_TIME.octet(),
                got: other.octet(),
            }),
        }
    }

    /// Require that nothing is left; decoding X.509 structures ends with this
    /// so trailing garbage is an error rather than silently ignored.
    pub fn expect_end(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(Error::TrailingData)
        }
    }

    /// Decode a DER definite length at the cursor.
    fn read_length(&mut self) -> Result<usize> {
        let first = *self.input.get(self.pos).ok_or(Error::Truncated)?;
        self.pos += 1;
        if first < 0x80 {
            return Ok(usize::from(first));
        }
        let n = usize::from(first & 0x7F);
        if n == 0 || n > 4 {
            // 0x80 = indefinite (BER only); > 4 bytes is out of scope.
            return Err(Error::BadLength);
        }
        if self.pos + n > self.input.len() {
            return Err(Error::Truncated);
        }
        let mut len: usize = 0;
        for i in 0..n {
            len = (len << 8) | usize::from(self.input[self.pos + i]);
        }
        self.pos += n;
        // DER: long form must be necessary and minimal.
        if len < 0x80 || (n > 1 && len < (1 << (8 * (n - 1)))) {
            return Err(Error::BadLength);
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::DerWriter;

    #[test]
    fn round_trip_sequence() {
        let mut w = DerWriter::new();
        w.sequence(|w| {
            w.integer_i64(-42);
            w.boolean(false);
            w.utf8_string("mtls");
            w.null();
        });
        let der = w.finish();
        let mut r = DerReader::new(&der);
        let mut seq = r.read_sequence().unwrap();
        assert_eq!(seq.read_integer_i64().unwrap(), -42);
        assert!(!seq.read_boolean().unwrap());
        assert_eq!(seq.read_string().unwrap(), "mtls");
        seq.read_null().unwrap();
        seq.expect_end().unwrap();
        r.expect_end().unwrap();
    }

    #[test]
    fn rejects_indefinite_length() {
        let der = [0x30, 0x80, 0x00, 0x00];
        assert_eq!(DerReader::new(&der).read_any(), Err(Error::BadLength));
    }

    #[test]
    fn rejects_non_minimal_long_form() {
        // Length 5 encoded in long form 0x81 0x05: must be short form.
        let der = [0x04, 0x81, 0x05, 1, 2, 3, 4, 5];
        assert_eq!(DerReader::new(&der).read_any(), Err(Error::BadLength));
    }

    #[test]
    fn rejects_truncated_content() {
        let der = [0x04, 0x05, 1, 2, 3];
        assert_eq!(DerReader::new(&der).read_any(), Err(Error::Truncated));
    }

    #[test]
    fn rejects_padded_integer() {
        let der = [0x02, 0x02, 0x00, 0x01];
        assert_eq!(
            DerReader::new(&der).read_integer_i64(),
            Err(Error::BadInteger)
        );
    }

    #[test]
    fn rejects_empty_integer() {
        let der = [0x02, 0x00];
        assert_eq!(
            DerReader::new(&der).read_integer_i64(),
            Err(Error::BadInteger)
        );
    }

    #[test]
    fn rejects_noncanonical_boolean() {
        let der = [0x01, 0x01, 0x01];
        assert_eq!(DerReader::new(&der).read_boolean(), Err(Error::BadBoolean));
    }

    #[test]
    fn unsigned_integer_strips_pad() {
        let mut w = DerWriter::new();
        w.integer_bytes(&[0xFF, 0x00]);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        assert_eq!(r.read_integer_unsigned().unwrap(), &[0xFF, 0x00]);
    }

    #[test]
    fn raw_tlv_captures_header() {
        let mut w = DerWriter::new();
        w.integer_i64(7);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        assert_eq!(r.read_raw_tlv().unwrap(), &der[..]);
    }

    #[test]
    fn optional_explicit_absent() {
        let mut w = DerWriter::new();
        w.integer_i64(1);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        assert!(r.read_optional_explicit(0).unwrap().is_none());
        assert_eq!(r.read_integer_i64().unwrap(), 1);
    }

    #[test]
    fn optional_explicit_present() {
        let mut w = DerWriter::new();
        w.explicit(0, |w| w.integer_i64(2));
        let der = w.finish();
        let mut r = DerReader::new(&der);
        let mut inner = r.read_optional_explicit(0).unwrap().unwrap();
        assert_eq!(inner.read_integer_i64().unwrap(), 2);
    }

    #[test]
    fn lossy_string_reads_legacy_encodings() {
        // T61String "Mÿller" as Latin-1 bytes.
        let der = [0x14, 0x06, b'M', 0xFF, b'l', b'l', b'e', b'r'];
        let mut r = DerReader::new(&der);
        assert_eq!(r.read_string_lossy().unwrap(), "M\u{ff}ller");

        // BMPString "Ab" as UTF-16BE.
        let der = [0x1E, 0x04, 0x00, b'A', 0x00, b'b'];
        let mut r = DerReader::new(&der);
        assert_eq!(r.read_string_lossy().unwrap(), "Ab");

        // Odd-length BMPString is malformed.
        let der = [0x1E, 0x03, 0x00, b'A', 0x00];
        let mut r = DerReader::new(&der);
        assert_eq!(r.read_string_lossy().unwrap_err(), Error::BadString);

        // Unpaired surrogate is malformed UTF-16.
        let der = [0x1E, 0x02, 0xD8, 0x00];
        let mut r = DerReader::new(&der);
        assert_eq!(r.read_string_lossy().unwrap_err(), Error::BadString);

        // UTF-8 passes through borrowed.
        let mut w = DerWriter::new();
        w.utf8_string("plain");
        let der = w.finish();
        let mut r = DerReader::new(&der);
        assert!(matches!(
            r.read_string_lossy().unwrap(),
            std::borrow::Cow::Borrowed("plain")
        ));
    }

    #[test]
    fn long_content_round_trips() {
        let payload = vec![0xAA; 5000];
        let mut w = DerWriter::new();
        w.octet_string(&payload);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        assert_eq!(r.read_octet_string().unwrap(), &payload[..]);
    }
}
