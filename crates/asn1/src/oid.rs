//! OBJECT IDENTIFIER values and their base-128 arc encoding.

use crate::{Error, Result};

/// An ASN.1 OBJECT IDENTIFIER: a sequence of unsigned integer arcs.
///
/// The first arc must be 0, 1, or 2 and the second arc < 40 when the first
/// is 0 or 1, per X.660. Arcs are stored decoded; DER content bytes are
/// produced on demand.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    arcs: Vec<u64>,
}

impl Oid {
    /// Construct from raw arcs. Panics on fewer than two arcs or an invalid
    /// leading pair. Reserved for compile-time OID literals (see
    /// `mtls_x509::oids`), where a malformed constant is a programming error;
    /// anything built from untrusted or runtime data must use
    /// [`Oid::try_new`] instead.
    pub fn new(arcs: &[u64]) -> Oid {
        match Oid::try_new(arcs) {
            Ok(oid) => oid,
            Err(_) => {
                assert!(arcs.len() >= 2, "an OID needs at least two arcs");
                assert!(arcs[0] <= 2, "first OID arc must be 0..=2");
                panic!("second OID arc must be < 40 when first is 0 or 1");
            }
        }
    }

    /// Fallible constructor for arcs that come from untrusted or runtime
    /// data: returns `Err(Error::BadOid)` on fewer than two arcs or a
    /// leading pair that violates X.660 instead of panicking.
    pub fn try_new(arcs: &[u64]) -> Result<Oid> {
        if arcs.len() < 2 || arcs[0] > 2 || (arcs[0] < 2 && arcs[1] >= 40) {
            return Err(Error::BadOid);
        }
        Ok(Oid {
            arcs: arcs.to_vec(),
        })
    }

    /// The decoded arcs.
    pub fn arcs(&self) -> &[u64] {
        &self.arcs
    }

    /// Encode the OID content octets (without tag/length).
    pub fn to_der_content(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.arcs.len() + 1);
        let first = self.arcs[0] * 40 + self.arcs[1];
        encode_base128(first, &mut out);
        for &arc in &self.arcs[2..] {
            encode_base128(arc, &mut out);
        }
        out
    }

    /// Decode OID content octets (without tag/length).
    pub fn from_der_content(content: &[u8]) -> Result<Oid> {
        if content.is_empty() {
            return Err(Error::BadOid);
        }
        let mut arcs = Vec::new();
        let mut iter = content.iter().copied().peekable();
        let first = decode_base128(&mut iter)?;
        if first < 40 {
            arcs.push(0);
            arcs.push(first);
        } else if first < 80 {
            arcs.push(1);
            arcs.push(first - 40);
        } else {
            arcs.push(2);
            arcs.push(first - 80);
        }
        while iter.peek().is_some() {
            arcs.push(decode_base128(&mut iter)?);
        }
        Ok(Oid { arcs })
    }

    /// Dotted-decimal text form, e.g. `2.5.4.3`.
    pub fn dotted(&self) -> String {
        self.arcs
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }
}

impl std::fmt::Display for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.dotted())
    }
}

fn encode_base128(mut value: u64, out: &mut Vec<u8>) {
    let mut stack = [0u8; 10];
    let mut n = 0;
    loop {
        stack[n] = (value & 0x7F) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            break;
        }
    }
    for i in (0..n).rev() {
        let mut byte = stack[i];
        if i != 0 {
            byte |= 0x80;
        }
        out.push(byte);
    }
}

fn decode_base128<I: Iterator<Item = u8>>(iter: &mut std::iter::Peekable<I>) -> Result<u64> {
    let mut value: u64 = 0;
    let mut first = true;
    loop {
        let byte = iter.next().ok_or(Error::BadOid)?;
        if first && byte == 0x80 {
            // Leading 0x80 means a non-minimal arc encoding: reject (DER).
            return Err(Error::BadOid);
        }
        first = false;
        if value > (u64::MAX >> 7) {
            return Err(Error::BadOid);
        }
        value = (value << 7) | u64::from(byte & 0x7F);
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_name_oid_round_trips() {
        let oid = Oid::new(&[2, 5, 4, 3]);
        let content = oid.to_der_content();
        assert_eq!(content, vec![0x55, 0x04, 0x03]);
        assert_eq!(Oid::from_der_content(&content).unwrap(), oid);
        assert_eq!(oid.dotted(), "2.5.4.3");
    }

    #[test]
    fn multi_byte_arc_round_trips() {
        // 1.2.840.113549.1.1.11 (sha256WithRSAEncryption)
        let oid = Oid::new(&[1, 2, 840, 113549, 1, 1, 11]);
        let content = oid.to_der_content();
        assert_eq!(
            content,
            vec![0x2A, 0x86, 0x48, 0x86, 0xF7, 0x0D, 0x01, 0x01, 0x0B]
        );
        assert_eq!(Oid::from_der_content(&content).unwrap(), oid);
    }

    #[test]
    fn first_arc_two_allows_large_second_arc() {
        let oid = Oid::new(&[2, 999, 3]);
        let rt = Oid::from_der_content(&oid.to_der_content()).unwrap();
        assert_eq!(rt, oid);
    }

    #[test]
    fn empty_content_rejected() {
        assert_eq!(Oid::from_der_content(&[]), Err(Error::BadOid));
    }

    #[test]
    fn truncated_arc_rejected() {
        // A continuation byte with nothing after it.
        assert_eq!(Oid::from_der_content(&[0x2A, 0x86]), Err(Error::BadOid));
    }

    #[test]
    fn non_minimal_arc_rejected() {
        // 0x80 prefix pads the arc: forbidden in DER.
        assert_eq!(
            Oid::from_der_content(&[0x2A, 0x80, 0x01]),
            Err(Error::BadOid)
        );
    }

    #[test]
    #[should_panic(expected = "at least two arcs")]
    fn one_arc_panics() {
        Oid::new(&[2]);
    }

    #[test]
    fn try_new_rejects_invalid_arcs_without_panicking() {
        assert_eq!(Oid::try_new(&[]), Err(Error::BadOid));
        assert_eq!(Oid::try_new(&[2]), Err(Error::BadOid));
        assert_eq!(Oid::try_new(&[3, 1]), Err(Error::BadOid));
        assert_eq!(Oid::try_new(&[0, 40]), Err(Error::BadOid));
        assert_eq!(Oid::try_new(&[1, 40, 5]), Err(Error::BadOid));
        assert_eq!(Oid::try_new(&[1, 39]).unwrap().dotted(), "1.39");
        assert_eq!(Oid::try_new(&[2, 999, 3]).unwrap().dotted(), "2.999.3");
    }
}
