//! DER tag octets.
//!
//! Only low-tag-number form (tag numbers 0–30) is supported, which covers all
//! of RFC 5280. A tag octet is `class(2 bits) | constructed(1 bit) | number(5 bits)`.

/// The class bits of a DER tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    Universal,
    Application,
    ContextSpecific,
    Private,
}

impl Class {
    /// The two high bits of the identifier octet for this class.
    pub fn bits(self) -> u8 {
        match self {
            Class::Universal => 0b0000_0000,
            Class::Application => 0b0100_0000,
            Class::ContextSpecific => 0b1000_0000,
            Class::Private => 0b1100_0000,
        }
    }

    /// Decode the class from an identifier octet.
    pub fn from_octet(octet: u8) -> Class {
        match octet >> 6 {
            0 => Class::Universal,
            1 => Class::Application,
            2 => Class::ContextSpecific,
            _ => Class::Private,
        }
    }
}

/// Well-known DER tags (identifier octets) used by the X.509 stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u8);

impl Tag {
    pub const BOOLEAN: Tag = Tag(0x01);
    pub const INTEGER: Tag = Tag(0x02);
    pub const BIT_STRING: Tag = Tag(0x03);
    pub const OCTET_STRING: Tag = Tag(0x04);
    pub const NULL: Tag = Tag(0x05);
    pub const OID: Tag = Tag(0x06);
    pub const ENUMERATED: Tag = Tag(0x0A);
    pub const UTF8_STRING: Tag = Tag(0x0C);
    pub const T61_STRING: Tag = Tag(0x14);
    pub const BMP_STRING: Tag = Tag(0x1E);
    pub const PRINTABLE_STRING: Tag = Tag(0x13);
    pub const IA5_STRING: Tag = Tag(0x16);
    pub const UTC_TIME: Tag = Tag(0x17);
    pub const GENERALIZED_TIME: Tag = Tag(0x18);
    pub const SEQUENCE: Tag = Tag(0x30);
    pub const SET: Tag = Tag(0x31);

    /// A context-specific primitive tag `[n]`.
    pub fn context(n: u8) -> Tag {
        debug_assert!(n <= 30, "only low-tag-number form is supported");
        Tag(Class::ContextSpecific.bits() | n)
    }

    /// A context-specific constructed tag `[n]` (EXPLICIT wrappers).
    pub fn context_constructed(n: u8) -> Tag {
        debug_assert!(n <= 30, "only low-tag-number form is supported");
        Tag(Class::ContextSpecific.bits() | 0b0010_0000 | n)
    }

    /// The raw identifier octet.
    pub fn octet(self) -> u8 {
        self.0
    }

    /// The class of this tag.
    pub fn class(self) -> Class {
        Class::from_octet(self.0)
    }

    /// Whether the constructed bit is set.
    pub fn is_constructed(self) -> bool {
        self.0 & 0b0010_0000 != 0
    }

    /// The tag number (low 5 bits).
    pub fn number(self) -> u8 {
        self.0 & 0b0001_1111
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:02x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universal_tags_have_universal_class() {
        for t in [
            Tag::BOOLEAN,
            Tag::INTEGER,
            Tag::SEQUENCE,
            Tag::SET,
            Tag::OID,
        ] {
            assert_eq!(t.class(), Class::Universal);
        }
    }

    #[test]
    fn sequence_and_set_are_constructed() {
        assert!(Tag::SEQUENCE.is_constructed());
        assert!(Tag::SET.is_constructed());
        assert!(!Tag::INTEGER.is_constructed());
    }

    #[test]
    fn context_tags() {
        let t = Tag::context(2);
        assert_eq!(t.class(), Class::ContextSpecific);
        assert!(!t.is_constructed());
        assert_eq!(t.number(), 2);

        let t = Tag::context_constructed(3);
        assert_eq!(t.class(), Class::ContextSpecific);
        assert!(t.is_constructed());
        assert_eq!(t.number(), 3);
        assert_eq!(t.octet(), 0xA3);
    }

    #[test]
    fn class_round_trips_through_octet() {
        for class in [
            Class::Universal,
            Class::Application,
            Class::ContextSpecific,
            Class::Private,
        ] {
            assert_eq!(Class::from_octet(class.bits()), class);
        }
    }
}
