//! Property-based tests: everything the writer emits, the reader must
//! round-trip, and the reader must never panic on arbitrary bytes.

use mtls_asn1::{time, Asn1Time, DerReader, DerWriter, Oid, Tag};
use proptest::prelude::*;

proptest! {
    #[test]
    fn t61_string_round_trips_as_latin1(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Every byte sequence is a valid T61String under the de-facto
        // Latin-1 interpretation; the decoded text maps bytes to the same
        // code points.
        let mut w = DerWriter::new();
        w.tlv(Tag::T61_STRING, &bytes);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        let s = r.read_string_lossy().unwrap();
        let expected: String = bytes.iter().map(|&b| b as char).collect();
        prop_assert_eq!(s.as_ref(), expected.as_str());
        prop_assert!(r.is_empty());
    }

    #[test]
    fn bmp_string_round_trips_for_bmp_text(s in "\\PC{0,80}") {
        // Encode only code points inside the BMP (UTF-16 without
        // surrogates), decode, and expect the identical string back.
        let bmp: String = s.chars().filter(|c| (*c as u32) < 0x1_0000).collect();
        let content: Vec<u8> = bmp
            .encode_utf16()
            .flat_map(|u| u.to_be_bytes())
            .collect();
        let mut w = DerWriter::new();
        w.tlv(Tag::BMP_STRING, &content);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        prop_assert_eq!(r.read_string_lossy().unwrap().as_ref(), bmp.as_str());
    }

    #[test]
    fn odd_length_bmp_string_rejected(
        bytes in proptest::collection::vec(any::<u8>(), 0..100),
        extra in any::<u8>(),
    ) {
        // Force odd content length: UTF-16 units are two bytes each.
        let mut content = bytes;
        if content.len() % 2 == 0 {
            content.push(extra);
        }
        let mut w = DerWriter::new();
        w.tlv(Tag::BMP_STRING, &content);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        prop_assert!(r.read_string_lossy().is_err());
    }

    #[test]
    fn unpaired_surrogate_bmp_string_rejected(
        prefix in "\\PC{0,20}",
        lead in 0xD800u16..0xDC00,
    ) {
        // A lead surrogate with no trail unit is malformed UTF-16.
        let mut units: Vec<u16> = prefix
            .chars()
            .filter(|c| (*c as u32) < 0x1_0000)
            .collect::<String>()
            .encode_utf16()
            .collect();
        units.push(lead);
        let content: Vec<u8> = units.iter().flat_map(|u| u.to_be_bytes()).collect();
        let mut w = DerWriter::new();
        w.tlv(Tag::BMP_STRING, &content);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        prop_assert!(r.read_string_lossy().is_err());
    }

    #[test]
    fn non_minimal_unsigned_integers_rejected(
        magnitude in proptest::collection::vec(any::<u8>(), 1..16),
        pad in 1usize..4,
    ) {
        // Hand-build INTEGER content with redundant 0x00 padding: the
        // strict reader must reject it, and the minimal form must parse
        // back to the same magnitude.
        let mut magnitude = magnitude;
        magnitude[0] = (magnitude[0] & 0x7F) | 0x01; // nonzero, high bit clear
        let mut padded = vec![0u8; pad];
        padded.extend_from_slice(&magnitude);
        let mut w = DerWriter::new();
        w.tlv(Tag::INTEGER, &padded);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        prop_assert!(r.read_integer_unsigned().is_err());

        let mut w = DerWriter::new();
        w.tlv(Tag::INTEGER, &magnitude);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        prop_assert_eq!(r.read_integer_unsigned().unwrap(), &magnitude[..]);
    }

    #[test]
    fn lossy_reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut r = DerReader::new(&bytes);
        let _ = r.read_string_lossy();
    }
    #[test]
    fn integer_i64_round_trips(v in any::<i64>()) {
        let mut w = DerWriter::new();
        w.integer_i64(v);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        prop_assert_eq!(r.read_integer_i64().unwrap(), v);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn integer_bytes_round_trips(bytes in proptest::collection::vec(any::<u8>(), 0..24)) {
        let mut w = DerWriter::new();
        w.integer_bytes(&bytes);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        let got = r.read_integer_unsigned().unwrap().to_vec();
        // Compare magnitudes with leading zeros stripped.
        let stripped: Vec<u8> = {
            let s: &[u8] = &bytes;
            let start = s.iter().take_while(|&&b| b == 0).count();
            if start == s.len() { vec![0] } else { s[start..].to_vec() }
        };
        prop_assert_eq!(got, stripped);
    }

    #[test]
    fn octet_string_round_trips(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut w = DerWriter::new();
        w.octet_string(&bytes);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        prop_assert_eq!(r.read_octet_string().unwrap(), &bytes[..]);
    }

    #[test]
    fn utf8_string_round_trips(s in "\\PC{0,200}") {
        let mut w = DerWriter::new();
        w.utf8_string(&s);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        prop_assert_eq!(r.read_string().unwrap(), s);
    }

    #[test]
    fn oid_round_trips(
        first in 0u64..=2,
        second in 0u64..40,
        rest in proptest::collection::vec(any::<u64>(), 0..8),
    ) {
        let mut arcs = vec![first, second];
        arcs.extend(rest);
        let oid = Oid::new(&arcs);
        let rt = Oid::from_der_content(&oid.to_der_content()).unwrap();
        prop_assert_eq!(rt, oid);
    }

    #[test]
    fn time_round_trips(
        year in 1600i32..2400,
        month in 1u32..=12,
        day_seed in 0u32..31,
        hour in 0u32..24,
        min in 0u32..60,
        sec in 0u32..60,
    ) {
        let day = 1 + day_seed % time::days_in_month(year, month);
        let t = Asn1Time::from_ymd_hms(year, month, day, hour, min, sec);
        let mut w = DerWriter::new();
        w.time(t);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        prop_assert_eq!(r.read_time().unwrap(), t);
    }

    #[test]
    fn civil_date_round_trips(days in -200_000i64..200_000) {
        let (y, m, d) = time::civil_from_days(days);
        prop_assert_eq!(time::days_from_civil(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=time::days_in_month(y, m)).contains(&d));
    }

    #[test]
    fn enumerated_round_trips(v in any::<i64>()) {
        let mut w = DerWriter::new();
        w.enumerated(v);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        prop_assert_eq!(r.read_enumerated().unwrap(), v);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut r = DerReader::new(&bytes);
        // Walk as far as possible; errors are fine, panics are not.
        while !r.is_empty() {
            if r.read_any().is_err() {
                break;
            }
        }
    }

    #[test]
    fn nested_sequences_round_trip(depth in 1usize..30, payload in any::<i64>()) {
        fn build(w: &mut DerWriter, depth: usize, payload: i64) {
            if depth == 0 {
                w.integer_i64(payload);
            } else {
                w.sequence(|w| build(w, depth - 1, payload));
            }
        }
        let mut w = DerWriter::new();
        build(&mut w, depth, payload);
        let der = w.finish();

        let mut r = DerReader::new(&der);
        for _ in 0..depth {
            r = r.read_sequence().unwrap();
        }
        prop_assert_eq!(r.read_integer_i64().unwrap(), payload);
    }
}
