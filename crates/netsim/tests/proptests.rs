//! Property tests for the generator: any (seed, scale) must produce a
//! structurally sound, deterministic corpus.

use mtls_netsim::{generate, SimConfig};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    // Each case generates a small corpus; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn corpus_is_sound_for_any_seed(seed in any::<u64>()) {
        let cfg = SimConfig { seed, scale: 0.004, ..Default::default() };
        let out = generate(&cfg);

        // Referential integrity: every fingerprint resolves.
        let known: HashSet<&str> = out.x509.iter().map(|c| c.fingerprint.as_str()).collect();
        for rec in &out.ssl {
            for fp in rec.cert_chain_fps.iter().chain(&rec.client_cert_chain_fps) {
                prop_assert!(known.contains(fp.as_str()));
            }
        }
        // Unique fingerprints in x509.log.
        prop_assert_eq!(known.len(), out.x509.len());
        // Timestamps inside the collection window.
        for rec in &out.ssl {
            prop_assert!((1_651_363_200.0..=1_711_843_199.0).contains(&rec.ts), "{}", rec.ts);
        }
        // ts-sorted output.
        for pair in out.ssl.windows(2) {
            prop_assert!(pair[0].ts <= pair[1].ts);
        }
        // TLS 1.3 records never carry chains.
        for rec in &out.ssl {
            if rec.version == mtls_zeek::TlsVersion::Tls13 {
                prop_assert!(rec.cert_chain_fps.is_empty());
            }
        }
        // Strata weight is positive and finite.
        prop_assert!(out.meta.non_mtls_weight.is_finite() && out.meta.non_mtls_weight > 0.0);
    }

    #[test]
    fn generation_is_deterministic(seed in any::<u64>()) {
        let cfg = SimConfig { seed, scale: 0.003, ..Default::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(a.ssl, b.ssl);
        prop_assert_eq!(a.x509, b.x509);
        prop_assert_eq!(a.meta, b.meta);
    }

    #[test]
    fn scale_monotonicity(seed in any::<u64>()) {
        let small = generate(&SimConfig { seed, scale: 0.003, ..Default::default() });
        let large = generate(&SimConfig { seed, scale: 0.012, ..Default::default() });
        prop_assert!(large.ssl.len() > small.ssl.len());
        prop_assert!(large.x509.len() > small.x509.len());
    }
}
