//! Per-scenario tests: each scenario, run in isolation on a small world,
//! must plant exactly the phenomenon it claims to.

use mtls_netsim::scenarios;
use mtls_netsim::{Emitter, SimConfig, SimOutput, World};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_one(
    scale: f64,
    scenario: impl Fn(&SimConfig, &World, &mut Emitter, &mut StdRng),
) -> SimOutput {
    let config = SimConfig {
        seed: 42,
        scale,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    let world = World::build(&config, &mut rng);
    let mut emitter = Emitter::new(&config, &world);
    scenario(&config, &world, &mut emitter, &mut rng);
    emitter.finish(&world)
}

#[test]
fn webrtc_plants_ephemeral_self_signed_pairs() {
    let out = run_one(0.01, scenarios::webrtc::run);
    assert!(!out.ssl.is_empty());
    // Every connection is outbound mTLS on 443 with no SNI.
    for conn in &out.ssl {
        assert!(conn.is_mutual_tls());
        assert_eq!(conn.resp_p, 443);
        assert!(conn.server_name.is_none());
    }
    // The dominant CN is "WebRTC".
    let webrtc = out
        .x509
        .iter()
        .filter(|c| c.subject_cn.as_deref() == Some("WebRTC"))
        .count();
    assert!(
        webrtc * 2 > out.x509.len(),
        "{webrtc} of {}",
        out.x509.len()
    );
    // Ephemeral: none lives longer than ~a month.
    for cert in &out.x509 {
        assert!(cert.validity_days() <= 31);
    }
}

#[test]
fn serials_plants_the_collision_populations() {
    let out = run_one(0.05, scenarios::serials::run);
    let serial_count = |s: &str, issuer: &str| {
        out.x509
            .iter()
            .filter(|c| c.serial == s && c.issuer.contains(issuer))
            .count()
    };
    assert!(
        serial_count("00", "Globus Online") > 10,
        "Globus serial-00 certs"
    );
    assert!(serial_count("01", "GuardiCore") > 0);
    assert!(serial_count("03E8", "GuardiCore") > 0);
    assert!(serial_count("024680", "ViptelaClient") > 0);
    // The FXP connections use the identical cert on both ends and the
    // literal SNI from the paper.
    let fxp: Vec<_> = out
        .ssl
        .iter()
        .filter(|c| c.server_name.as_deref() == Some("FXP DCAU Cert"))
        .collect();
    assert!(!fxp.is_empty());
    for conn in fxp {
        assert_eq!(conn.cert_chain_fps, conn.client_cert_chain_fps);
        assert!((50_000..=51_000).contains(&conn.resp_p));
    }
}

#[test]
fn dates_plants_inverted_validity_in_established_conns() {
    let out = run_one(0.05, scenarios::dates::run);
    let inverted = out.x509.iter().filter(|c| c.has_incorrect_dates()).count();
    assert!(inverted > 0);
    assert!(out.ssl.iter().all(|c| c.established));
    // The rcgen population's 1757 notAfter survives the wire.
    let ancient = out
        .x509
        .iter()
        .any(|c| mtls_asn1::Asn1Time::from_unix(c.not_valid_after).year() == 1757);
    assert!(ancient, "rcgen's 1757 notAfter");
    // IDrive appears on both sides.
    assert!(out.x509.iter().any(|c| c.issuer.contains("IDrive")));
}

#[test]
fn expired_plants_the_apple_cluster() {
    let out = run_one(0.05, scenarios::expired::run);
    let apple_expired = out
        .x509
        .iter()
        .filter(|c| {
            c.issuer.contains("Apple iPhone Device") && (c.not_valid_after as f64) < 1_651_363_200.0
        })
        .count();
    assert_eq!(apple_expired, 34, "planted verbatim at any scale");
    // The 83,432-day outlier.
    assert!(out.x509.iter().any(|c| c.validity_days() == 83_432));
}

#[test]
fn tunnel_plants_client_only_connections() {
    let out = run_one(0.05, scenarios::tunnel::run);
    assert!(!out.ssl.is_empty());
    for conn in &out.ssl {
        assert!(conn.is_client_only(), "no server chain in tunnel conns");
        assert!(!conn.is_mutual_tls());
    }
}

#[test]
fn dummies_plants_the_default_issuers() {
    let out = run_one(0.05, scenarios::dummies::run);
    for issuer in [
        "Internet Widgits Pty Ltd",
        "Default Company Ltd",
        "Unspecified",
        "Acme Co",
    ] {
        assert!(
            out.x509.iter().any(|c| c.issuer.contains(issuer)),
            "missing {issuer}"
        );
    }
    let v1 = out
        .x509
        .iter()
        .filter(|c| c.version == 1 && c.issuer.contains("Internet Widgits"))
        .count();
    let weak = out
        .x509
        .iter()
        .filter(|c| c.key_length == 1024 && c.issuer.contains("Unspecified"))
        .count();
    assert_eq!(v1, 3);
    assert_eq!(weak, 13);
}

#[test]
fn interception_goes_dark_without_the_flag() {
    let config = SimConfig {
        seed: 1,
        scale: 0.05,
        include_interception: false,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    let world = World::build(&config, &mut rng);
    let mut emitter = Emitter::new(&config, &world);
    scenarios::interception::run(&config, &world, &mut emitter, &mut rng);
    let out = emitter.finish(&world);
    assert!(out.ssl.is_empty(), "flag disables the scenario");
}

#[test]
fn interception_issuers_never_appear_in_ct() {
    let out = run_one(0.05, scenarios::interception::run);
    assert!(!out.x509.is_empty());
    for cert in &out.x509 {
        for domain in &cert.san_dns {
            assert!(
                !out.ct.domain_has_issuer(domain, &cert.issuer),
                "interception issuer leaked into CT: {}",
                cert.issuer
            );
        }
    }
}

#[test]
fn sharing_plants_both_endpoint_certificates() {
    let out = run_one(0.05, scenarios::sharing::run);
    let shared = out
        .ssl
        .iter()
        .filter(|c| c.is_mutual_tls() && c.cert_chain_fps == c.client_cert_chain_fps)
        .count();
    assert!(shared > 0, "same-connection sharing present");
    // tablodash.com rides the Outset port.
    assert!(out.ssl.iter().any(|c| c
        .server_name
        .as_deref()
        .map(|s| s.contains("tablodash"))
        .unwrap_or(false)
        && c.resp_p == 9093));
}

#[test]
fn nonmtls_respects_the_flag_and_rotates_certs() {
    let config = SimConfig {
        seed: 9,
        scale: 0.02,
        include_non_mtls: false,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    let world = World::build(&config, &mut rng);
    let mut emitter = Emitter::new(&config, &world);
    scenarios::nonmtls::run(&config, &world, &mut emitter, &mut rng);
    assert!(
        emitter.finish(&world).ssl.is_empty(),
        "flag disables the stratum"
    );

    let out = run_one(0.02, scenarios::nonmtls::run);
    assert!(out.ssl.iter().all(|c| !c.is_mutual_tls()));
    // Some TLS 1.3 records (no certs) and some resumed cleartext records.
    let tls13 = out
        .ssl
        .iter()
        .filter(|c| c.version == mtls_zeek::TlsVersion::Tls13)
        .count();
    assert!(tls13 > 0);
    let resumed_like = out
        .ssl
        .iter()
        .filter(|c| c.version != mtls_zeek::TlsVersion::Tls13 && c.cert_chain_fps.is_empty())
        .count();
    assert!(resumed_like > 0, "abbreviated handshakes present");
    // Rotation: more unique certs than sites implies re-issuance.
    assert!(out.x509.len() > 100);
}

#[test]
fn privservers_plants_exactly_six_personal_names_at_full_scale() {
    let out = run_one(1.0, scenarios::privservers::run);
    let names = out
        .x509
        .iter()
        .filter(|c| {
            c.subject_cn
                .as_deref()
                .map(|cn| {
                    mtls_classify::classify(cn, mtls_classify::ClassifyContext::default())
                        == mtls_classify::InfoType::PersonalName
                })
                .unwrap_or(false)
        })
        .count();
    // Six server names planted; the shared client fleet may add none
    // (client CN quotas route personal names to campus certs elsewhere).
    assert_eq!(names, 6, "the paper's exactly-six population");
}
