//! Calibration constants, each annotated with the paper statistic it
//! reproduces. All counts are at `scale = 1.0` and are chosen so that the
//! corpus preserves the paper's *ratios* at roughly 1/10⁴ of its connection
//! volume and 1/250 of its certificate volume (DESIGN.md §1/§6).
//!
//! Small "anecdote" populations (GuardiCore's 904 connections, the six
//! private-CA server certificates with personal names, the 17 SDS clients…)
//! are planted at or near the paper's absolute counts — scaling them down
//! would erase them entirely.

/// Total bulk inbound mutual-TLS connections over the 23 months
/// (paper: ~60 % of 1.2 B mTLS connections are inbound).
pub const INBOUND_MTLS_CONNS: usize = 60_000;

/// Total bulk outbound mutual-TLS connections.
pub const OUTBOUND_MTLS_CONNS: usize = 55_000;

/// Non-mTLS sampled records per direction. The observed mTLS share is
/// computed with the strata weight stored in `SimMeta::non_mtls_weight`,
/// calibrated so the share starts at ~1.99 % (Fig. 1).
pub const NON_MTLS_INBOUND: usize = 45_000;
pub const NON_MTLS_OUTBOUND: usize = 55_000;

/// Fig. 1: mTLS share of all TLS connections at the start of the study.
pub const MTLS_SHARE_START: f64 = 0.0199;

/// §3.3: TLS 1.3 share of all TLS connections (certificates invisible).
pub const TLS13_SHARE: f64 = 0.4086;

// ---------------------------------------------------------------------------
// Table 3: inbound server associations.
// (association, fraction of inbound mTLS connections, fraction of inbound
// clients) — connections 64.91/30.55/0.30/2.53/0.31/0.06/1.34,
// clients 41.10/5.00/14.73/2.20/0.39/<0.01/36.58.
// ---------------------------------------------------------------------------

/// Inbound client-pool size (distinct client IPs) at scale 1.0.
pub const INBOUND_CLIENT_POOL: usize = 1_200;

/// Joint (association, port) rows for inbound mTLS. Fractions sum to 1.
/// Port marginals reproduce Table 2's inbound-mTLS column:
/// 443 → 63.6 %, 20017 FileWave → 24.89 %, 636 LDAPS → 6.36 %,
/// 50000–51000 Globus → 1.17 %, 9093 Outset → 0.26 %, others → 3.72 %.
pub struct InboundRow {
    pub association: &'static str,
    pub port: u16,
    /// For the Globus range, connections sample a port in
    /// `port ..= port_hi`; otherwise `port_hi == port`.
    pub port_hi: u16,
    pub frac: f64,
}

pub const INBOUND_ROWS: &[InboundRow] = &[
    InboundRow {
        association: "health",
        port: 443,
        port_hi: 443,
        frac: 0.3567,
    },
    InboundRow {
        association: "health",
        port: 20017,
        port_hi: 20017,
        frac: 0.2100,
    },
    InboundRow {
        association: "health",
        port: 636,
        port_hi: 636,
        frac: 0.0465,
    },
    InboundRow {
        association: "health",
        port: 9093,
        port_hi: 9093,
        frac: 0.0026,
    },
    InboundRow {
        association: "health",
        port: 8443,
        port_hi: 8443,
        frac: 0.0300,
    },
    InboundRow {
        association: "server",
        port: 443,
        port_hi: 443,
        frac: 0.2498,
    },
    InboundRow {
        association: "server",
        port: 20017,
        port_hi: 20017,
        frac: 0.0389,
    },
    InboundRow {
        association: "server",
        port: 636,
        port_hi: 636,
        frac: 0.0168,
    },
    InboundRow {
        association: "vpn",
        port: 443,
        port_hi: 443,
        frac: 0.0030,
    },
    InboundRow {
        association: "localorg",
        port: 443,
        port_hi: 443,
        frac: 0.0253,
    },
    InboundRow {
        association: "thirdparty",
        port: 443,
        port_hi: 443,
        frac: 0.0031,
    },
    InboundRow {
        association: "globus",
        port: 50_000,
        port_hi: 51_000,
        frac: 0.0006,
    },
    // "Unknown": SNI missing or not a domain; dominated by the Globus FXP
    // population (SNI literally "FXP DCAU Cert") on the Globus port range.
    InboundRow {
        association: "unknown-fxp",
        port: 50_000,
        port_hi: 51_000,
        frac: 0.0117,
    },
    InboundRow {
        association: "unknown",
        port: 443,
        port_hi: 443,
        frac: 0.0050,
    },
];

/// Client-pool share per association (Table 3 "% clients").
/// Client-pool shares are constrained by conns-per-association at our
/// scale (clients <= connections must hold); the Unknown association's
/// share is lower than the paper's 36.58 % for that reason, with the
/// Globus FXP clients (planted in `scenarios::serials`) adding to it.
pub const INBOUND_CLIENT_SHARE: &[(&str, f64)] = &[
    ("health", 0.4110),
    ("server", 0.0500),
    ("vpn", 0.1473),
    ("localorg", 0.0500),
    ("thirdparty", 0.0040),
    ("globus", 0.0010),
    ("unknown", 0.2000),
];

// ---------------------------------------------------------------------------
// Fig. 2 / §4.2.2: outbound flows.
// ---------------------------------------------------------------------------

/// Outbound client-pool size at scale 1.0.
pub const OUTBOUND_CLIENT_POOL: usize = 2_500;

/// One outbound flow family.
pub struct OutboundRow {
    /// Registered domain, or "" for missing-SNI populations.
    pub sld: &'static str,
    pub port: u16,
    pub frac: f64,
    /// Index into `World::public_cas` for the server certificate, or
    /// `None` for a private server issuer.
    pub server_public: bool,
    /// Client issuer category mix: (MissingIssuer, Corporation, Others,
    /// Public) fractions; Education etc. do not appear outbound in bulk.
    pub client_mix: [f64; 4],
    /// Whether this family disappears after Oct 2023 (Rapid7, Fig. 1).
    pub ends_oct_2023: bool,
}

/// Fractions of outbound mTLS connections. amazonaws 28.51 %, rapid7
/// 27.44 %, gpcloudservice 13.33 % (§4.2.2); email ports 25/465 > 6 %
/// (§3.3 item 3); MQTT 3.69 %, Splunk 9997 1.48 % (Table 2). The
/// missing-issuer marginal lands near 37.84 %.
pub const OUTBOUND_ROWS: &[OutboundRow] = &[
    OutboundRow {
        sld: "amazonaws.com",
        port: 443,
        frac: 0.2451,
        server_public: true,
        client_mix: [0.58, 0.23, 0.17, 0.02],
        ends_oct_2023: false,
    },
    OutboundRow {
        sld: "amazonaws.com",
        port: 8883,
        frac: 0.0369,
        server_public: true,
        client_mix: [0.20, 0.55, 0.25, 0.00],
        ends_oct_2023: false,
    },
    OutboundRow {
        sld: "rapid7.com",
        port: 443,
        frac: 0.2744,
        server_public: true,
        client_mix: [0.55, 0.31, 0.14, 0.00],
        ends_oct_2023: true,
    },
    OutboundRow {
        sld: "gpcloudservice.com",
        port: 443,
        frac: 0.1333,
        server_public: true,
        client_mix: [0.50, 0.15, 0.35, 0.00],
        ends_oct_2023: false,
    },
    OutboundRow {
        sld: "apple.com",
        port: 443,
        frac: 0.0400,
        server_public: true,
        client_mix: [0.02, 0.03, 0.05, 0.90],
        ends_oct_2023: false,
    },
    OutboundRow {
        sld: "azure.com",
        port: 443,
        frac: 0.0300,
        server_public: true,
        client_mix: [0.05, 0.15, 0.10, 0.70],
        ends_oct_2023: false,
    },
    OutboundRow {
        sld: "splunkcloud.com",
        port: 9997,
        frac: 0.0148,
        server_public: false,
        client_mix: [0.10, 0.80, 0.10, 0.00],
        ends_oct_2023: false,
    },
    // Email: SMTP + SMTPS ≈ 6.7 % of outbound mTLS.
    OutboundRow {
        sld: "mailrelay.com",
        port: 25,
        frac: 0.0338,
        server_public: true,
        client_mix: [0.30, 0.30, 0.30, 0.10],
        ends_oct_2023: false,
    },
    OutboundRow {
        sld: "mailrelay.com",
        port: 465,
        frac: 0.0332,
        server_public: true,
        client_mix: [0.30, 0.30, 0.30, 0.10],
        ends_oct_2023: false,
    },
    // Long tail of miscellaneous destinations.
    OutboundRow {
        sld: "fireboard.io",
        port: 443,
        frac: 0.0080,
        server_public: false,
        client_mix: [0.20, 0.40, 0.40, 0.00],
        ends_oct_2023: false,
    },
    OutboundRow {
        sld: "iot-telemetry.net",
        port: 8883,
        frac: 0.0200,
        server_public: false,
        client_mix: [0.45, 0.25, 0.30, 0.00],
        ends_oct_2023: false,
    },
    OutboundRow {
        sld: "cdn-metrics.com",
        port: 443,
        frac: 0.0420,
        server_public: true,
        client_mix: [0.62, 0.12, 0.24, 0.02],
        ends_oct_2023: false,
    },
    OutboundRow {
        sld: "partner-billing.com",
        port: 3128,
        frac: 0.0300,
        server_public: true,
        client_mix: [0.30, 0.40, 0.28, 0.02],
        ends_oct_2023: false,
    },
    OutboundRow {
        sld: "edu-exchange.org",
        port: 443,
        frac: 0.0585,
        server_public: true,
        client_mix: [0.35, 0.20, 0.40, 0.05],
        ends_oct_2023: false,
    },
];

// ---------------------------------------------------------------------------
// Certificate populations (Tables 1, 7, 8).
// ---------------------------------------------------------------------------

/// Unique WebRTC-style ephemeral certificate *pairs* at scale 1.0. Each
/// pair is one connection where both endpoints present a private
/// self-signed certificate. This population dominates the unique-cert
/// census exactly as in the paper (88 % of private-CA server CNs say
/// "WebRTC", 98.7 % of client Org/Product CNs likewise).
pub const WEBRTC_PAIRS: usize = 45_000;

/// Fraction of WebRTC-ish CNs that are "WebRTC" / "twilio" / "hangouts".
pub const WEBRTC_CN_MIX: [(&str, f64); 3] =
    [("WebRTC", 0.88), ("twilio", 0.06), ("hangouts", 0.035)];

/// Private-CA mTLS *client* certificate content plan, per Table 8
/// (client × private-CA column), in certificates at scale 1.0, excluding
/// the WebRTC population above. Personal names: 1.33 % of 3.33 M ⇒ ~178
/// here; user accounts 0.57 % ⇒ ~76.
pub const CLIENT_PRIVATE_PERSONAL_NAMES: usize = 178;
pub const CLIENT_PRIVATE_USER_ACCOUNTS: usize = 76;
pub const CLIENT_PRIVATE_SIP: usize = 8;
pub const CLIENT_PRIVATE_EMAIL: usize = 4;
pub const CLIENT_PRIVATE_MAC: usize = 6;
pub const CLIENT_PRIVATE_DOMAIN: usize = 26;
pub const CLIENT_PRIVATE_LOCALHOST: usize = 3;
pub const CLIENT_PRIVATE_UNIDENTIFIED: usize = 710;
pub const CLIENT_PRIVATE_LENOVO: usize = 40;
pub const CLIENT_PRIVATE_ANDROID: usize = 30;

/// Private-CA mTLS *server* certificate content plan (Table 8 server ×
/// private-CA), excluding WebRTC pairs: SIP 4.53 % of 2.27 M ⇒ ~410;
/// unidentified 15.75 % ⇒ ~1430; domains 0.34 %; IPs 0.08 %; personal
/// names exactly 6 in the paper.
pub const SERVER_PRIVATE_SIP: usize = 1_500;
pub const SERVER_PRIVATE_UNIDENTIFIED: usize = 4_800;
pub const SERVER_PRIVATE_DOMAIN: usize = 31;
pub const SERVER_PRIVATE_IP: usize = 8;
pub const SERVER_PRIVATE_PERSONAL_NAMES: usize = 6;
pub const SERVER_PRIVATE_LOCALHOST: usize = 4;

/// Table 9 random-string mix for server-private unidentified CNs:
/// non-random 20 %, by-issuer 1 %, len-8 46 %, len-32 17 %, len-36 9 %,
/// other random 7 %.
pub const UNIDENT_SERVER_MIX: [(f64, &str); 6] = [
    (0.20, "nonrandom"),
    (0.01, "byissuer"),
    (0.46, "len8"),
    (0.17, "len32"),
    (0.09, "len36"),
    (0.07, "other"),
];

/// Table 9 mix for client-private unidentified CNs: non-random 16 %,
/// by-issuer 30 %, len-8 4 %, len-32 39 %, len-36 2 %, other 9 %.
/// The "by Issuer" *outcome* is produced by recognizable issuers (campus,
/// AT&T, Red Hat, Samsung), not by string shape; the byissuer arm here
/// only sets the shape for those certificates.
pub const UNIDENT_CLIENT_MIX: [(f64, &str); 6] = [
    (0.16, "nonrandom"),
    (0.08, "byissuer"),
    (0.03, "len8"),
    (0.64, "len32"),
    (0.02, "len36"),
    (0.07, "other"),
];

/// Public-CA mTLS client certificates (Table 8 client × public-CA):
/// CN mostly unidentified (59.95 %; 46 % Azure Sphere issuers, 10 % Apple
/// iPhone UUIDs), Org/Product 25.33 % (99 % "Hybrid Runbook Worker"),
/// domains 14.11 % (38 % mail-ish, 24 % Webex), 133 personal names.
pub const CLIENT_PUBLIC_TOTAL: usize = 320;
pub const CLIENT_PUBLIC_PERSONAL_NAMES: usize = 13;

/// Fig. 5b: expired Apple-issued client certs (337 in the paper) and the
/// two Microsoft ones; planted at ~1/10.
pub const EXPIRED_APPLE_CLIENTS: usize = 34;
pub const EXPIRED_MICROSOFT_CLIENTS: usize = 2;

/// Fig. 5a: inbound expired client certs by server association:
/// VPN 45.83 %, Local Organization 32.79 %, Third Party 15.38 %.
pub const EXPIRED_INBOUND_TOTAL: usize = 60;

/// Fig. 4: client certs with 10 000–40 000-day validity (7 911 in the
/// paper, at 1/50) plus the single 83 432-day outlier (planted verbatim).
pub const VERY_LONG_VALIDITY_CLIENTS: usize = 158;
pub const LONGEST_VALIDITY_DAYS: i64 = 83_432;

// ---------------------------------------------------------------------------
// §5.1.2 serial collisions.
// ---------------------------------------------------------------------------

/// Globus FXP: clients doing data transfers with 14-day certs, serial 00
/// on both endpoints, SNI "FXP DCAU Cert". Paper: 798 inbound clients,
/// 38 965 unique client certs, 7.49 M connections over 700 days. Planted
/// at 1/20 clients (reissuance preserved ⇒ certificate counts stay the
/// dominant collision population).
pub const GLOBUS_FXP_INBOUND_CLIENTS: usize = 16;
pub const GLOBUS_FXP_OUTBOUND_CLIENTS: usize = 10;
pub const GLOBUS_CERT_LIFETIME_DAYS: i64 = 14;

/// ViptelaClient: every certificate (client or server) carries serial
/// 024680 with < 15-day validity.
pub const VIPTELA_CLIENTS: usize = 25;

/// GuardiCore: all client certs serial 01, all server certs serial 03E8,
/// missing SNI, > 2-year validity; 904 connections, 57 client and 43
/// server certs, 418 tuples — planted verbatim (it is small).
pub const GUARDICORE_CONNS: usize = 904;
pub const GUARDICORE_CLIENT_CERTS: usize = 57;
pub const GUARDICORE_SERVER_CERTS: usize = 43;

// ---------------------------------------------------------------------------
// Table 5 / §5.2: certificate sharing.
// ---------------------------------------------------------------------------

/// Same-certificate-at-both-endpoints populations (Table 5):
/// (sld_or_empty, issuer org, clients, duration_days, public_issuer).
pub struct SharingRow {
    pub sld: &'static str,
    pub issuer: &'static str,
    pub clients: usize,
    pub duration_days: i64,
    pub public_issuer: bool,
    pub inbound: bool,
}

pub const SHARING_ROWS: &[SharingRow] = &[
    SharingRow {
        sld: "",
        issuer: "Globus Online",
        clients: 70,
        duration_days: 700,
        public_issuer: false,
        inbound: true,
    },
    SharingRow {
        sld: "tablodash.com",
        issuer: "Outset Medical",
        clients: 30,
        duration_days: 700,
        public_issuer: false,
        inbound: true,
    },
    SharingRow {
        sld: "",
        issuer: "Globus Online",
        clients: 11,
        duration_days: 699,
        public_issuer: false,
        inbound: false,
    },
    SharingRow {
        sld: "psych.org",
        issuer: "American Psychiatric Association",
        clients: 26,
        duration_days: 424,
        public_issuer: false,
        inbound: false,
    },
    SharingRow {
        sld: "splunkcloud.com",
        issuer: "Splunk",
        clients: 4,
        duration_days: 114,
        public_issuer: false,
        inbound: false,
    },
    SharingRow {
        sld: "leidos.com",
        issuer: "IdenTrust",
        clients: 52,
        duration_days: 554,
        public_issuer: true,
        inbound: false,
    },
    SharingRow {
        sld: "acr.og",
        issuer: "GoDaddy.com, Inc",
        clients: 24,
        duration_days: 364,
        public_issuer: true,
        inbound: false,
    },
    SharingRow {
        sld: "sapns2.com",
        issuer: "GoDaddy.com, Inc",
        clients: 1,
        duration_days: 5,
        public_issuer: true,
        inbound: false,
    },
    SharingRow {
        sld: "bluetriton.com",
        issuer: "DigiCert Inc",
        clients: 1,
        duration_days: 1,
        public_issuer: true,
        inbound: false,
    },
    SharingRow {
        sld: "gpo.gov",
        issuer: "DigiCert Inc",
        clients: 1,
        duration_days: 1,
        public_issuer: true,
        inbound: false,
    },
];

/// §5.2.2: certificates seen as server in some connections and client in
/// others (1 611 in the paper; ~1/5 here), issued mostly by Let's Encrypt
/// (51.58 %), DigiCert (14.34 %), Sectigo (7.95 %). Table 6's quantiles
/// come from how widely these spread over /24 subnets.
pub const CROSS_SHARED_CERTS: usize = 320;

// ---------------------------------------------------------------------------
// Table 4 / Appendix B: dummy issuers.
// ---------------------------------------------------------------------------

pub struct DummyRow {
    pub issuer: &'static str,
    /// Which side presents the dummy-issued certificate.
    pub side: DummySide,
    pub inbound: bool,
    pub servers: usize,
    pub clients: usize,
    pub conns: usize,
    pub slds: &'static [&'static str],
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DummySide {
    Client,
    Server,
    Both,
}

/// Table 4 (client side): inbound "Default Company Ltd"/"Internet Widgits"
/// at Local Organization (21 servers / 95 clients); inbound "Unspecified"
/// 452 servers / 566 996 clients (clients scaled 1/250); outbound
/// "Internet Widgits" 73 / 69 069 (scaled); "Default Company Ltd" 2 / 17.
/// Table 4 (server side): "Internet Widgits" 511 servers / 3 689 conns;
/// "Default Company Ltd" 147 / 331; "Acme Co" 20 / 26.
/// Table 10 (both sides): fireboard.io 9 clients / 618 days,
/// amazonaws.com 7 / 17, missing SNI 1 / 1.
pub const DUMMY_ROWS: &[DummyRow] = &[
    DummyRow {
        issuer: "Default Company Ltd",
        side: DummySide::Client,
        inbound: true,
        servers: 6,
        clients: 10,
        conns: 80,
        slds: &["localorg-a.org"],
    },
    DummyRow {
        issuer: "Internet Widgits Pty Ltd",
        side: DummySide::Client,
        inbound: true,
        servers: 5,
        clients: 10,
        conns: 70,
        slds: &["localorg-a.org"],
    },
    DummyRow {
        issuer: "Unspecified",
        side: DummySide::Client,
        inbound: true,
        servers: 40,
        clients: 70,
        conns: 400,
        slds: &[""],
    },
    DummyRow {
        issuer: "Internet Widgits Pty Ltd",
        side: DummySide::Client,
        inbound: false,
        servers: 73,
        clients: 276,
        conns: 1_800,
        slds: &["devboard.com", "fireboard.io"],
    },
    DummyRow {
        issuer: "Default Company Ltd",
        side: DummySide::Client,
        inbound: false,
        servers: 2,
        clients: 17,
        conns: 60,
        slds: &["cn-registry.cn", "apex-metrics.top"],
    },
    DummyRow {
        issuer: "Internet Widgits Pty Ltd",
        side: DummySide::Server,
        inbound: false,
        servers: 511,
        clients: 600,
        conns: 3_689,
        slds: &["devboard.com", "edu-exchange.org", "fireboard.io"],
    },
    DummyRow {
        issuer: "Default Company Ltd",
        side: DummySide::Server,
        inbound: false,
        servers: 147,
        clients: 160,
        conns: 331,
        slds: &[
            "devboard.com",
            "edu-exchange.org",
            "cn-registry.cn",
            "labs-mirror.co",
        ],
    },
    DummyRow {
        issuer: "Acme Co",
        side: DummySide::Server,
        inbound: false,
        servers: 20,
        clients: 20,
        conns: 26,
        slds: &["acme-fleet.com"],
    },
    // Appendix B (Table 10): dummy at both endpoints, all Internet Widgits.
    DummyRow {
        issuer: "Internet Widgits Pty Ltd",
        side: DummySide::Both,
        inbound: false,
        servers: 3,
        clients: 9,
        conns: 620,
        slds: &["fireboard.io"],
    },
    DummyRow {
        issuer: "Internet Widgits Pty Ltd",
        side: DummySide::Both,
        inbound: false,
        servers: 2,
        clients: 7,
        conns: 40,
        slds: &["amazonaws.com"],
    },
    DummyRow {
        issuer: "Internet Widgits Pty Ltd",
        side: DummySide::Both,
        inbound: false,
        servers: 1,
        clients: 1,
        conns: 1,
        slds: &[""],
    },
];

/// §5.1.1: among dummy-issuer client certs, 3 "Internet Widgits" v1
/// certificates (154 connection tuples) and 13 "Unspecified" 1024-bit RSA
/// certificates (83 tuples).
pub const DUMMY_V1_CERTS: usize = 3;
pub const DUMMY_WEAK_RSA_CERTS: usize = 13;

// ---------------------------------------------------------------------------
// Fig. 3 / Tables 11–12: incorrect dates.
// ---------------------------------------------------------------------------

pub struct IncorrectDatesRow {
    pub sld: &'static str,
    pub issuer: &'static str,
    /// true = the *client* certificate has inverted dates; false = server.
    pub client_side: bool,
    pub not_before_year: i32,
    pub not_after_year: i32,
    pub clients: usize,
    pub duration_days: i64,
}

/// Table 11, clients scaled ~1/10 where large (IDrive 2 887 → 289;
/// Honeywell 1 599/1 864 → 160/186), small rows verbatim.
pub const INCORRECT_DATES_ROWS: &[IncorrectDatesRow] = &[
    IncorrectDatesRow {
        sld: "",
        issuer: "rcgen",
        client_side: true,
        not_before_year: 1975,
        not_after_year: 1757,
        clients: 2,
        duration_days: 42,
    },
    IncorrectDatesRow {
        sld: "idrive.com",
        issuer: "IDrive Inc Certificate Authority",
        client_side: true,
        not_before_year: 2019,
        not_after_year: 1849,
        clients: 289,
        duration_days: 701,
    },
    IncorrectDatesRow {
        sld: "idrive.com",
        issuer: "IDrive Inc Certificate Authority",
        client_side: false,
        not_before_year: 2020,
        not_after_year: 1850,
        clients: 72,
        duration_days: 701,
    },
    IncorrectDatesRow {
        sld: "clouddevice.io",
        issuer: "Honeywell International Inc",
        client_side: true,
        not_before_year: 2021,
        not_after_year: 1815,
        clients: 160,
        duration_days: 701,
    },
    IncorrectDatesRow {
        sld: "clouddevice.io",
        issuer: "Honeywell International Inc",
        client_side: true,
        not_before_year: 2023,
        not_after_year: 1815,
        clients: 46,
        duration_days: 258,
    },
    IncorrectDatesRow {
        sld: "alarmnet.com",
        issuer: "Honeywell International Inc",
        client_side: true,
        not_before_year: 2021,
        not_after_year: 1815,
        clients: 186,
        duration_days: 696,
    },
    IncorrectDatesRow {
        sld: "alarmnet.com",
        issuer: "Honeywell International Inc",
        client_side: true,
        not_before_year: 2023,
        not_after_year: 1815,
        clients: 70,
        duration_days: 252,
    },
    IncorrectDatesRow {
        sld: "",
        issuer: "SDS",
        client_side: true,
        not_before_year: 1970,
        not_after_year: 1831,
        clients: 17,
        duration_days: 474,
    },
    IncorrectDatesRow {
        sld: "",
        issuer: "SDS",
        client_side: false,
        not_before_year: 1970,
        not_after_year: 1831,
        clients: 17,
        duration_days: 474,
    },
    IncorrectDatesRow {
        sld: "ayoba.me",
        issuer: "OpenPGP to X.509 Bridge",
        client_side: true,
        not_before_year: 2022,
        not_after_year: 2022,
        clients: 15,
        duration_days: 147,
    },
    IncorrectDatesRow {
        sld: "ibackup.com",
        issuer: "IDrive Inc Certificate Authority",
        client_side: true,
        not_before_year: 2019,
        not_after_year: 1849,
        clients: 4,
        duration_days: 311,
    },
    IncorrectDatesRow {
        sld: "crestron.io",
        issuer: "Crestron Electronics Inc",
        client_side: true,
        not_before_year: 2020,
        not_after_year: 1816,
        clients: 3,
        duration_days: 1,
    },
    IncorrectDatesRow {
        sld: "",
        issuer: "media-server",
        client_side: false,
        not_before_year: 2157,
        not_after_year: 2023,
        clients: 2,
        duration_days: 106,
    },
    IncorrectDatesRow {
        sld: "",
        issuer: "IceLink",
        client_side: true,
        not_before_year: 2048,
        not_after_year: 1996,
        clients: 1,
        duration_days: 1,
    },
];

// ---------------------------------------------------------------------------
// §3.2.1 interception.
// ---------------------------------------------------------------------------

/// Distinct interception issuers (paper: 186) and the share of unique
/// certificates they account for (8.4 %).
pub const INTERCEPTION_ISSUERS: usize = 186;
pub const INTERCEPTION_CERTS: usize = 11_000;
pub const INTERCEPTION_CONNS: usize = 20_000;

// ---------------------------------------------------------------------------
// Conformance: malformed-certificate traffic (opt-in, off by default).
// ---------------------------------------------------------------------------

/// Connections carrying at least one certificate blob that does not parse
/// as DER (ParsEval-class deformities). Not a paper statistic — a harness
/// population, gated behind `SimConfig::include_malformed`.
pub const MALFORMED_CONNS: usize = 60;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inbound_rows_sum_to_one() {
        let sum: f64 = INBOUND_ROWS.iter().map(|r| r.frac).sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum={sum}");
    }

    #[test]
    fn inbound_port_marginals_match_table2() {
        let port_share = |lo: u16, hi: u16| -> f64 {
            INBOUND_ROWS
                .iter()
                .filter(|r| r.port >= lo && r.port <= hi)
                .map(|r| r.frac)
                .sum()
        };
        assert!((port_share(443, 443) - 0.636).abs() < 0.01);
        assert!((port_share(20017, 20017) - 0.2489).abs() < 0.001);
        assert!((port_share(636, 636) - 0.0636).abs() < 0.001);
        assert!((port_share(50_000, 51_000) - 0.0123).abs() < 0.002);
    }

    #[test]
    fn inbound_association_marginals_match_table3() {
        let assoc = |name: &str| -> f64 {
            INBOUND_ROWS
                .iter()
                .filter(|r| r.association == name)
                .map(|r| r.frac)
                .sum()
        };
        assert!((assoc("health") - 0.6491).abs() < 0.005);
        assert!((assoc("server") - 0.3055).abs() < 0.001);
        assert!((assoc("vpn") - 0.0030).abs() < 1e-9);
        assert!((assoc("localorg") - 0.0253).abs() < 1e-9);
        assert!((assoc("unknown-fxp") + assoc("unknown") - 0.0134).abs() < 0.005);
    }

    #[test]
    fn outbound_rows_sum_to_one() {
        let sum: f64 = OUTBOUND_ROWS.iter().map(|r| r.frac).sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum={sum}");
    }

    #[test]
    fn outbound_top_slds_match_fig2() {
        let sld = |name: &str| -> f64 {
            OUTBOUND_ROWS
                .iter()
                .filter(|r| r.sld == name)
                .map(|r| r.frac)
                .sum()
        };
        assert!((sld("amazonaws.com") - 0.2820).abs() < 0.01);
        assert!((sld("rapid7.com") - 0.2744).abs() < 1e-9);
        assert!((sld("gpcloudservice.com") - 0.1333).abs() < 1e-9);
    }

    #[test]
    fn outbound_missing_issuer_marginal_near_paper() {
        // Paper: 37.84 % of outbound client certs lack a valid issuer.
        let missing: f64 = OUTBOUND_ROWS.iter().map(|r| r.frac * r.client_mix[0]).sum();
        // Over-target at the row level: per-client assignment and cert
        // reuse dampen the realized conn-level share toward the paper's
        // 37.84 %.
        assert!((0.35..0.50).contains(&missing), "missing={missing}");
    }

    #[test]
    fn client_mixes_sum_to_one() {
        for row in OUTBOUND_ROWS {
            let sum: f64 = row.client_mix.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "{} sum={sum}", row.sld);
        }
    }

    #[test]
    fn unidentified_mixes_sum_to_one() {
        for mix in [UNIDENT_SERVER_MIX, UNIDENT_CLIENT_MIX] {
            let sum: f64 = mix.iter().map(|(f, _)| f).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }
}
