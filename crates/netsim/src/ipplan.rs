//! The address plan: university subnets (used to split inbound/outbound,
//! as the paper does with the real university's prefixes) and external
//! provider blocks.

use mtls_zeek::Ipv4;
use rand::Rng;

/// A /16-style block with a generator for hosts inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    pub network: Ipv4,
    pub prefix_len: u8,
}

impl Block {
    /// Random host inside the block (avoids .0 and .255 in the last octet).
    pub fn sample(self, rng: &mut impl Rng) -> Ipv4 {
        let host_bits = 32 - u32::from(self.prefix_len);
        let span = 1u32 << host_bits;
        loop {
            let ip = Ipv4(self.network.0 | rng.gen_range(1..span - 1));
            let last = ip.octets()[3];
            if last != 0 && last != 255 {
                return ip;
            }
        }
    }

    /// Deterministic host `n` inside the block (wraps; avoids .0/.255 by
    /// stepping past them).
    pub fn host(self, n: u32) -> Ipv4 {
        let host_bits = 32 - u32::from(self.prefix_len);
        let span = (1u32 << host_bits) - 2;
        // Map n into [1, span], then fix up .0/.255 collisions.
        let mut ip = Ipv4(self.network.0 | (1 + n % span));
        let last = ip.octets()[3];
        if last == 0 || last == 255 {
            ip = Ipv4(ip.0 ^ 1);
        }
        ip
    }

    /// Membership test.
    pub fn contains(self, ip: Ipv4) -> bool {
        ip.in_subnet(self.network, self.prefix_len)
    }
}

/// The whole plan. Addresses are fictional but structured like a real
/// campus: one /16 for the university with carved-out /24-granularity pools.
#[derive(Debug, Clone)]
pub struct IpPlan {
    /// The university's announced block; "internal" means inside this.
    pub university: Block,
    /// Health-system servers.
    pub health: Block,
    /// General university servers.
    pub servers: Block,
    /// VPN concentrators.
    pub vpn: Block,
    /// Client NAT pools (most clients egress from few addresses).
    pub nat: Block,
    /// Non-NAT client space (labs, wired offices).
    pub clients: Block,
    /// External provider blocks.
    pub aws: Block,
    pub rapid7: Block,
    pub gp_cloud: Block,
    pub apple: Block,
    pub microsoft: Block,
    pub misc_external: Block,
    /// External client space (inbound originators).
    pub external_clients: Block,
}

impl IpPlan {
    /// The fixed plan used by every simulation run.
    pub fn standard() -> IpPlan {
        let b = |a, bb, c, d, p| Block {
            network: Ipv4::new(a, bb, c, d),
            prefix_len: p,
        };
        IpPlan {
            university: b(172, 29, 0, 0, 16),
            health: b(172, 29, 10, 0, 23),
            servers: b(172, 29, 20, 0, 22),
            vpn: b(172, 29, 30, 0, 24),
            nat: b(172, 29, 40, 0, 26),
            clients: b(172, 29, 64, 0, 18),
            aws: b(18, 204, 0, 0, 16),
            rapid7: b(34, 226, 0, 0, 16),
            gp_cloud: b(35, 190, 0, 0, 16),
            apple: b(17, 250, 0, 0, 16),
            microsoft: b(20, 42, 0, 0, 16),
            misc_external: b(45, 60, 0, 0, 14),
            external_clients: b(98, 100, 0, 0, 14),
        }
    }

    /// The paper's internal/external test.
    pub fn is_internal(&self, ip: Ipv4) -> bool {
        self.university.contains(ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pools_nest_inside_university() {
        let plan = IpPlan::standard();
        for pool in [plan.health, plan.servers, plan.vpn, plan.nat, plan.clients] {
            assert!(plan.university.contains(pool.network), "{:?}", pool);
        }
        for pool in [plan.aws, plan.rapid7, plan.apple, plan.external_clients] {
            assert!(!plan.university.contains(pool.network), "{:?}", pool);
        }
    }

    #[test]
    fn sampled_hosts_stay_inside() {
        let plan = IpPlan::standard();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let ip = plan.health.sample(&mut rng);
            assert!(plan.health.contains(ip));
            assert!(plan.is_internal(ip));
            let last = ip.octets()[3];
            assert!(last != 0 && last != 255);
        }
    }

    #[test]
    fn deterministic_hosts() {
        let plan = IpPlan::standard();
        assert_eq!(plan.vpn.host(5), plan.vpn.host(5));
        assert!(plan.vpn.contains(plan.vpn.host(1000)));
        // NAT pool is tiny: many ns collapse onto few addresses.
        let a = plan.nat.host(0);
        let b = plan.nat.host(62);
        assert_eq!(a, b, "62-host pool wraps");
    }

    #[test]
    fn internal_external_split() {
        let plan = IpPlan::standard();
        assert!(plan.is_internal(Ipv4::new(172, 29, 99, 7)));
        assert!(!plan.is_internal(Ipv4::new(8, 8, 8, 8)));
    }
}
