//! Simulation configuration.

/// Knobs for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Linear volume multiplier. `1.0` produces the default corpus
    /// (~200–250 k connection records, ~20–40 k unique certificates —
    /// roughly 1/10⁴ of the paper's connection volume and 1/250 of its
    /// certificate volume; see DESIGN.md §1 on stratified scaling).
    /// Integration tests use `0.01`–`0.05`.
    pub scale: f64,
    /// Whether to include the non-mTLS strata (Table 2's right half,
    /// Table 14, Figure 1's denominator). On by default; some examples
    /// disable it to focus on mutual TLS.
    pub include_non_mtls: bool,
    /// Whether to plant TLS-interception traffic (§3.2.1).
    pub include_interception: bool,
    /// Whether to plant ParsEval-class malformed certificates into the
    /// traffic (truncated DER, corrupted lengths, sign characters in time
    /// strings, …). Off by default so the calibrated corpus stays
    /// bit-identical; the conformance tests turn it on to exercise the
    /// lenient ingest path end-to-end.
    pub include_malformed: bool,
    /// Whether to plant an equivocating CT log: the campus border is
    /// served a forked view with fabricated entries covering interception
    /// proxy certificates, while the external monitor sees the honest
    /// view. Off by default (clean corpora must detect zero split views);
    /// the CT gossip tests turn it on.
    pub include_ct_equivocation: bool,
    /// Whether to plant an SCT-stripping middlebox: a twin of a logged
    /// public certificate (same subject, SANs and issuer, different
    /// fingerprint) is served without ever being CT-logged. Off by
    /// default.
    pub include_sct_strip: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x6d746c73,
            scale: 1.0,
            include_non_mtls: true,
            include_interception: true,
            include_malformed: false,
            include_ct_equivocation: false,
            include_sct_strip: false,
        }
    }
}

impl SimConfig {
    /// Validate the configuration. `scale` must be a finite, strictly
    /// positive number: NaN and negative values would otherwise slip
    /// through the scaling arithmetic silently (`round() as usize`
    /// saturates NaN and negatives to 0, `+inf` to `usize::MAX`), turning
    /// a typo'd 10–100× sweep into an empty — or impossibly huge —
    /// scenario instead of an error.
    pub fn validate(&self) -> Result<(), String> {
        if !self.scale.is_finite() {
            return Err(format!("scale must be finite, got {}", self.scale));
        }
        if self.scale <= 0.0 {
            return Err(format!("scale must be > 0, got {}", self.scale));
        }
        Ok(())
    }

    /// Scale an absolute default count.
    pub fn scaled(&self, base: usize) -> usize {
        ((base as f64) * self.scale).round().max(1.0) as usize
    }

    /// Scale a count that may legitimately go to zero at tiny scales.
    pub fn scaled_may_vanish(&self, base: usize) -> usize {
        ((base as f64) * self.scale).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling() {
        let cfg = SimConfig {
            scale: 0.5,
            ..SimConfig::default()
        };
        assert_eq!(cfg.scaled(100), 50);
        assert_eq!(cfg.scaled(1), 1); // floor of 1
        assert_eq!(cfg.scaled_may_vanish(1), 1);
        let tiny = SimConfig {
            scale: 0.001,
            ..SimConfig::default()
        };
        assert_eq!(tiny.scaled(100), 1);
        assert_eq!(tiny.scaled_may_vanish(100), 0);
    }

    #[test]
    fn validate_rejects_degenerate_scales() {
        let mut cfg = SimConfig::default();
        assert!(cfg.validate().is_ok());
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 0.0] {
            cfg.scale = bad;
            let err = cfg.validate().expect_err("degenerate scale accepted");
            assert!(err.contains("scale"), "unhelpful error: {err}");
        }
        // The exact pathologies validate() exists to catch: NaN and
        // negative scales silently round to empty scenarios.
        cfg.scale = f64::NAN;
        assert_eq!(cfg.scaled_may_vanish(1000), 0);
        cfg.scale = -1.0;
        assert_eq!(cfg.scaled_may_vanish(1000), 0);
    }
}
