//! The campus-network traffic simulator.
//!
//! Stands in for the paper's closed 23-month border capture (DESIGN.md §1).
//! [`generate`] builds a synthetic world — public and private CAs, the four
//! root programs, a CT log, the university IP plan — then runs a set of
//! *scenarios*, each of which mints certificates and drives simulated TLS
//! handshakes through the `mtls-tlssim` passive monitor, producing exactly
//! the two Zeek log streams the paper's pipeline consumes.
//!
//! Every phenomenon the paper measures is planted by a scenario calibrated
//! to the published numbers (see [`targets`] for the constants, each
//! annotated with the paper's figure):
//!
//! * monthly mutual-TLS growth with the Oct–Dec 2023 health surge and the
//!   Rapid7 disappearance (Fig. 1),
//! * the inbound/outbound service-port mix (Table 2),
//! * inbound server associations and client issuer mixes (Table 3),
//! * outbound TLD/issuer flows (Fig. 2),
//! * dummy issuers (Table 4/10), dummy serial collisions (§5.1.2),
//! * same-connection and cross-connection certificate sharing (Tables 5–6),
//! * incorrect validity dates (Fig. 3, Tables 11–12),
//! * long/expired validity populations (Figs. 4–5),
//! * the CN/SAN content mix (Tables 7–9, 13–14),
//! * TLS interception (§3.2.1) and the TLS 1.3 blind spot (§3.3).
//!
//! All randomness flows from `SimConfig::seed`; the same `(seed, scale)`
//! yields a bit-identical corpus.
//!
//! # Example
//!
//! ```
//! use mtls_netsim::{generate, SimConfig};
//!
//! // A tiny deterministic corpus (the paper's full scale is `scale: 1.0`).
//! let cfg = SimConfig { seed: 42, scale: 0.01, ..SimConfig::default() };
//! let out = generate(&cfg);
//! assert!(out.ssl.iter().any(|r| r.is_mutual_tls()));
//! assert!(!out.x509.is_empty());
//! // Same seed and scale => bit-identical logs.
//! assert_eq!(generate(&cfg).ssl.len(), out.ssl.len());
//! ```

pub mod calendar;
pub mod certgen;
pub mod config;
pub mod emit;
pub mod ipplan;
pub mod scenarios;
pub mod targets;
pub mod world;

pub use calendar::Month;
pub use config::SimConfig;
pub use emit::{to_x509_record, Emitter, SimMeta, SimOutput};
pub use world::World;

use mtls_obs::{Obs, SpanId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run the full simulation: build the world, run every scenario, and return
/// the logs plus the out-of-band metadata the analysis pipeline needs.
pub fn generate(config: &SimConfig) -> SimOutput {
    generate_obs(config, &Obs::noop(), None)
}

/// [`generate`] with observability: a `netsim_generate` span under
/// `parent` with `world_build`, one `scenario_*` child per scenario, and
/// `emit_finish`, plus output-size counters. Instrumentation never touches
/// the RNG, so the corpus stays bit-identical for a given `(seed, scale)`.
pub fn generate_obs(config: &SimConfig, obs: &Obs, parent: Option<SpanId>) -> SimOutput {
    // Reject degenerate scales up front: a NaN or negative scale would
    // silently produce empty scenarios (see SimConfig::validate).
    if let Err(e) = config.validate() {
        panic!("invalid SimConfig: {e}");
    }
    let span = obs.span(parent, "netsim_generate");
    let gid = span.id();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let world = obs.time(gid, "world_build", || World::build(config, &mut rng));
    let mut emitter = Emitter::new(config, &world);

    macro_rules! scenario {
        ($name:ident) => {
            obs.time(gid, concat!("scenario_", stringify!($name)), || {
                scenarios::$name::run(config, &world, &mut emitter, &mut rng)
            })
        };
    }
    scenario!(inbound);
    scenario!(outbound);
    scenario!(webrtc);
    scenario!(privservers);
    scenario!(tunnel);
    scenario!(dummies);
    scenario!(serials);
    scenario!(sharing);
    scenario!(dates);
    // The mid-run gossip observation consumes no randomness, so the
    // default corpus stays bit-identical with or without it; it sits
    // before the big CT-submitting scenarios so the recorded tree size is
    // strictly smaller than the final heads.
    scenario!(ct_gossip);
    scenario!(expired);
    scenario!(nonmtls);
    scenario!(interception);
    scenario!(malformed);
    // Gated adversarial CT scenarios (off by default; when disabled they
    // return before touching the RNG).
    scenario!(equivocating_log);
    scenario!(sct_strip);

    let out = obs.time(gid, "emit_finish", || emitter.finish(&world));
    span.finish();
    if obs.enabled() {
        obs.counter_add("netsim.ssl_records", out.ssl.len() as u64);
        obs.counter_add("netsim.x509_records", out.x509.len() as u64);
        obs.counter_add("netsim.ct_entries", out.ct.len() as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_corpus_is_deterministic() {
        let cfg = SimConfig {
            seed: 7,
            scale: 0.01,
            ..SimConfig::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.ssl.len(), b.ssl.len());
        assert_eq!(a.x509.len(), b.x509.len());
        assert_eq!(
            a.ssl.first().map(|r| r.uid.clone()),
            b.ssl.first().map(|r| r.uid.clone())
        );
        // Different seed, different corpus.
        let c = generate(&SimConfig {
            seed: 8,
            scale: 0.01,
            ..SimConfig::default()
        });
        assert_ne!(
            a.ssl.iter().map(|r| r.uid.as_str()).collect::<Vec<_>>(),
            c.ssl.iter().map(|r| r.uid.as_str()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tiny_corpus_contains_mutual_and_plain_tls() {
        let cfg = SimConfig {
            seed: 1,
            scale: 0.02,
            ..SimConfig::default()
        };
        let out = generate(&cfg);
        let mutual = out.ssl.iter().filter(|r| r.is_mutual_tls()).count();
        let plain = out.ssl.iter().filter(|r| !r.is_mutual_tls()).count();
        assert!(mutual > 100, "mutual={mutual}");
        assert!(plain > 100, "plain={plain}");
        // Every fingerprint referenced in ssl.log exists in x509.log.
        let known: std::collections::HashSet<&str> =
            out.x509.iter().map(|c| c.fingerprint.as_str()).collect();
        for rec in &out.ssl {
            for fp in rec.cert_chain_fps.iter().chain(&rec.client_cert_chain_fps) {
                assert!(known.contains(fp.as_str()), "dangling fp {fp}");
            }
        }
    }
}
