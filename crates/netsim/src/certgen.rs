//! Certificate minting helpers and CN/SAN content generators.

use mtls_asn1::Asn1Time;
use mtls_classify::gazetteer::{GIVEN_NAMES, SURNAMES};
use mtls_crypto::Keypair;
use mtls_pki::CertificateAuthority;
use mtls_x509::{
    Certificate, CertificateBuilder, DistinguishedName, ExtendedKeyUsage, GeneralName,
    KeyAlgorithm, SignatureAlgorithm, Version,
};
use rand::Rng;

/// How the serial number is chosen.
#[derive(Debug, Clone)]
pub enum Serial {
    /// Unique random 12-byte serial (well-behaved issuers).
    Random,
    /// A fixed value — the §5.1.2 collision populations (`00`, `01`,
    /// `024680`, `03E8`).
    Fixed(Vec<u8>),
}

/// Which ExtendedKeyUsage to stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Usage {
    Server,
    Client,
    Both,
    /// No EKU at all (most private-CA certs in the wild).
    None,
}

/// Everything needed to mint one leaf.
pub struct MintSpec<'a> {
    pub ca: &'a CertificateAuthority,
    /// When set, the issuer DN is this instead of the CA's name — the
    /// *MissingIssuer* (empty DN) and hand-rolled-dummy populations.
    pub issuer_override: Option<DistinguishedName>,
    pub subject_cn: Option<String>,
    pub subject_org: Option<String>,
    pub san: Vec<GeneralName>,
    pub serial: Serial,
    pub not_before: Asn1Time,
    pub not_after: Asn1Time,
    pub version: Version,
    pub key: KeyAlgorithm,
    pub usage: Usage,
}

impl<'a> MintSpec<'a> {
    /// A plain v3 RSA-2048 leaf with a random serial and no EKU.
    pub fn new(
        ca: &'a CertificateAuthority,
        not_before: Asn1Time,
        not_after: Asn1Time,
    ) -> MintSpec<'a> {
        MintSpec {
            ca,
            issuer_override: None,
            subject_cn: None,
            subject_org: None,
            san: Vec::new(),
            serial: Serial::Random,
            not_before,
            not_after,
            version: Version::V3,
            key: KeyAlgorithm::Rsa { bits: 2048 },
            usage: Usage::None,
        }
    }

    pub fn cn(mut self, cn: impl Into<String>) -> Self {
        self.subject_cn = Some(cn.into());
        self
    }

    pub fn org(mut self, org: impl Into<String>) -> Self {
        self.subject_org = Some(org.into());
        self
    }

    pub fn san_dns(mut self, names: &[&str]) -> Self {
        self.san
            .extend(names.iter().map(|n| GeneralName::Dns((*n).to_string())));
        self
    }

    pub fn san(mut self, names: Vec<GeneralName>) -> Self {
        self.san.extend(names);
        self
    }

    pub fn serial(mut self, serial: Serial) -> Self {
        self.serial = serial;
        self
    }

    pub fn version(mut self, v: Version) -> Self {
        self.version = v;
        self
    }

    pub fn key(mut self, key: KeyAlgorithm) -> Self {
        self.key = key;
        self
    }

    pub fn usage(mut self, usage: Usage) -> Self {
        self.usage = usage;
        self
    }

    pub fn issuer_override(mut self, dn: DistinguishedName) -> Self {
        self.issuer_override = Some(dn);
        self
    }

    /// Mint the certificate. Randomness (subject key, random serial) comes
    /// from `rng`, so corpora are reproducible.
    pub fn mint(self, rng: &mut impl Rng) -> Certificate {
        let key_seed: [u8; 16] = rng.gen();
        let subject_key = Keypair::from_seed(&key_seed);
        let mut subject = DistinguishedName::builder();
        if let Some(org) = &self.subject_org {
            subject = subject.organization(org.clone());
        }
        if let Some(cn) = &self.subject_cn {
            subject = subject.common_name(cn.clone());
        }
        let serial_bytes = match self.serial {
            Serial::Random => {
                let mut b = vec![0u8; 12];
                rng.fill(&mut b[..]);
                b[0] &= 0x7F; // keep it positive-looking
                b
            }
            Serial::Fixed(b) => b,
        };
        let mut builder = CertificateBuilder::new()
            .version(self.version)
            .serial(&serial_bytes)
            .subject(subject.build())
            .validity(self.not_before, self.not_after)
            .key_algorithm(self.key)
            .signature_algorithm(if matches!(self.key, KeyAlgorithm::EcdsaP256) {
                SignatureAlgorithm::EcdsaWithSha256
            } else {
                SignatureAlgorithm::Sha256WithRsa
            })
            .san(self.san);
        builder = match self.usage {
            Usage::Server => builder.extended_key_usage(ExtendedKeyUsage {
                server_auth: true,
                client_auth: false,
                other: vec![],
            }),
            Usage::Client => builder.extended_key_usage(ExtendedKeyUsage {
                server_auth: false,
                client_auth: true,
                other: vec![],
            }),
            Usage::Both => builder.extended_key_usage(ExtendedKeyUsage::both()),
            Usage::None => builder,
        };
        let builder = builder.subject_key(subject_key.key_id());
        match self.issuer_override {
            Some(dn) => self.ca.issue_verbatim(builder.issuer(dn)),
            None => self.ca.issue(builder),
        }
    }
}

// ---------------------------------------------------------------------------
// Content generators (CN/SAN text with known ground truth).
// ---------------------------------------------------------------------------

/// Lowercase hex string of the given length.
pub fn random_hex(rng: &mut impl Rng, len: usize) -> String {
    const HEX: &[u8] = b"0123456789abcdef";
    (0..len)
        .map(|_| HEX[rng.gen_range(0..16)] as char)
        .collect()
}

/// A UUID-formatted random string (36 chars).
pub fn random_uuid(rng: &mut impl Rng) -> String {
    format!(
        "{}-{}-{}-{}-{}",
        random_hex(rng, 8),
        random_hex(rng, 4),
        random_hex(rng, 4),
        random_hex(rng, 4),
        random_hex(rng, 12)
    )
}

/// A consonant-heavy random alphanumeric string (reads as machine noise to
/// the Table 9 detector).
pub fn random_alnum(rng: &mut impl Rng, len: usize) -> String {
    const CHARS: &[u8] = b"bcdfghjklmnpqrstvwxz0123456789";
    (0..len)
        .map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char)
        .collect()
}

/// `Given Surname` drawn from the shared gazetteer, title-cased so the
/// classifier's recall is exercised honestly.
pub fn person_name(rng: &mut impl Rng) -> String {
    let title = |s: &str| {
        let mut c = s.chars();
        match c.next() {
            Some(f) => f.to_ascii_uppercase().to_string() + c.as_str(),
            None => String::new(),
        }
    };
    let given = GIVEN_NAMES[rng.gen_range(0..GIVEN_NAMES.len())];
    let sur = SURNAMES[rng.gen_range(0..SURNAMES.len())];
    format!("{} {}", title(given), title(sur))
}

/// A campus user id matching the format `classify::matchers::is_user_account`
/// recognizes (e.g. `hd7gr`).
pub fn user_account(rng: &mut impl Rng) -> String {
    const L: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    let mut s = String::new();
    for _ in 0..rng.gen_range(2..=3) {
        s.push(L[rng.gen_range(0..26)] as char);
    }
    s.push(char::from(b'0' + rng.gen_range(0..10u8)));
    for _ in 0..2 {
        s.push(L[rng.gen_range(0..26)] as char);
    }
    s
}

/// A MAC address string.
pub fn mac_address(rng: &mut impl Rng) -> String {
    (0..6)
        .map(|_| format!("{:02X}", rng.gen::<u8>()))
        .collect::<Vec<_>>()
        .join(":")
}

/// A SIP URI.
pub fn sip_address(rng: &mut impl Rng) -> String {
    format!("sip:{}@voip.campus-main.edu", rng.gen_range(1000..9999))
}

/// An email address.
pub fn email_address(rng: &mut impl Rng) -> String {
    format!("{}@campus-main.edu", user_account(rng))
}

/// A hostname under the given registered domain.
pub fn hostname(rng: &mut impl Rng, domain: &str) -> String {
    const PREFIX: &[&str] = &[
        "www", "api", "portal", "edge", "mx", "smtp", "vpn", "node", "app", "svc",
    ];
    format!(
        "{}{}.{}",
        PREFIX[rng.gen_range(0..PREFIX.len())],
        rng.gen_range(0..100),
        domain
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtls_classify::{classify, ClassifyContext, InfoType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn generators_produce_classifiable_content() {
        let mut r = rng();
        let ctx = ClassifyContext::default();
        let campus = ClassifyContext {
            issuer_org: Some("x"),
            issuer_is_campus: true,
        };
        for _ in 0..50 {
            assert_eq!(classify(&person_name(&mut r), ctx), InfoType::PersonalName);
            assert_eq!(
                classify(&user_account(&mut r), campus),
                InfoType::UserAccount
            );
            assert_eq!(classify(&mac_address(&mut r), ctx), InfoType::Mac);
            assert_eq!(classify(&sip_address(&mut r), ctx), InfoType::Sip);
            assert_eq!(classify(&email_address(&mut r), ctx), InfoType::Email);
            assert_eq!(
                classify(&hostname(&mut r, "example.com"), ctx),
                InfoType::Domain
            );
            assert_eq!(
                classify(&random_hex(&mut r, 32), ctx),
                InfoType::Unidentified
            );
            assert_eq!(classify(&random_uuid(&mut r), ctx), InfoType::Unidentified);
        }
    }

    #[test]
    fn random_strings_detected_as_random() {
        let mut r = rng();
        for _ in 0..50 {
            assert!(mtls_classify::random::is_random_string(&random_hex(
                &mut r, 8
            )));
            assert!(mtls_classify::random::is_random_string(&random_uuid(
                &mut r
            )));
            let alnum = random_alnum(&mut r, 16);
            assert!(mtls_classify::random::is_random_string(&alnum), "{alnum}");
        }
    }

    #[test]
    fn mint_with_fixed_serial_and_override() {
        let mut r = rng();
        let world_start = Asn1Time::from_ymd(2022, 5, 1);
        let ca = CertificateAuthority::new_root(
            b"t",
            DistinguishedName::builder().organization("T").build(),
            world_start,
        );
        let cert = MintSpec::new(&ca, world_start, world_start.add_days(14))
            .cn("transfer")
            .serial(Serial::Fixed(vec![0x00]))
            .issuer_override(DistinguishedName::empty())
            .usage(Usage::Both)
            .mint(&mut r);
        assert_eq!(cert.serial().to_hex(), "00");
        assert!(cert.issuer().is_empty());
        assert_eq!(cert.subject().common_name(), Some("transfer"));
        // Round-trips through DER.
        let rt = Certificate::from_der(&cert.to_der()).unwrap();
        assert_eq!(rt, cert);
    }

    #[test]
    fn random_serials_are_unique() {
        let mut r = rng();
        let world_start = Asn1Time::from_ymd(2022, 5, 1);
        let ca = CertificateAuthority::new_root(
            b"t2",
            DistinguishedName::builder().organization("T2").build(),
            world_start,
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let cert = MintSpec::new(&ca, world_start, world_start.add_days(90)).mint(&mut r);
            assert!(seen.insert(cert.serial().to_hex()));
        }
    }
}
