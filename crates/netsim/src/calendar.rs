//! The study calendar: May 2022 – March 2024, 23 months, with the traffic
//! trends of Figure 1.

use mtls_asn1::{time, Asn1Time};
use rand::Rng;

/// A calendar month in the study window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Month {
    pub year: i32,
    pub month: u32,
}

impl Month {
    /// The study's 23 months in order.
    pub fn study_months() -> Vec<Month> {
        let mut out = Vec::with_capacity(23);
        let mut y = 2022;
        let mut m = 5;
        for _ in 0..23 {
            out.push(Month { year: y, month: m });
            m += 1;
            if m > 12 {
                m = 1;
                y += 1;
            }
        }
        out
    }

    /// Zero-based index within the study window.
    pub fn index(self) -> usize {
        let months_from_epoch = |mo: Month| mo.year * 12 + mo.month as i32 - 1;
        (months_from_epoch(self)
            - months_from_epoch(Month {
                year: 2022,
                month: 5,
            })) as usize
    }

    /// First instant of the month.
    pub fn start(self) -> Asn1Time {
        Asn1Time::from_ymd(self.year, self.month, 1)
    }

    /// Number of days in the month.
    pub fn days(self) -> u32 {
        time::days_in_month(self.year, self.month)
    }

    /// `YYYY-MM` label.
    pub fn label(self) -> String {
        format!("{:04}-{:02}", self.year, self.month)
    }

    /// Uniform random timestamp inside the month.
    pub fn sample_ts(self, rng: &mut impl Rng) -> f64 {
        let start = self.start().unix() as f64;
        start + rng.gen_range(0.0..(self.days() as f64 * 86_400.0))
    }

    /// The month containing a Unix timestamp.
    pub fn of_ts(ts: f64) -> Month {
        let (y, m, ..) = Asn1Time::from_unix(ts as i64).to_civil();
        Month { year: y, month: m }
    }
}

/// Relative mutual-TLS volume per month (daily rate in millions, from the
/// paper: 1.26 M/day in May 2022 rising to 2.36 M/day in March 2024, with
/// an extra inbound surge from university health services Oct–Dec 2023
/// onward). Index by `Month::index()`.
pub fn mtls_month_weight(index: usize, inbound: bool) -> f64 {
    let n = 22.0;
    let base = 1.0 + 1.3 * (index as f64 / n);
    // The health surge: "nearly twofold increase in traffic to the
    // university health services from October 2023 to December 2023".
    // Months 17 (Oct 2023) onward carry the surge on the inbound side.
    if inbound && index >= 17 {
        base * 1.55
    } else {
        base
    }
}

/// Relative non-mTLS volume per month: roughly flat (total TLS grew only
/// slightly while the mTLS share doubled).
pub fn non_mtls_month_weight(_index: usize) -> f64 {
    1.0
}

/// Distribute `total` items over the 23 months proportionally to `weight`,
/// rounding while preserving the total.
pub fn spread_over_months(total: usize, weight: impl Fn(usize) -> f64) -> Vec<usize> {
    let months = Month::study_months();
    let weights: Vec<f64> = (0..months.len()).map(&weight).collect();
    let sum: f64 = weights.iter().sum();
    let mut out = Vec::with_capacity(months.len());
    let mut assigned = 0usize;
    let mut acc = 0.0f64;
    for w in &weights {
        acc += w;
        let target = ((acc / sum) * total as f64).round() as usize;
        out.push(target - assigned);
        assigned = target;
    }
    debug_assert_eq!(assigned, total);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn study_window_shape() {
        let months = Month::study_months();
        assert_eq!(months.len(), 23);
        assert_eq!(
            months[0],
            Month {
                year: 2022,
                month: 5
            }
        );
        assert_eq!(
            months[22],
            Month {
                year: 2024,
                month: 3
            }
        );
        for (i, m) in months.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(
            Month {
                year: 2022,
                month: 5
            }
            .label(),
            "2022-05"
        );
        assert_eq!(
            Month {
                year: 2024,
                month: 3
            }
            .label(),
            "2024-03"
        );
    }

    #[test]
    fn sample_ts_stays_in_month() {
        let mut rng = StdRng::seed_from_u64(1);
        for m in Month::study_months() {
            for _ in 0..20 {
                let ts = m.sample_ts(&mut rng);
                assert_eq!(Month::of_ts(ts), m, "{}", m.label());
            }
        }
    }

    #[test]
    fn growth_is_monotone_without_surge() {
        for i in 1..23 {
            assert!(mtls_month_weight(i, false) > mtls_month_weight(i - 1, false));
        }
        // Surge kicks in at month 17 on the inbound side.
        assert!(mtls_month_weight(17, true) > mtls_month_weight(17, false) * 1.3);
    }

    #[test]
    fn spread_preserves_total() {
        for total in [0usize, 1, 22, 23, 1000, 99_999] {
            let spread = spread_over_months(total, |i| mtls_month_weight(i, false));
            assert_eq!(spread.iter().sum::<usize>(), total, "total={total}");
        }
    }

    #[test]
    fn spread_follows_weights() {
        let spread = spread_over_months(100_000, |i| mtls_month_weight(i, false));
        assert!(spread[22] > spread[0], "growth should show in the spread");
        let ratio = spread[22] as f64 / spread[0] as f64;
        assert!((1.5..2.5).contains(&ratio), "ratio {ratio}");
    }
}
