//! The emitter: drives each scenario-specified connection through the
//! `mtls-tlssim` handshake simulator and passive monitor, then records what
//! the monitor observed as Zeek log records. Certificates are interned by
//! SHA-256 fingerprint, exactly like Zeek's x509 dedup.

use crate::calendar::Month;
use crate::config::SimConfig;
use crate::scenarios::ContentQuotas;
use crate::targets;
use crate::world::World;
use mtls_crypto::{hex, sha256_batch};
use mtls_pki::ctlog::CtEntry;
use mtls_pki::gossip::{CtObservation, GossipBundle, Vantage};
use mtls_pki::merkle::leaf_hash;
use mtls_pki::CtLog;
use mtls_tlssim::{observe, simulate_handshake, HandshakeConfig};
use mtls_x509::{Certificate, GeneralName, KeyAlgorithm, Version};
use mtls_zeek::{Ipv4, SslRecord, TlsVersion, X509Record};
use rand::Rng;
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

/// One connection, as a scenario specifies it.
pub struct ConnSpec<'a> {
    pub ts: f64,
    pub orig: Ipv4,
    pub resp: Ipv4,
    pub resp_port: u16,
    pub version: TlsVersion,
    pub sni: Option<String>,
    pub server_chain: Vec<&'a Certificate>,
    pub client_chain: Vec<&'a Certificate>,
    pub established: bool,
    /// Session resumption: no certificates visible (see `mtls-tlssim`).
    pub resumed: bool,
}

/// Like [`ConnSpec`] but with certificate chains as raw DER blobs, for the
/// `malformed` scenario: endpoints on a real network can and do present
/// bytes that are not well-formed certificates, and the wire protocol
/// carries them opaquely either way.
pub struct RawConnSpec {
    pub ts: f64,
    pub orig: Ipv4,
    pub resp: Ipv4,
    pub resp_port: u16,
    pub version: TlsVersion,
    pub sni: Option<String>,
    pub server_chain: Vec<Vec<u8>>,
    pub client_chain: Vec<Vec<u8>>,
    pub established: bool,
    pub resumed: bool,
}

/// Accounting for certificate blobs that reached the monitor but did not
/// parse: the emitter logs the connection (Zeek logs the handshake either
/// way) and skips the x509 row, like Zeek's parse-failure path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MalformedStats {
    /// Distinct certificate blobs skipped (by fingerprint).
    pub certs_skipped: u64,
    /// Up to eight sample fingerprints of skipped blobs, first-seen order.
    pub sample_fps: Vec<String>,
}

/// Out-of-band metadata the analysis pipeline needs (the paper's analogue:
/// the university's subnet list, campus CA names, and collection window).
#[derive(Debug, Clone, PartialEq)]
pub struct SimMeta {
    /// University network (internal/external split).
    pub university_net: (Ipv4, u8),
    /// Campus CA issuer organizations (Education + user-account check).
    pub campus_issuer_orgs: Vec<String>,
    /// Organizations of CAs present in the four root programs — the
    /// analysis pipeline's stand-in for consulting NSS/Apple/Microsoft/
    /// CCADB root stores.
    pub public_ca_orgs: Vec<String>,
    /// SLD → inbound server association hints (the paper built these from
    /// university knowledge).
    pub health_slds: Vec<String>,
    pub university_slds: Vec<String>,
    pub vpn_slds: Vec<String>,
    pub localorg_slds: Vec<String>,
    pub globus_slds: Vec<String>,
    /// Publicly published cloud/security-provider prefixes (AWS et al.
    /// publish their ranges) — §3.3's external-server attribution.
    pub cloud_nets: Vec<(Ipv4, u8)>,
    /// Stratified-sampling weight for non-mTLS records (Fig. 1 shares).
    pub non_mtls_weight: f64,
    /// Generation parameters, for provenance.
    pub seed: u64,
    pub scale: f64,
    /// Hex log ids of CT logs the simulation deliberately forked (ground
    /// truth for the split-view detector's recall table; empty on clean
    /// corpora).
    pub ct_forked_logs: Vec<String>,
}

/// The complete simulation product.
#[derive(Debug, Clone)]
pub struct SimOutput {
    pub ssl: Vec<SslRecord>,
    pub x509: Vec<X509Record>,
    /// The CT log *as the campus border observed it* — identical to the
    /// honest log unless the equivocation scenario forked it.
    pub ct: CtLog,
    /// STHs and proofs exchanged between the gossip vantage points.
    pub gossip: GossipBundle,
    pub meta: SimMeta,
    /// Certificates that failed to parse and were skipped (empty unless the
    /// `malformed` scenario is enabled).
    pub malformed: MalformedStats,
}

/// Collects records during generation.
pub struct Emitter {
    ssl: Vec<SslRecord>,
    x509: Vec<X509Record>,
    seen: HashMap<[u8; 32], ()>,
    pub ct: CtLog,
    /// Shared CN/SAN content quotas (Tables 8–9), drawn down by scenarios.
    pub quotas: ContentQuotas,
    /// Remaining public-CA client certificates that get a personal name
    /// (the paper's 133, §6.3.3).
    pub quotas_public_personal_names: usize,
    uid_counter: u64,
    config: SimConfig,
    malformed: MalformedStats,
    /// Fabricated entries an equivocating log serves *only* to the campus
    /// border (spliced into the honest sequence at [`Emitter::finish`]).
    ct_fork_entries: Vec<CtEntry>,
    /// Log sizes at which the campus border snapshotted an STH mid-run.
    ct_campus_observations: Vec<u64>,
}

impl Emitter {
    /// Fresh emitter.
    pub fn new(config: &SimConfig, _world: &World) -> Emitter {
        Emitter {
            ssl: Vec::new(),
            x509: Vec::new(),
            seen: HashMap::new(),
            ct: CtLog::new(),
            quotas: ContentQuotas::new(config),
            quotas_public_personal_names: config.scaled(targets::CLIENT_PUBLIC_PERSONAL_NAMES),
            uid_counter: 0,
            config: config.clone(),
            malformed: MalformedStats::default(),
            ct_fork_entries: Vec::new(),
            ct_campus_observations: Vec::new(),
        }
    }

    /// Emit one connection: simulate the handshake bytes, run the passive
    /// monitor over them, and log what the monitor saw.
    pub fn connection(&mut self, spec: ConnSpec<'_>, rng: &mut impl Rng) {
        self.connection_raw(
            RawConnSpec {
                ts: spec.ts,
                orig: spec.orig,
                resp: spec.resp,
                resp_port: spec.resp_port,
                version: spec.version,
                sni: spec.sni,
                server_chain: spec.server_chain.iter().map(|c| c.to_der()).collect(),
                client_chain: spec.client_chain.iter().map(|c| c.to_der()).collect(),
                established: spec.established,
                resumed: spec.resumed,
            },
            rng,
        );
    }

    /// [`Emitter::connection`] over raw DER chains. Blobs that fail to
    /// parse still flow through the handshake and are fingerprinted in
    /// `ssl.log`, but get no `x509.log` row (counted in
    /// [`SimOutput::malformed`]).
    pub fn connection_raw(&mut self, spec: RawConnSpec, rng: &mut impl Rng) {
        // Clamp into the collection window (scenario arithmetic may land a
        // reissued certificate's last connection a day past March 31 2024).
        let ts = spec.ts.clamp(1_651_363_200.0, 1_711_843_199.0);
        let cfg = HandshakeConfig {
            version: spec.version,
            sni: spec.sni.clone(),
            server_chain: spec.server_chain,
            request_client_cert: !spec.client_chain.is_empty(),
            client_chain: spec.client_chain,
            established: spec.established,
            resumed: spec.resumed,
            random_seed: rng.gen(),
        };
        let transcript = simulate_handshake(&cfg);
        let obs = observe(&transcript).expect("simulated stream is TLS");

        let cert_chain_fps = self.intern_chain(&obs.server_cert_ders, ts);
        let client_cert_chain_fps = self.intern_chain(&obs.client_cert_ders, ts);

        self.uid_counter += 1;
        self.ssl.push(SslRecord {
            ts,
            uid: format!("C{:08x}", self.uid_counter),
            orig_h: spec.orig,
            orig_p: rng.gen_range(32_768..61_000),
            resp_h: spec.resp,
            resp_p: spec.resp_port,
            version: obs.version.unwrap_or(spec.version),
            server_name: obs.sni,
            established: obs.established,
            cert_chain_fps,
            client_cert_chain_fps,
        });
    }

    /// Submit a certificate to the simulated CT log (public issuance path).
    pub fn submit_ct(&mut self, cert: &Certificate) {
        self.ct.submit(cert);
    }

    /// Record that the campus border monitor fetched an STH at this point
    /// in the run (i.e. at the log's current size). The matching signed
    /// tree heads are minted in [`Emitter::finish`].
    pub fn observe_campus_sth(&mut self) {
        self.ct_campus_observations.push(self.ct.len() as u64);
    }

    /// Plant an equivocating view: these fabricated entries will appear in
    /// the CT log *as served to the campus border*, spliced into the middle
    /// of the honest sequence, while the external monitor keeps seeing the
    /// honest log. Ground truth is recorded in `SimMeta::ct_forked_logs`.
    pub fn plant_ct_fork(&mut self, entries: Vec<CtEntry>) {
        self.ct_fork_entries.extend(entries);
    }

    fn intern_chain(&mut self, ders: &[Vec<u8>], ts: f64) -> Vec<String> {
        // Fingerprint the whole chain as one batch: quads of blobs go
        // through the 4-way interleaved compressor, the tail through the
        // one-shot path.
        let der_refs: Vec<&[u8]> = ders.iter().map(|d| d.as_slice()).collect();
        let digests = sha256_batch(&der_refs);
        let mut fps = Vec::with_capacity(ders.len());
        for (der, digest) in ders.iter().zip(digests) {
            let fp = hex::encode(&digest);
            if self.seen.insert(digest, ()).is_none() {
                // Zeek's parse-failure path: the connection log keeps the
                // fingerprint, the x509 log gets no row, nothing crashes.
                match Certificate::from_der(der) {
                    Ok(cert) => self.x509.push(to_x509_record(&cert, &fp, ts)),
                    Err(_) => {
                        self.malformed.certs_skipped += 1;
                        if self.malformed.sample_fps.len() < 8 {
                            self.malformed.sample_fps.push(fp.clone());
                        }
                    }
                }
            }
            fps.push(fp);
        }
        fps
    }

    /// Number of connections emitted so far.
    pub fn connections(&self) -> usize {
        self.ssl.len()
    }

    /// Compute the strata weight and package the output.
    pub fn finish(mut self, world: &World) -> SimOutput {
        // Stable output order: by timestamp, then uid (scenarios run in
        // sequence, so raw order is scenario-grouped otherwise).
        self.ssl.sort_by(|a, b| {
            a.ts.partial_cmp(&b.ts)
                .expect("no NaN ts")
                .then(a.uid.cmp(&b.uid))
        });
        self.x509.sort_by(|a, b| {
            a.ts.partial_cmp(&b.ts)
                .expect("no NaN ts")
                .then(a.fingerprint.cmp(&b.fingerprint))
        });

        // Calibrate the non-mTLS strata weight so the first month's mTLS
        // share lands on the paper's 1.99 % (Fig. 1).
        let first = Month {
            year: 2022,
            month: 5,
        };
        let mut mtls_m1 = 0usize;
        let mut non_m1 = 0usize;
        for rec in &self.ssl {
            if Month::of_ts(rec.ts) == first {
                if rec.is_mutual_tls() {
                    mtls_m1 += 1;
                } else {
                    non_m1 += 1;
                }
            }
        }
        let s = targets::MTLS_SHARE_START;
        let non_mtls_weight = if non_m1 == 0 {
            1.0
        } else {
            (mtls_m1 as f64) * (1.0 - s) / (s * non_m1 as f64)
        };

        // CT gossip: mint the signed tree heads each vantage point saw.
        // Everything here is derived from the log contents — no RNG — so
        // enabling gossip never perturbs the calibrated record streams.
        const CT_T0: u64 = 1_651_363_200;
        let honest = self.ct;
        let forked = !self.ct_fork_entries.is_empty();
        let campus = if forked {
            // Splice the fabricated entries into the middle of the honest
            // sequence: the forked view shares a prefix with the honest one
            // (early STHs agree) but every root from the splice point on
            // diverges, so no consistency proof can reconcile the heads.
            let mut campus = CtLog::new();
            let at = honest.entries().len() / 2;
            for entry in &honest.entries()[..at] {
                campus.submit_entry(entry.clone());
            }
            for entry in &self.ct_fork_entries {
                campus.submit_entry(entry.clone());
            }
            for entry in &honest.entries()[at..] {
                campus.submit_entry(entry.clone());
            }
            campus
        } else {
            honest.clone()
        };

        let mut observations = Vec::new();
        for (i, &size) in self.ct_campus_observations.iter().enumerate() {
            if let Some(sth) = campus.sth_at(size, CT_T0 + 1 + i as u64) {
                observations.push(CtObservation {
                    vantage: Vantage::CampusBorder,
                    sth,
                });
            }
        }
        observations.push(CtObservation {
            vantage: Vantage::CampusBorder,
            sth: campus.sth(CT_T0 + 100),
        });
        observations.push(CtObservation {
            vantage: Vantage::ExternalMonitor,
            sth: honest.sth(CT_T0 + 101),
        });

        // Consistency proofs for every adjacent pair of observed sizes,
        // from whichever view can produce one. The auditor replays them
        // against the observed roots; a forked head's proof fails against
        // the honest root, which is exactly the split-view signal.
        let mut sizes: Vec<u64> = observations.iter().map(|o| o.sth.tree_size).collect();
        sizes.sort_unstable();
        sizes.dedup();
        let mut consistency_proofs = Vec::new();
        for pair in sizes.windows(2) {
            for view in [&honest, &campus] {
                if let Some(proof) = view.prove_consistency(pair[0], pair[1]) {
                    if !consistency_proofs.contains(&proof) {
                        consistency_proofs.push(proof);
                    }
                }
            }
        }

        // Under a fork, ship inclusion proofs for every honest entry
        // against the external monitor's head, keyed by leaf hash, so the
        // analysis can salvage genuinely-logged entries from the split
        // view instead of distrusting the whole log.
        let mut entry_proofs = Vec::new();
        if forked {
            if let Some(proofs) = honest.prove_all_inclusions(honest.len() as u64) {
                for (entry, proof) in honest.entries().iter().zip(proofs) {
                    entry_proofs.push((leaf_hash(&CtLog::leaf_bytes(entry)), proof));
                }
            }
        }

        let gossip = GossipBundle {
            observations,
            consistency_proofs,
            entry_proofs,
            log_keys: vec![campus.keypair().clone()],
        };
        let ct_forked_logs = if forked {
            vec![campus.log_id().to_hex()]
        } else {
            Vec::new()
        };

        let meta = SimMeta {
            university_net: (
                world.plan.university.network,
                world.plan.university.prefix_len,
            ),
            campus_issuer_orgs: world.campus_issuer_orgs(),
            public_ca_orgs: world.public_cas.iter().map(|c| c.org.to_string()).collect(),
            health_slds: vec!["campus-health.org".into(), "health-portal.com".into()],
            university_slds: vec!["campus-main.edu".into(), "univ-apps.com".into()],
            vpn_slds: vec!["campus-vpn.net".into()],
            localorg_slds: vec!["localorg-a.org".into(), "civic-services.gov".into()],
            globus_slds: vec!["globus.org".into()],
            cloud_nets: vec![
                (world.plan.aws.network, world.plan.aws.prefix_len),
                (world.plan.rapid7.network, world.plan.rapid7.prefix_len),
                (world.plan.gp_cloud.network, world.plan.gp_cloud.prefix_len),
                (world.plan.apple.network, world.plan.apple.prefix_len),
                (
                    world.plan.microsoft.network,
                    world.plan.microsoft.prefix_len,
                ),
            ],
            non_mtls_weight,
            seed: self.config.seed,
            scale: self.config.scale,
            ct_forked_logs,
        };
        SimOutput {
            ssl: self.ssl,
            x509: self.x509,
            ct: campus,
            gossip,
            meta,
            malformed: self.malformed,
        }
    }
}

/// Convert a parsed certificate into its Zeek x509.log row.
pub fn to_x509_record(cert: &Certificate, fp_hex: &str, ts: f64) -> X509Record {
    let (key_alg, key_length) = match cert.public_key().algorithm {
        KeyAlgorithm::Rsa { bits } => ("rsa".to_string(), bits),
        KeyAlgorithm::EcdsaP256 => ("ecdsa".to_string(), 256),
    };
    let mut san_dns = Vec::new();
    let mut san_email = Vec::new();
    let mut san_uri = Vec::new();
    let mut san_ip = Vec::new();
    for name in cert.subject_alt_names() {
        match &name {
            GeneralName::Dns(d) => san_dns.push(d.clone()),
            GeneralName::Email(e) => san_email.push(e.clone()),
            GeneralName::Uri(u) => san_uri.push(u.clone()),
            GeneralName::Ip(_) => {
                if let Some(text) = name.ip_display() {
                    san_ip.push(text);
                }
            }
            GeneralName::Other(..) => {}
        }
    }
    X509Record {
        ts,
        fingerprint: fp_hex.to_string(),
        version: match cert.version() {
            Version::V1 => 1,
            Version::V3 => 3,
        },
        serial: cert.serial().to_hex(),
        subject: cert.subject().to_display_string(),
        issuer: cert.issuer().to_display_string(),
        issuer_org: cert.issuer().organization().map(str::to_owned),
        subject_cn: cert.subject().common_name().map(str::to_owned),
        not_valid_before: cert.not_before().unix(),
        not_valid_after: cert.not_after().unix(),
        key_alg,
        key_length,
        sig_alg: match cert.signature_algorithm() {
            mtls_x509::SignatureAlgorithm::Sha256WithRsa => "sha256WithRSAEncryption".into(),
            mtls_x509::SignatureAlgorithm::Sha1WithRsa => "sha1WithRSAEncryption".into(),
            mtls_x509::SignatureAlgorithm::EcdsaWithSha256 => "ecdsa-with-SHA256".into(),
            mtls_x509::SignatureAlgorithm::Md5WithRsa => "md5WithRSAEncryption".into(),
        },
        san_dns,
        san_email,
        san_uri,
        san_ip,
        basic_constraints_ca: cert.is_ca(),
    }
}

impl SimOutput {
    /// Write the corpus as files: `ssl.log`, `x509.log`, `ct.log`,
    /// `meta.tsv` — the on-disk form the file-based pipeline consumes.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut ssl = std::io::BufWriter::new(std::fs::File::create(dir.join("ssl.log"))?);
        mtls_zeek::write_ssl_log(&mut ssl, &self.ssl)?;
        let mut x509 = std::io::BufWriter::new(std::fs::File::create(dir.join("x509.log"))?);
        mtls_zeek::write_x509_log(&mut x509, &self.x509)?;
        self.write_meta(dir)
    }

    /// Like [`SimOutput::write_to_dir`] but with Zeek-style monthly log
    /// rotation (`ssl.2022-05.log`, …), as a real 23-month collection would
    /// be stored.
    pub fn write_to_dir_rotated(&self, dir: &Path) -> std::io::Result<()> {
        mtls_zeek::write_monthly(dir, &self.ssl, &self.x509)?;
        self.write_meta(dir)
    }

    fn write_meta(&self, dir: &Path) -> std::io::Result<()> {
        // CT log: one (domain, issuer, fingerprint) triple per line, so the
        // interception filter works when the pipeline runs from files.
        let mut ct = std::io::BufWriter::new(std::fs::File::create(dir.join("ct.log"))?);
        for entry in self.ct.entries() {
            writeln!(
                ct,
                "{}\t{}\t{}",
                entry.domain, entry.issuer_display, entry.fingerprint_hex
            )?;
        }

        // Gossip bundle: STHs, consistency proofs, inclusion proofs and
        // the (simulator-only) log signing keys, one record per line.
        std::fs::write(dir.join("ct_gossip.log"), self.gossip.to_tsv())?;

        let mut meta = std::io::BufWriter::new(std::fs::File::create(dir.join("meta.tsv"))?);
        let m = &self.meta;
        writeln!(
            meta,
            "university_net\t{}/{}",
            m.university_net.0, m.university_net.1
        )?;
        writeln!(
            meta,
            "campus_issuer_orgs\t{}",
            m.campus_issuer_orgs.join("|")
        )?;
        writeln!(meta, "public_ca_orgs\t{}", m.public_ca_orgs.join("|"))?;
        writeln!(meta, "health_slds\t{}", m.health_slds.join("|"))?;
        writeln!(meta, "university_slds\t{}", m.university_slds.join("|"))?;
        writeln!(meta, "vpn_slds\t{}", m.vpn_slds.join("|"))?;
        writeln!(meta, "localorg_slds\t{}", m.localorg_slds.join("|"))?;
        writeln!(meta, "globus_slds\t{}", m.globus_slds.join("|"))?;
        writeln!(
            meta,
            "cloud_nets\t{}",
            m.cloud_nets
                .iter()
                .map(|(net, p)| format!("{net}/{p}"))
                .collect::<Vec<_>>()
                .join("|")
        )?;
        writeln!(meta, "non_mtls_weight\t{}", m.non_mtls_weight)?;
        writeln!(meta, "seed\t{}", m.seed)?;
        writeln!(meta, "scale\t{}", m.scale)?;
        if !m.ct_forked_logs.is_empty() {
            writeln!(meta, "ct_forked_logs\t{}", m.ct_forked_logs.join("|"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certgen::MintSpec;
    use mtls_asn1::Asn1Time;
    use mtls_pki::CertificateAuthority;
    use mtls_x509::DistinguishedName;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn connection_interns_certs_once() {
        let cfg = SimConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let world = World::build(&cfg, &mut rng);
        let mut em = Emitter::new(&cfg, &world);
        let t0 = Asn1Time::from_ymd(2022, 6, 1);
        let ca = CertificateAuthority::new_root(
            b"e",
            DistinguishedName::builder().organization("E").build(),
            t0,
        );
        let server = MintSpec::new(&ca, t0, t0.add_days(90))
            .cn("s.example.com")
            .mint(&mut rng);
        let client = MintSpec::new(&ca, t0, t0.add_days(90))
            .cn("c-device")
            .mint(&mut rng);

        for i in 0..5 {
            em.connection(
                ConnSpec {
                    ts: t0.unix() as f64 + i as f64,
                    orig: Ipv4::new(10, 0, 0, 1),
                    resp: Ipv4::new(10, 0, 0, 2),
                    resp_port: 443,
                    version: TlsVersion::Tls12,
                    sni: Some("s.example.com".into()),
                    server_chain: vec![&server],
                    client_chain: vec![&client],
                    established: true,
                    resumed: false,
                },
                &mut rng,
            );
        }
        let out = em.finish(&world);
        assert_eq!(out.ssl.len(), 5);
        assert_eq!(out.x509.len(), 2, "certs interned once");
        assert!(out.ssl.iter().all(|r| r.is_mutual_tls()));
        assert_eq!(
            out.x509[0].ts,
            t0.unix() as f64,
            "first-seen timestamp kept"
        );
    }

    #[test]
    fn tls13_connections_log_no_certs() {
        let cfg = SimConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        let world = World::build(&cfg, &mut rng);
        let mut em = Emitter::new(&cfg, &world);
        let t0 = Asn1Time::from_ymd(2022, 6, 1);
        let ca = CertificateAuthority::new_root(
            b"e2",
            DistinguishedName::builder().organization("E2").build(),
            t0,
        );
        let server = MintSpec::new(&ca, t0, t0.add_days(90))
            .cn("h.example.com")
            .mint(&mut rng);
        em.connection(
            ConnSpec {
                ts: t0.unix() as f64,
                orig: Ipv4::new(10, 0, 0, 1),
                resp: Ipv4::new(10, 0, 0, 2),
                resp_port: 443,
                version: TlsVersion::Tls13,
                sni: Some("h.example.com".into()),
                server_chain: vec![&server],
                client_chain: vec![],
                established: true,
                resumed: false,
            },
            &mut rng,
        );
        let out = em.finish(&world);
        assert_eq!(out.ssl[0].version, TlsVersion::Tls13);
        assert!(out.ssl[0].cert_chain_fps.is_empty());
        assert!(out.x509.is_empty());
    }

    #[test]
    fn write_to_dir_round_trips_logs() {
        let cfg = SimConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let world = World::build(&cfg, &mut rng);
        let mut em = Emitter::new(&cfg, &world);
        let t0 = Asn1Time::from_ymd(2022, 7, 1);
        let ca = CertificateAuthority::new_root(
            b"e3",
            DistinguishedName::builder().organization("E3").build(),
            t0,
        );
        let server = MintSpec::new(&ca, t0, t0.add_days(30))
            .cn("w.example.com")
            .mint(&mut rng);
        em.connection(
            ConnSpec {
                ts: t0.unix() as f64,
                orig: Ipv4::new(10, 9, 9, 9),
                resp: Ipv4::new(10, 8, 8, 8),
                resp_port: 8443,
                version: TlsVersion::Tls12,
                sni: None,
                server_chain: vec![&server],
                client_chain: vec![],
                established: true,
                resumed: false,
            },
            &mut rng,
        );
        let out = em.finish(&world);
        let dir = std::env::temp_dir().join(format!("mtlscope-emit-test-{}", std::process::id()));
        out.write_to_dir(&dir).unwrap();
        let ssl = mtls_zeek::read_ssl_log(std::io::BufReader::new(
            std::fs::File::open(dir.join("ssl.log")).unwrap(),
        ))
        .unwrap();
        let x509 = mtls_zeek::read_x509_log(std::io::BufReader::new(
            std::fs::File::open(dir.join("x509.log")).unwrap(),
        ))
        .unwrap();
        assert_eq!(ssl, out.ssl);
        assert_eq!(x509, out.x509);
        std::fs::remove_dir_all(&dir).ok();
    }
}
