//! The synthetic world: CAs, trust anchors, and the campus address plan.

use crate::config::SimConfig;
use crate::ipplan::IpPlan;
use mtls_asn1::Asn1Time;
use mtls_pki::{CertificateAuthority, RootProgram, TrustAnchors};
use mtls_x509::DistinguishedName;
use rand::Rng;
use std::cell::RefCell;
use std::collections::HashMap;

/// A publicly trusted CA: root in ≥ 1 root program, plus one issuing
/// intermediate (which is what leaf issuer DNs actually name).
#[derive(Debug, Clone)]
pub struct PublicCa {
    pub org: &'static str,
    pub root: CertificateAuthority,
    pub intermediate: CertificateAuthority,
}

/// The campus the data is collected from. Fictional, but structured like
/// the paper's: ~10 000 staff, 23 000 students, a health system, a VPN.
pub const CAMPUS_ORG: &str = "Commonwealth University";
pub const CAMPUS_HEALTH_ORG: &str = "Commonwealth University Health System";

/// The (public) device-fleet CAs whose issuer strings make random CNs
/// "recognizable by issuer" in Table 9.
pub const AZURE_SPHERE_ISSUER: &str = "Microsoft Azure Sphere";
pub const APPLE_DEVICE_ISSUER: &str = "Apple iPhone Device CA";

/// Everything scenarios need to mint certificates and attribute addresses.
pub struct World {
    pub plan: IpPlan,
    pub anchors: TrustAnchors,
    /// Public CAs by organization, in a fixed order.
    pub public_cas: Vec<PublicCa>,
    /// Campus private CAs (Education-category issuers).
    pub campus_user_ca: CertificateAuthority,
    pub campus_health_ca: CertificateAuthority,
    pub campus_vpn_ca: CertificateAuthority,
    pub campus_server_ca: CertificateAuthority,
    /// On-demand private CAs, keyed by issuer organization string.
    private_cas: RefCell<HashMap<String, CertificateAuthority>>,
    /// Reference time (start of study).
    pub start: Asn1Time,
}

/// Public CA roster: organization name and which root programs carry it.
const PUBLIC_CA_ROSTER: &[(&str, &[RootProgram])] = &[
    ("Let's Encrypt", &RootProgram::ALL),
    ("DigiCert Inc", &RootProgram::ALL),
    ("Sectigo Limited", &RootProgram::ALL),
    ("GoDaddy.com, Inc", &RootProgram::ALL),
    ("IdenTrust", &RootProgram::ALL),
    ("Amazon Trust Services", &RootProgram::ALL),
    (
        "Apple Inc.",
        &[
            RootProgram::Apple,
            RootProgram::Ccadb,
            RootProgram::MozillaNss,
        ],
    ),
    (
        "Microsoft Corporation",
        &[RootProgram::Microsoft, RootProgram::Ccadb],
    ),
    ("Entrust, Inc.", &RootProgram::ALL),
    // FNMT-RCM: the issuer behind every unidentifiable public-CA server CN
    // in the paper (§6.3.1). Only in CCADB here, still public.
    ("FNMT-RCM", &[RootProgram::Ccadb]),
    // Device-fleet CAs: public, with generator-recognizable issuer CNs.
    (
        AZURE_SPHERE_ISSUER,
        &[RootProgram::Microsoft, RootProgram::Ccadb],
    ),
    (
        APPLE_DEVICE_ISSUER,
        &[RootProgram::Apple, RootProgram::Ccadb],
    ),
];

impl World {
    /// Deterministically build the world from the config seed.
    pub fn build(config: &SimConfig, _rng: &mut impl Rng) -> World {
        let start = Asn1Time::from_ymd(2022, 5, 1);
        let mut anchors = TrustAnchors::new();
        let mut public_cas = Vec::new();
        for (org, programs) in PUBLIC_CA_ROSTER {
            let root = CertificateAuthority::new_root(
                format!("pub-root:{}:{}", org, config.seed).as_bytes(),
                DistinguishedName::builder()
                    .organization(*org)
                    .common_name(format!("{org} Root CA"))
                    .build(),
                start,
            );
            let intermediate = CertificateAuthority::new_intermediate(
                &root,
                format!("pub-int:{}:{}", org, config.seed).as_bytes(),
                DistinguishedName::builder()
                    .organization(*org)
                    .common_name(issuing_cn(org))
                    .build(),
                start,
            );
            anchors.add_to(programs, root.certificate());
            anchors.add_to(programs, intermediate.certificate());
            public_cas.push(PublicCa {
                org,
                root,
                intermediate,
            });
        }

        let campus = |seed: &str, org: &str, cn: &str| {
            CertificateAuthority::new_root(
                format!("campus:{}:{}", seed, config.seed).as_bytes(),
                DistinguishedName::builder()
                    .organization(org)
                    .common_name(cn)
                    .build(),
                start,
            )
        };

        World {
            plan: IpPlan::standard(),
            anchors,
            public_cas,
            campus_user_ca: campus("user", CAMPUS_ORG, "Campus User CA"),
            campus_health_ca: campus("health", CAMPUS_HEALTH_ORG, "Health System Device CA"),
            campus_vpn_ca: campus("vpn", CAMPUS_ORG, "Campus VPN CA"),
            campus_server_ca: campus("server", CAMPUS_ORG, "Campus Server CA"),
            private_cas: RefCell::new(HashMap::new()),
            start,
        }
    }

    /// The public CA with the given organization.
    pub fn public_ca(&self, org: &str) -> &PublicCa {
        self.public_cas
            .iter()
            .find(|c| c.org == org)
            .unwrap_or_else(|| panic!("unknown public CA {org}"))
    }

    /// A private CA for the given organization, created on first use.
    /// Deterministic per organization string. An empty `org` produces a CA
    /// whose name is completely empty (the *MissingIssuer* population).
    pub fn private_ca(&self, org: &str) -> CertificateAuthority {
        self.private_cas
            .borrow_mut()
            .entry(org.to_string())
            .or_insert_with(|| {
                let name = if org.is_empty() {
                    DistinguishedName::empty()
                } else {
                    DistinguishedName::builder().organization(org).build()
                };
                CertificateAuthority::new_root(format!("priv:{org}").as_bytes(), name, self.start)
            })
            .clone()
    }

    /// A private CA with an explicit CN as well as organization (Globus's
    /// issuer CN is "FXP DCAU Cert" in the paper).
    pub fn private_ca_with_cn(&self, org: &str, cn: &str) -> CertificateAuthority {
        let key = format!("{org}\u{0}{cn}");
        self.private_cas
            .borrow_mut()
            .entry(key.clone())
            .or_insert_with(|| {
                CertificateAuthority::new_root(
                    format!("priv-cn:{key}").as_bytes(),
                    DistinguishedName::builder()
                        .organization(org)
                        .common_name(cn)
                        .build(),
                    self.start,
                )
            })
            .clone()
    }

    /// Campus issuer organization strings (the analysis treats these as
    /// the campus CAs for user-account attribution and the Education
    /// category).
    pub fn campus_issuer_orgs(&self) -> Vec<String> {
        vec![CAMPUS_ORG.to_string(), CAMPUS_HEALTH_ORG.to_string()]
    }
}

/// A plausible issuing-CA CN per organization (matches the footnotes of the
/// paper's Table 5).
fn issuing_cn(org: &str) -> String {
    match org {
        "Let's Encrypt" => "R3".to_string(),
        "DigiCert Inc" => "GeoTrust TLS RSA CA G1".to_string(),
        "GoDaddy.com, Inc" => "GoDaddy Secure Certificate Authority - G2".to_string(),
        "IdenTrust" => "TrustID Server CA O1".to_string(),
        "Sectigo Limited" => "Sectigo RSA Domain Validation Secure Server CA".to_string(),
        other => format!("{other} TLS CA 1"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> World {
        let cfg = SimConfig::default();
        let mut rng = StdRng::seed_from_u64(0);
        World::build(&cfg, &mut rng)
    }

    #[test]
    fn public_cas_are_anchored() {
        let w = world();
        for ca in &w.public_cas {
            assert!(w.anchors.is_anchored(ca.root.certificate()), "{}", ca.org);
            assert!(
                w.anchors
                    .is_public_issuer(ca.intermediate.certificate().issuer()),
                "{}",
                ca.org
            );
        }
    }

    #[test]
    fn campus_cas_are_private() {
        let w = world();
        for ca in [
            &w.campus_user_ca,
            &w.campus_health_ca,
            &w.campus_vpn_ca,
            &w.campus_server_ca,
        ] {
            assert!(!w.anchors.is_anchored(ca.certificate()));
            assert!(!w.anchors.is_public_issuer(ca.name()));
        }
    }

    #[test]
    fn private_ca_cache_is_deterministic() {
        let w = world();
        let a = w.private_ca("Globus Online");
        let b = w.private_ca("Globus Online");
        assert_eq!(a.certificate().fingerprint(), b.certificate().fingerprint());
        let c = w.private_ca("GuardiCore");
        assert_ne!(a.certificate().fingerprint(), c.certificate().fingerprint());
    }

    #[test]
    fn empty_org_gives_missing_issuer() {
        let w = world();
        let ca = w.private_ca("");
        assert!(ca.name().is_empty());
    }

    #[test]
    fn lookup_known_public() {
        let w = world();
        assert_eq!(w.public_ca("DigiCert Inc").org, "DigiCert Inc");
        assert_eq!(
            w.public_ca("GoDaddy.com, Inc")
                .intermediate
                .name()
                .common_name(),
            Some("GoDaddy Secure Certificate Authority - G2")
        );
    }

    #[test]
    #[should_panic(expected = "unknown public CA")]
    fn unknown_public_panics() {
        world().public_ca("Nonexistent CA");
    }
}
