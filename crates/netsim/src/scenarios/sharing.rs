//! Certificate sharing (Tables 5 & 6, §5.2).
//!
//! Same-connection sharing: one certificate presented by *both* endpoints
//! (Table 5's named populations; the Globus FXP bulk lives in
//! `scenarios::serials`). Cross-connection sharing: certificates that act
//! as server certs in some connections and client certs in others, spread
//! over /24 subnets with the heavy-tailed quantiles of Table 6.

use crate::certgen::{hostname, random_alnum, MintSpec, Usage};
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::scenarios::{mtls_version, pick_weighted, ts_in_window};
use crate::targets;
use crate::world::World;
use mtls_x509::Certificate;
use mtls_zeek::Ipv4;
use rand::Rng;

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    same_connection(config, world, em, rng);
    cross_connection(config, world, em, rng);
}

fn same_connection(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    for row in targets::SHARING_ROWS {
        let n_clients = config.scaled(row.clients);
        // One shared certificate per population: this is the point.
        let validity = (world.start.add_days(-30), world.start.add_days(760));
        let (host, sni) = if row.sld.is_empty() {
            (None, None)
        } else {
            let h = hostname(rng, row.sld);
            (Some(h.clone()), Some(h))
        };
        let cert: Certificate = if row.public_issuer {
            let ca = &world.public_ca(row.issuer).intermediate;
            let h = host.clone().unwrap_or_else(|| "shared.example.com".into());
            let c = MintSpec::new(ca, validity.0, validity.1)
                .cn(h.clone())
                .san_dns(&[&h])
                .usage(Usage::Both)
                .mint(rng);
            em.submit_ct(&c);
            c
        } else {
            let ca = world.private_ca(row.issuer);
            MintSpec::new(&ca, validity.0, validity.1)
                .cn(host.clone().unwrap_or_else(|| random_alnum(rng, 10)))
                .usage(Usage::Both)
                .mint(rng)
        };

        let server_ip = if row.inbound {
            world.plan.servers.sample(rng)
        } else {
            world.plan.misc_external.sample(rng)
        };
        let port = if row.sld == "tablodash.com" {
            9093
        } else {
            443
        };
        for _ in 0..n_clients {
            let client_ip = if row.inbound {
                world.plan.external_clients.sample(rng)
            } else {
                world.plan.clients.sample(rng)
            };
            // A couple of connections per client inside the population's
            // duration-of-activity window.
            for _ in 0..rng.gen_range(1..=3) {
                let ts = ts_in_window(rng, row.duration_days);
                em.connection(
                    ConnSpec {
                        ts,
                        orig: client_ip,
                        resp: server_ip,
                        resp_port: port,
                        version: mtls_version(rng),
                        sni: sni.clone(),
                        server_chain: vec![&cert],
                        client_chain: vec![&cert],
                        established: true,
                        resumed: false,
                    },
                    rng,
                );
            }
        }
    }
}

/// Sample a subnet-spread count hitting Table 6's quantiles.
/// `client_role`: Client row (1 / 2 / 43 / 1851); else Server row
/// (1 / 1 / 7 / 217). Tail maxima are scaled.
fn spread_max(client_role: bool, config: &SimConfig) -> usize {
    if client_role {
        // Capped by the address plan (≤ 1 000 external /24s; paper 1,851).
        config.scaled(1_851).clamp(44, 1_000)
    } else {
        // ≤ 250 university /24s (paper 217).
        config.scaled(217).clamp(8, 250)
    }
}

fn subnet_spread(rng: &mut impl Rng, client_role: bool, config: &SimConfig) -> usize {
    let max = spread_max(client_role, config);
    let (head, mid, p99_tail, tail_share) = if client_role {
        // 50 % → 1, 25 % → 2, then up to the 43-at-p99 knee, with a small
        // far tail.
        (0.56, 0.26, 43usize, 0.004)
    } else {
        // 78 % → 1, then 2..=7 to the knee, a 0.5 % far tail.
        (0.80, 0.195, 7usize, 0.005)
    };
    let x: f64 = rng.gen();
    if x < head {
        1
    } else if x < head + mid {
        if client_role {
            2
        } else {
            rng.gen_range(2..=7)
        }
    } else if x < 1.0 - tail_share {
        if client_role {
            rng.gen_range(3..=p99_tail)
        } else {
            rng.gen_range(2..=7)
        }
    } else {
        rng.gen_range(p99_tail..=max)
    }
}

fn cross_connection(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    let n_certs = config.scaled(targets::CROSS_SHARED_CERTS);
    // §5.2.2 issuer mix: Let's Encrypt 51.58 %, DigiCert 14.34 %,
    // Sectigo 7.95 %, remainder private.
    let weights = [0.5158, 0.1434, 0.0795, 0.2613];
    let validity = (world.start.add_days(-30), world.start.add_days(760));

    // A small pooled client fleet for the server-role connections (so this
    // scenario does not flood the inbound client census), with the mixed
    // issuers Table 3's Third Party row shows.
    let pool: Vec<(mtls_zeek::Ipv4, Certificate)> = (0..config.scaled(20).max(2))
        .map(|i| {
            let cert = if i % 2 == 0 {
                let ca = &world.public_ca("Sectigo Limited").intermediate;
                MintSpec::new(ca, validity.0, validity.1)
                    .cn(hostname(rng, "partner-fleet.com"))
                    .usage(Usage::Client)
                    .mint(rng)
            } else {
                let ca = world.private_ca("AgentMesh");
                MintSpec::new(&ca, validity.0, validity.1)
                    .cn(random_alnum(rng, 12))
                    .mint(rng)
            };
            (world.plan.external_clients.sample(rng), cert)
        })
        .collect();

    for i in 0..n_certs {
        let which = pick_weighted(rng, &weights);
        let host = hostname(rng, "shared-svc.com");
        let cert = if which < 3 {
            let org = ["Let's Encrypt", "DigiCert Inc", "Sectigo Limited"][which];
            let ca = &world.public_ca(org).intermediate;
            let c = MintSpec::new(ca, validity.0, validity.1)
                .cn(host.clone())
                .san_dns(&[&host])
                .usage(Usage::Both)
                .mint(rng);
            em.submit_ct(&c);
            c
        } else {
            let ca = world.private_ca("MeshWorks");
            MintSpec::new(&ca, validity.0, validity.1)
                .cn(host.clone())
                .usage(Usage::Both)
                .mint(rng)
        };

        // As a server: the cert sits on hosts in `n_srv` distinct /24s.
        // The first certificate is the deterministic 100th-percentile
        // outlier (the paper's Table 6 maxima are single extremal certs).
        let n_srv = if i == 0 {
            spread_max(false, config)
        } else {
            subnet_spread(rng, false, config)
        };
        for s in 0..n_srv {
            let resp = Ipv4(world.plan.university.network.0 + ((s as u32 % 250) << 8) + 10);
            let client = &pool[rng.gen_range(0..pool.len())];
            em.connection(
                ConnSpec {
                    ts: ts_in_window(rng, 700),
                    orig: client.0,
                    resp,
                    resp_port: 443,
                    version: mtls_version(rng),
                    sni: Some(host.clone()),
                    server_chain: vec![&cert],
                    client_chain: vec![&client.1],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }

        // As a client: the cert roams across `n_cli` distinct /24s.
        let n_cli = if i == 1 {
            spread_max(true, config)
        } else {
            subnet_spread(rng, true, config)
        };
        let some_server_ca = world.private_ca("MeshWorks");
        let server = MintSpec::new(&some_server_ca, validity.0, validity.1)
            .cn(hostname(rng, "shared-svc.com"))
            .usage(Usage::Server)
            .mint(rng);
        let server_ip = world.plan.misc_external.sample(rng);
        for s in 0..n_cli {
            let orig = if s < 64 {
                Ipv4(world.plan.clients.network.0 + ((s as u32) << 8) + 20)
            } else {
                Ipv4(world.plan.external_clients.network.0 + (((s as u32 - 64) % 1_000) << 8) + 20)
            };
            em.connection(
                ConnSpec {
                    ts: ts_in_window(rng, 700),
                    orig,
                    resp: server_ip,
                    resp_port: 443,
                    version: mtls_version(rng),
                    sni: Some(server.subject().common_name().expect("cn set").to_string()),
                    server_chain: vec![&server],
                    client_chain: vec![&cert],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }
    }
}
