//! An SCT-stripping middlebox (§3.2 hardening).
//!
//! A site operator holds two certificates from the same public CA for the
//! same FQDN; only one was CT-logged. A middlebox on the path strips SCTs
//! and serves the *unlogged* twin — same issuer, same names, different
//! fingerprint. Bare issuer comparison cannot see anything wrong (the
//! issuer matches CT exactly); the verified filter's exact-FQDN stage
//! catches it: verified CT knows the precise host under this issuer, yet
//! the presented fingerprint was never logged.
//!
//! Counts are deliberately fixed (not scaled): they are planted ground
//! truth that integration tests assert exactly.

use crate::certgen::{MintSpec, Usage};
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::scenarios::{plainish_version, ts_in_window};
use crate::world::World;
use rand::Rng;

/// Connections served with the stripped (unlogged) twin certificate.
pub const STRIP_CONNS: usize = 5;
/// The victim FQDN. Its registered domain appears nowhere else in the
/// simulation, so exact-count assertions can key on it.
pub const STRIP_HOST: &str = "portal.strip-target.com";

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    if !config.include_sct_strip {
        return;
    }
    let ca = &world.public_ca("Let's Encrypt").intermediate;
    let nb = world.start.add_days(-10);
    let sld = "strip-target.com";
    // The legitimate, CT-logged certificate. It is never presented on the
    // wire — the middlebox always swaps in the twin.
    let logged = MintSpec::new(ca, nb, nb.add_days(100))
        .cn(STRIP_HOST)
        .san_dns(&[STRIP_HOST, sld])
        .usage(Usage::Server)
        .mint(rng);
    em.submit_ct(&logged);
    // Same CA, same names, fresh key/serial — and never logged.
    let twin = MintSpec::new(ca, nb, nb.add_days(100))
        .cn(STRIP_HOST)
        .san_dns(&[STRIP_HOST, sld])
        .usage(Usage::Server)
        .mint(rng);
    for _ in 0..STRIP_CONNS {
        em.connection(
            ConnSpec {
                ts: ts_in_window(rng, 700),
                orig: world.plan.nat.sample(rng),
                resp: world.plan.misc_external.sample(rng),
                resp_port: 443,
                version: plainish_version(rng),
                sni: Some(STRIP_HOST.to_string()),
                server_chain: vec![&twin],
                client_chain: vec![],
                established: true,
                resumed: false,
            },
            rng,
        );
    }
}
