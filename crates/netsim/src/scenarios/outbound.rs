//! Bulk outbound mutual TLS (Table 2's outbound column, Fig. 2's flows,
//! the Fig. 1 outbound series including the Rapid7 disappearance).

use crate::calendar::{self, Month};
use crate::certgen::{hostname, random_alnum, random_uuid, MintSpec, Usage};
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::ipplan::Block;
use crate::scenarios::{mtls_version, pick_weighted, spread_ts};
use crate::targets::{self, OutboundRow};
use crate::world::{World, APPLE_DEVICE_ISSUER, AZURE_SPHERE_ISSUER};
use mtls_x509::{Certificate, DistinguishedName};
use mtls_zeek::Ipv4;
use rand::Rng;

struct Server {
    ip: Ipv4,
    host: String,
    cert: Certificate,
}

/// Which provider block and public CA serve a given SLD.
fn provider(world: &World, sld: &str) -> (Block, &'static str) {
    match sld {
        "amazonaws.com" => (world.plan.aws, "Amazon Trust Services"),
        "rapid7.com" => (world.plan.rapid7, "DigiCert Inc"),
        "gpcloudservice.com" => (world.plan.gp_cloud, "Let's Encrypt"),
        "apple.com" => (world.plan.apple, "Apple Inc."),
        "azure.com" => (world.plan.microsoft, "Microsoft Corporation"),
        "mailrelay.com" => (world.plan.misc_external, "Let's Encrypt"),
        "cdn-metrics.com" => (world.plan.misc_external, "Sectigo Limited"),
        "partner-billing.com" => (world.plan.misc_external, "Entrust, Inc."),
        "edu-exchange.org" => (world.plan.misc_external, "Let's Encrypt"),
        _ => (world.plan.misc_external, "Let's Encrypt"),
    }
}

fn private_server_org(sld: &str) -> &'static str {
    match sld {
        "splunkcloud.com" => "Splunk",
        "fireboard.io" => "FireBoard Labs",
        "iot-telemetry.net" => "NimbusTelemetry",
        _ => "UnnamedBackend",
    }
}

fn build_servers(
    row: &OutboundRow,
    count: usize,
    world: &World,
    em: &mut Emitter,
    rng: &mut impl Rng,
) -> Vec<Server> {
    let validity = (world.start.add_days(-30), world.start.add_days(760));
    let (block, pub_org) = provider(world, row.sld);
    (0..count)
        .map(|_| {
            let ip = block.host(rng.gen_range(0..60_000));
            let host = hostname(rng, row.sld);
            let cert = if row.server_public {
                let ca = &world.public_ca(pub_org).intermediate;
                let cert = MintSpec::new(ca, validity.0, validity.1)
                    .cn(host.clone())
                    .san_dns(&[&host, row.sld])
                    .usage(Usage::Server)
                    .mint(rng);
                em.submit_ct(&cert); // public CAs log to CT
                cert
            } else {
                let ca = world.private_ca(private_server_org(row.sld));
                MintSpec::new(&ca, validity.0, validity.1)
                    .cn(host.clone())
                    .usage(Usage::Server)
                    .mint(rng)
            };
            Server { ip, host, cert }
        })
        .collect()
}

/// A client certificate for one of the four Fig. 2 issuer categories.
fn client_cert(
    which: usize,
    row: &OutboundRow,
    world: &World,
    em: &mut Emitter,
    rng: &mut impl Rng,
) -> Certificate {
    let validity = (world.start.add_days(-60), world.start.add_days(760));
    match which {
        0 => {
            // MissingIssuer — 37.84 % of outbound client certs (§4.2.2).
            let ca = world.private_ca("");
            MintSpec::new(&ca, validity.0, validity.1)
                .cn(em.quotas.generic_client_cn(rng))
                .issuer_override(DistinguishedName::empty())
                .mint(rng)
        }
        1 => {
            // Corporation: fleet agents with corporate private CAs.
            let orgs = [
                "Rapid7 Insight Agent CA",
                "Splunk Inc",
                "Honeywell International Inc",
                "Blue Ridge Instruments Inc",
                "Palo Alto Networks Inc",
            ];
            let ca = world.private_ca(orgs[rng.gen_range(0..orgs.len())]);
            MintSpec::new(&ca, validity.0, validity.1)
                .cn(em.quotas.generic_client_cn(rng))
                .usage(Usage::Client)
                .mint(rng)
        }
        2 => {
            // Others: unrecognizable private issuers.
            let orgs = [
                "AT&T Services",
                "Red Hat",
                "Samsung SDS",
                "AgentMesh",
                "telemetryd",
                "rcgen",
            ];
            let ca = world.private_ca(orgs[rng.gen_range(0..orgs.len())]);
            MintSpec::new(&ca, validity.0, validity.1)
                .cn(em.quotas.generic_client_cn(rng))
                .mint(rng)
        }
        _ => {
            // Public: the Table 8 client × public-CA population.
            public_client_cert(row, world, em, rng)
        }
    }
}

/// Public-CA client certificates: Azure Sphere random CNs, Apple device
/// UUIDs, Hybrid Runbook Worker, mail-ish domains, Webex, a few personal
/// names (§6.3.3).
fn public_client_cert(
    row: &OutboundRow,
    world: &World,
    em: &mut Emitter,
    rng: &mut impl Rng,
) -> Certificate {
    let validity = (world.start.add_days(-60), world.start.add_days(760));
    let (ca_org, cn): (&str, String) = match row.sld {
        "apple.com" => {
            // 60 % device-CA (issuer-recognizable), 40 % plain Apple
            // intermediate — the paper's UUID-with-uninformative-issuer
            // population (Table 9 client/public strlen=36).
            if rng.gen_bool(0.6) {
                (APPLE_DEVICE_ISSUER, random_uuid(rng))
            } else {
                ("Apple Inc.", random_uuid(rng))
            }
        }
        "azure.com" => {
            if rng.gen_bool(0.55) {
                (AZURE_SPHERE_ISSUER, random_alnum(rng, 20))
            } else {
                ("Microsoft Corporation", "Hybrid Runbook Worker".to_string())
            }
        }
        "mailrelay.com" => {
            let mail_hosts = ["smtp", "mx1", "mta-out", "mail"];
            (
                "DigiCert Inc",
                format!("{}.campus-main.edu", mail_hosts[rng.gen_range(0..4)]),
            )
        }
        _ => {
            // Misc public clients: Webex-ish domains, a few personal names.
            if em.quotas_public_personal_names > 0 {
                em.quotas_public_personal_names -= 1;
                ("Sectigo Limited", crate::certgen::person_name(rng))
            } else if rng.gen_bool(0.4) {
                (
                    "IdenTrust",
                    format!("endpoint{}.webex.com", rng.gen_range(0..50)),
                )
            } else {
                ("Entrust, Inc.", random_uuid(rng))
            }
        }
    };
    let ca = &world.public_ca(ca_org).intermediate;
    MintSpec::new(ca, validity.0, validity.1)
        .cn(cn)
        .usage(Usage::Client)
        .mint(rng)
}

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    let total = config.scaled(targets::OUTBOUND_MTLS_CONNS);
    let months = Month::study_months();

    for row in targets::OUTBOUND_ROWS {
        let n = ((total as f64) * row.frac).round() as usize;
        if n == 0 {
            continue;
        }
        let n_servers = (n / 400).clamp(1, 25);
        let servers = build_servers(row, n_servers, world, em, rng);

        // Pre-build a client fleet for this family: clients reuse their
        // certificate across connections.
        let n_clients = (n / 12).clamp(1, config.scaled(targets::OUTBOUND_CLIENT_POOL) / 4);
        let weights: Vec<f64> = row.client_mix.to_vec();
        let clients: Vec<(Ipv4, Certificate)> = (0..n_clients)
            .map(|_| {
                let ip = if rng.gen_bool(0.7) {
                    world.plan.nat.sample(rng)
                } else {
                    world.plan.clients.sample(rng)
                };
                let which = pick_weighted(rng, &weights);
                (ip, client_cert(which, row, world, em, rng))
            })
            .collect();

        // Spread over months; Rapid7 traffic ends after Oct 2023 (Fig. 1).
        let last_month = if row.ends_oct_2023 { 17 } else { 22 };
        let spread = calendar::spread_over_months(n, |i| {
            if i <= last_month {
                calendar::mtls_month_weight(i, false)
            } else {
                0.0
            }
        });
        for k in 0..n {
            let ts = spread_ts(rng, k, &spread, &months);
            let server = &servers[rng.gen_range(0..servers.len())];
            let client = &clients[rng.gen_range(0..clients.len())];
            em.connection(
                ConnSpec {
                    ts,
                    orig: client.0,
                    resp: server.ip,
                    resp_port: row.port,
                    version: mtls_version(rng),
                    sni: Some(server.host.clone()),
                    server_chain: vec![&server.cert],
                    client_chain: vec![&client.1],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }
    }
}
