//! Dummy-issuer populations (Table 4, Appendix B / Table 10, §5.1.1).
//!
//! Certificates keep the default organization strings their tooling ships
//! with ("Internet Widgits Pty Ltd" is OpenSSL's). Includes the v1 and
//! 1024-bit-RSA sub-populations the paper calls out, and the Table 10
//! connections where *both* endpoints present dummy-issued certificates.

use crate::certgen::{hostname, random_alnum, MintSpec, Usage};
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::scenarios::{mtls_version, ts_in_window};
use crate::targets::{self, DummySide};
use crate::world::World;
use mtls_x509::{Certificate, KeyAlgorithm, Version};
use mtls_zeek::Ipv4;
use rand::Rng;

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    plant_v1_and_weak_keys(world, em, rng);

    for row in targets::DUMMY_ROWS {
        let ca = world.private_ca(row.issuer);
        let validity = (world.start.add_days(-10), world.start.add_days(760));
        let n_servers = config.scaled(row.servers);
        let n_clients = config.scaled(row.clients);
        let n_conns = config.scaled(row.conns);

        // Server endpoints. For Client-side rows the server uses a normal
        // issuer; for Server/Both rows it uses the dummy issuer.
        let servers: Vec<(Ipv4, Option<String>, Certificate)> = (0..n_servers)
            .map(|_| {
                let sld = row.slds[rng.gen_range(0..row.slds.len())];
                let sni = if sld.is_empty() {
                    None
                } else {
                    Some(hostname(rng, sld))
                };
                let ip = if row.inbound {
                    world.plan.servers.sample(rng)
                } else {
                    world.plan.misc_external.sample(rng)
                };
                let cert = match row.side {
                    DummySide::Server | DummySide::Both => {
                        MintSpec::new(&ca, validity.0, validity.1)
                            .cn(sni.clone().unwrap_or_else(|| random_alnum(rng, 10)))
                            .org(row.issuer)
                            .usage(Usage::Server)
                            .mint(rng)
                    }
                    DummySide::Client => {
                        // Ordinary private server; the dummy is client-side.
                        let server_ca = world.private_ca("NodeRunner");
                        MintSpec::new(&server_ca, validity.0, validity.1)
                            .cn(sni.clone().unwrap_or_else(|| random_alnum(rng, 10)))
                            .mint(rng)
                    }
                };
                (ip, sni, cert)
            })
            .collect();

        // Client endpoints.
        let clients: Vec<(Ipv4, Certificate)> = (0..n_clients)
            .map(|_| {
                let ip = if row.inbound {
                    world.plan.external_clients.sample(rng)
                } else {
                    world.plan.clients.sample(rng)
                };
                let cert = match row.side {
                    DummySide::Client | DummySide::Both => {
                        MintSpec::new(&ca, validity.0, validity.1)
                            .cn(random_alnum(rng, 12))
                            .org(row.issuer)
                            .mint(rng)
                    }
                    DummySide::Server => {
                        // Ordinary private client; the dummy is server-side.
                        let client_ca = world.private_ca("");
                        MintSpec::new(&client_ca, validity.0, validity.1)
                            .cn(random_alnum(rng, 12))
                            .issuer_override(mtls_x509::DistinguishedName::empty())
                            .mint(rng)
                    }
                };
                (ip, cert)
            })
            .collect();

        // The Table 10 fireboard.io population has the longest duration of
        // activity (618 days); other rows are spread across the window.
        let duration = if row.side == DummySide::Both && row.slds == ["fireboard.io"] {
            618
        } else if row.side == DummySide::Both && row.slds == ["amazonaws.com"] {
            17
        } else if row.side == DummySide::Both {
            1
        } else {
            700
        };

        for _ in 0..n_conns {
            let ts = ts_in_window(rng, duration);
            let server = &servers[rng.gen_range(0..servers.len())];
            let client = &clients[rng.gen_range(0..clients.len())];
            em.connection(
                ConnSpec {
                    ts,
                    orig: client.0,
                    resp: server.0,
                    resp_port: 443,
                    version: mtls_version(rng),
                    sni: server.1.clone(),
                    server_chain: vec![&server.2],
                    client_chain: vec![&client.1],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }
    }
}

/// §5.1.1's sub-populations, planted verbatim at every scale: exactly 3
/// "Internet Widgits Pty Ltd" v1 client certificates (154 connection
/// tuples in the paper) and exactly 13 "Unspecified" clients with
/// 1024-bit RSA keys (83 tuples).
fn plant_v1_and_weak_keys(world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    let validity = (world.start.add_days(-10), world.start.add_days(760));
    let server_ca = world.private_ca("NodeRunner");
    let server = MintSpec::new(&server_ca, validity.0, validity.1)
        .cn(hostname(rng, "devboard.com"))
        .usage(Usage::Server)
        .mint(rng);
    let server_ip = world.plan.misc_external.sample(rng);

    fn emit<R: Rng>(
        cert: &Certificate,
        server: &Certificate,
        server_ip: Ipv4,
        world: &World,
        em: &mut Emitter,
        rng: &mut R,
    ) {
        let orig = world.plan.clients.sample(rng);
        for _ in 0..rng.gen_range(2..6) {
            em.connection(
                ConnSpec {
                    ts: ts_in_window(rng, 650),
                    orig,
                    resp: server_ip,
                    resp_port: 443,
                    version: mtls_zeek::TlsVersion::Tls12,
                    sni: Some(server.subject().common_name().expect("cn").to_string()),
                    server_chain: vec![server],
                    client_chain: vec![cert],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }
    }

    let widgits = world.private_ca("Internet Widgits Pty Ltd");
    for _ in 0..targets::DUMMY_V1_CERTS {
        let cert = MintSpec::new(&widgits, validity.0, validity.1)
            .cn(random_alnum(rng, 12))
            .org("Internet Widgits Pty Ltd")
            .version(Version::V1)
            .mint(rng);
        emit(&cert, &server, server_ip, world, em, rng);
    }
    let unspecified = world.private_ca("Unspecified");
    for _ in 0..targets::DUMMY_WEAK_RSA_CERTS {
        let cert = MintSpec::new(&unspecified, validity.0, validity.1)
            .cn(random_alnum(rng, 12))
            .org("Unspecified")
            .key(KeyAlgorithm::Rsa { bits: 1024 })
            .mint(rng);
        emit(&cert, &server, server_ip, world, em, rng);
    }
}
