//! Certificates with incorrect dates (Fig. 3, Tables 11–12, §5.3.1).
//!
//! `notBefore` does not precede `notAfter`; every connection still
//! establishes. The IDrive and SDS populations use inverted-date
//! certificates at *both* endpoints.

use crate::certgen::{hostname, random_alnum, MintSpec, Usage};
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::scenarios::{mtls_version, ts_in_window};
use crate::targets;
use crate::world::World;
use mtls_asn1::Asn1Time;
use mtls_x509::Certificate;
use rand::Rng;

/// Mid-year timestamps for the planted years; the ayoba row uses identical
/// timestamps for both fields (the one Fig. 3 exception).
fn year_ts(year: i32, identical_pair: bool) -> (Asn1Time, Asn1Time) {
    let t = Asn1Time::from_ymd(year, 6, 15);
    if identical_pair {
        (t, t)
    } else {
        (t, t.add_secs(3600))
    }
}

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    for row in targets::INCORRECT_DATES_ROWS {
        let ca = world.private_ca(row.issuer);
        let n_clients = config.scaled(row.clients);
        let identical = row.not_before_year == row.not_after_year;

        let (nb, _) = year_ts(row.not_before_year, identical);
        let (na, _) = if identical {
            (nb, nb)
        } else {
            year_ts(row.not_after_year, false)
        };

        // Server side: IDrive/SDS server rows carry inverted dates too;
        // otherwise a plain private server cert.
        let server_cert: Certificate = if !row.client_side {
            MintSpec::new(&ca, nb, na)
                .cn(if row.sld.is_empty() {
                    random_alnum(rng, 10)
                } else {
                    hostname(rng, row.sld)
                })
                .usage(Usage::Server)
                .mint(rng)
        } else {
            let sca = world.private_ca(row.issuer);
            MintSpec::new(&sca, world.start.add_days(-30), world.start.add_days(760))
                .cn(if row.sld.is_empty() {
                    random_alnum(rng, 10)
                } else {
                    hostname(rng, row.sld)
                })
                .usage(Usage::Server)
                .mint(rng)
        };
        let sni = if row.sld.is_empty() {
            None
        } else {
            server_cert.subject().common_name().map(str::to_owned)
        };
        let server_ip = world.plan.misc_external.sample(rng);

        for _ in 0..n_clients {
            let client_ip = world.plan.clients.sample(rng);
            // Client side: inverted dates when the row says so. For the
            // IDrive and SDS *server* rows the clients are inverted too —
            // Table 12's "incorrect dates at both endpoints".
            let both_ends =
                !row.client_side && (row.issuer.starts_with("IDrive") || row.issuer == "SDS");
            let client_cert = if row.client_side || both_ends {
                // The paired client population is issued a year earlier in
                // the IDrive case (2019 vs 2020), per Table 12.
                let (cnb, cna) = if both_ends && row.issuer.starts_with("IDrive") {
                    (
                        year_ts(row.not_before_year - 1, false).0,
                        year_ts(row.not_after_year - 1, false).0,
                    )
                } else {
                    (nb, na)
                };
                MintSpec::new(&ca, cnb, cna)
                    .cn(format!("device-{}", random_alnum(rng, 8)))
                    .usage(Usage::Client)
                    .mint(rng)
            } else {
                MintSpec::new(&ca, world.start.add_days(-30), world.start.add_days(760))
                    .cn(format!("device-{}", random_alnum(rng, 8)))
                    .usage(Usage::Client)
                    .mint(rng)
            };
            for _ in 0..rng.gen_range(1..=3) {
                em.connection(
                    ConnSpec {
                        ts: ts_in_window(rng, row.duration_days),
                        orig: client_ip,
                        resp: server_ip,
                        resp_port: 443,
                        version: mtls_version(rng),
                        sni: sni.clone(),
                        server_chain: vec![&server_cert],
                        client_chain: vec![&client_cert],
                        established: true, // the paper's headline concern
                        resumed: false,
                    },
                    rng,
                );
            }
        }
    }
}
