//! The WebRTC-style ephemeral population.
//!
//! Real-time media stacks mint a fresh self-signed certificate per session
//! on *both* peers, with CNs like "WebRTC", "twilio", "hangouts" — this is
//! what makes private CAs dominate the unique-certificate census (Table 1)
//! and "WebRTC" dominate the Org/Product rows of Table 8. Sessions ride
//! TURN-over-TLS relays (tcp/443) with no SNI.

use crate::certgen::{random_hex, sip_address, MintSpec};
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::scenarios::{mtls_spread, pick_weighted, spread_ts};
use crate::targets;
use crate::world::World;
use mtls_zeek::TlsVersion;
use rand::Rng;

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    let pairs = config.scaled(targets::WEBRTC_PAIRS);
    // Sessions ride a small TURN-relay fleet, not a fresh address each —
    // the paper's §3.3 observes that external mTLS *servers* concentrate
    // at a handful of cloud/security providers.
    let relays: Vec<mtls_zeek::Ipv4> = (0..config.scaled(40).max(2))
        .map(|_| {
            if rng.gen_bool(0.7) {
                world.plan.aws.sample(rng)
            } else {
                world.plan.gp_cloud.sample(rng)
            }
        })
        .collect();
    let (spread, months) = mtls_spread(pairs, false);
    let sip_quota_server = config.scaled(targets::SERVER_PRIVATE_SIP);
    let mut sip_left = sip_quota_server;

    for k in 0..pairs {
        let ts = spread_ts(rng, k, &spread, &months);
        // Ephemeral validity: around 30 days either side of the session,
        // like real DTLS stacks.
        let t0 = mtls_asn1::Asn1Time::from_unix(ts as i64);
        let validity = (t0.add_days(-1), t0.add_days(30));

        // Both peers self-issue. The issuer string is the generator name
        // itself (how these appear in the wild).
        let mix_weights: Vec<f64> = targets::WEBRTC_CN_MIX.iter().map(|(_, f)| *f).collect();
        let remainder = 1.0 - mix_weights.iter().sum::<f64>();
        let mut weights = mix_weights;
        weights.push(remainder);
        let pick = pick_weighted(rng, &weights);
        let (server_cn, client_cn): (String, String) = if pick < targets::WEBRTC_CN_MIX.len() {
            let base = targets::WEBRTC_CN_MIX[pick].0;
            (base.to_string(), base.to_string())
        } else if sip_left > 0 {
            // VoIP endpoints: SIP URIs in the CN (Table 8's SIP rows).
            sip_left -= 1;
            (sip_address(rng), sip_address(rng))
        } else {
            // Short hash CNs: Table 9's dominant 8-char server strings.
            (random_hex(rng, 8), random_hex(rng, 8))
        };

        let self_ca_server = world.private_ca_with_cn("WebRTC", &server_cn);
        let self_ca_client = world.private_ca_with_cn("WebRTC", &client_cn);
        let server_cert = MintSpec::new(&self_ca_server, validity.0, validity.1)
            .cn(server_cn)
            .org("WebRTC")
            .mint(rng);
        // A slice of stacks reuse one certificate for both peers — part of
        // Table 13's shared-certificate population.
        let client_cert = if rng.gen_bool(0.004) {
            server_cert.clone()
        } else {
            MintSpec::new(&self_ca_client, validity.0, validity.1)
                .cn(client_cn)
                .org("WebRTC")
                .mint(rng)
        };

        // Outbound: campus peer dials an external relay.
        let orig = world.plan.clients.sample(rng);
        let resp = relays[rng.gen_range(0..relays.len())];
        let conns = if rng.gen_bool(0.15) { 2 } else { 1 };
        for c in 0..conns {
            em.connection(
                ConnSpec {
                    ts: ts + c as f64 * 60.0,
                    orig,
                    resp,
                    resp_port: 443,
                    version: TlsVersion::Tls12,
                    sni: None,
                    server_chain: vec![&server_cert],
                    client_chain: vec![&client_cert],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }
    }
}
