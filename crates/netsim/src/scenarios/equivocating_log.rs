//! An equivocating CT log (§3.2 hardening).
//!
//! A middlebox vendor compromises the log endpoint the campus border
//! monitor queries: the view served *inside* the border carries fabricated
//! entries vouching for the proxy's certificates, while the external
//! monitor keeps seeing the honest log. The legacy bare-issuer comparison
//! is defeated — the campus CT view really does list the proxy issuer for
//! the intercepted domains — but the two vantage points' tree heads cannot
//! be proven consistent, so the gossip audit flags the split view and the
//! verified filter distrusts the fabricated entries, re-excluding the
//! proxy certificates.
//!
//! Counts are deliberately fixed (not scaled): they are planted ground
//! truth that integration tests assert exactly.

use crate::certgen::{hostname, MintSpec, Usage};
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::scenarios::{plainish_version, ts_in_window};
use crate::world::World;
use mtls_pki::ctlog::CtEntry;
use rand::Rng;

/// Proxy certificates minted by the colluding vendor.
pub const PROXY_CERTS: usize = 4;
/// Connections emitted per proxy certificate.
pub const CONNS_PER_CERT: usize = 3;
/// The colluding vendor's issuer organization.
pub const PROXY_ISSUER_ORG: &str = "GhostGate Inspection CA";

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    if !config.include_ct_equivocation {
        return;
    }
    // Domains whose *real* certificates are CT-logged by
    // `scenarios::nonmtls` — the same overlap requirement as
    // `scenarios::interception`, so the honest log genuinely knows these
    // names under public issuers.
    let slds = [
        "popular-video.com",
        "search-portal.com",
        "social-feed.com",
        "news-hub.org",
    ];
    let ca = world.private_ca(PROXY_ISSUER_ORG);
    let validity = (world.start.add_days(-10), world.start.add_days(760));

    let mut fork = Vec::new();
    for i in 0..PROXY_CERTS {
        let sld = slds[i % slds.len()];
        let host = hostname(rng, sld);
        let cert = MintSpec::new(&ca, validity.0, validity.1)
            .cn(host.clone())
            .san_dns(&[&host, sld])
            .usage(Usage::Server)
            .mint(rng);
        // The fabricated campus-view entries: CT "confirms" the proxy
        // issuer for both the exact host and the registered domain.
        let issuer = cert.issuer().to_display_string();
        let fp = cert.fingerprint().to_hex();
        for domain in [host.clone(), sld.to_string()] {
            fork.push(CtEntry {
                domain,
                issuer_display: issuer.clone(),
                fingerprint_hex: fp.clone(),
            });
        }
        for _ in 0..CONNS_PER_CERT {
            em.connection(
                ConnSpec {
                    ts: ts_in_window(rng, 700),
                    orig: world.plan.nat.sample(rng),
                    resp: world.plan.misc_external.sample(rng),
                    resp_port: 443,
                    version: plainish_version(rng),
                    sni: Some(host.clone()),
                    server_chain: vec![&cert],
                    client_chain: vec![],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }
    }
    em.plant_ct_fork(fork);
}
