//! Plain (non-mutual) TLS strata: Figure 1's denominator, Table 2's
//! right half, Table 14's certificate content, and the TLS 1.3 blind spot
//! (§3.3 — 40.86 % of connections log no certificates at all).

use crate::calendar::{self, Month};
use crate::certgen::{self, hostname, MintSpec, Usage};
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::scenarios::{pick_weighted, spread_ts};
use crate::targets;
use crate::world::World;
use mtls_x509::Certificate;
use mtls_zeek::{Ipv4, TlsVersion};
use rand::Rng;

/// Version mix for plain TLS, with the paper's 1.3 share.
fn plain_version(rng: &mut impl Rng) -> TlsVersion {
    match pick_weighted(rng, &[targets::TLS13_SHARE, 0.55, 0.03, 0.01]) {
        0 => TlsVersion::Tls13,
        1 => TlsVersion::Tls12,
        2 => TlsVersion::Tls11,
        _ => TlsVersion::Tls10,
    }
}

struct Site {
    ip: Ipv4,
    host: String,
    /// One certificate per ~90-day issuance epoch: real public CAs rotate
    /// (Let's Encrypt renews every 60–90 days), which is what makes the
    /// non-mTLS stratum dominate the unique-certificate census (Table 1).
    certs: Vec<Certificate>,
}

/// Issuance epoch of a timestamp (90-day windows from the study start).
fn epoch_of(ts: f64, start: f64) -> usize {
    (((ts - start) / 86_400.0 / 90.0).floor().max(0.0) as usize).min(7)
}

/// Table 14: private-CA server certificate content for non-mTLS.
fn private_server_cn(rng: &mut impl Rng, q: &mut Table14Quotas) -> String {
    if q.user_accounts > 0 {
        q.user_accounts -= 1;
        return certgen::user_account(rng);
    }
    if q.personal_names > 0 {
        q.personal_names -= 1;
        return certgen::person_name(rng);
    }
    if q.sip > 0 {
        q.sip -= 1;
        return certgen::sip_address(rng);
    }
    if q.localhost > 0 {
        q.localhost -= 1;
        return "localhost.localdomain".to_string();
    }
    // Table 14 private CN mix: Org/Product 73.56 %, Domain 13.27 %,
    // Unidentified 11.02 % (39 % of those non-random: 'hmpp', 'Dtls'…).
    match pick_weighted(rng, &[0.7356, 0.1327, 0.1102, 0.0215]) {
        0 => {
            ["WebRTC", "twilio", "hangouts", "Lenovo ThinkCentre"][rng.gen_range(0..4)].to_string()
        }
        1 => hostname(rng, "intranet-apps.net"),
        2 => {
            if rng.gen_bool(0.39) {
                ["hmpp", "Dtls", "__transfer__"][rng.gen_range(0..3)].to_string()
            } else {
                certgen::random_hex(rng, 32)
            }
        }
        _ => format!(
            "{}.{}.{}.{}",
            rng.gen_range(1..255),
            rng.gen_range(0..255),
            rng.gen_range(0..255),
            rng.gen_range(1..255)
        ),
    }
}

struct Table14Quotas {
    user_accounts: usize,
    personal_names: usize,
    sip: usize,
    localhost: usize,
}

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    if !config.include_non_mtls {
        return;
    }
    let mut quotas = Table14Quotas {
        user_accounts: config.scaled(3),
        personal_names: config.scaled(8),
        sip: config.scaled(26),
        localhost: config.scaled(6),
    };

    outbound(config, world, em, rng, &mut quotas);
    inbound(config, world, em, rng, &mut quotas);
}

#[allow(clippy::too_many_arguments)] // a scenario-local helper, not API
fn build_sites(
    n: usize,
    public_share: f64,
    inbound: bool,
    sld_pool: &[&str],
    world: &World,
    em: &mut Emitter,
    rng: &mut impl Rng,
    quotas: &mut Table14Quotas,
) -> Vec<Site> {
    (0..n)
        .map(|_| {
            let sld = sld_pool[rng.gen_range(0..sld_pool.len())];
            let host = hostname(rng, sld);
            let ip = if inbound {
                world.plan.servers.sample(rng)
            } else {
                world.plan.misc_external.sample(rng)
            };
            let certs: Vec<Certificate> = if rng.gen_bool(public_share) {
                // Public CA mix follows real market shape: LE-heavy, and
                // rotated every ~90 days.
                let orgs = [
                    "Let's Encrypt",
                    "Let's Encrypt",
                    "DigiCert Inc",
                    "Sectigo Limited",
                    "GoDaddy.com, Inc",
                    "Amazon Trust Services",
                ];
                let ca = &world
                    .public_ca(orgs[rng.gen_range(0..orgs.len())])
                    .intermediate;
                (0..8)
                    .map(|e| {
                        let nb = world.start.add_days(e * 90 - 10);
                        let c = MintSpec::new(ca, nb, nb.add_days(100))
                            .cn(host.clone())
                            .san_dns(&[&host, sld])
                            .usage(Usage::Server)
                            .mint(rng);
                        em.submit_ct(&c);
                        c
                    })
                    .collect()
            } else {
                // Private non-mTLS servers: the Table 14 population. They
                // rotate too (device firmware reissues), with the same CN.
                let ca =
                    world.private_ca(["NodeRunner", "intranet-ca", "DvTel"][rng.gen_range(0..3)]);
                let cn = private_server_cn(rng, quotas);
                let with_san = rng.gen_bool(0.105); // Table 14a: 10.54 %
                (0..8)
                    .map(|e| {
                        let nb = world.start.add_days(e * 90 - 10);
                        let mut spec = MintSpec::new(&ca, nb, nb.add_days(400)).cn(cn.clone());
                        if with_san {
                            let h2 = hostname(rng, "intranet-apps.net");
                            spec = spec.san_dns(&[&h2]);
                        }
                        spec.mint(rng)
                    })
                    .collect()
            };
            Site { ip, host, certs }
        })
        .collect()
}

fn outbound(
    config: &SimConfig,
    world: &World,
    em: &mut Emitter,
    rng: &mut impl Rng,
    quotas: &mut Table14Quotas,
) {
    let total = config.scaled(targets::NON_MTLS_OUTBOUND);
    // Table 2 non-mTLS outbound ports: 443 99.15 %, 993 0.44 %,
    // 8883 0.05 %, 25 0.04 %, 3128 0.03 %, tail 0.29 %.
    let ports: [(u16, f64); 6] = [
        (443, 0.9915),
        (993, 0.0044),
        (8883, 0.0005),
        (25, 0.0004),
        (3128, 0.0003),
        (8443, 0.0029),
    ];
    let slds = [
        "popular-video.com",
        "search-portal.com",
        "social-feed.com",
        "news-hub.org",
        "cdn-metrics.com",
        "shop-central.com",
        "apple.com",
        "azure.com",
        "mail-host.net",
        "stream-cdn.net",
        "git-forge.io",
        "docs-suite.com",
    ];
    let sites = build_sites(
        config.scaled(3_500),
        0.85,
        false,
        &slds,
        world,
        em,
        rng,
        quotas,
    );
    let months = Month::study_months();
    let spread = calendar::spread_over_months(total, calendar::non_mtls_month_weight);

    for k in 0..total {
        let ts = spread_ts(rng, k, &spread, &months);
        let site = &sites[rng.gen_range(0..sites.len())];
        let port = ports[pick_weighted(rng, &ports.map(|(_, w)| w))].0;
        let version = plain_version(rng);
        // Browsers resume aggressively: a quarter of cleartext repeat
        // visits are abbreviated handshakes showing no certificate.
        let resumed = version != TlsVersion::Tls13 && rng.gen_bool(0.25);
        em.connection(
            ConnSpec {
                ts,
                orig: if rng.gen_bool(0.8) {
                    world.plan.nat.sample(rng)
                } else {
                    world.plan.clients.sample(rng)
                },
                resp: site.ip,
                resp_port: port,
                version,
                sni: Some(site.host.clone()),
                server_chain: vec![&site.certs[epoch_of(ts, world.start.unix() as f64)]],
                client_chain: vec![],
                established: rng.gen_bool(0.97),
                resumed,
            },
            rng,
        );
    }
}

fn inbound(
    config: &SimConfig,
    world: &World,
    em: &mut Emitter,
    rng: &mut impl Rng,
    quotas: &mut Table14Quotas,
) {
    let total = config.scaled(targets::NON_MTLS_INBOUND);
    // Table 2 non-mTLS inbound: 443 85.18 %, 25 2.35 %, 33854 DvTel 2.26 %,
    // 8443 2.22 %, 52730 1.98 %, tail 6.01 %.
    let ports: [(u16, f64); 6] = [
        (443, 0.8518),
        (25, 0.0235),
        (33_854, 0.0226),
        (8443, 0.0222),
        (52_730, 0.0198),
        (9443, 0.0601),
    ];
    let slds = [
        "campus-main.edu",
        "univ-apps.com",
        "campus-health.org",
        "localorg-a.org",
    ];
    let sites = build_sites(
        config.scaled(2_200),
        0.80,
        true,
        &slds,
        world,
        em,
        rng,
        quotas,
    );
    let months = Month::study_months();
    let spread = calendar::spread_over_months(total, calendar::non_mtls_month_weight);

    for k in 0..total {
        let ts = spread_ts(rng, k, &spread, &months);
        let site = &sites[rng.gen_range(0..sites.len())];
        let port = ports[pick_weighted(rng, &ports.map(|(_, w)| w))].0;
        // DvTel and the unknown 52730 service hide behind private certs and
        // often no SNI.
        let sni = if port == 33_854 || port == 52_730 {
            None
        } else {
            Some(site.host.clone())
        };
        em.connection(
            ConnSpec {
                ts,
                orig: world.plan.external_clients.sample(rng),
                resp: site.ip,
                resp_port: port,
                version: plain_version(rng),
                sni,
                server_chain: vec![&site.certs[epoch_of(ts, world.start.unix() as f64)]],
                client_chain: vec![],
                established: rng.gen_bool(0.96),
                resumed: false,
            },
            rng,
        );
    }
}
