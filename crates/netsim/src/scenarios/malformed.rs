//! ParsEval-class malformed certificates planted into campus traffic.
//!
//! Real monitors see certificate blobs that are not valid DER — truncated
//! handshakes, buggy embedded stacks, fuzzing probes. Zeek logs the
//! connection either way and simply omits the x509 row; the pipeline must
//! do the same without crashing or corrupting analyzer counts. This
//! scenario is the end-to-end fixture for that path: it corrupts freshly
//! minted certificates with the deformity families the conformance
//! harness mutates (truncation, length corruption, indefinite lengths,
//! tag swaps, sign characters in time strings) and emits them through the
//! normal handshake machinery.
//!
//! Gated behind [`SimConfig::include_malformed`] and **off by default**:
//! `run` returns before touching `rng` when disabled, so the calibrated
//! default corpus stays bit-identical.

use crate::certgen::{random_alnum, MintSpec, Usage};
use crate::config::SimConfig;
use crate::emit::{Emitter, RawConnSpec};
use crate::scenarios::{mtls_version, ts_in_window};
use crate::targets;
use crate::world::World;
use mtls_x509::Certificate;
use rand::Rng;

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    if !config.include_malformed {
        return;
    }
    let ca = world.private_ca("Fieldbus Conformance Lab");
    let conns = config.scaled(targets::MALFORMED_CONNS);
    for k in 0..conns {
        let t0 = world.start.add_days(rng.gen_range(0..600));
        let server = MintSpec::new(&ca, t0, t0.add_days(90))
            .cn(format!("plc-{}.conformance-lab.net", random_alnum(rng, 6)))
            .usage(Usage::Server)
            .mint(rng);
        let client = MintSpec::new(&ca, t0, t0.add_days(90))
            .cn(format!("probe-{}", random_alnum(rng, 8)))
            .usage(Usage::Client)
            .mint(rng);
        // Alternate which side of the handshake carries the broken blob so
        // both intern paths (server and client chains) see parse failures.
        let (server_chain, client_chain) = if k % 2 == 0 {
            (
                vec![corrupt(server.to_der(), k, rng)],
                vec![client.to_der()],
            )
        } else {
            (
                vec![server.to_der()],
                vec![corrupt(client.to_der(), k, rng)],
            )
        };
        em.connection_raw(
            RawConnSpec {
                ts: ts_in_window(rng, 700),
                orig: world.plan.clients.sample(rng),
                resp: world.plan.servers.sample(rng),
                resp_port: 443,
                version: mtls_version(rng),
                sni: Some("plc-gw.conformance-lab.net".to_string()),
                server_chain,
                client_chain,
                established: true,
                resumed: false,
            },
            rng,
        );
    }
}

/// Apply one deformity, cycling through the families by connection index.
/// The result is guaranteed not to parse: a mutation that happens to
/// survive `Certificate::from_der` falls back to truncation.
fn corrupt(mut der: Vec<u8>, k: usize, rng: &mut impl Rng) -> Vec<u8> {
    match k % 6 {
        // Truncation: the outer length now overruns the buffer.
        0 => {
            let keep = rng.gen_range(4..der.len() / 2);
            der.truncate(keep);
        }
        // Length-field corruption: off-by-one in the outer SEQUENCE's last
        // length byte, so the declared and actual sizes disagree.
        1 => {
            let idx = if der[1] & 0x80 != 0 {
                1 + (der[1] & 0x7F) as usize
            } else {
                1
            };
            der[idx] = der[idx].wrapping_add(1);
        }
        // Indefinite length: legal BER, forbidden in DER.
        2 => der[1] = 0x80,
        // Tag swap: the outer SEQUENCE becomes a SET.
        3 => der[0] = 0x31,
        // Sign character in a time string — the exact bug class the time
        // parser's digit check covers. Validity dates minted here fall in
        // the UTCTime range, so the `17 0D` prefix is present.
        4 => {
            if let Some(i) = der.windows(2).position(|w| w == [0x17, 0x0D]) {
                der[i + 2] = b'+';
            }
        }
        // High-bit flip somewhere past the header; this one can survive
        // parsing (e.g. inside a string), in which case the fallback
        // below kicks in.
        _ => {
            let i = rng.gen_range(2..der.len());
            der[i] ^= 0x80;
        }
    }
    if Certificate::from_der(&der).is_ok() {
        der.truncate(der.len() / 2);
    }
    debug_assert!(
        Certificate::from_der(&der).is_err(),
        "deformity {} still parses",
        k % 6
    );
    der
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_deformity_family_fails_to_parse() {
        let config = SimConfig {
            scale: 0.05,
            include_malformed: true,
            ..SimConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let world = World::build(&config, &mut rng);
        let ca = world.private_ca("Fieldbus Conformance Lab");
        let t0 = world.start.add_days(10);
        for k in 0..24 {
            let cert = MintSpec::new(&ca, t0, t0.add_days(90))
                .cn(format!("unit-{k}"))
                .mint(&mut rng);
            let broken = corrupt(cert.to_der(), k, &mut rng);
            assert!(Certificate::from_der(&broken).is_err(), "k={k}");
        }
    }

    #[test]
    fn disabled_scenario_draws_no_rng() {
        let config = SimConfig {
            scale: 0.01,
            ..SimConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let world = World::build(&config, &mut rng);
        let mut em = crate::emit::Emitter::new(&config, &world);
        rng = StdRng::seed_from_u64(9);
        run(&config, &world, &mut em, &mut rng);
        // The RNG stream must be untouched when the gate is off.
        let mut fresh = StdRng::seed_from_u64(9);
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>());
        assert_eq!(em.connections(), 0);
    }
}
