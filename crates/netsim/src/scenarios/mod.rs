//! Scenario modules and shared helpers.
//!
//! Each scenario plants one family of phenomena from the paper; `lib.rs`
//! runs them in a fixed order. Scenarios communicate only through the
//! [`Emitter`](crate::emit::Emitter) and the shared world, so they can be
//! read (and calibrated) independently.

pub mod ct_gossip;
pub mod dates;
pub mod dummies;
pub mod equivocating_log;
pub mod expired;
pub mod inbound;
pub mod interception;
pub mod malformed;
pub mod nonmtls;
pub mod outbound;
pub mod privservers;
pub mod sct_strip;
pub mod serials;
pub mod sharing;
pub mod tunnel;
pub mod webrtc;

use crate::calendar::{self, Month};
use mtls_zeek::TlsVersion;
use rand::Rng;

/// Pick an index from a weight table.
pub fn pick_weighted(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Sample a cleartext TLS version for an mTLS-visible connection: mostly
/// 1.2 with a thin tail of legacy stacks.
pub fn mtls_version(rng: &mut impl Rng) -> TlsVersion {
    match pick_weighted(rng, &[0.955, 0.03, 0.015]) {
        0 => TlsVersion::Tls12,
        1 => TlsVersion::Tls11,
        _ => TlsVersion::Tls10,
    }
}

/// Version mix for non-mTLS traffic where the certificate must remain
/// visible (interception analysis needs to *see* the proxy cert).
pub fn plainish_version(rng: &mut impl Rng) -> TlsVersion {
    if rng.gen_bool(0.95) {
        TlsVersion::Tls12
    } else {
        TlsVersion::Tls11
    }
}

/// Sample a timestamp for item `k` of `n` spread over the study window
/// with the given per-month weighting.
pub fn spread_ts(rng: &mut impl Rng, k: usize, spread: &[usize], months: &[Month]) -> f64 {
    let mut acc = 0usize;
    for (i, &count) in spread.iter().enumerate() {
        acc += count;
        if k < acc {
            return months[i].sample_ts(rng);
        }
    }
    months[months.len() - 1].sample_ts(rng)
}

/// Monthly spread for a volume over the full window with mTLS growth.
pub fn mtls_spread(total: usize, inbound: bool) -> (Vec<usize>, Vec<Month>) {
    let months = Month::study_months();
    let spread = calendar::spread_over_months(total, |i| calendar::mtls_month_weight(i, inbound));
    (spread, months)
}

/// A timestamp uniform inside a window of `duration_days` starting at the
/// study start (for populations whose *duration of activity* the paper
/// reports).
pub fn ts_in_window(rng: &mut impl Rng, duration_days: i64) -> f64 {
    let start = Month {
        year: 2022,
        month: 5,
    }
    .start()
    .unix() as f64;
    let span = (duration_days.clamp(1, 700) as f64) * 86_400.0;
    start + rng.gen_range(0.0..span)
}

/// Quotas for CN/SAN content that must appear in client certificates
/// (Tables 8–9). Scenarios draw from the quotas until exhausted, then fall
/// back to issuer-recognizable random strings.
pub struct ContentQuotas {
    pub personal_names: usize,
    pub user_accounts: usize,
    pub sip: usize,
    pub email: usize,
    pub mac: usize,
    pub domain: usize,
    pub localhost: usize,
    pub lenovo: usize,
    pub android: usize,
    pub unidentified: usize,
    /// SAN quotas (client private SAN column of Table 8).
    pub san_personal_names: usize,
    pub san_domain: usize,
    pub san_random: usize,
}

impl ContentQuotas {
    /// Initialize from the scaled targets.
    pub fn new(config: &crate::config::SimConfig) -> ContentQuotas {
        use crate::targets as t;
        ContentQuotas {
            personal_names: config.scaled(t::CLIENT_PRIVATE_PERSONAL_NAMES),
            user_accounts: config.scaled(t::CLIENT_PRIVATE_USER_ACCOUNTS),
            sip: config.scaled(t::CLIENT_PRIVATE_SIP),
            email: config.scaled(t::CLIENT_PRIVATE_EMAIL),
            mac: config.scaled(t::CLIENT_PRIVATE_MAC),
            domain: config.scaled(t::CLIENT_PRIVATE_DOMAIN),
            localhost: config.scaled(t::CLIENT_PRIVATE_LOCALHOST),
            lenovo: config.scaled(t::CLIENT_PRIVATE_LENOVO),
            android: config.scaled(t::CLIENT_PRIVATE_ANDROID),
            unidentified: config.scaled(t::CLIENT_PRIVATE_UNIDENTIFIED),
            san_personal_names: config.scaled(20),
            san_domain: config.scaled(30),
            san_random: config.scaled(80),
        }
    }

    fn take(counter: &mut usize) -> bool {
        if *counter > 0 {
            *counter -= 1;
            true
        } else {
            false
        }
    }

    /// CN for a campus-CA-issued (Education) client certificate: personal
    /// names and user accounts live here (the paper: 93 % of personal-name
    /// certs come from campus CAs).
    pub fn campus_client_cn(&mut self, rng: &mut impl Rng) -> String {
        use crate::certgen as g;
        if Self::take(&mut self.user_accounts) {
            return g::user_account(rng);
        }
        if Self::take(&mut self.personal_names) {
            return g::person_name(rng);
        }
        // Issuer-recognizable random device ids (Table 9 "by Issuer").
        g::random_alnum(rng, 16)
    }

    /// CN for a non-campus private client certificate (corporate fleets,
    /// missing-issuer agents, IoT).
    pub fn generic_client_cn(&mut self, rng: &mut impl Rng) -> String {
        use crate::certgen as g;
        if Self::take(&mut self.mac) {
            return g::mac_address(rng);
        }
        if Self::take(&mut self.sip) {
            return g::sip_address(rng);
        }
        if Self::take(&mut self.email) {
            return g::email_address(rng);
        }
        if Self::take(&mut self.domain) {
            return g::hostname(rng, "fleet-devices.net");
        }
        if Self::take(&mut self.localhost) {
            return "localhost".to_string();
        }
        if Self::take(&mut self.lenovo) {
            return format!("Lenovo ThinkPad {}", g::random_alnum(rng, 4).to_uppercase());
        }
        if Self::take(&mut self.android) {
            return "Android Keystore".to_string();
        }
        // Everything else is unidentified; both the explicit quota and the
        // unlimited fallback follow Table 9's client mix.
        Self::take(&mut self.unidentified);
        {
            let mix = crate::targets::UNIDENT_CLIENT_MIX;
            let weights: Vec<f64> = mix.iter().map(|(f, _)| *f).collect();
            match mix[pick_weighted(rng, &weights)].1 {
                "nonrandom" => {
                    ["__transfer__", "Dtls", "hmpp", "edge node"][rng.gen_range(0..4)].to_string()
                }
                "len8" => g::random_hex(rng, 8),
                "len32" => g::random_hex(rng, 32),
                "len36" => g::random_uuid(rng),
                // "byissuer" strings are random too; their distinguishing
                // feature is the issuer, which the caller controls.
                _ => {
                    let len = rng.gen_range(10..24);
                    g::random_alnum(rng, len)
                }
            }
        }
    }

    /// Optional SAN content for a campus client certificate.
    pub fn campus_client_san(&mut self, rng: &mut impl Rng) -> Vec<mtls_x509::GeneralName> {
        use crate::certgen as g;
        use mtls_x509::GeneralName;
        if Self::take(&mut self.san_personal_names) {
            vec![GeneralName::Dns(g::person_name(rng))]
        } else if Self::take(&mut self.san_domain) {
            vec![GeneralName::Dns(g::hostname(rng, "campus-main.edu"))]
        } else if Self::take(&mut self.san_random) {
            vec![GeneralName::Dns(g::random_hex(rng, 32))]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pick_weighted_respects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let i = pick_weighted(&mut rng, &[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn mtls_versions_are_cleartext() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            assert!(mtls_version(&mut rng).certs_visible());
        }
    }

    #[test]
    fn quotas_exhaust_then_fall_back() {
        let cfg = crate::config::SimConfig {
            scale: 0.05,
            ..Default::default()
        };
        let mut q = ContentQuotas::new(&cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let mut accounts = 0;
        let mut names = 0;
        for _ in 0..500 {
            let cn = q.campus_client_cn(&mut rng);
            if mtls_classify::matchers::is_user_account(&cn) {
                accounts += 1;
            } else if cn.contains(' ') {
                names += 1;
            }
        }
        assert!(accounts >= 1, "user-account quota consumed");
        assert!(names >= 1, "personal-name quota consumed");
        assert_eq!(q.user_accounts, 0);
        assert_eq!(q.personal_names, 0);
    }

    #[test]
    fn ts_in_window_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let start = Month {
            year: 2022,
            month: 5,
        }
        .start()
        .unix() as f64;
        for days in [1i64, 100, 700, 9999] {
            for _ in 0..20 {
                let ts = ts_in_window(&mut rng, days);
                assert!(ts >= start);
                assert!(ts <= start + 700.0 * 86_400.0);
            }
        }
    }
}
