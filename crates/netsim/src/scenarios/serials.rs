//! Dummy serial-number collisions (§5.1.2).
//!
//! * Globus FXP: 14-day certificates, serial `00`, issuer "Globus Online" /
//!   CN "FXP DCAU Cert", SNI literally "FXP DCAU Cert", the *same*
//!   certificate presented by both endpoints of each transfer connection
//!   (this is also the bulk of Table 5's same-connection sharing).
//! * ViptelaClient: every certificate — client- or server-side — carries
//!   serial `024680` with sub-15-day validity (Local Organization servers).
//! * GuardiCore: all client certs serial `01`, all server certs `03E8`,
//!   missing SNI, > 2-year validity, persists the whole study.
//! * Small `01`/`02`/`03` collision populations at Local Organization.

use crate::certgen::{random_alnum, MintSpec, Serial, Usage};
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::scenarios::mtls_version;
use crate::targets;
use crate::world::World;
use mtls_zeek::{Ipv4, TlsVersion};
use rand::Rng;

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    globus_fxp(config, world, em, rng, /*inbound=*/ true);
    globus_fxp(config, world, em, rng, /*inbound=*/ false);
    viptela(config, world, em, rng);
    guardicore(config, world, em, rng);
    localorg_small_collisions(config, world, em, rng);
}

fn globus_fxp(
    config: &SimConfig,
    world: &World,
    em: &mut Emitter,
    rng: &mut impl Rng,
    inbound: bool,
) {
    let ca = world.private_ca_with_cn("Globus Online", "FXP DCAU Cert");
    let clients = config.scaled(if inbound {
        targets::GLOBUS_FXP_INBOUND_CLIENTS
    } else {
        targets::GLOBUS_FXP_OUTBOUND_CLIENTS
    });
    let lifetime = targets::GLOBUS_CERT_LIFETIME_DAYS;
    let study_days = 700i64;

    for c in 0..clients {
        let client_ip = if inbound {
            world.plan.external_clients.sample(rng)
        } else {
            world.plan.clients.sample(rng)
        };
        let server_ip = if inbound {
            world.plan.servers.sample(rng)
        } else {
            world.plan.misc_external.sample(rng)
        };
        // Reissue every 14 days for the whole window; each period's cert is
        // used on BOTH endpoints of 1–3 transfer connections.
        let mut day = (c as i64) % lifetime; // stagger issuance
        while day < study_days {
            let t0 = world.start.add_days(day);
            let cert = MintSpec::new(&ca, t0, t0.add_days(lifetime))
                .cn(format!("transfer-{}", random_alnum(rng, 8)))
                .serial(Serial::Fixed(vec![0x00]))
                .usage(Usage::Both)
                .mint(rng);
            let conns = rng.gen_range(1..=3);
            for _ in 0..conns {
                let ts = t0.unix() as f64 + rng.gen_range(0.0..(lifetime as f64) * 86_400.0);
                em.connection(
                    ConnSpec {
                        ts,
                        orig: client_ip,
                        resp: server_ip,
                        resp_port: rng.gen_range(50_000..=51_000),
                        version: TlsVersion::Tls12,
                        sni: Some("FXP DCAU Cert".to_string()),
                        server_chain: vec![&cert],
                        client_chain: vec![&cert],
                        established: true,
                        resumed: false,
                    },
                    rng,
                );
            }
            day += lifetime;
        }
    }
}

fn viptela(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    let ca = world.private_ca("ViptelaClient");
    let clients = config.scaled(targets::VIPTELA_CLIENTS);
    let server_ip = world.plan.servers.sample(rng);
    let serial = Serial::Fixed(vec![0x02, 0x46, 0x80]);

    // Pre-mint a small server fleet, also serial 024680, short validity.
    let servers: Vec<_> = (0..config.scaled(6).max(1))
        .map(|_| {
            let t0 = world.start.add_days(rng.gen_range(0..690));
            MintSpec::new(&ca, t0, t0.add_days(rng.gen_range(7..15)))
                .cn(format!("vedge-{}", random_alnum(rng, 6)))
                .serial(serial.clone())
                .usage(Usage::Both)
                .mint(rng)
        })
        .collect();

    for _ in 0..clients {
        let client_ip = world.plan.external_clients.sample(rng);
        let t0 = world.start.add_days(rng.gen_range(0..690));
        let cert = MintSpec::new(&ca, t0, t0.add_days(rng.gen_range(7..15)))
            .cn(format!("vclient-{}", random_alnum(rng, 6)))
            .serial(serial.clone())
            .usage(Usage::Both)
            .mint(rng);
        let server = &servers[rng.gen_range(0..servers.len())];
        for _ in 0..rng.gen_range(2..6) {
            let ts = t0.unix() as f64 + rng.gen_range(0.0..7.0 * 86_400.0);
            em.connection(
                ConnSpec {
                    ts,
                    orig: client_ip,
                    resp: server_ip,
                    resp_port: 443,
                    version: mtls_version(rng),
                    sni: Some("sdwan.mesh-relay.net".to_string()),
                    server_chain: vec![server],
                    client_chain: vec![&cert],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }
    }
}

fn guardicore(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    let ca = world.private_ca("GuardiCore");
    // Planted near-verbatim: this population is small and fully described.
    let n_clients = config.scaled(targets::GUARDICORE_CLIENT_CERTS);
    let n_servers = config.scaled(targets::GUARDICORE_SERVER_CERTS);
    let n_conns = config.scaled(targets::GUARDICORE_CONNS);

    let validity = (world.start.add_days(-30), world.start.add_days(830)); // > 2 years
    let client_certs: Vec<_> = (0..n_clients)
        .map(|_| {
            MintSpec::new(&ca, validity.0, validity.1)
                .cn(format!("gc-agent-{}", random_alnum(rng, 8)))
                .serial(Serial::Fixed(vec![0x01]))
                .usage(Usage::Client)
                .mint(rng)
        })
        .collect();
    let server_certs: Vec<_> = (0..n_servers)
        .map(|_| {
            MintSpec::new(&ca, validity.0, validity.1)
                .cn(format!("gc-aggregator-{}", random_alnum(rng, 8)))
                .serial(Serial::Fixed(vec![0x03, 0xE8]))
                .usage(Usage::Server)
                .mint(rng)
        })
        .collect();

    let client_ips: Vec<Ipv4> = (0..n_clients.max(1))
        .map(|_| world.plan.clients.sample(rng))
        .collect();
    // GuardiCore aggregators are SaaS endpoints — cloud-hosted.
    let server_ips: Vec<Ipv4> = (0..4).map(|_| world.plan.aws.sample(rng)).collect();

    for k in 0..n_conns {
        // Persist across the whole study window.
        let day = (k as i64 * 700) / n_conns.max(1) as i64;
        let ts = world.start.add_days(day).unix() as f64 + rng.gen_range(0.0..86_400.0);
        let ci = rng.gen_range(0..client_certs.len().max(1));
        em.connection(
            ConnSpec {
                ts,
                orig: client_ips[ci % client_ips.len()],
                resp: server_ips[rng.gen_range(0..server_ips.len())],
                resp_port: 443,
                version: TlsVersion::Tls12,
                sni: None,
                server_chain: vec![&server_certs[rng.gen_range(0..server_certs.len())]],
                client_chain: vec![&client_certs[ci]],
                established: true,
                resumed: false,
            },
            rng,
        );
    }
}

/// Serials 01/02/03 colliding within one Local Organization issuer.
fn localorg_small_collisions(
    config: &SimConfig,
    world: &World,
    em: &mut Emitter,
    rng: &mut impl Rng,
) {
    let ca = world.private_ca("Riverside Network Cooperative");
    let server_ip = world.plan.servers.sample(rng);
    for (serial_byte, n) in [(0x01u8, 14usize), (0x02, 9), (0x03, 7)] {
        let n = config.scaled(n);
        let t0 = world.start.add_days(rng.gen_range(0..600));
        let server = MintSpec::new(&ca, t0, t0.add_days(14))
            .cn("gw.localorg-a.org")
            .serial(Serial::Fixed(vec![serial_byte]))
            .usage(Usage::Both)
            .mint(rng);
        for _ in 0..n {
            let cert = MintSpec::new(&ca, t0, t0.add_days(rng.gen_range(7..15)))
                .cn(format!("lo-device-{}", random_alnum(rng, 6)))
                .serial(Serial::Fixed(vec![serial_byte]))
                .usage(Usage::Client)
                .mint(rng);
            let ts = t0.unix() as f64 + rng.gen_range(0.0..7.0 * 86_400.0);
            em.connection(
                ConnSpec {
                    ts,
                    orig: world.plan.external_clients.sample(rng),
                    resp: server_ip,
                    resp_port: 443,
                    version: mtls_version(rng),
                    sni: Some("gw.localorg-a.org".to_string()),
                    server_chain: vec![&server],
                    client_chain: vec![&cert],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }
    }
}
