//! CT gossip vantage point (§3.2 hardening).
//!
//! The campus border monitor periodically fetches a signed tree head from
//! the CT log it audits. This scenario records one such mid-run fetch —
//! the log is still growing, so the recorded tree size is strictly smaller
//! than the final heads minted in [`Emitter::finish`], and the emitted
//! gossip bundle carries a genuine consistency proof even on a clean
//! corpus. The scenario consumes **no randomness**: running it must leave
//! every downstream scenario's record stream bit-identical.

use crate::config::SimConfig;
use crate::emit::Emitter;
use crate::world::World;
use rand::Rng;

/// Run the scenario.
pub fn run(_config: &SimConfig, _world: &World, em: &mut Emitter, _rng: &mut impl Rng) {
    em.observe_campus_sth();
}
