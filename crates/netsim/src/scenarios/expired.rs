//! Expired client certificates in successfully established connections
//! (Fig. 5, §5.3.3) plus the extreme-validity populations of Fig. 4
//! (§5.3.2): 10 000–40 000-day client certs and the single 83 432-day
//! outlier associated with tmdxdev.com.

use crate::certgen::random_uuid;
use crate::certgen::{hostname, random_alnum, MintSpec, Usage};
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::scenarios::{mtls_version, pick_weighted, ts_in_window};
use crate::targets;
use crate::world::{World, APPLE_DEVICE_ISSUER};
use mtls_x509::DistinguishedName;
use rand::Rng;

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    expired_outbound_cluster(config, world, em, rng);
    expired_inbound(config, world, em, rng);
    long_validity(config, world, em, rng);
}

/// Fig. 5b: the tight cluster — Apple-issued client certs, expired about
/// 1 000 days at first observation, talking to apple.com; plus two
/// Microsoft ones (azure.com / azure-automation.net).
fn expired_outbound_cluster(
    config: &SimConfig,
    world: &World,
    em: &mut Emitter,
    rng: &mut impl Rng,
) {
    let apple_ca = &world.public_ca(APPLE_DEVICE_ISSUER).intermediate;
    // Planted verbatim (already 1/10 of the paper's 337); the cluster must
    // dominate the two Microsoft certs at every scale.
    let n_apple = targets::EXPIRED_APPLE_CLIENTS;
    let _ = config;
    let server_ca = &world.public_ca("Apple Inc.").intermediate;
    let server_host = "gs.apple.com".to_string();
    let server_cert = MintSpec::new(
        server_ca,
        world.start.add_days(-30),
        world.start.add_days(760),
    )
    .cn(server_host.clone())
    .san_dns(&[&server_host])
    .usage(Usage::Server)
    .mint(rng);
    em.submit_ct(&server_cert);
    let server_ip = world.plan.apple.sample(rng);

    for _ in 0..n_apple {
        // Expired ~1000 days before the study starts (±90).
        let expiry = world.start.add_days(-(1_000 + rng.gen_range(-90..90)));
        let cert = MintSpec::new(apple_ca, expiry.add_days(-365), expiry)
            .cn(random_uuid(rng))
            .usage(Usage::Client)
            .mint(rng);
        let client_ip = world.plan.nat.sample(rng);
        let duration = rng.gen_range(30..700);
        for _ in 0..rng.gen_range(2..6) {
            em.connection(
                ConnSpec {
                    ts: ts_in_window(rng, duration),
                    orig: client_ip,
                    resp: server_ip,
                    resp_port: 443,
                    version: mtls_version(rng),
                    sni: Some(server_host.clone()),
                    server_chain: vec![&server_cert],
                    client_chain: vec![&cert],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }
    }

    // The two Microsoft certificates.
    let ms_ca = &world.public_ca("Microsoft Corporation").intermediate;
    for (i, sld) in ["azure.com", "azure-automation.net"]
        .iter()
        .enumerate()
        .take(targets::EXPIRED_MICROSOFT_CLIENTS)
    {
        let expiry = world.start.add_days(-(1_000 + i as i64 * 13));
        let cert = MintSpec::new(ms_ca, expiry.add_days(-365), expiry)
            .cn("Hybrid Runbook Worker")
            .usage(Usage::Client)
            .mint(rng);
        let host = hostname(rng, sld);
        let server_cert =
            MintSpec::new(ms_ca, world.start.add_days(-30), world.start.add_days(760))
                .cn(host.clone())
                .san_dns(&[&host])
                .usage(Usage::Server)
                .mint(rng);
        em.submit_ct(&server_cert);
        for _ in 0..5 {
            em.connection(
                ConnSpec {
                    ts: ts_in_window(rng, 400),
                    orig: world.plan.nat.sample(rng),
                    resp: world.plan.microsoft.sample(rng),
                    resp_port: 443,
                    version: mtls_version(rng),
                    sni: Some(host.clone()),
                    server_chain: vec![&server_cert],
                    client_chain: vec![&cert],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }
    }
}

/// A campus-issued server for one inbound association.
fn mk_server(world: &World, sld: &str, rng: &mut impl Rng) -> (String, mtls_x509::Certificate) {
    let host = hostname(rng, sld);
    let cert = MintSpec::new(
        &world.campus_server_ca,
        world.start.add_days(-30),
        world.start.add_days(760),
    )
    .cn(host.clone())
    .usage(Usage::Server)
    .mint(rng);
    (host, cert)
}

/// Fig. 5a: inbound expired client certs, broadly scattered; server
/// associations VPN 45.83 %, Local Organization 32.79 %, Third Party
/// 15.38 %, other 6 %.
fn expired_inbound(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    let n = config.scaled(targets::EXPIRED_INBOUND_TOTAL);
    // Deterministic proportional allocation (Fig. 5a's mix survives any
    // scale): VPN 45.83 %, Local Organization 32.79 %, Third Party 15.38 %.
    let shares = [0.4583, 0.3279, 0.1538, 0.06];
    let mut alloc = [0usize; 4];
    let mut assigned = 0usize;
    let mut acc = 0.0;
    for (i, share) in shares.iter().enumerate() {
        acc += share / shares.iter().sum::<f64>();
        let target = ((acc * n as f64).round() as usize).min(n);
        alloc[i] = target - assigned;
        assigned = target;
    }

    // One server per association.
    let vpn = mk_server(world, "campus-vpn.net", rng);
    let localorg = mk_server(world, "localorg-a.org", rng);
    let thirdparty = mk_server(world, "vendor-cloud.com", rng);
    let other = mk_server(world, "campus-main.edu", rng);

    let order: Vec<usize> = alloc
        .iter()
        .enumerate()
        .flat_map(|(i, &count)| std::iter::repeat_n(i, count))
        .collect();
    for which in order {
        let (host, server_cert, server_ip) = match which {
            0 => (&vpn.0, &vpn.1, world.plan.vpn.sample(rng)),
            1 => (&localorg.0, &localorg.1, world.plan.servers.sample(rng)),
            2 => (&thirdparty.0, &thirdparty.1, world.plan.servers.sample(rng)),
            _ => (&other.0, &other.1, world.plan.servers.sample(rng)),
        };
        // Broad expiry scatter: 10–1400 days expired at first observation,
        // mixed public/private issuers (Fig. 5a marginals).
        let expired_days = rng.gen_range(10..1_400);
        let expiry = world.start.add_days(-expired_days);
        let cert = if rng.gen_bool(0.35) {
            let pub_ca = &world.public_cas[rng.gen_range(0..6)].intermediate;
            MintSpec::new(pub_ca, expiry.add_days(-730), expiry)
                .cn(hostname(rng, "fleet-devices.net"))
                .usage(Usage::Client)
                .mint(rng)
        } else {
            let ca = world.private_ca("");
            MintSpec::new(&ca, expiry.add_days(-730), expiry)
                .cn(random_alnum(rng, 12))
                .issuer_override(DistinguishedName::empty())
                .mint(rng)
        };
        let client_ip = world.plan.external_clients.sample(rng);
        let duration = rng.gen_range(1..700);
        for _ in 0..rng.gen_range(1..4) {
            em.connection(
                ConnSpec {
                    ts: ts_in_window(rng, duration),
                    orig: client_ip,
                    resp: server_ip,
                    resp_port: 443,
                    version: mtls_version(rng),
                    sni: Some(host.clone()),
                    server_chain: vec![server_cert],
                    client_chain: vec![&cert],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }
    }
}

/// Fig. 4's extremes: 10 000–40 000-day client certs (issuers: empty
/// 45.73 %, corporations 37.58 %, dummy 7.61 %, rest others) and the
/// 83 432-day tmdxdev.com outlier.
fn long_validity(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    let n = config.scaled(targets::VERY_LONG_VALIDITY_CLIENTS);
    let issuer_weights = [0.4573, 0.3758, 0.0761, 0.0908];

    let server_ca = &world.public_ca("Let's Encrypt").intermediate;
    // TLD mix of these certs: com 32.84 %, net 35.38 %, missing SNI 28.06 %.
    let slds = ["legacy-scada.com", "plant-metrics.net", ""];
    let sld_weights = [0.3284, 0.3538, 0.2806];

    for _ in 0..n {
        let which = pick_weighted(rng, &issuer_weights);
        let nb = world.start.add_days(-rng.gen_range(100..3_000));
        let na = nb.add_days(rng.gen_range(10_000..40_000));
        let cert = match which {
            0 => {
                let ca = world.private_ca("");
                MintSpec::new(&ca, nb, na)
                    .cn(random_alnum(rng, 12))
                    .issuer_override(DistinguishedName::empty())
                    .mint(rng)
            }
            1 => {
                let ca = world.private_ca("Blue Ridge Instruments Inc");
                MintSpec::new(&ca, nb, na)
                    .cn(random_alnum(rng, 12))
                    .mint(rng)
            }
            2 => {
                let ca = world.private_ca("Internet Widgits Pty Ltd");
                MintSpec::new(&ca, nb, na)
                    .cn(random_alnum(rng, 12))
                    .org("Internet Widgits Pty Ltd")
                    .mint(rng)
            }
            _ => {
                let ca = world.private_ca("telemetryd");
                MintSpec::new(&ca, nb, na)
                    .cn(random_alnum(rng, 12))
                    .mint(rng)
            }
        };
        let si = pick_weighted(rng, &sld_weights);
        let sld = slds[si];
        let (sni, server_cert) = if sld.is_empty() {
            let ca = world.private_ca("NodeRunner");
            (
                None,
                MintSpec::new(&ca, world.start.add_days(-30), world.start.add_days(760))
                    .cn(random_alnum(rng, 10))
                    .mint(rng),
            )
        } else {
            let host = hostname(rng, sld);
            let c = MintSpec::new(
                server_ca,
                world.start.add_days(-30),
                world.start.add_days(760),
            )
            .cn(host.clone())
            .san_dns(&[&host])
            .usage(Usage::Server)
            .mint(rng);
            em.submit_ct(&c);
            (Some(host), c)
        };
        em.connection(
            ConnSpec {
                ts: ts_in_window(rng, 700),
                orig: world.plan.clients.sample(rng),
                resp: world.plan.misc_external.sample(rng),
                resp_port: 443,
                version: mtls_version(rng),
                sni,
                server_chain: vec![&server_cert],
                client_chain: vec![&cert],
                established: true,
                resumed: false,
            },
            rng,
        );
    }

    // The 228-year outlier (planted verbatim).
    let ca = world.private_ca("TMDX Devices Inc");
    let nb = world.start.add_days(-500);
    let outlier = MintSpec::new(&ca, nb, nb.add_days(targets::LONGEST_VALIDITY_DAYS))
        .cn("tmdx-dev-gateway")
        .usage(Usage::Client)
        .mint(rng);
    let host = hostname(rng, "tmdxdev.com");
    let server = MintSpec::new(
        &world.public_ca("DigiCert Inc").intermediate,
        world.start.add_days(-30),
        world.start.add_days(760),
    )
    .cn(host.clone())
    .san_dns(&[&host])
    .usage(Usage::Server)
    .mint(rng);
    em.submit_ct(&server);
    for _ in 0..3 {
        em.connection(
            ConnSpec {
                ts: ts_in_window(rng, 300),
                orig: world.plan.clients.sample(rng),
                resp: world.plan.misc_external.sample(rng),
                resp_port: 443,
                version: mtls_version(rng),
                sni: Some(host.clone()),
                server_chain: vec![&server],
                client_chain: vec![&outlier],
                established: true,
                resumed: false,
            },
            rng,
        );
    }
}
