//! TLS interception (§3.2.1).
//!
//! Cloud security proxies terminate outbound TLS on behalf of managed
//! clients: the border monitor therefore sees the *proxy's* certificate for
//! the destination domain, issued by an interception CA that never appears
//! in root stores or in CT. The paper identified 186 such issuers and
//! excluded 8.4 % of unique certificates. The analysis pipeline's
//! preprocessing must find and exclude these (experiment `pre1`) by
//! comparing the observed issuer with the CT-logged issuer for the domain.

use crate::calendar::{self, Month};
use crate::certgen::{hostname, MintSpec, Usage};
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::scenarios::{plainish_version, spread_ts};
use crate::targets;
use crate::world::World;
use mtls_x509::Certificate;
use rand::Rng;

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    if !config.include_interception {
        return;
    }
    let n_issuers = config.scaled(targets::INTERCEPTION_ISSUERS);
    let n_certs = config.scaled(targets::INTERCEPTION_CERTS);
    let n_conns = config.scaled(targets::INTERCEPTION_CONNS);

    // Domains that also exist legitimately: their *real* certificates were
    // CT-logged by `scenarios::nonmtls`, so the SLD pool must overlap.
    let slds = [
        "popular-video.com",
        "search-portal.com",
        "social-feed.com",
        "news-hub.org",
        "shop-central.com",
        "stream-cdn.net",
        "docs-suite.com",
    ];
    let vendor_stems = [
        "NetGuard Inspection",
        "CloudShield Proxy",
        "PerimeterX TLS",
        "SecureGate",
        "InspectorWorks",
        "TrafficLens",
    ];
    let issuers: Vec<String> = (0..n_issuers)
        .map(|i| {
            format!(
                "{} CA {}",
                vendor_stems[i % vendor_stems.len()],
                i / vendor_stems.len() + 1
            )
        })
        .collect();

    let validity = (world.start.add_days(-10), world.start.add_days(760));
    let certs: Vec<(String, Certificate)> = (0..n_certs)
        .map(|_| {
            let issuer = &issuers[rng.gen_range(0..issuers.len())];
            let ca = world.private_ca(issuer);
            let sld = slds[rng.gen_range(0..slds.len())];
            let host = hostname(rng, sld);
            // Interception CAs impersonate the real host; they do NOT log
            // to CT — exactly the discrepancy the filter keys on.
            let cert = MintSpec::new(&ca, validity.0, validity.1)
                .cn(host.clone())
                .san_dns(&[&host, sld])
                .usage(Usage::Server)
                .mint(rng);
            (host, cert)
        })
        .collect();

    let months = Month::study_months();
    let spread = calendar::spread_over_months(n_conns, calendar::non_mtls_month_weight);
    for k in 0..n_conns {
        let ts = spread_ts(rng, k, &spread, &months);
        let (host, cert) = &certs[rng.gen_range(0..certs.len())];
        em.connection(
            ConnSpec {
                ts,
                orig: world.plan.nat.sample(rng),
                resp: world.plan.misc_external.sample(rng),
                resp_port: 443,
                version: plainish_version(rng),
                sni: Some(host.clone()),
                server_chain: vec![cert],
                client_chain: vec![],
                established: true,
                resumed: false,
            },
            rng,
        );
    }
}
