//! Bulk inbound mutual TLS (Tables 2 & 3, the Fig. 1 inbound series).
//!
//! Iterates the joint (association, port) rows of `targets::INBOUND_ROWS`,
//! building per-association server fleets and client pools whose issuer
//! mixes reproduce Table 3, then spreads connections over the study months
//! with the health surge.

use crate::certgen::{hostname, random_alnum, MintSpec, Usage};
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::scenarios::{mtls_spread, mtls_version, pick_weighted, spread_ts};
use crate::targets;
use crate::world::World;
use mtls_x509::{Certificate, DistinguishedName};
use mtls_zeek::Ipv4;
use rand::Rng;

struct Server {
    ip: Ipv4,
    sni: Option<String>,
    cert: Certificate,
}

struct Client {
    ip: Ipv4,
    cert: Certificate,
}

/// Client issuer mix per association, as conn-level fractions:
/// (education, missing, public, corporation, others).
fn client_mix(assoc: &str) -> [f64; 5] {
    match assoc {
        // Table 3 rows (primary/secondary shares, remainder to others).
        "health" => [0.985, 0.0, 0.010, 0.0, 0.005],
        "server" => [0.0, 0.958, 0.037, 0.0, 0.005],
        "vpn" => [0.9999, 0.0, 0.0001, 0.0, 0.0],
        "localorg" => [0.0, 0.0, 0.966, 0.0132, 0.0208],
        "thirdparty" => [0.0, 0.10, 0.3725, 0.05, 0.4795],
        "globus" => [0.9383, 0.0, 0.0, 0.0, 0.0617],
        _ => [0.0, 0.8734, 0.0027, 0.0, 0.1239], // unknown
    }
}

fn association_sld(assoc: &str) -> Option<&'static str> {
    match assoc {
        "health" => Some("campus-health.org"),
        "server" => Some("campus-main.edu"),
        "vpn" => Some("campus-vpn.net"),
        "localorg" => Some("localorg-a.org"),
        "thirdparty" => Some("vendor-cloud.com"),
        "globus" => Some("globus.org"),
        _ => None,
    }
}

fn build_servers(assoc: &str, count: usize, world: &World, rng: &mut impl Rng) -> Vec<Server> {
    let validity = (world.start.add_days(-30), world.start.add_days(760));
    let block = match assoc {
        "health" => world.plan.health,
        "vpn" => world.plan.vpn,
        "localorg" | "thirdparty" => world.plan.servers,
        _ => world.plan.servers,
    };
    (0..count)
        .map(|i| {
            let ip = block.host(rng.gen_range(0..4000));
            let (sni, cert) = match association_sld(assoc) {
                Some(sld) => {
                    let host = hostname(rng, sld);
                    let ca = match assoc {
                        "health" => &world.campus_health_ca,
                        "vpn" => &world.campus_vpn_ca,
                        "localorg" => &world.public_ca("Let's Encrypt").intermediate,
                        "thirdparty" => &world.public_ca("DigiCert Inc").intermediate,
                        "globus" => {
                            return {
                                let ca = world.private_ca("Globus Online");
                                let cert = MintSpec::new(&ca, validity.0, validity.1)
                                    .cn(host.clone())
                                    .usage(Usage::Server)
                                    .mint(rng);
                                Server {
                                    ip,
                                    sni: Some(host),
                                    cert,
                                }
                            }
                        }
                        _ => &world.campus_server_ca,
                    };
                    let cert = MintSpec::new(ca, validity.0, validity.1)
                        .cn(host.clone())
                        .san_dns(&[&host])
                        .usage(Usage::Server)
                        .mint(rng);
                    (Some(host), cert)
                }
                None => {
                    // Unknown association: no SNI, unhelpful server cert.
                    let ca = world.private_ca("");
                    let cert = MintSpec::new(&ca, validity.0, validity.1)
                        .cn(random_alnum(rng, 12))
                        .issuer_override(DistinguishedName::empty())
                        .mint(rng);
                    (None, cert)
                }
            };
            let _ = i;
            Server { ip, sni, cert }
        })
        .collect()
}

fn build_clients(
    assoc: &str,
    count: usize,
    world: &World,
    em: &mut Emitter,
    rng: &mut impl Rng,
) -> Vec<Client> {
    let validity = (world.start.add_days(-60), world.start.add_days(760));
    let mix = client_mix(assoc);
    let external = world.plan.external_clients;
    (0..count)
        .map(|_| {
            let ip = external.sample(rng);
            let which = pick_weighted(rng, &mix);
            let cert = match which {
                0 => {
                    // Education: campus-issued (health devices use the
                    // health CA; everything else the user CA).
                    let ca = if assoc == "health" {
                        &world.campus_health_ca
                    } else {
                        &world.campus_user_ca
                    };
                    let cn = em.quotas.campus_client_cn(rng);
                    let san = em.quotas.campus_client_san(rng);
                    MintSpec::new(ca, validity.0, validity.1)
                        .cn(cn)
                        .san(san)
                        .usage(Usage::Client)
                        .mint(rng)
                }
                1 => {
                    // MissingIssuer: signed, but the issuer DN is empty.
                    let ca = world.private_ca("");
                    let cn = em.quotas.generic_client_cn(rng);
                    MintSpec::new(&ca, validity.0, validity.1)
                        .cn(cn)
                        .issuer_override(DistinguishedName::empty())
                        .mint(rng)
                }
                2 => {
                    // Public: a public CA issued a client certificate.
                    let pub_ca = &world.public_cas[rng.gen_range(0..6)].intermediate;
                    MintSpec::new(pub_ca, validity.0, validity.1)
                        .cn(hostname(rng, "partner-fleet.com"))
                        .usage(Usage::Client)
                        .mint(rng)
                }
                3 => {
                    // Corporation.
                    let ca = world.private_ca("Blue Ridge Instruments Inc");
                    MintSpec::new(&ca, validity.0, validity.1)
                        .cn(em.quotas.generic_client_cn(rng))
                        .usage(Usage::Client)
                        .mint(rng)
                }
                _ => {
                    // Others: unrecognizable private issuers.
                    let orgs = ["AT&T Services", "Red Hat", "AgentMesh", "Globus Online"];
                    let ca = world.private_ca(orgs[rng.gen_range(0..orgs.len())]);
                    MintSpec::new(&ca, validity.0, validity.1)
                        .cn(em.quotas.generic_client_cn(rng))
                        .mint(rng)
                }
            };
            Client { ip, cert }
        })
        .collect()
}

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    let total = config.scaled(targets::INBOUND_MTLS_CONNS);
    let pool_total = config.scaled(targets::INBOUND_CLIENT_POOL);

    // Build per-association infrastructure once.
    let mut assoc_names: Vec<&str> = Vec::new();
    let mut servers: Vec<Vec<Server>> = Vec::new();
    let mut clients: Vec<Vec<Client>> = Vec::new();
    for (assoc, share) in targets::INBOUND_CLIENT_SHARE {
        let n_clients = ((pool_total as f64) * share).round().max(1.0) as usize;
        let n_servers = match *assoc {
            "health" => config.scaled(40),
            "server" => config.scaled(60),
            "vpn" => config.scaled(4),
            "localorg" => config.scaled(12),
            "thirdparty" => config.scaled(6),
            "globus" => config.scaled(3),
            _ => config.scaled(10),
        };
        assoc_names.push(assoc);
        servers.push(build_servers(assoc, n_servers, world, rng));
        clients.push(build_clients(assoc, n_clients, world, em, rng));
    }

    for row in targets::INBOUND_ROWS {
        if row.association == "unknown-fxp" {
            continue;
        }
        let idx = assoc_names
            .iter()
            .position(|a| *a == row.association)
            .expect("association built");
        let n = ((total as f64) * row.frac).round() as usize;
        // The health surge shows up in the months spread.
        let surge = row.association == "health";
        let (spread, months) = mtls_spread(n, surge);
        for k in 0..n {
            let ts = spread_ts(rng, k, &spread, &months);
            let server = &servers[idx][rng.gen_range(0..servers[idx].len())];
            let client = &clients[idx][rng.gen_range(0..clients[idx].len())];
            let port = if row.port_hi > row.port {
                rng.gen_range(row.port..=row.port_hi)
            } else {
                row.port
            };
            em.connection(
                ConnSpec {
                    ts,
                    orig: client.ip,
                    resp: server.ip,
                    resp_port: port,
                    version: mtls_version(rng),
                    sni: server.sni.clone(),
                    server_chain: vec![&server.cert],
                    client_chain: vec![&client.cert],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }
    }
}
