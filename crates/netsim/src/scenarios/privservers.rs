//! Miscellaneous private mutual-TLS servers — the Table 8 server × private
//! CN populations that are not WebRTC: SIP endpoints live in
//! `scenarios::webrtc`; this module plants the unidentified strings
//! (Table 9's server mix), the small domain/IP/localhost populations, and
//! the paper's exactly-six personal-name server certificates.

use crate::certgen::{self, person_name, random_alnum, random_hex, random_uuid, MintSpec};
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::scenarios::{mtls_version, pick_weighted, ts_in_window};
use crate::targets;
use crate::world::World;
use mtls_asn1::Asn1Time;
use mtls_x509::{Certificate, DistinguishedName, GeneralName};
use mtls_zeek::Ipv4;
use rand::Rng;

fn emit_server<R: Rng>(
    cn: String,
    san: Vec<GeneralName>,
    clients: &[(Ipv4, Certificate)],
    validity: (Asn1Time, Asn1Time),
    world: &World,
    em: &mut Emitter,
    rng: &mut R,
) {
    let ca = world
        .private_ca(["NodeRunner", "telemetryd", "sensor-hub", "MeshWorks"][rng.gen_range(0..4)]);
    let cert = MintSpec::new(&ca, validity.0, validity.1)
        .cn(cn)
        .san(san)
        .mint(rng);
    // One-off private backends are overwhelmingly cloud-hosted (§3.3).
    let resp = if rng.gen_bool(0.8) {
        world.plan.aws.sample(rng)
    } else {
        world.plan.gp_cloud.sample(rng)
    };
    for _ in 0..rng.gen_range(1..=2) {
        let client = &clients[rng.gen_range(0..clients.len())];
        em.connection(
            ConnSpec {
                ts: ts_in_window(rng, 700),
                orig: client.0,
                resp,
                resp_port: 443,
                version: mtls_version(rng),
                sni: None,
                server_chain: vec![&cert],
                client_chain: vec![&client.1],
                established: true,
                resumed: false,
            },
            rng,
        );
    }
}

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    // A small client fleet shared across these one-off servers.
    let validity = (world.start.add_days(-30), world.start.add_days(760));
    let client_ca = world.private_ca("");
    let clients: Vec<(Ipv4, Certificate)> = (0..config.scaled(40).max(1))
        .map(|_| {
            let cn = em.quotas.generic_client_cn(rng);
            (
                world.plan.clients.sample(rng),
                MintSpec::new(&client_ca, validity.0, validity.1)
                    .cn(cn)
                    .issuer_override(DistinguishedName::empty())
                    .mint(rng),
            )
        })
        .collect();

    // Unidentified CNs, following Table 9's server mix. A slice of the
    // random strings also gets the paper's "CN + 'TLS' + digits" SAN
    // pattern (§6.3.2).
    let n_unident = config.scaled(targets::SERVER_PRIVATE_UNIDENTIFIED);
    let weights: Vec<f64> = targets::UNIDENT_SERVER_MIX
        .iter()
        .map(|(f, _)| *f)
        .collect();
    for _ in 0..n_unident {
        let cn = match targets::UNIDENT_SERVER_MIX[pick_weighted(rng, &weights)].1 {
            "nonrandom" => {
                ["__transfer__", "Dtls", "hmpp", "relay node"][rng.gen_range(0..4)].to_string()
            }
            "byissuer" => random_alnum(rng, 16),
            "len8" => random_hex(rng, 8),
            "len32" => random_hex(rng, 32),
            "len36" => random_uuid(rng),
            _ => {
                let len = rng.gen_range(10..24);
                random_alnum(rng, len)
            }
        };
        let san = if rng.gen_bool(0.02) {
            vec![GeneralName::Dns(format!(
                "{cn} TLS {}",
                rng.gen_range(100..99_999)
            ))]
        } else {
            Vec::new()
        };
        emit_server(cn, san, &clients, validity, world, em, rng);
    }

    // Domains, IPs, localhost, and the six personal names.
    for _ in 0..config.scaled(targets::SERVER_PRIVATE_DOMAIN) {
        let cn = certgen::hostname(rng, "intranet-apps.net");
        emit_server(cn, Vec::new(), &clients, validity, world, em, rng);
    }
    for _ in 0..config.scaled(targets::SERVER_PRIVATE_IP) {
        let cn = format!(
            "{}.{}.{}.{}",
            rng.gen_range(1..223),
            rng.gen_range(0..255),
            rng.gen_range(0..255),
            rng.gen_range(1..254)
        );
        emit_server(cn, Vec::new(), &clients, validity, world, em, rng);
    }
    for _ in 0..config.scaled(targets::SERVER_PRIVATE_LOCALHOST) {
        emit_server(
            "localhost.localdomain".to_string(),
            Vec::new(),
            &clients,
            validity,
            world,
            em,
            rng,
        );
    }
    for _ in 0..config.scaled(targets::SERVER_PRIVATE_PERSONAL_NAMES) {
        emit_server(
            person_name(rng),
            Vec::new(),
            &clients,
            validity,
            world,
            em,
            rng,
        );
    }
}
