//! University tunneling services — Table 1's footnote: 5.66 % of client
//! certificates appear in connections with *no* server certificate at all
//! (the client authenticates into a tunnel endpoint whose own side of the
//! handshake carries no chain the monitor can see).

use crate::certgen::MintSpec;
use crate::config::SimConfig;
use crate::emit::{ConnSpec, Emitter};
use crate::scenarios::{mtls_version, ts_in_window};
use crate::world::World;
use rand::Rng;

/// Client certificates that only ever appear in client-only connections,
/// at scale 1.0. Calibrated so the client-cert mTLS share lands near the
/// paper's 94.34 % (the remaining ~5.66 % is this population).
pub const TUNNEL_CLIENT_CERTS: usize = 2_200;

/// Run the scenario.
pub fn run(config: &SimConfig, world: &World, em: &mut Emitter, rng: &mut impl Rng) {
    let n = config.scaled(TUNNEL_CLIENT_CERTS);
    let validity = (world.start.add_days(-60), world.start.add_days(760));
    let tunnel_ip = world.plan.vpn.host(9);

    for _ in 0..n {
        let cn = em.quotas.campus_client_cn(rng);
        let cert = MintSpec::new(&world.campus_vpn_ca, validity.0, validity.1)
            .cn(cn)
            .mint(rng);
        let orig = world.plan.external_clients.sample(rng);
        for _ in 0..rng.gen_range(1..=2) {
            em.connection(
                ConnSpec {
                    ts: ts_in_window(rng, 700),
                    orig,
                    resp: tunnel_ip,
                    resp_port: 443,
                    version: mtls_version(rng),
                    sni: Some("tunnel.campus-vpn.net".to_string()),
                    server_chain: vec![],
                    client_chain: vec![&cert],
                    established: true,
                    resumed: false,
                },
                rng,
            );
        }
    }
}
