//! Embedded gazetteers: given names, surnames, organizations, products.
//!
//! These stand in for spaCy's trained NER model and the Kaggle company
//! datasets the paper uses. The lists are intentionally small but cover
//! every entity the simulation generates plus common US names, so the
//! classifier's precision/recall on the simulated corpus mirrors the
//! paper's reported ~0.9/0.9 for personal names (asserted in tests).

/// Common given names (lowercase).
pub const GIVEN_NAMES: &[&str] = &[
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael", "linda", "david",
    "elizabeth", "william", "barbara", "richard", "susan", "joseph", "jessica", "thomas",
    "sarah", "charles", "karen", "christopher", "nancy", "daniel", "lisa", "matthew", "betty",
    "anthony", "margaret", "mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
    "emily", "andrew", "donna", "joshua", "michelle", "kenneth", "dorothy", "kevin", "carol",
    "brian", "amanda", "george", "melissa", "edward", "deborah", "ronald", "stephanie",
    "timothy", "rebecca", "jason", "sharon", "jeffrey", "laura", "ryan", "cynthia", "jacob",
    "kathleen", "gary", "amy", "nicholas", "angela", "eric", "shirley", "jonathan", "anna",
    "stephen", "brenda", "larry", "pamela", "justin", "emma", "scott", "nicole", "brandon",
    "helen", "benjamin", "samantha", "samuel", "katherine", "gregory", "christine", "frank",
    "debra", "alexander", "rachel", "raymond", "carolyn", "patrick", "janet", "jack",
    "catherine", "dennis", "maria", "jerry", "heather", "tyler", "diane", "aaron", "ruth",
    "jose", "julie", "adam", "olivia", "nathan", "joyce", "henry", "virginia", "douglas",
    "victoria", "zachary", "kelly", "peter", "lauren", "kyle", "christina", "ethan", "joan",
    "walter", "evelyn", "noah", "judith", "jeremy", "megan", "christian", "andrea", "keith",
    "cheryl", "roger", "hannah", "terry", "jacqueline", "gerald", "martha", "harold", "gloria",
    "sean", "teresa", "austin", "ann", "carl", "sara", "arthur", "madison", "lawrence",
    "frances", "dylan", "kathryn", "jesse", "janice", "jordan", "jean", "bryan", "abigail",
    "billy", "alice", "joe", "julia", "bruce", "judy", "gabriel", "sophia", "logan", "grace",
    "albert", "denise", "willie", "amber", "alan", "doris", "juan", "marilyn", "wayne",
    "danielle", "elijah", "beverly", "randy", "isabella", "roy", "theresa", "vincent", "diana",
    "ralph", "natalie", "eugene", "brittany", "russell", "charlotte", "bobby", "marie",
    "mason", "kayla", "philip", "alexis", "louis", "lori", "hongying", "yizhe", "hyeonmin",
    "yixin", "guancheng", "wei", "ming", "li", "chen", "yan", "priya", "raj", "amit", "fatima",
    "ahmed", "carlos", "sofia", "luis", "elena",
];

/// Common surnames (lowercase).
pub const SURNAMES: &[&str] = &[
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller", "davis", "rodriguez",
    "martinez", "hernandez", "lopez", "gonzalez", "wilson", "anderson", "thomas", "taylor",
    "moore", "jackson", "martin", "lee", "perez", "thompson", "white", "harris", "sanchez",
    "clark", "ramirez", "lewis", "robinson", "walker", "young", "allen", "king", "wright",
    "scott", "torres", "nguyen", "hill", "flores", "green", "adams", "nelson", "baker", "hall",
    "rivera", "campbell", "mitchell", "carter", "roberts", "gomez", "phillips", "evans",
    "turner", "diaz", "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan", "cooper",
    "peterson", "bailey", "reed", "kelly", "howard", "ramos", "kim", "cox", "ward",
    "richardson", "watson", "brooks", "chavez", "wood", "james", "bennett", "gray", "mendoza",
    "ruiz", "hughes", "price", "alvarez", "castillo", "sanders", "patel", "myers", "long",
    "ross", "foster", "jimenez", "dong", "zhang", "du", "tu", "sun", "wang", "liu", "chen",
    "yang", "zhao", "huang", "zhou", "wu", "xu", "lin", "singh", "kumar", "shah", "khan",
    "ali", "ahmed", "silva", "santos", "oliveira",
];

/// Product names observed in the paper's tables plus common platform names.
pub const PRODUCTS: &[&str] = &[
    "webrtc", "twilio", "hangouts", "hybrid runbook worker", "android keystore", "lenovo",
    "thinkpad", "iphone", "ipad", "macbook", "surface", "chromecast", "firestick", "echo dot",
    "playstation", "xbox", "roku", "kindle", "azure sphere",
];

/// Organization names the NER should recognize even without a legal suffix.
pub const ORGANIZATIONS: &[&str] = &[
    "microsoft", "apple", "google", "amazon", "meta", "cisco", "oracle", "ibm", "intel",
    "samsung", "lenovo", "at&t", "att", "red hat", "redhat", "verizon", "splunk", "rapid7",
    "guardicore", "honeywell", "crestron", "filewave", "globus", "outset medical", "idrive",
    "viptela", "digicert", "sectigo", "godaddy", "identrust", "entrust", "mozilla",
    "webex", "zoom", "slack", "dropbox", "salesforce", "adobe", "vmware", "citrix", "akamai",
    "cloudflare", "fastly", "netflix", "spotify",
];

/// Legal/organizational suffix tokens.
pub const ORG_SUFFIXES: &[&str] = &[
    "inc", "llc", "ltd", "limited", "corp", "corporation", "co", "gmbh", "plc", "pty", "sa",
    "ag", "bv", "association", "foundation", "institute", "university", "college", "services",
    "systems", "technologies", "solutions", "group", "company",
];

/// Case-insensitive membership helper.
pub fn contains_ci(list: &[&str], token: &str) -> bool {
    let lower = token.to_ascii_lowercase();
    list.contains(&lower.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_is_case_insensitive() {
        assert!(contains_ci(GIVEN_NAMES, "John"));
        assert!(contains_ci(SURNAMES, "SMITH"));
        assert!(contains_ci(PRODUCTS, "WebRTC"));
        assert!(contains_ci(ORGANIZATIONS, "Splunk"));
        assert!(!contains_ci(GIVEN_NAMES, "qwzx"));
    }

    #[test]
    fn lists_are_lowercase() {
        for list in [GIVEN_NAMES, SURNAMES, PRODUCTS, ORGANIZATIONS, ORG_SUFFIXES] {
            for entry in list {
                assert_eq!(*entry, entry.to_ascii_lowercase(), "{entry}");
            }
        }
    }

    #[test]
    fn paper_entities_present() {
        for p in ["webrtc", "twilio", "hangouts", "hybrid runbook worker", "android keystore"] {
            assert!(PRODUCTS.contains(&p), "{p}");
        }
        for o in ["guardicore", "globus", "outset medical", "idrive", "rapid7"] {
            assert!(ORGANIZATIONS.contains(&o), "{o}");
        }
    }
}
