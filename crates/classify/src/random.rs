//! The Table 9 taxonomy: non-random vs random unidentified strings,
//! with random strings bucketed by recognizable feature (issuer, length).

/// How an unidentified string is sub-classified (Table 9 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RandomClass {
    /// Human-meaningful but unclassifiable text ("__transfer__", "Dtls").
    NonRandom,
    /// Random, but the issuer field identifies the generator
    /// ("Microsoft Azure Sphere …", "Apple iPhone Device CA", campus CAs).
    RandomByIssuer,
    /// Random, 8 characters (short hashes).
    RandomLen8,
    /// Random, 32 characters (hex digests).
    RandomLen32,
    /// Random, 36 characters (UUID format).
    RandomLen36,
    /// Random, some other length.
    RandomOther,
}

impl RandomClass {
    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            RandomClass::NonRandom => "Non-random",
            RandomClass::RandomByIssuer => "Random - by Issuer",
            RandomClass::RandomLen8 => "Random - strlen = 8",
            RandomClass::RandomLen32 => "Random - strlen = 32",
            RandomClass::RandomLen36 => "Random - strlen = 36",
            RandomClass::RandomOther => "Random - other",
        }
    }

    /// All rows in table order.
    pub const ALL: [RandomClass; 6] = [
        RandomClass::NonRandom,
        RandomClass::RandomByIssuer,
        RandomClass::RandomLen8,
        RandomClass::RandomLen32,
        RandomClass::RandomLen36,
        RandomClass::RandomOther,
    ];
}

/// UUID shape: 8-4-4-4-12 lowercase/uppercase hex.
pub fn is_uuid(s: &str) -> bool {
    let b = s.as_bytes();
    if b.len() != 36 {
        return false;
    }
    for (i, &c) in b.iter().enumerate() {
        match i {
            8 | 13 | 18 | 23 => {
                if c != b'-' {
                    return false;
                }
            }
            _ => {
                if !c.is_ascii_hexdigit() {
                    return false;
                }
            }
        }
    }
    true
}

/// Shannon entropy in bits per character.
pub fn shannon_entropy(s: &str) -> f64 {
    if s.is_empty() {
        return 0.0;
    }
    let mut counts = [0usize; 256];
    for &b in s.as_bytes() {
        counts[b as usize] += 1;
    }
    let n = s.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Heuristic: does this look machine-generated rather than human-written?
///
/// Hex/uuid/base64-ish strings of length >= 8 count as random; otherwise we
/// require both reasonably high entropy and the absence of word-like
/// structure (vowel rhythm, separators that delimit words).
pub fn is_random_string(s: &str) -> bool {
    let t = s.trim();
    if t.len() < 8 || t.contains(' ') {
        return false;
    }
    if is_uuid(t) {
        return true;
    }
    let bytes = t.as_bytes();
    let hexish = bytes.iter().all(|b| b.is_ascii_hexdigit());
    if hexish && t.len() >= 8 {
        // All-hex of meaningful length is a digest ("deadbeef" is famous
        // but vanishingly rare as a real CN).
        return true;
    }
    let alnum = bytes.iter().all(|b| b.is_ascii_alphanumeric());
    if !alnum {
        return false; // separators suggest structure ("__transfer__", "a.b")
    }
    let letters: Vec<u8> = bytes
        .iter()
        .filter(|b| b.is_ascii_alphabetic())
        .map(|b| b.to_ascii_lowercase())
        .collect();
    if letters.is_empty() {
        return true; // all digits, length >= 8
    }
    let vowels = letters
        .iter()
        .filter(|b| matches!(b, b'a' | b'e' | b'i' | b'o' | b'u'))
        .count();
    let vowel_ratio = vowels as f64 / letters.len() as f64;
    let digits = bytes.iter().filter(|b| b.is_ascii_digit()).count();
    let digit_ratio = digits as f64 / t.len() as f64;
    // English-like text sits near 0.35–0.45 vowel ratio with few digits.
    let entropy = shannon_entropy(&t.to_ascii_lowercase());
    (vowel_ratio < 0.22 || digit_ratio > 0.3) && entropy > 3.0
}

/// Sub-classify an unidentified string. `issuer_recognizable` is supplied by
/// the pipeline (it knows whether the issuer field names a generator such as
/// Azure Sphere / Apple device CAs / the campus CA).
pub fn classify_random(s: &str, issuer_recognizable: bool) -> RandomClass {
    let t = s.trim();
    if !is_random_string(t) {
        return RandomClass::NonRandom;
    }
    if issuer_recognizable {
        return RandomClass::RandomByIssuer;
    }
    match t.len() {
        8 => RandomClass::RandomLen8,
        32 => RandomClass::RandomLen32,
        36 => RandomClass::RandomLen36,
        _ => RandomClass::RandomOther,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uuid_detection() {
        assert!(is_uuid("550e8400-e29b-41d4-a716-446655440000"));
        assert!(is_uuid("550E8400-E29B-41D4-A716-446655440000"));
        assert!(!is_uuid("550e8400e29b41d4a716446655440000")); // no dashes
        assert!(!is_uuid("550e8400-e29b-41d4-a716-44665544000")); // short
        assert!(!is_uuid("550e8400-e29b-41d4-a716-44665544zzzz"));
    }

    #[test]
    fn hex_strings_are_random() {
        assert!(is_random_string("f3a9c2d1"));
        assert!(is_random_string("f3a9c2d17b604e5df3a9c2d17b604e5d"));
        assert!(is_random_string("0123456789abcdef"));
    }

    #[test]
    fn words_are_not_random() {
        for s in [
            "__transfer__",
            "Dtls",
            "hmpp",
            "mail-gateway",
            "server name here",
            "database",
        ] {
            assert!(!is_random_string(s), "{s}");
        }
    }

    #[test]
    fn mixed_alnum_random() {
        assert!(is_random_string("xk29vq84ztr7w3pn")); // low vowel ratio
        assert!(is_random_string("a1b2c3d4e5f6g7h8")); // digit-heavy
        assert!(!is_random_string("computerstation")); // vowel-rich word
    }

    #[test]
    fn classify_buckets() {
        assert_eq!(
            classify_random("__transfer__", false),
            RandomClass::NonRandom
        );
        assert_eq!(
            classify_random("f3a9c2d1", true),
            RandomClass::RandomByIssuer
        );
        assert_eq!(classify_random("f3a9c2d1", false), RandomClass::RandomLen8);
        assert_eq!(
            classify_random("f3a9c2d17b604e5df3a9c2d17b604e5d", false),
            RandomClass::RandomLen32
        );
        assert_eq!(
            classify_random("550e8400-e29b-41d4-a716-446655440000", false),
            RandomClass::RandomLen36
        );
        assert_eq!(
            classify_random("f3a9c2d17b604e", false),
            RandomClass::RandomOther
        );
    }

    #[test]
    fn entropy_sane() {
        assert_eq!(shannon_entropy(""), 0.0);
        assert_eq!(shannon_entropy("aaaa"), 0.0);
        assert!(shannon_entropy("abcdefgh") > 2.9);
        assert!(shannon_entropy("f3a9c2d17b604e5d") > 3.0);
    }
}
