//! Format matchers for the well-known information types (§6.1.1).

use mtls_zeek::Ipv4;

/// IPv4 (dotted quad) or IPv6 (colon-hex with at least two colons).
pub fn is_ip(s: &str) -> bool {
    if Ipv4::parse(s).is_some() {
        return true;
    }
    // IPv6: 8 hex groups, or fewer with exactly one "::" compression.
    let colons = s.bytes().filter(|&b| b == b':').count();
    if !(2..=7).contains(&colons) || s.len() < 3 {
        return false;
    }
    let compressed = s.contains("::");
    if s.matches("::").count() > 1 {
        return false;
    }
    let mut groups = 0;
    for part in s.split(':') {
        if part.is_empty() {
            continue; // sides of "::" (or leading/trailing colon)
        }
        if part.len() > 4 || !part.bytes().all(|b| b.is_ascii_hexdigit()) {
            return false;
        }
        groups += 1;
    }
    if compressed {
        (1..=7).contains(&groups)
    } else {
        // Without compression a full address has 8 groups (7 colons).
        groups == 8 && colons == 7
    }
}

/// MAC address: six hex octet pairs separated by `:` or `-`.
pub fn is_mac(s: &str) -> bool {
    let sep = if s.contains(':') {
        ':'
    } else if s.contains('-') {
        '-'
    } else {
        return false;
    };
    let parts: Vec<&str> = s.split(sep).collect();
    parts.len() == 6
        && parts
            .iter()
            .all(|p| p.len() == 2 && p.bytes().all(|b| b.is_ascii_hexdigit()))
}

/// SIP address: `sip:` or `sips:` scheme prefix.
pub fn is_sip(s: &str) -> bool {
    let lower = s.to_ascii_lowercase();
    (lower.starts_with("sip:") || lower.starts_with("sips:")) && s.len() > 4
}

/// Email address: local@domain with a plausible domain.
pub fn is_email(s: &str) -> bool {
    let Some((local, dom)) = s.split_once('@') else {
        return false;
    };
    if local.is_empty() || local.contains(' ') || dom.contains('@') {
        return false;
    }
    // The domain side must at least look dotted and label-ish.
    dom.contains('.')
        && !dom.contains(' ')
        && dom
            .split('.')
            .all(|l| !l.is_empty() && l.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-'))
}

/// University user account: the campus ID format the paper describes —
/// a short, fixed-shape alphanumeric identifier. This simulation's campus
/// assigns IDs shaped `[a-z]{2,3}[0-9][a-z0-9]{2,3}` (e.g. `hd7gr`,
/// `ys3kz`), total length 5–7. Callers additionally require a campus
/// issuer, as the paper does.
pub fn is_user_account(s: &str) -> bool {
    let b = s.as_bytes();
    if !(5..=7).contains(&b.len()) {
        return false;
    }
    let letters = b.iter().take_while(|c| c.is_ascii_lowercase()).count();
    if !(2..=3).contains(&letters) {
        return false;
    }
    if b.len() <= letters || !b[letters].is_ascii_digit() {
        return false;
    }
    let tail = &b[letters + 1..];
    (2..=3).contains(&tail.len())
        && tail
            .iter()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
}

/// Localhost / localdomain markers.
pub fn is_localhost(s: &str) -> bool {
    let lower = s.to_ascii_lowercase();
    lower == "localhost"
        || lower.starts_with("localhost.")
        || lower.ends_with(".localdomain")
        || lower.ends_with(".localhost")
        || lower == "localdomain"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_matcher() {
        assert!(is_ip("1.2.3.4"));
        assert!(is_ip("255.255.255.255"));
        assert!(is_ip("2001:db8::1"));
        assert!(!is_ip("fe80::1%eth0")); // zone id not supported
        assert!(!is_ip("1.2.3"));
        assert!(!is_ip("example.com"));
        assert!(!is_ip("12:34:56:AB:CD:EF")); // 6-group MAC shape is not an IPv6 address
    }

    #[test]
    fn mac_matcher() {
        assert!(is_mac("12:34:56:AB:CD:EF"));
        assert!(is_mac("12-34-56-ab-cd-ef"));
        assert!(!is_mac("12:34:56:AB:CD"));
        assert!(!is_mac("12:34:56:AB:CD:GG"));
        assert!(!is_mac("123456ABCDEF"));
    }

    #[test]
    fn mac_before_ip_precedence_note() {
        // A MAC is also colon-hex; the top-level classifier tests MAC only
        // after IP, so six-group colon-hex must NOT look like IPv6 groups of
        // >4 hex... it is 6 groups of 2, which IS a plausible IPv6. Guard:
        // the classifier calls is_ip first, so verify a MAC is not an IP by
        // our rules (6 colons ≤ 7, groups ok => would match!).
        // To keep the paper's precedence (IP before MAC) sound, is_ip must
        // reject exactly-6-group-of-2 colon-hex that matches the MAC shape.
        assert!(!is_ip("12:34:56:AB:CD:EF"));
    }

    #[test]
    fn sip_matcher() {
        assert!(is_sip("sip:4434@voip.example.edu"));
        assert!(is_sip("SIP:user"));
        assert!(is_sip("sips:secure@host"));
        assert!(!is_sip("sip:"));
        assert!(!is_sip("gossip:x"));
    }

    #[test]
    fn email_matcher() {
        assert!(is_email("a@b.com"));
        assert!(is_email("first.last@sub.example.org"));
        assert!(!is_email("no-at-sign"));
        assert!(!is_email("@missing.local"));
        assert!(!is_email("two@@ats.com"));
        assert!(!is_email("space in@local.com"));
        assert!(!is_email("user@nodot"));
    }

    #[test]
    fn user_account_matcher() {
        for ok in ["hd7gr", "ys3kz", "ab1cd", "xyz9ab", "ab1c2"] {
            assert!(is_user_account(ok), "{ok}");
        }
        for bad in [
            "a1bcd",
            "abcd1e",
            "hd7g",
            "toolong9xx",
            "HD7GR",
            "1a2b3",
            "john",
            "",
        ] {
            assert!(!is_user_account(bad), "{bad}");
        }
    }

    #[test]
    fn localhost_matcher() {
        assert!(is_localhost("localhost"));
        assert!(is_localhost("LOCALHOST"));
        assert!(is_localhost("localhost.localdomain"));
        assert!(is_localhost("myhost.localdomain"));
        assert!(!is_localhost("localhost-like.example.com"));
        assert!(!is_localhost("notlocalhost"));
    }
}
