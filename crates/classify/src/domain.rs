//! Domain-name recognition and TLD/SLD extraction.
//!
//! The paper uses Python `tldextract` backed by the Public Suffix List. We
//! embed the slice of the PSL that covers every suffix the simulation (and
//! the paper's tables) mention, plus the common two-level country suffixes,
//! and implement longest-suffix-match extraction over it.

/// Single-label public suffixes.
const TLDS: &[&str] = &[
    "com", "org", "net", "edu", "gov", "mil", "int", "io", "me", "co", "cn", "top", "info", "biz",
    "us", "uk", "de", "fr", "jp", "au", "ca", "nl", "se", "no", "ch", "it", "es", "eu", "kr", "in",
    "br", "ru", "xyz", "dev", "app", "cloud", "online", "site", "tech", "ai",
    // "og" is not a real IANA TLD, but the reproduced paper's Table 5
    // contains the literal SLD "acr.og"; treated as a suffix for fidelity.
    "og",
];

/// Multi-label public suffixes (longest match wins).
const MULTI_SUFFIXES: &[&str] = &[
    "co.uk", "ac.uk", "gov.uk", "org.uk", "com.au", "edu.au", "gov.au", "co.jp", "ac.jp", "com.cn",
    "edu.cn", "gov.cn", "com.br", "co.kr", "co.in",
];

/// The pieces `tldextract` returns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DomainParts {
    /// The public suffix, e.g. `com` or `co.uk`.
    pub tld: String,
    /// The registrable label directly left of the suffix, e.g. `amazonaws`.
    pub sld: String,
    /// Any further labels, e.g. `ec2.us-east-1`.
    pub subdomain: String,
}

impl DomainParts {
    /// `sld.tld` — the registered domain the paper groups by.
    pub fn registered_domain(&self) -> String {
        format!("{}.{}", self.sld, self.tld)
    }
}

fn is_label(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 63
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        && !s.starts_with('-')
        && !s.ends_with('-')
}

/// Strict domain-name shape test: dot-separated valid labels ending in a
/// known public suffix, with at least one label left of the suffix, no
/// spaces, and not all-numeric (that would be an IP fragment). A leading
/// wildcard label (`*.example.com`) is accepted, as in certificates.
pub fn is_domain_name(s: &str) -> bool {
    extract_domain(s).is_some()
}

/// Extract TLD/SLD/subdomain, or `None` when `s` is not a domain name.
pub fn extract_domain(s: &str) -> Option<DomainParts> {
    let s = s.trim().trim_end_matches('.');
    if s.is_empty() || s.contains(' ') || s.contains('@') || !s.contains('.') {
        return None;
    }
    // SNIs and SAN entries are lowercase in the overwhelming majority of
    // records; only allocate a lowered copy when one actually differs.
    let lower: std::borrow::Cow<'_, str> = if s.bytes().any(|b| b.is_ascii_uppercase()) {
        std::borrow::Cow::Owned(s.to_ascii_lowercase())
    } else {
        std::borrow::Cow::Borrowed(s)
    };
    let labels: Vec<&str> = lower.split('.').collect();
    if labels.len() < 2 {
        return None;
    }
    for (i, label) in labels.iter().enumerate() {
        if i == 0 && *label == "*" {
            continue; // wildcard leaf
        }
        if !is_label(label) {
            return None;
        }
    }

    // Longest-suffix match: try two-label suffixes first (compared
    // piecewise — no temporary allocation).
    let last = labels[labels.len() - 1];
    let suffix_len = if labels.len() >= 3 {
        let second_last = labels[labels.len() - 2];
        let is_multi = MULTI_SUFFIXES.iter().any(|suf| {
            suf.split_once('.')
                .is_some_and(|(a, b)| a == second_last && b == last)
        });
        if is_multi {
            2
        } else if TLDS.contains(&last) {
            1
        } else {
            return None;
        }
    } else if TLDS.contains(&last) {
        1
    } else {
        return None;
    };

    if labels.len() <= suffix_len {
        return None; // bare public suffix
    }
    let sld = labels[labels.len() - suffix_len - 1];
    if sld == "*" || sld.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let tld = labels[labels.len() - suffix_len..].join(".");
    let subdomain = labels[..labels.len() - suffix_len - 1].join(".");
    Some(DomainParts {
        tld,
        sld: sld.to_string(),
        subdomain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_domains() {
        let p = extract_domain("www.example.com").unwrap();
        assert_eq!(p.tld, "com");
        assert_eq!(p.sld, "example");
        assert_eq!(p.subdomain, "www");
        assert_eq!(p.registered_domain(), "example.com");
    }

    #[test]
    fn paper_slds() {
        for (input, sld, tld) in [
            ("ec2-3-91-1-2.compute-1.amazonaws.com", "amazonaws", "com"),
            ("endpoint.rapid7.com", "rapid7", "com"),
            ("edge.gpcloudservice.com", "gpcloudservice", "com"),
            ("idrive.com", "idrive", "com"),
            ("transfer.globus.org", "globus", "org"),
            ("fireboard.io", "fireboard", "io"),
            ("ayoba.me", "ayoba", "me"),
            ("tablodash.com", "tablodash", "com"),
        ] {
            let p = extract_domain(input).unwrap();
            assert_eq!((p.sld.as_str(), p.tld.as_str()), (sld, tld), "{input}");
        }
    }

    #[test]
    fn multi_label_suffixes() {
        let p = extract_domain("shop.example.co.uk").unwrap();
        assert_eq!(p.tld, "co.uk");
        assert_eq!(p.sld, "example");
        assert_eq!(p.subdomain, "shop");
    }

    #[test]
    fn wildcards_allowed() {
        let p = extract_domain("*.example.org").unwrap();
        assert_eq!(p.sld, "example");
        assert!(extract_domain("*.com").is_none());
    }

    #[test]
    fn free_text_rejected() {
        for s in [
            "John Smith",
            "WebRTC",
            "Hybrid Runbook Worker",
            "__transfer__",
            "localhost",
            "",
            "no-dots-here",
            "exa mple.com",
            "user@example.com",
            "..",
            "com",
        ] {
            assert!(extract_domain(s).is_none(), "{s:?}");
        }
    }

    #[test]
    fn unknown_tld_rejected() {
        assert!(extract_domain("host.notarealtld").is_none());
    }

    #[test]
    fn numeric_sld_rejected() {
        // "1.2.3.4"-like shapes must not be classified as domains.
        assert!(extract_domain("1.2.3.com").is_none());
    }

    #[test]
    fn trailing_dot_ok() {
        assert!(extract_domain("example.com.").is_some());
    }

    #[test]
    fn case_insensitive() {
        let p = extract_domain("WWW.EXAMPLE.COM").unwrap();
        assert_eq!(p.registered_domain(), "example.com");
    }
}
