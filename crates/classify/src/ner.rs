//! Gazetteer-based named-entity recognition over free-text CN/SAN values.
//!
//! The stand-in for spaCy's transformer NER (DESIGN.md §1). Personal names
//! are recognized as `Given Surname` / `Surname, Given` (plus middle
//! initials) against the embedded name lists; organizations and products by
//! gazetteer membership or a legal-suffix heuristic. Per the paper, the
//! product and organization labels are merged into one *Org/Product* bucket.

use crate::gazetteer::{contains_ci, GIVEN_NAMES, ORGANIZATIONS, ORG_SUFFIXES, PRODUCTS, SURNAMES};

/// NER verdicts (already merged the way Table 8 reports them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NerLabel {
    Person,
    OrgOrProduct,
}

fn is_title_case(token: &str) -> bool {
    let mut chars = token.chars();
    match chars.next() {
        Some(c) if c.is_ascii_uppercase() => chars.all(|c| c.is_ascii_lowercase() || c == '\''),
        _ => false,
    }
}

fn alpha_tokens(text: &str) -> Vec<&str> {
    text.split([' ', '\t']).filter(|t| !t.is_empty()).collect()
}

/// Personal-name detector.
pub fn is_personal_name(text: &str) -> bool {
    let t = text.trim().trim_end_matches(['.', ',']);
    // "Surname, Given" form.
    if let Some((last, first)) = t.split_once(',') {
        let last = last.trim();
        let first = first.trim();
        if !last.is_empty()
            && !first.is_empty()
            && contains_ci(SURNAMES, last)
            && contains_ci(GIVEN_NAMES, first.split(' ').next().unwrap_or(""))
        {
            return true;
        }
    }
    let tokens = alpha_tokens(t);
    if !(2..=4).contains(&tokens.len()) {
        return false;
    }
    if !tokens.iter().all(|tok| {
        is_title_case(tok) || (tok.len() == 2 && tok.ends_with('.')) // middle initial "Q."
    }) {
        return false;
    }
    let first = tokens[0];
    let last = tokens[tokens.len() - 1];
    contains_ci(GIVEN_NAMES, first) && contains_ci(SURNAMES, last)
}

/// Organization/product detector.
pub fn is_org_or_product(text: &str) -> bool {
    let t = text.trim();
    if t.is_empty() {
        return false;
    }
    let lower = t.to_ascii_lowercase();
    // Whole-string gazetteer hits (products can be multi-word).
    if PRODUCTS.contains(&lower.as_str()) || ORGANIZATIONS.contains(&lower.as_str()) {
        return true;
    }
    // Any token is a known org/product name ("Lenovo ThinkPad X1",
    // "twilio:gateway-7", "Apple iPhone Device").
    let norm: String = lower
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '&' {
                c
            } else {
                ' '
            }
        })
        .collect();
    let tokens: Vec<&str> = norm.split(' ').filter(|x| !x.is_empty()).collect();
    if tokens
        .iter()
        .any(|tok| PRODUCTS.contains(tok) || ORGANIZATIONS.contains(tok))
    {
        return true;
    }
    // Multi-word phrase hits ("hybrid runbook worker" inside a longer CN).
    if PRODUCTS
        .iter()
        .chain(ORGANIZATIONS.iter())
        .any(|e| e.contains(' ') && norm.contains(e))
    {
        return true;
    }
    // Legal-suffix heuristic: >= 2 tokens ending in a corporate suffix.
    tokens.len() >= 2 && ORG_SUFFIXES.contains(tokens.last().expect("non-empty"))
}

/// Run NER; `None` means unidentified.
pub fn label(text: &str) -> Option<NerLabel> {
    if is_personal_name(text) {
        Some(NerLabel::Person)
    } else if is_org_or_product(text) {
        Some(NerLabel::OrgOrProduct)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_simple_names() {
        for name in [
            "John Smith",
            "Mary Johnson",
            "Sarah Lee",
            "Hongying Dong",
            "Robert Q. Wilson",
            "Smith, John",
        ] {
            assert_eq!(label(name), Some(NerLabel::Person), "{name}");
        }
    }

    #[test]
    fn rejects_non_names() {
        for s in [
            "WebRTC",
            "host-1234",
            "GET index",
            "john smith", // lowercase: certificate CNs with real names are title-case
            "Xq Zv",      // title case but not in gazetteers
            "John",       // single token
        ] {
            assert_ne!(label(s), Some(NerLabel::Person), "{s}");
        }
    }

    #[test]
    fn detects_products_and_orgs() {
        for s in [
            "WebRTC",
            "twilio",
            "hangouts",
            "Hybrid Runbook Worker",
            "Android Keystore",
            "Lenovo ThinkPad X1 Carbon",
            "Honeywell International Inc",
            "Outset Medical",
            "American Psychiatric Association",
            "Splunk",
        ] {
            assert_eq!(label(s), Some(NerLabel::OrgOrProduct), "{s}");
        }
    }

    #[test]
    fn unidentified_strings() {
        for s in [
            "f3a9c2d17b604e5d",
            "550e8400-e29b-41d4-a716-446655440000",
            "__transfer__",
            "hmpp",
            "",
            "a b c d e f", // too many tokens for a name, no org hits
        ] {
            assert_eq!(label(s), None, "{s:?}");
        }
    }

    #[test]
    fn person_beats_org_when_both_plausible() {
        // "James King": both tokens are also common words; gazetteer says
        // given+surname, and classify() checks Person first.
        assert_eq!(label("James King"), Some(NerLabel::Person));
    }

    #[test]
    fn org_suffix_requires_two_tokens() {
        assert_eq!(label("Inc"), None);
        assert_eq!(label("Acme Widgets Inc"), Some(NerLabel::OrgOrProduct));
    }
}
