//! Information-type classification for CN and SAN strings.
//!
//! Reproduces the paper's §6.1 methodology. Format-specific types are
//! recognized first, in the paper's order — domain name, IP address, MAC
//! address, SIP address, email address, university user account, localhost —
//! then free text goes through a gazetteer-based named-entity recognizer
//! (the stand-in for spaCy's `en_core_web_trf`; see DESIGN.md §1) that
//! labels personal names and organization/product names. Whatever survives
//! is *Unidentified* and is further broken down (Table 9) into non-random
//! strings, issuer-recognizable strings, and random strings of the
//! characteristic lengths 8/32/36.
//!
//! # Example
//!
//! ```
//! use mtls_classify::{classify, ClassifyContext, InfoType};
//!
//! let ctx = ClassifyContext::default();
//! assert_eq!(classify("www.example.org", ctx), InfoType::Domain);
//! assert_eq!(classify("12:34:56:AB:CD:EF", ctx), InfoType::Mac);
//! assert_eq!(classify("John Smith", ctx), InfoType::PersonalName);
//! assert_eq!(classify("f3a9c2d17b604e5d", ctx), InfoType::Unidentified);
//!
//! // University user accounts only count when a campus CA issued the
//! // certificate (§6.1.1).
//! let campus = ClassifyContext { issuer_is_campus: true, ..ctx };
//! assert_eq!(classify("hd7gr", campus), InfoType::UserAccount);
//! ```

pub mod domain;
pub mod gazetteer;
pub mod matchers;
pub mod ner;
pub mod random;

pub use domain::{extract_domain, DomainParts};
pub use ner::NerLabel;
pub use random::{classify_random, RandomClass};

/// The information types of Table 8, in the paper's row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InfoType {
    Domain,
    Ip,
    Mac,
    Sip,
    Email,
    UserAccount,
    PersonalName,
    OrgProduct,
    Localhost,
    Unidentified,
}

impl InfoType {
    /// Row label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            InfoType::Domain => "Domain",
            InfoType::Ip => "IP",
            InfoType::Mac => "MAC",
            InfoType::Sip => "SIP",
            InfoType::Email => "Email",
            InfoType::UserAccount => "User account",
            InfoType::PersonalName => "Personal name",
            InfoType::OrgProduct => "Org/Product",
            InfoType::Localhost => "Localhost",
            InfoType::Unidentified => "Unidentified",
        }
    }

    /// All types in table order.
    pub const ALL: [InfoType; 10] = [
        InfoType::Domain,
        InfoType::Ip,
        InfoType::Mac,
        InfoType::Sip,
        InfoType::Email,
        InfoType::UserAccount,
        InfoType::PersonalName,
        InfoType::OrgProduct,
        InfoType::Localhost,
        InfoType::Unidentified,
    ];
}

impl std::fmt::Display for InfoType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Context the classifier may consult, mirroring the paper's joint use of
/// CN/SAN text and the certificate's issuer field.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassifyContext<'a> {
    /// The certificate's issuer organization, if any.
    pub issuer_org: Option<&'a str>,
    /// Whether the issuer is one of the campus CAs (user accounts are only
    /// credited when a campus CA issued the certificate — §6.1.1).
    pub issuer_is_campus: bool,
}

/// Classify one CN or SAN string.
pub fn classify(text: &str, ctx: ClassifyContext<'_>) -> InfoType {
    let t = text.trim();
    if t.is_empty() {
        return InfoType::Unidentified;
    }
    if matchers::is_localhost(t) {
        return InfoType::Localhost;
    }
    if matchers::is_ip(t) {
        return InfoType::Ip;
    }
    if matchers::is_mac(t) {
        return InfoType::Mac;
    }
    if matchers::is_sip(t) {
        return InfoType::Sip;
    }
    if matchers::is_email(t) {
        return InfoType::Email;
    }
    if domain::is_domain_name(t) {
        return InfoType::Domain;
    }
    if ctx.issuer_is_campus && matchers::is_user_account(t) {
        return InfoType::UserAccount;
    }
    match ner::label(t) {
        Some(NerLabel::Person) => InfoType::PersonalName,
        Some(NerLabel::OrgOrProduct) => InfoType::OrgProduct,
        None => InfoType::Unidentified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(text: &str) -> InfoType {
        classify(text, ClassifyContext::default())
    }

    fn campus(text: &str) -> InfoType {
        classify(
            text,
            ClassifyContext {
                issuer_org: Some("Commonwealth University"),
                issuer_is_campus: true,
            },
        )
    }

    #[test]
    fn precedence_matches_paper() {
        assert_eq!(c("www.example.org"), InfoType::Domain);
        assert_eq!(c("192.168.1.10"), InfoType::Ip);
        assert_eq!(c("12:34:56:AB:CD:EF"), InfoType::Mac);
        assert_eq!(c("sip:4434@voip.example.edu"), InfoType::Sip);
        assert_eq!(c("someone@example.org"), InfoType::Email);
        assert_eq!(c("localhost"), InfoType::Localhost);
        assert_eq!(c("John Smith"), InfoType::PersonalName);
        assert_eq!(c("WebRTC"), InfoType::OrgProduct);
        assert_eq!(c("f3a9c2d17b604e5d"), InfoType::Unidentified);
    }

    #[test]
    fn user_accounts_need_campus_issuer() {
        assert_eq!(campus("hd7gr"), InfoType::UserAccount);
        // Without the campus issuer the same string is unidentified.
        assert_eq!(c("hd7gr"), InfoType::Unidentified);
    }

    #[test]
    fn empty_is_unidentified() {
        assert_eq!(c(""), InfoType::Unidentified);
        assert_eq!(c("   "), InfoType::Unidentified);
    }

    #[test]
    fn localhost_beats_domain() {
        assert_eq!(c("localhost.localdomain"), InfoType::Localhost);
    }

    #[test]
    fn table_row_order() {
        assert_eq!(InfoType::ALL[0], InfoType::Domain);
        assert_eq!(InfoType::ALL[9], InfoType::Unidentified);
        assert_eq!(InfoType::UserAccount.label(), "User account");
    }
}
