//! Labelled-fixture evaluation of the classifier.
//!
//! The paper reports precision and recall of 0.9 for personal-name
//! detection with its spaCy + manual-review pipeline (§6.1.1). This test
//! measures the gazetteer NER against a labelled fixture set and asserts
//! both stay at or above 0.9, plus exactness on the format matchers.

use mtls_classify::{classify, ClassifyContext, InfoType};
use proptest::prelude::*;

/// (text, is_person) fixtures: a mix of true names, hard negatives that
/// *look* like names, and miscellaneous CN content.
const PERSON_FIXTURES: &[(&str, bool)] = &[
    ("John Smith", true),
    ("Mary Johnson", true),
    ("Robert Williams", true),
    ("Patricia Brown", true),
    ("Michael Davis", true),
    ("Linda Garcia", true),
    ("David Rodriguez", true),
    ("Elizabeth Martinez", true),
    ("James Wilson", true),
    ("Jennifer Anderson", true),
    ("Wilson, James", true),
    ("Sarah Q. Lee", true),
    ("Hongying Dong", true),
    ("Wei Zhang", true),
    ("Priya Patel", true),
    ("Carlos Silva", true),
    ("Emma Thompson", true),
    ("Noah King", true),
    ("Grace Hill", true),
    ("Olivia Walker", true),
    // Hard negatives.
    ("Hybrid Runbook Worker", false),
    ("Internet Widgits Pty Ltd", false),
    ("FXP DCAU Cert", false),
    ("Android Keystore", false),
    ("Default City", false),
    ("Acme Widgets Inc", false),
    ("mail-gateway-01", false),
    ("WebRTC", false),
    ("__transfer__", false),
    ("550e8400-e29b-41d4-a716-446655440000", false),
    ("server01.example.com", false),
    ("Xq Zv", false),
    ("General Purpose", false),
    ("New York", false),
    ("Santa Clara", false),
];

#[test]
fn personal_name_precision_and_recall_at_least_090() {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for &(text, truth) in PERSON_FIXTURES {
        let predicted = classify(text, ClassifyContext::default()) == InfoType::PersonalName;
        match (predicted, truth) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    assert!(
        precision >= 0.9,
        "precision {precision:.2} (tp={tp} fp={fp})"
    );
    assert!(recall >= 0.9, "recall {recall:.2} (tp={tp} fn={fn_})");
}

#[test]
fn format_matchers_are_exact_on_fixture_set() {
    let cases: &[(&str, InfoType)] = &[
        ("portal.health.example.edu", InfoType::Domain),
        ("*.amazonaws.com", InfoType::Domain),
        ("10.0.0.1", InfoType::Ip),
        ("2001:db8::dead:beef", InfoType::Ip),
        ("AA:BB:CC:DD:EE:FF", InfoType::Mac),
        ("sip:8003@voip.campus.example", InfoType::Sip),
        ("jane.doe@example.org", InfoType::Email),
        ("localhost", InfoType::Localhost),
        ("box7.localdomain", InfoType::Localhost),
        ("twilio", InfoType::OrgProduct),
        ("hangouts", InfoType::OrgProduct),
        ("IDrive Inc Certificate Authority", InfoType::OrgProduct),
        ("f00dfeed", InfoType::Unidentified),
        ("Dtls", InfoType::Unidentified),
    ];
    for (text, expected) in cases {
        assert_eq!(
            classify(text, ClassifyContext::default()),
            *expected,
            "{text}"
        );
    }
}

proptest! {
    #[test]
    fn classifier_never_panics(s in "\\PC{0,80}") {
        let _ = classify(&s, ClassifyContext::default());
        let _ = classify(&s, ClassifyContext { issuer_org: Some("x"), issuer_is_campus: true });
    }

    #[test]
    fn generated_uuids_are_unidentified(a in any::<u128>()) {
        let bytes = a.to_be_bytes();
        let hex = bytes.iter().map(|b| format!("{b:02x}")).collect::<String>();
        let uuid = format!(
            "{}-{}-{}-{}-{}",
            &hex[0..8], &hex[8..12], &hex[12..16], &hex[16..20], &hex[20..32]
        );
        prop_assert_eq!(classify(&uuid, ClassifyContext::default()), InfoType::Unidentified);
        prop_assert!(mtls_classify::random::is_random_string(&uuid));
        prop_assert_eq!(
            mtls_classify::classify_random(&uuid, false),
            mtls_classify::RandomClass::RandomLen36
        );
    }

    #[test]
    fn mac_addresses_always_classified_mac(bytes in proptest::collection::vec(any::<u8>(), 6)) {
        let mac = bytes.iter().map(|b| format!("{b:02X}")).collect::<Vec<_>>().join(":");
        prop_assert_eq!(classify(&mac, ClassifyContext::default()), InfoType::Mac);
    }
}
