//! Client-authentication validation policies.
//!
//! The paper's central security finding is that mutual-TLS deployments
//! *accept* certificates a careful validator would reject — expired ones,
//! inverted validity windows, empty issuers, colliding dummy serials, weak
//! keys, certificates shared between endpoints — "prompting a critical
//! re-evaluation of client-side authentication validation procedures in
//! over 13 million connections" (§1), and §7 proposes adversarial testing
//! of validator implementations as future work.
//!
//! This module implements that validator: a configurable [`ValidationPolicy`]
//! that evaluates a presented certificate (plus connection context) and
//! returns every [`Violation`] found. `mtls-core`'s audit analyzer replays a
//! corpus through it to reproduce the 13-million-connections headline, and
//! the adversarial test-suite in `tests/` probes it with the paper's §5
//! pathologies.

use crate::issuercat::is_dummy_org;
use crate::truststore::TrustAnchors;
use mtls_asn1::Asn1Time;
use mtls_x509::{Certificate, Version};

/// Everything a strict validator would object to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Violation {
    /// The certificate is expired at validation time.
    Expired,
    /// `notBefore` is in the future at validation time.
    NotYetValid,
    /// `notBefore` does not precede `notAfter` (§5.3.1).
    IncorrectDates,
    /// Issuer DN carries no organization at all (§4.2.2's 37.84 %).
    MissingIssuer,
    /// Issuer organization is a software default string (§5.1.1).
    DummyIssuer,
    /// Issuer is not anchored in any configured root program.
    UntrustedIssuer,
    /// RSA modulus below the configured minimum (NIST SP 800-57: 2048).
    WeakKey,
    /// X.509 v1 — no extensions, no modern validation surface (§5.1.1).
    ObsoleteVersion,
    /// Validity period exceeds the configured maximum (§5.3.2's 27–228-year
    /// certificates).
    ExcessiveValidity,
    /// The same certificate was presented by the other endpoint of this
    /// connection (§5.2.1).
    SharedWithPeer,
    /// Deprecated signature hash (SHA-1 / MD5).
    DeprecatedSignatureAlgorithm,
}

impl Violation {
    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Violation::Expired => "expired",
            Violation::NotYetValid => "not yet valid",
            Violation::IncorrectDates => "incorrect dates (notBefore >= notAfter)",
            Violation::MissingIssuer => "missing issuer organization",
            Violation::DummyIssuer => "dummy issuer organization",
            Violation::UntrustedIssuer => "issuer not in any root program",
            Violation::WeakKey => "key below minimum strength",
            Violation::ObsoleteVersion => "X.509 v1",
            Violation::ExcessiveValidity => "excessive validity period",
            Violation::SharedWithPeer => "same certificate as peer endpoint",
            Violation::DeprecatedSignatureAlgorithm => "deprecated signature algorithm",
        }
    }

    /// All violations, in report order.
    pub const ALL: [Violation; 11] = [
        Violation::Expired,
        Violation::NotYetValid,
        Violation::IncorrectDates,
        Violation::MissingIssuer,
        Violation::DummyIssuer,
        Violation::UntrustedIssuer,
        Violation::WeakKey,
        Violation::ObsoleteVersion,
        Violation::ExcessiveValidity,
        Violation::SharedWithPeer,
        Violation::DeprecatedSignatureAlgorithm,
    ];
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A configurable client-certificate validation policy.
///
/// [`ValidationPolicy::strict`] models what the paper argues deployments
/// *should* enforce; [`ValidationPolicy::lax`] models what the measured
/// deployments evidently do (accept almost anything); enterprise deployments
/// sit in between ([`ValidationPolicy::enterprise`] allows private anchors
/// but rejects the §5 pathologies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationPolicy {
    /// Reject certificates outside their validity window.
    pub check_validity_window: bool,
    /// Reject inverted/equal validity dates.
    pub check_date_sanity: bool,
    /// Reject empty issuer organizations.
    pub require_issuer: bool,
    /// Reject software-default issuer strings.
    pub reject_dummy_issuers: bool,
    /// Require the issuer to be anchored in a root program.
    pub require_trusted_issuer: bool,
    /// Minimum RSA modulus size in bits (0 disables the check).
    pub min_rsa_bits: u16,
    /// Reject X.509 v1 certificates.
    pub reject_v1: bool,
    /// Maximum validity period in days (0 disables the check).
    pub max_validity_days: i64,
    /// Reject a certificate identical to the peer's.
    pub reject_shared_with_peer: bool,
    /// Reject SHA-1 / MD5 signature algorithms.
    pub reject_deprecated_signatures: bool,
}

impl ValidationPolicy {
    /// What validation *should* look like (CA/B-flavoured).
    pub fn strict() -> ValidationPolicy {
        ValidationPolicy {
            check_validity_window: true,
            check_date_sanity: true,
            require_issuer: true,
            reject_dummy_issuers: true,
            require_trusted_issuer: true,
            min_rsa_bits: 2048,
            reject_v1: true,
            max_validity_days: 825,
            reject_shared_with_peer: true,
            reject_deprecated_signatures: true,
        }
    }

    /// Private-PKI enterprise posture: private anchors are fine, the §5
    /// pathologies are not.
    pub fn enterprise() -> ValidationPolicy {
        ValidationPolicy {
            require_trusted_issuer: false,
            max_validity_days: 3_650,
            ..ValidationPolicy::strict()
        }
    }

    /// What the measured deployments evidently enforce: nothing beyond
    /// "a certificate was presented".
    pub fn lax() -> ValidationPolicy {
        ValidationPolicy {
            check_validity_window: false,
            check_date_sanity: false,
            require_issuer: false,
            reject_dummy_issuers: false,
            require_trusted_issuer: false,
            min_rsa_bits: 0,
            reject_v1: false,
            max_validity_days: 0,
            reject_shared_with_peer: false,
            reject_deprecated_signatures: false,
        }
    }

    /// Evaluate a parsed certificate. `peer_same_cert` says whether the
    /// other endpoint presented the identical certificate; `anchors` is
    /// consulted only when `require_trusted_issuer` is set.
    pub fn evaluate(
        &self,
        cert: &Certificate,
        at: Asn1Time,
        peer_same_cert: bool,
        anchors: Option<&TrustAnchors>,
    ) -> Vec<Violation> {
        let mut violations = Vec::new();
        let inverted = cert.has_incorrect_dates();
        if self.check_date_sanity && inverted {
            violations.push(Violation::IncorrectDates);
        }
        if self.check_validity_window && !inverted {
            if cert.is_expired_at(at) {
                violations.push(Violation::Expired);
            } else if at < cert.not_before() {
                violations.push(Violation::NotYetValid);
            }
        }
        let issuer_org = cert.issuer().organization();
        if self.require_issuer && issuer_org.map(str::trim).is_none_or(str::is_empty) {
            violations.push(Violation::MissingIssuer);
        }
        if self.reject_dummy_issuers {
            if let Some(org) = issuer_org {
                if is_dummy_org(org) {
                    violations.push(Violation::DummyIssuer);
                }
            }
        }
        if self.require_trusted_issuer {
            let trusted = anchors
                .map(|a| a.is_public_issuer(cert.issuer()))
                .unwrap_or(false);
            if !trusted {
                violations.push(Violation::UntrustedIssuer);
            }
        }
        if self.min_rsa_bits > 0 {
            if let mtls_x509::KeyAlgorithm::Rsa { bits } = cert.public_key().algorithm {
                if bits < self.min_rsa_bits {
                    violations.push(Violation::WeakKey);
                }
            }
        }
        if self.reject_v1 && cert.version() == Version::V1 {
            violations.push(Violation::ObsoleteVersion);
        }
        if self.max_validity_days > 0 && !inverted && cert.validity_days() > self.max_validity_days
        {
            violations.push(Violation::ExcessiveValidity);
        }
        if self.reject_shared_with_peer && peer_same_cert {
            violations.push(Violation::SharedWithPeer);
        }
        if self.reject_deprecated_signatures && cert.signature_algorithm().is_deprecated() {
            violations.push(Violation::DeprecatedSignatureAlgorithm);
        }
        violations
    }

    /// Convenience: would this policy accept the certificate?
    pub fn accepts(
        &self,
        cert: &Certificate,
        at: Asn1Time,
        peer_same_cert: bool,
        anchors: Option<&TrustAnchors>,
    ) -> bool {
        self.evaluate(cert, at, peer_same_cert, anchors).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::truststore::RootProgram;
    use mtls_crypto::Keypair;
    use mtls_x509::{CertificateBuilder, DistinguishedName, KeyAlgorithm};

    fn now() -> Asn1Time {
        Asn1Time::from_ymd(2023, 6, 1)
    }

    fn ca(org: &str) -> CertificateAuthority {
        CertificateAuthority::new_root(
            org.as_bytes(),
            DistinguishedName::builder().organization(org).build(),
            now(),
        )
    }

    fn healthy_cert() -> Certificate {
        let k = Keypair::from_seed(b"healthy");
        ca("Good Corp Inc").issue(
            CertificateBuilder::new()
                .subject(DistinguishedName::builder().common_name("agent-1").build())
                .validity(now().add_days(-10), now().add_days(90))
                .subject_key(k.key_id()),
        )
    }

    #[test]
    fn lax_accepts_everything() {
        let policy = ValidationPolicy::lax();
        let k = Keypair::from_seed(b"awful");
        let awful = CertificateBuilder::new()
            .version(Version::V1)
            .issuer(DistinguishedName::empty())
            .subject(DistinguishedName::empty())
            .validity(now().add_days(100), now().add_days(-60_000))
            .key_algorithm(KeyAlgorithm::Rsa { bits: 1024 })
            .signature_algorithm(mtls_x509::SignatureAlgorithm::Md5WithRsa)
            .subject_key(k.key_id())
            .sign(&Keypair::from_seed(b"nobody"));
        assert!(policy.accepts(&awful, now(), true, None));
    }

    #[test]
    fn strict_flags_each_pathology_separately() {
        let policy = ValidationPolicy::enterprise();
        let at = now();

        let k = Keypair::from_seed(b"x");
        let issuer = ca("Plain Org Inc");

        // Expired.
        let expired = issuer.issue(
            CertificateBuilder::new()
                .validity(at.add_days(-1_365), at.add_days(-1_000))
                .subject_key(k.key_id()),
        );
        assert_eq!(
            policy.evaluate(&expired, at, false, None),
            vec![Violation::Expired]
        );

        // Inverted dates (reported instead of Expired, not alongside).
        let inverted = issuer.issue(
            CertificateBuilder::new()
                .validity(at, at.add_days(-60_000))
                .subject_key(k.key_id()),
        );
        assert_eq!(
            policy.evaluate(&inverted, at, false, None),
            vec![Violation::IncorrectDates]
        );

        // Missing issuer.
        let missing = issuer.issue_verbatim(
            CertificateBuilder::new()
                .issuer(DistinguishedName::empty())
                .validity(at.add_days(-1), at.add_days(30))
                .subject_key(k.key_id()),
        );
        assert_eq!(
            policy.evaluate(&missing, at, false, None),
            vec![Violation::MissingIssuer]
        );

        // Dummy issuer.
        let dummy = ca("Internet Widgits Pty Ltd").issue(
            CertificateBuilder::new()
                .validity(at.add_days(-1), at.add_days(30))
                .subject_key(k.key_id()),
        );
        assert_eq!(
            policy.evaluate(&dummy, at, false, None),
            vec![Violation::DummyIssuer]
        );

        // Weak key.
        let weak = issuer.issue(
            CertificateBuilder::new()
                .validity(at.add_days(-1), at.add_days(30))
                .key_algorithm(KeyAlgorithm::Rsa { bits: 1024 })
                .subject_key(k.key_id()),
        );
        assert_eq!(
            policy.evaluate(&weak, at, false, None),
            vec![Violation::WeakKey]
        );

        // Excessive validity (the 83,432-day certificate).
        let forever = issuer.issue(
            CertificateBuilder::new()
                .validity(at.add_days(-1), at.add_days(83_432))
                .subject_key(k.key_id()),
        );
        assert_eq!(
            policy.evaluate(&forever, at, false, None),
            vec![Violation::ExcessiveValidity]
        );

        // Shared with peer.
        let healthy = healthy_cert();
        assert_eq!(
            policy.evaluate(&healthy, at, true, None),
            vec![Violation::SharedWithPeer]
        );

        // Healthy, not shared: accepted.
        assert!(policy.accepts(&healthy, at, false, None));
    }

    #[test]
    fn v1_and_deprecated_signature_flagged() {
        let policy = ValidationPolicy::enterprise();
        let k = Keypair::from_seed(b"old");
        let signer = Keypair::from_seed(b"oldca");
        let old = CertificateBuilder::new()
            .version(Version::V1)
            .issuer(
                DistinguishedName::builder()
                    .organization("Legacy Inc")
                    .build(),
            )
            .validity(now().add_days(-1), now().add_days(30))
            .signature_algorithm(mtls_x509::SignatureAlgorithm::Sha1WithRsa)
            .subject_key(k.key_id())
            .sign(&signer);
        let v = policy.evaluate(&old, now(), false, None);
        assert!(v.contains(&Violation::ObsoleteVersion));
        assert!(v.contains(&Violation::DeprecatedSignatureAlgorithm));
    }

    #[test]
    fn strict_requires_anchored_issuer() {
        let policy = ValidationPolicy::strict();
        let healthy = healthy_cert();
        // No anchors given: untrusted.
        assert!(policy
            .evaluate(&healthy, now(), false, None)
            .contains(&Violation::UntrustedIssuer));
        // Anchored: clean.
        let issuer = ca("Good Corp Inc");
        let mut anchors = TrustAnchors::new();
        anchors.add_to(&[RootProgram::MozillaNss], issuer.certificate());
        assert!(policy.accepts(&healthy, now(), false, Some(&anchors)));
    }

    #[test]
    fn not_yet_valid_detected() {
        let policy = ValidationPolicy::enterprise();
        let k = Keypair::from_seed(b"future");
        let cert = ca("Future Org Inc").issue(
            CertificateBuilder::new()
                .validity(now().add_days(30), now().add_days(365))
                .subject_key(k.key_id()),
        );
        assert_eq!(
            policy.evaluate(&cert, now(), false, None),
            vec![Violation::NotYetValid]
        );
    }
}
