//! Issuer categorization (paper §4.2 "Methodology").
//!
//! The paper buckets client-certificate issuers into *Public* plus seven
//! private sub-categories by fuzzy-matching the issuer organization string.
//! This module reproduces that procedure: normalization, a small edit-
//! distance fuzzy match against known dummy strings, keyword gazetteers for
//! education/government/web-hosting, and a corporate-suffix heuristic.
//! Precedence mirrors the paper: missing issuer is checked first, public
//! trust is decided externally (trust stores), dummy strings beat the
//! corporate-suffix rule ("Internet Widgits Pty Ltd" ends in "Ltd" but is an
//! OpenSSL default, not a corporation).

/// The issuer categories of Table 3 / Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IssuerCategory {
    /// Issuer (or chain) found in CCADB or a major trust store.
    Public,
    /// Private — recognized corporation name.
    Corporation,
    /// Private — universities and schools.
    Education,
    /// Private — government bodies.
    Government,
    /// Private — web-hosting providers.
    WebHosting,
    /// Private — software/protocol default strings (OpenSSL et al.).
    Dummy,
    /// Private — organization present but unrecognized.
    Others,
    /// Private — issuer organization absent.
    MissingIssuer,
}

impl IssuerCategory {
    /// Label as printed in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            IssuerCategory::Public => "Public",
            IssuerCategory::Corporation => "Private - Corporation",
            IssuerCategory::Education => "Private - Education",
            IssuerCategory::Government => "Private - Government",
            IssuerCategory::WebHosting => "Private - WebHosting",
            IssuerCategory::Dummy => "Private - Dummy",
            IssuerCategory::Others => "Private - Others",
            IssuerCategory::MissingIssuer => "Private - MissingIssuer",
        }
    }

    /// All categories, for table rendering.
    pub const ALL: [IssuerCategory; 8] = [
        IssuerCategory::Public,
        IssuerCategory::Corporation,
        IssuerCategory::Education,
        IssuerCategory::Government,
        IssuerCategory::WebHosting,
        IssuerCategory::Dummy,
        IssuerCategory::Others,
        IssuerCategory::MissingIssuer,
    ];
}

impl std::fmt::Display for IssuerCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Software/protocol default organization strings (§5.1.1, Table 4).
pub const DUMMY_ORGS: &[&str] = &[
    "Internet Widgits Pty Ltd", // OpenSSL default
    "Default Company Ltd",
    "Unspecified",
    "Acme Co",
    "Example Inc",
    "SomeOrganization",
];

const EDUCATION_KEYWORDS: &[&str] = &[
    "university",
    "college",
    "school",
    "academy",
    "institute of technology",
    "polytechnic",
    "education",
];

const GOVERNMENT_KEYWORDS: &[&str] = &[
    "government",
    "ministry",
    "federal",
    "municipal",
    "city of",
    "state of",
    "county of",
    "national institute",
    "public health",
    "department of",
];

const WEBHOSTING_NAMES: &[&str] = &[
    "cpanel",
    "plesk",
    "bluehost",
    "hostgator",
    "dreamhost",
    "ovh",
    "hetzner",
    "namecheap",
    "hostinger",
    "webhost",
    "siteground",
    "ionos",
];

const CORPORATE_SUFFIXES: &[&str] = &[
    "inc",
    "incorporated",
    "llc",
    "ltd",
    "limited",
    "corp",
    "corporation",
    "co",
    "gmbh",
    "plc",
    "pty",
    "sa",
    "srl",
    "ag",
    "bv",
    "technologies",
    "systems",
    "labs",
    "software",
    "association",
];

/// Lowercase, strip punctuation, collapse whitespace.
pub fn normalize_org(org: &str) -> String {
    let mut out = String::with_capacity(org.len());
    let mut last_space = true;
    for ch in org.chars() {
        let c = ch.to_ascii_lowercase();
        if c.is_alphanumeric() {
            out.push(c);
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Byte-wise Levenshtein distance with an early-exit cap.
pub fn edit_distance_capped(a: &str, b: &str, cap: usize) -> usize {
    let a = a.as_bytes();
    let b = b.as_bytes();
    if a.len().abs_diff(b.len()) > cap {
        return cap + 1;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        let mut row_min = cur[0];
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            row_min = row_min.min(cur[j + 1]);
        }
        if row_min > cap {
            return cap + 1;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Whether the organization fuzzily matches a known dummy default
/// (edit distance ≤ 2 after normalization).
pub fn is_dummy_org(org: &str) -> bool {
    let norm = normalize_org(org);
    DUMMY_ORGS
        .iter()
        .any(|d| edit_distance_capped(&norm, &normalize_org(d), 2) <= 2)
}

/// Classify a (possibly absent) issuer organization string. `is_public` is
/// the externally-decided trust-store verdict and wins outright.
pub fn classify_issuer_org(org: Option<&str>, is_public: bool) -> IssuerCategory {
    if is_public {
        return IssuerCategory::Public;
    }
    let Some(org) = org.map(str::trim).filter(|s| !s.is_empty()) else {
        return IssuerCategory::MissingIssuer;
    };
    let norm = normalize_org(org);
    if norm.is_empty() {
        return IssuerCategory::MissingIssuer;
    }
    if is_dummy_org(org) {
        return IssuerCategory::Dummy;
    }
    if EDUCATION_KEYWORDS.iter().any(|k| norm.contains(k)) {
        return IssuerCategory::Education;
    }
    if GOVERNMENT_KEYWORDS.iter().any(|k| norm.contains(k)) {
        return IssuerCategory::Government;
    }
    if WEBHOSTING_NAMES.iter().any(|k| norm.contains(k)) || norm.contains("hosting") {
        return IssuerCategory::WebHosting;
    }
    // Corporate-suffix heuristic: last token is a recognized legal suffix,
    // or the name has >= 2 tokens and any token is a strong suffix.
    let tokens: Vec<&str> = norm.split(' ').collect();
    if let Some(last) = tokens.last() {
        if CORPORATE_SUFFIXES.contains(last) && tokens.len() >= 2 {
            return IssuerCategory::Corporation;
        }
    }
    if tokens.len() >= 2
        && tokens
            .iter()
            .any(|t| matches!(*t, "inc" | "llc" | "gmbh" | "corp"))
    {
        return IssuerCategory::Corporation;
    }
    IssuerCategory::Others
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_wins() {
        assert_eq!(
            classify_issuer_org(Some("DigiCert Inc"), true),
            IssuerCategory::Public
        );
        assert_eq!(classify_issuer_org(None, true), IssuerCategory::Public);
    }

    #[test]
    fn missing_issuer() {
        assert_eq!(
            classify_issuer_org(None, false),
            IssuerCategory::MissingIssuer
        );
        assert_eq!(
            classify_issuer_org(Some(""), false),
            IssuerCategory::MissingIssuer
        );
        assert_eq!(
            classify_issuer_org(Some("   "), false),
            IssuerCategory::MissingIssuer
        );
    }

    #[test]
    fn dummy_strings_beat_corporate_suffix() {
        assert_eq!(
            classify_issuer_org(Some("Internet Widgits Pty Ltd"), false),
            IssuerCategory::Dummy
        );
        assert_eq!(
            classify_issuer_org(Some("Default Company Ltd"), false),
            IssuerCategory::Dummy
        );
        assert_eq!(
            classify_issuer_org(Some("Unspecified"), false),
            IssuerCategory::Dummy
        );
        assert_eq!(
            classify_issuer_org(Some("Acme Co"), false),
            IssuerCategory::Dummy
        );
    }

    #[test]
    fn dummy_fuzzy_variants() {
        // Trailing punctuation, case, small typos.
        assert!(is_dummy_org("internet widgits pty ltd."));
        assert!(is_dummy_org("Internet Widgits Pty Ltd "));
        assert!(is_dummy_org("Internet Widgit Pty Ltd")); // 1 deletion
        assert!(!is_dummy_org("Honeywell International Inc"));
    }

    #[test]
    fn education() {
        assert_eq!(
            classify_issuer_org(Some("Commonwealth University"), false),
            IssuerCategory::Education
        );
        assert_eq!(
            classify_issuer_org(Some("Riverside Community College"), false),
            IssuerCategory::Education
        );
    }

    #[test]
    fn government() {
        assert_eq!(
            classify_issuer_org(Some("Ministry of Finance"), false),
            IssuerCategory::Government
        );
        assert_eq!(
            classify_issuer_org(Some("City of Springfield"), false),
            IssuerCategory::Government
        );
    }

    #[test]
    fn webhosting() {
        assert_eq!(
            classify_issuer_org(Some("cPanel, Inc."), false),
            IssuerCategory::WebHosting
        );
        assert_eq!(
            classify_issuer_org(Some("Acme Hosting Services"), false),
            IssuerCategory::WebHosting
        );
    }

    #[test]
    fn corporations() {
        for org in [
            "Honeywell International Inc",
            "Outset Medical, Inc.",
            "IDrive Inc Certificate Authority",
            "American Psychiatric Association",
            "Splunk Inc",
        ] {
            assert_eq!(
                classify_issuer_org(Some(org), false),
                IssuerCategory::Corporation,
                "{org}"
            );
        }
    }

    #[test]
    fn others() {
        for org in [
            "ViptelaClient",
            "GuardiCore",
            "rcgen",
            "SDS",
            "IceLink",
            "media-server",
            "Globus Online",
        ] {
            assert_eq!(
                classify_issuer_org(Some(org), false),
                IssuerCategory::Others,
                "{org}"
            );
        }
    }

    #[test]
    fn normalization() {
        assert_eq!(normalize_org("  GoDaddy.com,  Inc. "), "godaddy com inc");
        assert_eq!(normalize_org("A-B_C"), "a b c");
        assert_eq!(normalize_org("...."), "");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance_capped("abc", "abc", 2), 0);
        assert_eq!(edit_distance_capped("abc", "abd", 2), 1);
        assert_eq!(edit_distance_capped("abc", "xyz", 2), 3); // capped: cap+1
        assert_eq!(edit_distance_capped("", "ab", 2), 2);
        assert_eq!(edit_distance_capped("kitten", "sitting", 5), 3);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(
            IssuerCategory::MissingIssuer.label(),
            "Private - MissingIssuer"
        );
        assert_eq!(IssuerCategory::Public.label(), "Public");
        assert_eq!(IssuerCategory::ALL.len(), 8);
    }
}
