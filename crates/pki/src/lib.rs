//! Synthetic public-key infrastructure for the mtlscope simulation.
//!
//! This crate is the stand-in for the real-world trust machinery the
//! reproduced paper leans on:
//!
//! * [`ca`] — certificate authorities that mint roots, intermediates and
//!   leaves (signing with the simsig scheme from `mtls-crypto`);
//! * [`truststore`] — the four root programs the paper consults (Mozilla
//!   NSS, Apple, Microsoft, CCADB), with overlapping memberships, and the
//!   paper's *public vs private CA* decision procedure;
//! * [`chain`] — certificate-chain building and validation;
//! * [`ctlog`] — an append-only Certificate Transparency log populated at
//!   issuance time by public CAs, used by the interception filter, backed
//!   by an RFC 6962 Merkle tree ([`merkle`]) with signed tree heads and
//!   inclusion/consistency proofs ([`sth`]);
//! * [`gossip`] — aggregation-based STH gossip between simulated vantage
//!   points (campus border vs. external monitor) and the
//!   [`gossip::SplitViewDetector`] that flags equivocating logs;
//! * [`policy`] — configurable client-authentication validation policies
//!   (the validator whose real-world laxness the paper measures);
//! * [`crl`] — DER-encoded certificate revocation lists (RFC 5280 §5) and
//!   revocation checking, the management burden §7 discusses;
//! * [`issuercat`] — the paper's §4.2 issuer categories (*Public*,
//!   *Private - Corporation / Education / Government / WebHosting / Dummy /
//!   Others / MissingIssuer*) with the fuzzy organization matching they
//!   describe.
//!
//! # Example
//!
//! ```
//! use mtls_pki::{CertificateAuthority, validate_chain};
//! use mtls_pki::truststore::{RootProgram, TrustAnchors};
//! use mtls_crypto::{KeyRegistry, Keypair};
//! use mtls_x509::builder::CertificateBuilder;
//! use mtls_x509::name::DistinguishedName;
//! use mtls_asn1::time::Asn1Time;
//!
//! let now = Asn1Time::from_ymd(2022, 5, 1);
//! let root = CertificateAuthority::new_root(
//!     b"doc-root",
//!     DistinguishedName::builder().organization("Doc CA LLC").common_name("Doc Root").build(),
//!     now,
//! );
//!
//! // Issue a client-auth leaf and validate it against the anchored root.
//! let leaf_key = Keypair::from_seed(b"doc-leaf");
//! let leaf = root.issue(
//!     CertificateBuilder::new()
//!         .subject(DistinguishedName::builder().common_name("device-042").build())
//!         .validity(now.add_days(-1), now.add_days(364))
//!         .subject_key(leaf_key.key_id()),
//! );
//!
//! let mut anchors = TrustAnchors::new();
//! anchors.add_to(&[RootProgram::MozillaNss], root.certificate());
//! let mut registry = KeyRegistry::new();
//! root.register_key(&mut registry);
//!
//! let pool = vec![root.certificate().clone()];
//! let validated = validate_chain(&leaf, &pool, &anchors, &registry, now).unwrap();
//! assert!(validated.publicly_trusted);
//! ```

pub mod authz;
pub mod ca;
pub mod chain;
pub mod crl;
pub mod ctlog;
pub mod gossip;
pub mod issuercat;
pub mod merkle;
pub mod policy;
pub mod sth;
pub mod truststore;

pub use authz::{Authorizer, AuthzError, Tenant, OPS_ORGANIZATIONAL_UNIT};
pub use ca::CertificateAuthority;
pub use chain::{validate_chain, ChainError, ValidatedChain};
pub use crl::{CertificateRevocationList, CrlBuilder, RevocationReason};
pub use ctlog::CtLog;
pub use gossip::{CtAudit, CtObservation, GossipBundle, SplitViewDetector, Vantage, VerifiedCt};
pub use issuercat::{classify_issuer_org, IssuerCategory};
pub use policy::{ValidationPolicy, Violation};
pub use sth::{ConsistencyProof, InclusionProof, SignedTreeHead};
pub use truststore::{RootProgram, TrustAnchors, TrustStore};
