//! A simulated Certificate Transparency log.
//!
//! The paper uses crt.sh to find "the original issuer of the corresponding
//! domain" when filtering TLS-interception certificates (§3.2.1): if the
//! observed leaf's issuer differs from the CT-logged issuer for that domain,
//! the connection is flagged as intercepted. This module reproduces the data
//! the filter needs: public CAs append (domain → issuer organization)
//! entries at issuance time; interception middleboxes do not.

use mtls_intern::FxHashMap;
use mtls_x509::Certificate;

/// One log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtEntry {
    pub domain: String,
    pub issuer_display: String,
    pub fingerprint_hex: String,
}

/// Append-only CT log with a domain index.
#[derive(Debug, Default, Clone)]
pub struct CtLog {
    entries: Vec<CtEntry>,
    by_domain: FxHashMap<String, Vec<usize>>,
}

impl CtLog {
    /// Empty log.
    pub fn new() -> CtLog {
        CtLog::default()
    }

    /// Append a certificate for every DNS name it covers (SAN dNSName plus
    /// CN as crt.sh effectively indexes both).
    pub fn submit(&mut self, cert: &Certificate) {
        let issuer_display = cert.issuer().to_display_string();
        let fp = cert.fingerprint().to_hex();
        let mut domains = cert.san_dns();
        if let Some(cn) = cert.subject().common_name() {
            if !domains.iter().any(|d| d == cn) {
                domains.push(cn.to_string());
            }
        }
        for domain in domains {
            let idx = self.entries.len();
            self.entries.push(CtEntry {
                domain: domain.clone(),
                issuer_display: issuer_display.clone(),
                fingerprint_hex: fp.clone(),
            });
            self.by_domain.entry(domain).or_default().push(idx);
        }
    }

    /// All logged issuer strings for a domain, in submission order.
    pub fn issuers_for_domain(&self, domain: &str) -> Vec<&str> {
        self.by_domain
            .get(domain)
            .map(|idxs| {
                idxs.iter()
                    .map(|&i| self.entries[i].issuer_display.as_str())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Whether any logged certificate for `domain` has the given issuer —
    /// the interception filter's comparison.
    pub fn domain_has_issuer(&self, domain: &str, issuer_display: &str) -> bool {
        self.by_domain.get(domain).is_some_and(|idxs| {
            idxs.iter()
                .any(|&i| self.entries[i].issuer_display == issuer_display)
        })
    }

    /// Whether the domain appears in the log at all.
    pub fn contains_domain(&self, domain: &str) -> bool {
        self.by_domain.contains_key(domain)
    }

    /// All entries, in submission order.
    pub fn entries(&self) -> &[CtEntry] {
        &self.entries
    }

    /// Rebuild a log from stored entries (the file-based pipeline's path).
    pub fn from_entries(entries: Vec<CtEntry>) -> CtLog {
        let mut by_domain: FxHashMap<String, Vec<usize>> = FxHashMap::default();
        for (idx, entry) in entries.iter().enumerate() {
            by_domain.entry(entry.domain.clone()).or_default().push(idx);
        }
        CtLog { entries, by_domain }
    }

    /// Total entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use mtls_asn1::Asn1Time;
    use mtls_crypto::Keypair;
    use mtls_x509::{CertificateBuilder, DistinguishedName, GeneralName};

    fn cert_for(domain: &str, org: &str) -> Certificate {
        let ca = CertificateAuthority::new_root(
            org.as_bytes(),
            DistinguishedName::builder().organization(org).build(),
            Asn1Time::from_ymd(2022, 5, 1),
        );
        let k = Keypair::from_seed(domain.as_bytes());
        ca.issue(
            CertificateBuilder::new()
                .subject(DistinguishedName::builder().common_name(domain).build())
                .san(vec![GeneralName::Dns(domain.into())])
                .validity(
                    Asn1Time::from_ymd(2022, 5, 1),
                    Asn1Time::from_ymd(2022, 8, 1),
                )
                .subject_key(k.key_id()),
        )
    }

    #[test]
    fn submit_and_lookup() {
        let mut log = CtLog::new();
        let cert = cert_for("www.example.org", "Let's Encrypt");
        log.submit(&cert);
        assert!(log.contains_domain("www.example.org"));
        assert!(log.domain_has_issuer("www.example.org", "O=Let's Encrypt"));
        assert!(!log.domain_has_issuer("www.example.org", "O=Proxy Corp"));
        assert!(!log.contains_domain("other.example.org"));
    }

    #[test]
    fn multiple_issuers_per_domain() {
        let mut log = CtLog::new();
        log.submit(&cert_for("dual.example.org", "DigiCert Inc"));
        log.submit(&cert_for("dual.example.org", "Sectigo Limited"));
        let issuers = log.issuers_for_domain("dual.example.org");
        assert_eq!(issuers.len(), 2);
        assert!(log.domain_has_issuer("dual.example.org", "O=DigiCert Inc"));
        assert!(log.domain_has_issuer("dual.example.org", "O=Sectigo Limited"));
    }

    #[test]
    fn cn_is_indexed_once_when_equal_to_san() {
        let mut log = CtLog::new();
        log.submit(&cert_for("one.example.org", "CA"));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn empty_log() {
        let log = CtLog::new();
        assert!(log.is_empty());
        assert!(log.issuers_for_domain("nope").is_empty());
    }
}
