//! A simulated Certificate Transparency log with a verifiable Merkle tree.
//!
//! The paper uses crt.sh to find "the original issuer of the corresponding
//! domain" when filtering TLS-interception certificates (§3.2.1): if the
//! observed leaf's issuer differs from the CT-logged issuer for that domain,
//! the connection is flagged as intercepted. This module reproduces the data
//! the filter needs — public CAs append (domain → issuer organization)
//! entries at issuance time; interception middleboxes do not — and, since
//! the gossip rework, the *machinery* that makes the data checkable:
//!
//! * every entry is a leaf of an RFC 6962 Merkle tree ([`crate::merkle`]),
//!   with the leaf encoded exactly as its `ct.log` line
//!   (`domain\tissuer\tfingerprint`);
//! * the log signs tree heads ([`CtLog::sth_at`]) with a simsig keypair
//!   derived from a fixed seed, so a log rebuilt from its exported entries
//!   has the same [`CtLog::log_id`] and produces the same roots;
//! * inclusion and consistency proofs ([`CtLog::prove_inclusion`],
//!   [`CtLog::prove_consistency`]) let vantage points that only hold tree
//!   heads audit it (see [`crate::gossip`]).
//!
//! Lookup semantics (the bugfix sweep this rework rode in on):
//!
//! * DNS names are ASCII-lowercased at submit *and* lookup time, so
//!   `Example.COM` and `example.com` meet;
//! * entries are deduplicated by `(domain, fingerprint)` — re-submitting a
//!   certificate is a no-op, and [`CtLog::from_entries`] round-trips;
//! * a logged wildcard `*.example.com` satisfies lookups for exactly one
//!   extra label (`www.example.com` matches; `a.b.example.com`, the bare
//!   apex `example.com`, and partial labels do not), mirroring RFC 6125.

use crate::merkle::MerkleTree;
use crate::sth::{ConsistencyProof, InclusionProof, SignedTreeHead};
use mtls_crypto::{KeyId, Keypair};
use mtls_intern::{FxHashMap, FxHashSet};
use mtls_x509::Certificate;
use std::borrow::Cow;

/// Seed for the default (honest) log identity. Fixed so a log rebuilt from
/// exported entries signs with the same key as the one that produced them.
const DEFAULT_LOG_SEED: &[u8] = b"mtlscope-ct-log-1";

/// One log entry. The `domain` is stored lowercased.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtEntry {
    pub domain: String,
    pub issuer_display: String,
    pub fingerprint_hex: String,
}

/// Append-only CT log: a domain index over the entries plus the Merkle
/// tree the entries are leaves of.
#[derive(Debug, Clone)]
pub struct CtLog {
    entries: Vec<CtEntry>,
    by_domain: FxHashMap<String, Vec<usize>>,
    /// `(domain, fingerprint)` pairs already logged.
    seen: FxHashSet<(String, String)>,
    tree: MerkleTree,
    keypair: Keypair,
}

impl Default for CtLog {
    fn default() -> CtLog {
        CtLog::new()
    }
}

/// Lowercase a DNS name without allocating when it already is.
fn normalize(domain: &str) -> Cow<'_, str> {
    if domain.bytes().any(|b| b.is_ascii_uppercase()) {
        Cow::Owned(domain.to_ascii_lowercase())
    } else {
        Cow::Borrowed(domain)
    }
}

/// The wildcard key a lookup for `domain` may also match: replace the
/// first label with `*`, but only when that leaves a registrable suffix
/// (at least two labels), the first label is a real single label, and the
/// name isn't itself a wildcard or partial-wildcard pattern.
fn wildcard_key(domain: &str) -> Option<String> {
    let (first, rest) = domain.split_once('.')?;
    if first.is_empty() || first.contains('*') || !rest.contains('.') {
        return None;
    }
    Some(format!("*.{rest}"))
}

impl CtLog {
    /// Empty log with the default (shared, honest) log identity.
    pub fn new() -> CtLog {
        CtLog::with_key_seed(DEFAULT_LOG_SEED)
    }

    /// Empty log whose signing key derives from `seed`. Same seed, same
    /// [`CtLog::log_id`] — an equivocating log's forked view is built with
    /// the *same* seed as the honest view.
    pub fn with_key_seed(seed: &[u8]) -> CtLog {
        CtLog {
            entries: Vec::new(),
            by_domain: FxHashMap::default(),
            seen: FxHashSet::default(),
            tree: MerkleTree::new(),
            keypair: Keypair::from_seed(seed),
        }
    }

    /// Append a certificate for every DNS name it covers (SAN dNSName plus
    /// CN as crt.sh effectively indexes both). Names are lowercased;
    /// already-logged `(domain, fingerprint)` pairs are skipped.
    pub fn submit(&mut self, cert: &Certificate) {
        let issuer_display = cert.issuer().to_display_string();
        let fp = cert.fingerprint().to_hex();
        let mut domains = cert.san_dns();
        if let Some(cn) = cert.subject().common_name() {
            if !domains.iter().any(|d| d == cn) {
                domains.push(cn.to_string());
            }
        }
        for domain in domains {
            self.submit_entry(CtEntry {
                domain,
                issuer_display: issuer_display.clone(),
                fingerprint_hex: fp.clone(),
            });
        }
    }

    /// Append one entry (normalizing and deduplicating). Returns whether
    /// the entry was new.
    pub fn submit_entry(&mut self, mut entry: CtEntry) -> bool {
        if let Cow::Owned(lower) = normalize(&entry.domain) {
            entry.domain = lower;
        }
        let key = (entry.domain.clone(), entry.fingerprint_hex.clone());
        if !self.seen.insert(key) {
            return false;
        }
        let idx = self.entries.len();
        self.tree.push(&Self::leaf_bytes(&entry));
        self.by_domain
            .entry(entry.domain.clone())
            .or_default()
            .push(idx);
        self.entries.push(entry);
        true
    }

    /// The canonical leaf encoding of an entry — identical to its `ct.log`
    /// line, so a vantage point holding the exported log can recompute
    /// every leaf hash.
    pub fn leaf_bytes(entry: &CtEntry) -> Vec<u8> {
        format!(
            "{}\t{}\t{}",
            entry.domain, entry.issuer_display, entry.fingerprint_hex
        )
        .into_bytes()
    }

    /// Entry indices a lookup for `domain` matches: exact entries plus
    /// single-label wildcard entries, in submission order. Crate-visible
    /// so [`crate::gossip::VerifiedCt`] can re-run lookups through its
    /// trusted-entry mask.
    pub(crate) fn matching_indices(&self, domain: &str) -> Vec<usize> {
        let d = normalize(domain);
        let exact = self.by_domain.get(d.as_ref()).map(Vec::as_slice);
        let wild = wildcard_key(d.as_ref())
            .and_then(|k| self.by_domain.get(&k))
            .map(Vec::as_slice);
        match (exact, wild) {
            (Some(e), None) => e.to_vec(),
            (None, Some(w)) => w.to_vec(),
            (None, None) => Vec::new(),
            (Some(e), Some(w)) => {
                // Merge the two sorted index lists to keep submission order.
                let mut out = Vec::with_capacity(e.len() + w.len());
                let (mut i, mut j) = (0, 0);
                while i < e.len() && j < w.len() {
                    if e[i] < w[j] {
                        out.push(e[i]);
                        i += 1;
                    } else {
                        out.push(w[j]);
                        j += 1;
                    }
                }
                out.extend_from_slice(&e[i..]);
                out.extend_from_slice(&w[j..]);
                out
            }
        }
    }

    /// Entry indices for `domain` *exactly* — no wildcard expansion. The
    /// SCT-strip check uses this: a stripped twin shares the precise FQDN
    /// with the logged original, and wildcard/SLD matches would drag in
    /// unrelated renewals.
    pub(crate) fn exact_indices(&self, domain: &str) -> &[usize] {
        let d = normalize(domain);
        self.by_domain.get(d.as_ref()).map_or(&[], Vec::as_slice)
    }

    /// All logged issuer strings for a domain, in submission order.
    pub fn issuers_for_domain(&self, domain: &str) -> Vec<&str> {
        self.matching_indices(domain)
            .into_iter()
            .map(|i| self.entries[i].issuer_display.as_str())
            .collect()
    }

    /// Whether any logged certificate for `domain` has the given issuer —
    /// the interception filter's comparison.
    pub fn domain_has_issuer(&self, domain: &str, issuer_display: &str) -> bool {
        self.matching_indices(domain)
            .into_iter()
            .any(|i| self.entries[i].issuer_display == issuer_display)
    }

    /// Whether the precise certificate (by fingerprint) is logged for
    /// `domain` — what an SCT would attest.
    pub fn domain_has_fingerprint(&self, domain: &str, fingerprint_hex: &str) -> bool {
        self.matching_indices(domain)
            .into_iter()
            .any(|i| self.entries[i].fingerprint_hex == fingerprint_hex)
    }

    /// Whether the domain appears in the log at all (directly or through a
    /// single-label wildcard entry).
    pub fn contains_domain(&self, domain: &str) -> bool {
        let d = normalize(domain);
        self.by_domain.contains_key(d.as_ref())
            || wildcard_key(d.as_ref()).is_some_and(|k| self.by_domain.contains_key(&k))
    }

    /// All entries, in submission order.
    pub fn entries(&self) -> &[CtEntry] {
        &self.entries
    }

    /// Rebuild a log from stored entries (the file-based pipeline's path).
    /// Entries are normalized and deduplicated on the way in, so feeding a
    /// log its own [`CtLog::entries`] reproduces it exactly — same entries,
    /// same tree, same log identity.
    pub fn from_entries(entries: Vec<CtEntry>) -> CtLog {
        let mut log = CtLog::new();
        for entry in entries {
            log.submit_entry(entry);
        }
        log
    }

    /// Total entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The log's identity (its signing key id).
    pub fn log_id(&self) -> KeyId {
        self.keypair.key_id()
    }

    /// The signing keypair (for registering with a [`mtls_crypto::KeyRegistry`]).
    pub fn keypair(&self) -> &Keypair {
        &self.keypair
    }

    /// Signed tree head over the first `tree_size` entries at a logical
    /// timestamp. `None` when `tree_size` exceeds the log.
    pub fn sth_at(&self, tree_size: u64, timestamp: u64) -> Option<SignedTreeHead> {
        let root = self.tree.root_at(tree_size)?;
        let msg = SignedTreeHead::signed_bytes(&self.keypair.key_id(), tree_size, timestamp, &root);
        Some(SignedTreeHead {
            log_id: self.keypair.key_id(),
            tree_size,
            timestamp,
            root,
            signature: self.keypair.sign(&msg),
        })
    }

    /// Signed tree head over the whole log.
    pub fn sth(&self, timestamp: u64) -> SignedTreeHead {
        self.sth_at(self.len() as u64, timestamp)
            .expect("own size is in range")
    }

    /// Audit path for entry `index` within the prefix of `tree_size`
    /// entries.
    pub fn prove_inclusion(&self, index: u64, tree_size: u64) -> Option<InclusionProof> {
        Some(InclusionProof {
            log_id: self.log_id(),
            tree_size,
            leaf_index: index,
            path: self.tree.inclusion_proof(index, tree_size)?,
        })
    }

    /// Audit paths for every entry of the prefix of `tree_size` entries,
    /// in one `O(n log n)` pass (see [`MerkleTree::inclusion_proofs`]).
    pub fn prove_all_inclusions(&self, tree_size: u64) -> Option<Vec<InclusionProof>> {
        let paths = self.tree.inclusion_proofs(tree_size)?;
        Some(
            paths
                .into_iter()
                .enumerate()
                .map(|(i, path)| InclusionProof {
                    log_id: self.log_id(),
                    tree_size,
                    leaf_index: i as u64,
                    path,
                })
                .collect(),
        )
    }

    /// Consistency path between the prefixes of `old` and `new` entries.
    pub fn prove_consistency(&self, old: u64, new: u64) -> Option<ConsistencyProof> {
        Some(ConsistencyProof {
            log_id: self.log_id(),
            old_size: old,
            new_size: new,
            path: self.tree.consistency_proof(old, new)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use mtls_asn1::Asn1Time;
    use mtls_crypto::Keypair;
    use mtls_x509::{CertificateBuilder, DistinguishedName, GeneralName};

    fn cert_for(domain: &str, org: &str) -> Certificate {
        let ca = CertificateAuthority::new_root(
            org.as_bytes(),
            DistinguishedName::builder().organization(org).build(),
            Asn1Time::from_ymd(2022, 5, 1),
        );
        let k = Keypair::from_seed(domain.as_bytes());
        ca.issue(
            CertificateBuilder::new()
                .subject(DistinguishedName::builder().common_name(domain).build())
                .san(vec![GeneralName::Dns(domain.into())])
                .validity(
                    Asn1Time::from_ymd(2022, 5, 1),
                    Asn1Time::from_ymd(2022, 8, 1),
                )
                .subject_key(k.key_id()),
        )
    }

    fn entry(domain: &str, issuer: &str, fp: &str) -> CtEntry {
        CtEntry {
            domain: domain.into(),
            issuer_display: issuer.into(),
            fingerprint_hex: fp.into(),
        }
    }

    #[test]
    fn submit_and_lookup() {
        let mut log = CtLog::new();
        let cert = cert_for("www.example.org", "Let's Encrypt");
        log.submit(&cert);
        assert!(log.contains_domain("www.example.org"));
        assert!(log.domain_has_issuer("www.example.org", "O=Let's Encrypt"));
        assert!(!log.domain_has_issuer("www.example.org", "O=Proxy Corp"));
        assert!(!log.contains_domain("other.example.org"));
    }

    #[test]
    fn multiple_issuers_per_domain() {
        let mut log = CtLog::new();
        log.submit(&cert_for("dual.example.org", "DigiCert Inc"));
        log.submit(&cert_for("dual.example.org", "Sectigo Limited"));
        let issuers = log.issuers_for_domain("dual.example.org");
        assert_eq!(issuers.len(), 2);
        assert!(log.domain_has_issuer("dual.example.org", "O=DigiCert Inc"));
        assert!(log.domain_has_issuer("dual.example.org", "O=Sectigo Limited"));
    }

    #[test]
    fn cn_is_indexed_once_when_equal_to_san() {
        let mut log = CtLog::new();
        log.submit(&cert_for("one.example.org", "CA"));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn empty_log() {
        let log = CtLog::new();
        assert!(log.is_empty());
        assert!(log.issuers_for_domain("nope").is_empty());
    }

    #[test]
    fn lookup_is_case_insensitive_both_ways() {
        let mut log = CtLog::new();
        log.submit(&cert_for("Example.COM", "DigiCert Inc"));
        // Stored lowercased; any case matches at lookup time.
        assert_eq!(log.entries()[0].domain, "example.com");
        assert!(log.contains_domain("example.com"));
        assert!(log.contains_domain("EXAMPLE.com"));
        assert!(log.domain_has_issuer("eXaMpLe.CoM", "O=DigiCert Inc"));
        assert_eq!(log.issuers_for_domain("EXAMPLE.COM").len(), 1);
    }

    #[test]
    fn resubmission_is_deduplicated() {
        let mut log = CtLog::new();
        let cert = cert_for("dup.example.org", "DigiCert Inc");
        log.submit(&cert);
        log.submit(&cert);
        assert_eq!(log.len(), 1);
        // A different certificate for the same domain still appends.
        log.submit(&cert_for("dup.example.org", "Sectigo Limited"));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn from_entries_round_trips() {
        let mut log = CtLog::new();
        log.submit(&cert_for("a.example.org", "DigiCert Inc"));
        log.submit(&cert_for("B.example.org", "Sectigo Limited"));
        log.submit(&cert_for("a.example.org", "Let's Encrypt"));
        let rebuilt = CtLog::from_entries(log.entries().to_vec());
        assert_eq!(rebuilt.entries(), log.entries());
        assert_eq!(rebuilt.log_id(), log.log_id());
        assert_eq!(rebuilt.sth(7), log.sth(7));
    }

    #[test]
    fn wildcard_matches_exactly_one_label() {
        let mut log = CtLog::new();
        log.submit_entry(entry("*.example.com", "O=DigiCert Inc", "aa"));
        assert!(log.contains_domain("www.example.com"));
        assert!(log.domain_has_issuer("www.example.com", "O=DigiCert Inc"));
        assert_eq!(log.issuers_for_domain("WWW.Example.Com").len(), 1);
        // No partial-label, multi-label, or bare-apex matches.
        assert!(!log.contains_domain("example.com"));
        assert!(!log.contains_domain("a.b.example.com"));
        assert!(!log.domain_has_issuer("example.com", "O=DigiCert Inc"));
        // A wildcard lookup matches the wildcard entry itself, and a
        // partial-wildcard name never matches through the wildcard.
        assert!(log.contains_domain("*.example.com"));
        assert!(!log.contains_domain("w*.example.com"));
        // `*.com` would be an effective-TLD wildcard; never consulted.
        let mut tld = CtLog::new();
        tld.submit_entry(entry("*.com", "O=Evil", "bb"));
        assert!(!tld.contains_domain("example.com"));
    }

    #[test]
    fn wildcard_and_exact_entries_merge_in_submission_order() {
        let mut log = CtLog::new();
        log.submit_entry(entry("www.example.com", "O=First", "01"));
        log.submit_entry(entry("*.example.com", "O=Second", "02"));
        log.submit_entry(entry("www.example.com", "O=Third", "03"));
        assert_eq!(
            log.issuers_for_domain("www.example.com"),
            vec!["O=First", "O=Second", "O=Third"]
        );
        assert!(log.domain_has_fingerprint("www.example.com", "02"));
        assert!(!log.domain_has_fingerprint("example.com", "02"));
    }

    #[test]
    fn sths_and_proofs_verify() {
        let mut log = CtLog::new();
        for i in 0..9 {
            log.submit_entry(entry(
                &format!("h{i}.example.org"),
                "O=CA",
                &format!("{i:02x}"),
            ));
        }
        let mut registry = mtls_crypto::KeyRegistry::new();
        registry.register(log.keypair().clone());
        let sth = log.sth(100);
        assert!(sth.verify(&registry));
        let old = log.sth_at(4, 50).unwrap();
        assert!(log.prove_consistency(4, 9).unwrap().verify(&old, &sth));
        for i in 0..9u64 {
            let proof = log.prove_inclusion(i, 9).unwrap();
            let leaf = CtLog::leaf_bytes(&log.entries()[i as usize]);
            assert!(proof.verify(&leaf, &sth));
        }
    }
}
