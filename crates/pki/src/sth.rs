//! Signed tree heads and proof wire formats for the CT subsystem.
//!
//! Every structure has one canonical byte encoding (version byte, 32-byte
//! log id, big-endian integers, fixed-width hash path) so the conform
//! harness can hold `from_bytes`/`to_bytes` to *byte identity*: any input
//! that parses must re-encode to exactly itself. Parsers reject rather
//! than panic — trailing bytes, short buffers, impossible sizes and
//! over-long paths are all `None`.
//!
//! Signatures are the simulator's HMAC-based simsig scheme
//! (`mtls_crypto::simsig`); the signed portion of an STH is its encoding
//! minus the signature, i.e. the first [`STH_SIGNED_LEN`] bytes.

use mtls_crypto::{KeyId, KeyRegistry, Signature};

/// Wire format version for all three structures.
pub const WIRE_VERSION: u8 = 1;
/// Longest accepted audit path (a 64-level tree covers any `u64` size).
pub const MAX_INCLUSION_PATH: usize = 64;
/// Consistency paths carry up to two flanks of the tree.
pub const MAX_CONSISTENCY_PATH: usize = 128;
/// Bytes of an encoded STH covered by its signature.
pub const STH_SIGNED_LEN: usize = 1 + 32 + 8 + 8 + 32;
/// Total encoded STH length (signed portion + 32-byte signature).
pub const STH_LEN: usize = STH_SIGNED_LEN + 32;

/// A signed tree head: the log's commitment, at `timestamp`, to the root
/// of its first `tree_size` leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedTreeHead {
    pub log_id: KeyId,
    pub tree_size: u64,
    pub timestamp: u64,
    pub root: [u8; 32],
    pub signature: Signature,
}

impl SignedTreeHead {
    /// The bytes the log signs (everything but the signature).
    pub fn signed_bytes(
        log_id: &KeyId,
        tree_size: u64,
        timestamp: u64,
        root: &[u8; 32],
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(STH_SIGNED_LEN);
        out.push(WIRE_VERSION);
        out.extend_from_slice(&log_id.0);
        out.extend_from_slice(&tree_size.to_be_bytes());
        out.extend_from_slice(&timestamp.to_be_bytes());
        out.extend_from_slice(root);
        out
    }

    /// Canonical encoding ([`STH_LEN`] bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            SignedTreeHead::signed_bytes(&self.log_id, self.tree_size, self.timestamp, &self.root);
        out.extend_from_slice(self.signature.as_bytes());
        out
    }

    /// Strict decode: exact length, known version.
    pub fn from_bytes(bytes: &[u8]) -> Option<SignedTreeHead> {
        if bytes.len() != STH_LEN || bytes[0] != WIRE_VERSION {
            return None;
        }
        let mut log_id = [0u8; 32];
        log_id.copy_from_slice(&bytes[1..33]);
        let tree_size = u64::from_be_bytes(bytes[33..41].try_into().ok()?);
        let timestamp = u64::from_be_bytes(bytes[41..49].try_into().ok()?);
        let mut root = [0u8; 32];
        root.copy_from_slice(&bytes[49..81]);
        let mut sig = [0u8; 32];
        sig.copy_from_slice(&bytes[81..113]);
        Some(SignedTreeHead {
            log_id: KeyId(log_id),
            tree_size,
            timestamp,
            root,
            signature: Signature(sig),
        })
    }

    /// Check the signature against a registry of known log keys.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        let msg =
            SignedTreeHead::signed_bytes(&self.log_id, self.tree_size, self.timestamp, &self.root);
        registry.verify(self.log_id, &msg, &self.signature)
    }
}

/// An audit path binding one leaf to an STH of `tree_size` leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionProof {
    pub log_id: KeyId,
    pub tree_size: u64,
    pub leaf_index: u64,
    pub path: Vec<[u8; 32]>,
}

/// A consistency path between two STHs of the same log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyProof {
    pub log_id: KeyId,
    pub old_size: u64,
    pub new_size: u64,
    pub path: Vec<[u8; 32]>,
}

/// Shared layout of the two proof encodings:
/// `ver(1) || log_id(32) || a(8) || b(8) || count(2) || count * hash(32)`.
fn encode_proof(log_id: &KeyId, a: u64, b: u64, path: &[[u8; 32]]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 32 + 8 + 8 + 2 + 32 * path.len());
    out.push(WIRE_VERSION);
    out.extend_from_slice(&log_id.0);
    out.extend_from_slice(&a.to_be_bytes());
    out.extend_from_slice(&b.to_be_bytes());
    out.extend_from_slice(&(path.len() as u16).to_be_bytes());
    for h in path {
        out.extend_from_slice(h);
    }
    out
}

fn decode_proof(bytes: &[u8], max_path: usize) -> Option<(KeyId, u64, u64, Vec<[u8; 32]>)> {
    if bytes.len() < 51 || bytes[0] != WIRE_VERSION {
        return None;
    }
    let mut log_id = [0u8; 32];
    log_id.copy_from_slice(&bytes[1..33]);
    let a = u64::from_be_bytes(bytes[33..41].try_into().ok()?);
    let b = u64::from_be_bytes(bytes[41..49].try_into().ok()?);
    let count = u16::from_be_bytes(bytes[49..51].try_into().ok()?) as usize;
    if count > max_path || bytes.len() != 51 + 32 * count {
        return None;
    }
    let mut path = Vec::with_capacity(count);
    for chunk in bytes[51..].chunks_exact(32) {
        let mut h = [0u8; 32];
        h.copy_from_slice(chunk);
        path.push(h);
    }
    Some((KeyId(log_id), a, b, path))
}

impl InclusionProof {
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_proof(&self.log_id, self.tree_size, self.leaf_index, &self.path)
    }

    /// Strict decode: exact length, `leaf_index < tree_size`, path at most
    /// [`MAX_INCLUSION_PATH`] hashes.
    pub fn from_bytes(bytes: &[u8]) -> Option<InclusionProof> {
        let (log_id, tree_size, leaf_index, path) = decode_proof(bytes, MAX_INCLUSION_PATH)?;
        if leaf_index >= tree_size {
            return None;
        }
        Some(InclusionProof {
            log_id,
            tree_size,
            leaf_index,
            path,
        })
    }

    /// Does this path place `leaf` in the tree `sth` commits to?
    pub fn verify(&self, leaf: &[u8], sth: &SignedTreeHead) -> bool {
        self.log_id == sth.log_id
            && self.tree_size == sth.tree_size
            && crate::merkle::verify_inclusion(
                leaf,
                self.leaf_index,
                self.tree_size,
                &self.path,
                &sth.root,
            )
    }
}

impl ConsistencyProof {
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_proof(&self.log_id, self.old_size, self.new_size, &self.path)
    }

    /// Strict decode: exact length, `old_size <= new_size`, path at most
    /// [`MAX_CONSISTENCY_PATH`] hashes.
    pub fn from_bytes(bytes: &[u8]) -> Option<ConsistencyProof> {
        let (log_id, old_size, new_size, path) = decode_proof(bytes, MAX_CONSISTENCY_PATH)?;
        if old_size > new_size {
            return None;
        }
        Some(ConsistencyProof {
            log_id,
            old_size,
            new_size,
            path,
        })
    }

    /// Does this path prove `old` is a prefix of `new`?
    pub fn verify(&self, old: &SignedTreeHead, new: &SignedTreeHead) -> bool {
        self.log_id == old.log_id
            && self.log_id == new.log_id
            && self.old_size == old.tree_size
            && self.new_size == new.tree_size
            && crate::merkle::verify_consistency(
                self.old_size,
                self.new_size,
                &old.root,
                &new.root,
                &self.path,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtls_crypto::Keypair;

    fn sample_sth() -> SignedTreeHead {
        let kp = Keypair::from_seed(b"sth-test-log");
        let root = [7u8; 32];
        let msg = SignedTreeHead::signed_bytes(&kp.key_id(), 42, 1_700_000_000, &root);
        SignedTreeHead {
            log_id: kp.key_id(),
            tree_size: 42,
            timestamp: 1_700_000_000,
            root,
            signature: kp.sign(&msg),
        }
    }

    #[test]
    fn sth_round_trips_and_verifies() {
        let sth = sample_sth();
        let bytes = sth.to_bytes();
        assert_eq!(bytes.len(), STH_LEN);
        let back = SignedTreeHead::from_bytes(&bytes).unwrap();
        assert_eq!(back, sth);
        assert_eq!(back.to_bytes(), bytes);

        let kp = Keypair::from_seed(b"sth-test-log");
        let mut registry = KeyRegistry::new();
        registry.register(kp);
        assert!(sth.verify(&registry));
        // Tampering with any signed field breaks the signature.
        let mut tampered = sth.clone();
        tampered.tree_size += 1;
        assert!(!tampered.verify(&registry));
        assert!(!sth.verify(&KeyRegistry::new()));
    }

    #[test]
    fn sth_decode_rejects_wrong_shapes() {
        let bytes = sample_sth().to_bytes();
        assert!(SignedTreeHead::from_bytes(&bytes[..STH_LEN - 1]).is_none());
        let mut long = bytes.clone();
        long.push(0);
        assert!(SignedTreeHead::from_bytes(&long).is_none());
        let mut badver = bytes;
        badver[0] = 9;
        assert!(SignedTreeHead::from_bytes(&badver).is_none());
    }

    #[test]
    fn proofs_round_trip_byte_identically() {
        let p = InclusionProof {
            log_id: KeyId([3u8; 32]),
            tree_size: 10,
            leaf_index: 4,
            path: vec![[1u8; 32], [2u8; 32]],
        };
        let bytes = p.to_bytes();
        let back = InclusionProof::from_bytes(&bytes).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.to_bytes(), bytes);

        let c = ConsistencyProof {
            log_id: KeyId([3u8; 32]),
            old_size: 4,
            new_size: 10,
            path: vec![[9u8; 32]],
        };
        let bytes = c.to_bytes();
        let back = ConsistencyProof::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn proof_decode_rejects_impossible_shapes() {
        let p = InclusionProof {
            log_id: KeyId([0u8; 32]),
            tree_size: 8,
            leaf_index: 3,
            path: vec![[0u8; 32]; 3],
        };
        let good = p.to_bytes();
        // leaf_index >= tree_size
        let bad = InclusionProof {
            leaf_index: 8,
            ..p.clone()
        };
        assert!(InclusionProof::from_bytes(&bad.to_bytes()).is_none());
        // Truncated / padded / count lies about the payload.
        assert!(InclusionProof::from_bytes(&good[..good.len() - 1]).is_none());
        let mut long = good.clone();
        long.push(0);
        assert!(InclusionProof::from_bytes(&long).is_none());
        let mut misc = good;
        misc[50] = 99;
        assert!(InclusionProof::from_bytes(&misc).is_none());
        // old_size > new_size
        let c = ConsistencyProof {
            log_id: KeyId([0u8; 32]),
            old_size: 9,
            new_size: 3,
            path: vec![],
        };
        assert!(ConsistencyProof::from_bytes(&c.to_bytes()).is_none());
    }
}
