//! Certificate-chain building and validation.
//!
//! Mirrors what Zeek (via Mozilla NSS) does for the paper's dataset: given a
//! presented chain, find an issuing path from the leaf to a trust anchor,
//! verifying signatures and validity windows along the way. The outcome
//! distinguishes the failure modes the paper discusses — untrusted (private)
//! roots, expired certificates, incorrect dates, broken signatures.

use crate::truststore::TrustAnchors;
use mtls_asn1::Asn1Time;
use mtls_crypto::KeyRegistry;
use mtls_x509::Certificate;

/// Why a chain failed to validate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainError {
    /// No presented certificate (or anchor) names the child's issuer.
    IssuerNotFound,
    /// A signature did not verify against the issuer's key.
    BadSignature,
    /// A certificate in the path is outside its validity window.
    Expired,
    /// A certificate has `notBefore` after `notAfter`.
    IncorrectDates,
    /// A path was built and verified but terminates at an anchor absent
    /// from every root program — the paper's "private CA" case.
    UntrustedRoot,
    /// A non-leaf link in the path is not marked CA in BasicConstraints.
    NotACa,
    /// The chain exceeded the maximum supported depth (defensive bound).
    TooDeep,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ChainError::IssuerNotFound => "issuer not found among presented certificates",
            ChainError::BadSignature => "signature verification failed",
            ChainError::Expired => "certificate outside validity window",
            ChainError::IncorrectDates => "notBefore does not precede notAfter",
            ChainError::UntrustedRoot => "path terminates at an untrusted (private) root",
            ChainError::NotACa => "intermediate is not a CA certificate",
            ChainError::TooDeep => "chain too deep",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ChainError {}

/// A successfully validated path, leaf first.
#[derive(Debug, Clone)]
pub struct ValidatedChain {
    /// Indexes into the presented pool: `path[0]` is the leaf.
    pub path: Vec<usize>,
    /// Whether the terminating anchor is in ≥ 1 root program.
    pub publicly_trusted: bool,
}

const MAX_DEPTH: usize = 8;

/// Validate `leaf` against a pool of presented `candidates` (intermediates
/// and/or roots), the trust anchors, and the key registry, at time `now`.
///
/// Returns the found path (and whether its terminus is publicly trusted) or
/// the first error encountered on the best path. Like NSS, self-signed
/// leaves are accepted structurally but report `UntrustedRoot` unless
/// anchored.
pub fn validate_chain(
    leaf: &Certificate,
    candidates: &[Certificate],
    anchors: &TrustAnchors,
    registry: &KeyRegistry,
    now: Asn1Time,
) -> Result<ValidatedChain, ChainError> {
    // Date sanity on the leaf first — the paper's incorrect-dates
    // population fails here regardless of trust.
    if leaf.has_incorrect_dates() {
        return Err(ChainError::IncorrectDates);
    }
    if !leaf.is_valid_at(now) {
        return Err(ChainError::Expired);
    }

    let mut path: Vec<usize> = Vec::new();
    let mut current: Certificate = leaf.clone();
    let mut used = vec![false; candidates.len()];

    for _hop in 0..MAX_DEPTH {
        // Self-issued terminus: check signature against its own key.
        if current.is_self_issued() {
            let self_key = current.public_key().key_id;
            if !current.verify_signature(registry, self_key) {
                return Err(ChainError::BadSignature);
            }
            let publicly_trusted =
                anchors.is_anchored(&current) || anchors.is_public_issuer(current.issuer());
            if !publicly_trusted {
                return Err(ChainError::UntrustedRoot);
            }
            return Ok(ValidatedChain {
                path,
                publicly_trusted,
            });
        }

        // Anchored-by-DN terminus: the issuer is a store member even though
        // its certificate was not presented (common for real chains where
        // the root is omitted).
        if anchors.is_public_issuer(current.issuer()) {
            // Find the anchor's key if any candidate matches; otherwise
            // accept on DN membership alone, as the paper's methodology does.
            return Ok(ValidatedChain {
                path,
                publicly_trusted: true,
            });
        }

        // Find the issuing certificate among the candidates: prefer the
        // AuthorityKeyIdentifier → SubjectKeyIdentifier match (exact, no
        // string comparison), fall back to subject-DN matching for the
        // key-id-less private certificates the paper's dataset is full of.
        let child_aki = current.authority_key_identifier();
        let next = candidates
            .iter()
            .enumerate()
            .find(|(i, c)| {
                !used[*i]
                    && child_aki.is_some()
                    && c.subject_key_identifier() == child_aki
                    && current.verify_signature(registry, c.public_key().key_id)
            })
            .or_else(|| {
                candidates.iter().enumerate().find(|(i, c)| {
                    !used[*i]
                        && c.subject() == current.issuer()
                        && current.verify_signature(registry, c.public_key().key_id)
                })
            });
        let Some((idx, issuer_cert)) = next else {
            // A subject-name match whose key fails distinguishes
            // BadSignature from IssuerNotFound.
            let name_match = candidates
                .iter()
                .enumerate()
                .any(|(i, c)| !used[i] && c.subject() == current.issuer());
            return Err(if name_match {
                ChainError::BadSignature
            } else {
                ChainError::IssuerNotFound
            });
        };

        if !issuer_cert.is_ca() {
            return Err(ChainError::NotACa);
        }
        if issuer_cert.has_incorrect_dates() {
            return Err(ChainError::IncorrectDates);
        }
        if !issuer_cert.is_valid_at(now) {
            return Err(ChainError::Expired);
        }

        used[idx] = true;
        path.push(idx);

        if anchors.is_anchored(issuer_cert) {
            return Ok(ValidatedChain {
                path,
                publicly_trusted: true,
            });
        }
        current = issuer_cert.clone();
    }

    Err(ChainError::TooDeep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::truststore::RootProgram;
    use mtls_crypto::Keypair;
    use mtls_x509::{CertificateBuilder, DistinguishedName};

    fn t0() -> Asn1Time {
        Asn1Time::from_ymd(2023, 1, 1)
    }

    struct Fixture {
        root: CertificateAuthority,
        int: CertificateAuthority,
        anchors: TrustAnchors,
        registry: KeyRegistry,
    }

    fn fixture(trusted: bool) -> Fixture {
        let root = CertificateAuthority::new_root(
            b"chain-root",
            DistinguishedName::builder()
                .organization("Chain Test Org")
                .common_name("Chain Root")
                .build(),
            t0(),
        );
        let int = CertificateAuthority::new_intermediate(
            &root,
            b"chain-int",
            DistinguishedName::builder()
                .organization("Chain Test Org")
                .common_name("Chain Sub CA")
                .build(),
            t0(),
        );
        let mut anchors = TrustAnchors::new();
        if trusted {
            anchors.add_to(&[RootProgram::MozillaNss], root.certificate());
        }
        let mut registry = KeyRegistry::new();
        root.register_key(&mut registry);
        int.register_key(&mut registry);
        Fixture {
            root,
            int,
            anchors,
            registry,
        }
    }

    fn leaf(ca: &CertificateAuthority, seed: &[u8]) -> Certificate {
        let k = Keypair::from_seed(seed);
        ca.issue(
            CertificateBuilder::new()
                .subject(
                    DistinguishedName::builder()
                        .common_name("leaf.test")
                        .build(),
                )
                .validity(t0().add_days(-30), t0().add_days(335))
                .subject_key(k.key_id()),
        )
    }

    #[test]
    fn two_hop_chain_validates() {
        let f = fixture(true);
        let leaf = leaf(&f.int, b"l1");
        let pool = vec![f.int.certificate().clone(), f.root.certificate().clone()];
        let v = validate_chain(&leaf, &pool, &f.anchors, &f.registry, t0()).unwrap();
        assert!(v.publicly_trusted);
        assert_eq!(v.path, vec![0]); // stops at the anchored root's DN? no — int found first, then root anchored
    }

    #[test]
    fn untrusted_root_reports_private() {
        let f = fixture(false);
        let leaf = leaf(&f.int, b"l2");
        let pool = vec![f.int.certificate().clone(), f.root.certificate().clone()];
        let err = validate_chain(&leaf, &pool, &f.anchors, &f.registry, t0()).unwrap_err();
        assert_eq!(err, ChainError::UntrustedRoot);
    }

    #[test]
    fn missing_intermediate_reports_issuer_not_found() {
        let f = fixture(true);
        let leaf = leaf(&f.int, b"l3");
        let pool = vec![f.root.certificate().clone()]; // intermediate absent
        let err = validate_chain(&leaf, &pool, &f.anchors, &f.registry, t0()).unwrap_err();
        assert_eq!(err, ChainError::IssuerNotFound);
    }

    #[test]
    fn expired_leaf_rejected() {
        let f = fixture(true);
        let k = Keypair::from_seed(b"expired");
        let leaf = f.int.issue(
            CertificateBuilder::new()
                .subject(DistinguishedName::builder().common_name("old.test").build())
                .validity(t0().add_days(-400), t0().add_days(-35))
                .subject_key(k.key_id()),
        );
        let pool = vec![f.int.certificate().clone(), f.root.certificate().clone()];
        let err = validate_chain(&leaf, &pool, &f.anchors, &f.registry, t0()).unwrap_err();
        assert_eq!(err, ChainError::Expired);
    }

    #[test]
    fn incorrect_dates_rejected() {
        let f = fixture(true);
        let k = Keypair::from_seed(b"baddate");
        let leaf = f.int.issue(
            CertificateBuilder::new()
                .subject(
                    DistinguishedName::builder()
                        .common_name("weird.test")
                        .build(),
                )
                .validity(t0().add_days(100), t0().add_days(-100))
                .subject_key(k.key_id()),
        );
        let pool = vec![f.int.certificate().clone()];
        let err = validate_chain(&leaf, &pool, &f.anchors, &f.registry, t0()).unwrap_err();
        assert_eq!(err, ChainError::IncorrectDates);
    }

    #[test]
    fn forged_signature_detected() {
        let f = fixture(true);
        // Leaf claims the intermediate's DN as issuer but is signed by an
        // unrelated key.
        let mallory = Keypair::from_seed(b"mallory");
        let k = Keypair::from_seed(b"victim");
        let forged = CertificateBuilder::new()
            .issuer(f.int.name().clone())
            .subject(
                DistinguishedName::builder()
                    .common_name("forged.test")
                    .build(),
            )
            .validity(t0().add_days(-1), t0().add_days(364))
            .subject_key(k.key_id())
            .sign(&mallory);
        let pool = vec![f.int.certificate().clone(), f.root.certificate().clone()];
        // The intermediate's DN is in the trust stores (added via
        // add_certificate of the root only), so the DN shortcut must not
        // fire here; signature check runs and fails.
        let err = validate_chain(&forged, &pool, &f.anchors, &f.registry, t0()).unwrap_err();
        assert_eq!(err, ChainError::BadSignature);
    }

    #[test]
    fn self_signed_untrusted_leaf() {
        let f = fixture(true);
        let k = Keypair::from_seed(b"selfsigned");
        let dn = DistinguishedName::builder()
            .organization("Internet Widgits Pty Ltd")
            .build();
        let cert = CertificateBuilder::new()
            .issuer(dn.clone())
            .subject(dn)
            .validity(t0().add_days(-1), t0().add_days(3650))
            .subject_key(k.key_id())
            .sign(&k);
        let mut registry = f.registry.clone();
        registry.register(k);
        let err = validate_chain(&cert, &[], &f.anchors, &registry, t0()).unwrap_err();
        assert_eq!(err, ChainError::UntrustedRoot);
    }

    #[test]
    fn leaf_with_public_issuer_dn_validates_without_presented_chain() {
        let f = fixture(true);
        // Add the intermediate itself to a store: now leaves issued by it
        // are public even with an empty presented pool.
        let mut anchors = f.anchors.clone();
        anchors.add_to(&[RootProgram::Apple], f.int.certificate());
        let leaf = leaf(&f.int, b"l4");
        let v = validate_chain(&leaf, &[], &anchors, &f.registry, t0()).unwrap();
        assert!(v.publicly_trusted);
        assert!(v.path.is_empty());
    }
}

#[cfg(test)]
mod aki_tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::truststore::RootProgram;
    use mtls_crypto::Keypair;
    use mtls_x509::{CertificateBuilder, DistinguishedName};

    /// Two intermediates with the *identical* DN but different keys:
    /// AKI/SKI matching must pick the right one even though DN matching is
    /// ambiguous (the pool lists the wrong twin first).
    #[test]
    fn aki_disambiguates_same_name_issuers() {
        let t0 = Asn1Time::from_ymd(2023, 1, 1);
        let root = CertificateAuthority::new_root(
            b"twin-root",
            DistinguishedName::builder()
                .organization("Twin Org")
                .common_name("Twin Root")
                .build(),
            t0,
        );
        let twin_dn = DistinguishedName::builder()
            .organization("Twin Org")
            .common_name("Twin Sub CA")
            .build();
        let int_a = CertificateAuthority::new_intermediate(&root, b"twin-a", twin_dn.clone(), t0);
        let int_b = CertificateAuthority::new_intermediate(&root, b"twin-b", twin_dn.clone(), t0);
        assert_eq!(int_a.name(), int_b.name());
        assert_ne!(
            int_a.certificate().fingerprint(),
            int_b.certificate().fingerprint()
        );

        let mut anchors = TrustAnchors::new();
        anchors.add_to(&[RootProgram::MozillaNss], root.certificate());
        let mut registry = KeyRegistry::new();
        root.register_key(&mut registry);
        int_a.register_key(&mut registry);
        int_b.register_key(&mut registry);

        let k = Keypair::from_seed(b"twin-leaf");
        let leaf = int_b.issue(
            CertificateBuilder::new()
                .subject(
                    DistinguishedName::builder()
                        .common_name("leaf.twin")
                        .build(),
                )
                .validity(t0.add_days(-1), t0.add_days(90))
                .subject_key(k.key_id()),
        );
        // Pool order puts the WRONG twin first: DN-matching alone would try
        // int_a and fail the signature; AKI matching goes straight to int_b.
        let pool = vec![int_a.certificate().clone(), int_b.certificate().clone()];
        let v = validate_chain(&leaf, &pool, &anchors, &registry, t0).unwrap();
        assert!(v.publicly_trusted);
        assert_eq!(v.path, vec![1], "AKI selected the correct twin");
    }
}
