//! Certificate authorities.
//!
//! A [`CertificateAuthority`] owns a simsig keypair and a CA certificate
//! (self-signed for roots, parent-signed for intermediates), and issues leaf
//! certificates by finishing a caller-supplied [`CertificateBuilder`] with
//! its own issuer DN and signature. Issuance also registers the CA's key in
//! a shared [`KeyRegistry`] so chains can be verified later, and optionally
//! appends to a CT log (public CAs do; private CAs mostly do not — exactly
//! the asymmetry the paper's interception filter exploits).

use mtls_asn1::Asn1Time;
use mtls_crypto::{KeyRegistry, Keypair};
use mtls_x509::{Certificate, CertificateBuilder, DistinguishedName};

/// A certificate authority (root or intermediate).
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    name: DistinguishedName,
    keypair: Keypair,
    certificate: Certificate,
    /// Depth: 0 for roots, parent.depth + 1 for intermediates.
    depth: u8,
}

impl CertificateAuthority {
    /// Create a self-signed root CA. The validity window is generous
    /// (20 years around `now`) — root lifetimes are not under study.
    pub fn new_root(seed: &[u8], name: DistinguishedName, now: Asn1Time) -> CertificateAuthority {
        let keypair = Keypair::from_seed(seed);
        let certificate = CertificateBuilder::new()
            .serial(&mtls_crypto::sha256(seed)[..8])
            .issuer(name.clone())
            .subject(name.clone())
            .validity(now.add_days(-3650), now.add_days(3650))
            .ca(Some(3))
            .subject_key(keypair.key_id())
            .key_identifiers(keypair.key_id()) // self-signed: AKI == SKI
            .sign(&keypair);
        CertificateAuthority {
            name,
            keypair,
            certificate,
            depth: 0,
        }
    }

    /// Create an intermediate CA signed by `parent`.
    pub fn new_intermediate(
        parent: &CertificateAuthority,
        seed: &[u8],
        name: DistinguishedName,
        now: Asn1Time,
    ) -> CertificateAuthority {
        let keypair = Keypair::from_seed(seed);
        let certificate = CertificateBuilder::new()
            .serial(&mtls_crypto::sha256(seed)[..8])
            .issuer(parent.name.clone())
            .subject(name.clone())
            .validity(now.add_days(-1825), now.add_days(1825))
            .ca(Some(0))
            .subject_key(keypair.key_id())
            .key_identifiers(parent.keypair.key_id())
            .sign(&parent.keypair);
        CertificateAuthority {
            name,
            keypair,
            certificate,
            depth: parent.depth + 1,
        }
    }

    /// The CA's subject DN (== the issuer DN it stamps on leaves).
    pub fn name(&self) -> &DistinguishedName {
        &self.name
    }

    /// The CA's own certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    /// The CA's keypair (used by tests and by deliberate-misuse scenarios).
    pub fn keypair(&self) -> &Keypair {
        &self.keypair
    }

    /// 0 for roots, 1+ for intermediates.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Register the CA's verification key.
    pub fn register_key(&self, registry: &mut KeyRegistry) {
        registry.register(self.keypair.clone());
    }

    /// Issue a leaf: the builder's issuer DN is overwritten with this CA's
    /// name, SKI/AKI key-identifier extensions are appended, and the result
    /// is signed with this CA's key.
    pub fn issue(&self, builder: CertificateBuilder) -> Certificate {
        builder
            .issuer(self.name.clone())
            .key_identifiers(self.keypair.key_id())
            .sign(&self.keypair)
    }

    /// Issue *without* touching the builder's issuer DN. This is how the
    /// simulator mints certificates whose issuer field is empty or a dummy
    /// string even though some key signed them — the *MissingIssuer* and
    /// *Dummy* populations of the paper.
    pub fn issue_verbatim(&self, builder: CertificateBuilder) -> Certificate {
        builder.sign(&self.keypair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Asn1Time {
        Asn1Time::from_ymd(2022, 5, 1)
    }

    fn root() -> CertificateAuthority {
        CertificateAuthority::new_root(
            b"test-root",
            DistinguishedName::builder()
                .organization("Test Trust Services")
                .common_name("Test Root R1")
                .build(),
            t0(),
        )
    }

    #[test]
    fn root_is_self_signed_ca() {
        let ca = root();
        assert!(ca.certificate().is_ca());
        assert!(ca.certificate().is_self_issued());
        assert_eq!(ca.depth(), 0);

        let mut reg = KeyRegistry::new();
        ca.register_key(&mut reg);
        assert!(ca
            .certificate()
            .verify_signature(&reg, ca.keypair().key_id()));
    }

    #[test]
    fn intermediate_chains_to_root() {
        let r = root();
        let int = CertificateAuthority::new_intermediate(
            &r,
            b"test-int",
            DistinguishedName::builder()
                .organization("Test Trust Services")
                .common_name("Test CA 1")
                .build(),
            t0(),
        );
        assert_eq!(int.depth(), 1);
        assert_eq!(int.certificate().issuer(), r.name());
        let mut reg = KeyRegistry::new();
        r.register_key(&mut reg);
        assert!(int
            .certificate()
            .verify_signature(&reg, r.keypair().key_id()));
    }

    #[test]
    fn issue_stamps_issuer_dn() {
        let r = root();
        let leaf_key = Keypair::from_seed(b"leaf");
        let cert = r.issue(
            CertificateBuilder::new()
                .subject(
                    DistinguishedName::builder()
                        .common_name("leaf.example")
                        .build(),
                )
                .validity(t0(), t0().add_days(90))
                .subject_key(leaf_key.key_id()),
        );
        assert_eq!(cert.issuer(), r.name());
        let mut reg = KeyRegistry::new();
        r.register_key(&mut reg);
        assert!(cert.verify_signature(&reg, r.keypair().key_id()));
    }

    #[test]
    fn issue_verbatim_keeps_builder_issuer() {
        let r = root();
        let leaf_key = Keypair::from_seed(b"leaf");
        let cert = r.issue_verbatim(
            CertificateBuilder::new()
                .issuer(DistinguishedName::empty())
                .subject(DistinguishedName::builder().common_name("anon").build())
                .validity(t0(), t0().add_days(90))
                .subject_key(leaf_key.key_id()),
        );
        assert!(cert.issuer().is_empty());
        // Signature still verifies against the signing CA's key.
        let mut reg = KeyRegistry::new();
        r.register_key(&mut reg);
        assert!(cert.verify_signature(&reg, r.keypair().key_id()));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = root();
        let b = root();
        assert_eq!(a.certificate().fingerprint(), b.certificate().fingerprint());
    }
}
