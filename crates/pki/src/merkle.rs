//! RFC 6962 Merkle hash trees for the Certificate Transparency log.
//!
//! The tree is append-only over opaque leaf byte strings. Hashing follows
//! RFC 6962 §2.1 on our own `mtls_crypto::sha256`:
//!
//! * leaf hash `= SHA-256(0x00 || leaf)`;
//! * node hash `= SHA-256(0x01 || left || right)`;
//! * `MTH(D[n])` splits at `k`, the largest power of two `< n`.
//!
//! [`MerkleTree`] produces roots for any prefix size (every signed tree
//! head is a snapshot of a prefix), audit paths ([`MerkleTree::inclusion_proof`])
//! and consistency paths ([`MerkleTree::consistency_proof`]).
//!
//! The verifiers ([`verify_inclusion`], [`verify_consistency`]) are pure
//! functions over bytes — the RFC 9162 §2.1.3.2 / §2.1.4.2 iterative
//! algorithms — and share no state with the tree, so a vantage point can
//! check a proof knowing nothing but two tree heads.

use mtls_crypto::sha256;

/// Domain-separation prefix for leaf hashes (RFC 6962 §2.1).
const LEAF_PREFIX: u8 = 0x00;
/// Domain-separation prefix for interior-node hashes.
const NODE_PREFIX: u8 = 0x01;

/// `SHA-256(0x00 || leaf)`.
pub fn leaf_hash(leaf: &[u8]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(1 + leaf.len());
    buf.push(LEAF_PREFIX);
    buf.extend_from_slice(leaf);
    sha256(&buf)
}

/// `SHA-256(0x01 || left || right)`.
pub fn node_hash(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut buf = [0u8; 65];
    buf[0] = NODE_PREFIX;
    buf[1..33].copy_from_slice(left);
    buf[33..65].copy_from_slice(right);
    sha256(&buf)
}

/// Root of the empty tree: `SHA-256("")` (RFC 6962 §2.1).
pub fn empty_root() -> [u8; 32] {
    sha256(&[])
}

/// Largest power of two strictly less than `n` (`n >= 2`).
fn split_point(n: u64) -> u64 {
    debug_assert!(n >= 2);
    let mut k = 1u64;
    while k * 2 < n {
        k *= 2;
    }
    k
}

/// An append-only RFC 6962 Merkle tree over leaf hashes.
///
/// Stores one 32-byte hash per leaf; roots and proofs are recomputed on
/// demand by recursion over subranges (`O(n)` hashing per query), which is
/// plenty for proof generation at simulation scale — verification, the hot
/// side, is `O(log n)`.
#[derive(Debug, Clone, Default)]
pub struct MerkleTree {
    leaves: Vec<[u8; 32]>,
}

impl MerkleTree {
    pub fn new() -> MerkleTree {
        MerkleTree::default()
    }

    /// Append a leaf (raw bytes; hashed with the leaf prefix).
    pub fn push(&mut self, leaf: &[u8]) {
        self.leaves.push(leaf_hash(leaf));
    }

    /// Append an already-computed leaf hash.
    pub fn push_leaf_hash(&mut self, hash: [u8; 32]) {
        self.leaves.push(hash);
    }

    /// Number of leaves.
    pub fn size(&self) -> u64 {
        self.leaves.len() as u64
    }

    /// Root over all leaves.
    pub fn root(&self) -> [u8; 32] {
        self.root_at(self.size()).expect("size() is in range")
    }

    /// `MTH` of the first `n` leaves — the root a signed tree head of size
    /// `n` commits to. `None` when `n` exceeds the tree.
    pub fn root_at(&self, n: u64) -> Option<[u8; 32]> {
        if n > self.size() {
            return None;
        }
        if n == 0 {
            return Some(empty_root());
        }
        Some(self.subtree_root(0, n))
    }

    /// Root of leaves `[lo, hi)`; `hi > lo`.
    fn subtree_root(&self, lo: u64, hi: u64) -> [u8; 32] {
        let n = hi - lo;
        if n == 1 {
            return self.leaves[lo as usize];
        }
        let k = split_point(n);
        let left = self.subtree_root(lo, lo + k);
        let right = self.subtree_root(lo + k, hi);
        node_hash(&left, &right)
    }

    /// RFC 6962 `PATH(m, D[n])`: audit path for leaf `index` within the
    /// prefix tree of size `tree_size`. `None` when out of range.
    pub fn inclusion_proof(&self, index: u64, tree_size: u64) -> Option<Vec<[u8; 32]>> {
        if tree_size > self.size() || index >= tree_size {
            return None;
        }
        let mut path = Vec::new();
        self.path(index, 0, tree_size, &mut path);
        Some(path)
    }

    /// Audit paths for *every* leaf of the prefix tree of `tree_size`
    /// leaves, in one `O(n log n)` pass (the per-leaf
    /// [`MerkleTree::inclusion_proof`] recomputes subtree roots and is
    /// `O(n)` each — quadratic over a whole log).
    pub fn inclusion_proofs(&self, tree_size: u64) -> Option<Vec<Vec<[u8; 32]>>> {
        if tree_size > self.size() {
            return None;
        }
        let mut proofs = vec![Vec::new(); tree_size as usize];
        if tree_size > 0 {
            self.all_paths(0, tree_size, &mut proofs);
        }
        Some(proofs)
    }

    fn all_paths(&self, lo: u64, hi: u64, proofs: &mut [Vec<[u8; 32]>]) -> [u8; 32] {
        let n = hi - lo;
        if n == 1 {
            return self.leaves[lo as usize];
        }
        let k = split_point(n);
        let left = self.all_paths(lo, lo + k, proofs);
        let right = self.all_paths(lo + k, hi, proofs);
        // On the way out of the recursion: deepest siblings were appended
        // first, so each path stays in leaf-to-root order.
        for p in &mut proofs[lo as usize..(lo + k) as usize] {
            p.push(right);
        }
        for p in &mut proofs[(lo + k) as usize..hi as usize] {
            p.push(left);
        }
        node_hash(&left, &right)
    }

    fn path(&self, m: u64, lo: u64, hi: u64, out: &mut Vec<[u8; 32]>) {
        let n = hi - lo;
        if n == 1 {
            return;
        }
        let k = split_point(n);
        if m < k {
            self.path(m, lo, lo + k, out);
            out.push(self.subtree_root(lo + k, hi));
        } else {
            self.path(m - k, lo + k, hi, out);
            out.push(self.subtree_root(lo, lo + k));
        }
    }

    /// RFC 6962 `PROOF(m, D[n])`: consistency path between the prefix
    /// trees of sizes `old` and `new`. `None` when `old > new` or `new`
    /// exceeds the tree. The proof for `old == 0` or `old == new` is empty.
    pub fn consistency_proof(&self, old: u64, new: u64) -> Option<Vec<[u8; 32]>> {
        if new > self.size() || old > new {
            return None;
        }
        if old == 0 || old == new {
            return Some(Vec::new());
        }
        let mut path = Vec::new();
        self.subproof(old, 0, new, true, &mut path);
        Some(path)
    }

    fn subproof(&self, m: u64, lo: u64, hi: u64, known: bool, out: &mut Vec<[u8; 32]>) {
        let n = hi - lo;
        if m == n {
            if !known {
                out.push(self.subtree_root(lo, hi));
            }
            return;
        }
        let k = split_point(n);
        if m <= k {
            self.subproof(m, lo, lo + k, known, out);
            out.push(self.subtree_root(lo + k, hi));
        } else {
            self.subproof(m - k, lo + k, hi, false, out);
            out.push(self.subtree_root(lo, lo + k));
        }
    }
}

/// Verify an RFC 9162 §2.1.3.2 inclusion proof: does `leaf` sit at
/// `leaf_index` in the tree of `tree_size` leaves whose root is `root`?
/// Pure over bytes; rejects malformed paths (wrong length for the
/// index/size pair) rather than panicking.
pub fn verify_inclusion(
    leaf: &[u8],
    leaf_index: u64,
    tree_size: u64,
    proof: &[[u8; 32]],
    root: &[u8; 32],
) -> bool {
    if leaf_index >= tree_size {
        return false;
    }
    let mut fnode = leaf_index;
    let mut snode = tree_size - 1;
    let mut r = leaf_hash(leaf);
    for p in proof {
        if snode == 0 {
            return false;
        }
        if fnode & 1 == 1 || fnode == snode {
            r = node_hash(p, &r);
            if fnode & 1 == 0 {
                while fnode & 1 == 0 && fnode != 0 {
                    fnode >>= 1;
                    snode >>= 1;
                }
            }
        } else {
            r = node_hash(&r, p);
        }
        fnode >>= 1;
        snode >>= 1;
    }
    snode == 0 && r == *root
}

/// Verify an RFC 9162 §2.1.4.2 consistency proof: is the tree of
/// `old_size` leaves with root `old_root` a prefix of the tree of
/// `new_size` leaves with root `new_root`?
///
/// Edge cases per the RFC: the empty tree (`old_size == 0`) is a prefix of
/// everything (proof must be empty), and `old_size == new_size` demands an
/// empty proof and equal roots.
pub fn verify_consistency(
    old_size: u64,
    new_size: u64,
    old_root: &[u8; 32],
    new_root: &[u8; 32],
    proof: &[[u8; 32]],
) -> bool {
    if old_size > new_size {
        return false;
    }
    if old_size == new_size {
        return proof.is_empty() && old_root == new_root;
    }
    if old_size == 0 {
        return proof.is_empty();
    }

    let mut fnode = old_size - 1;
    let mut snode = new_size - 1;
    while fnode & 1 == 1 {
        fnode >>= 1;
        snode >>= 1;
    }
    let mut rest = proof.iter();
    let (mut fr, mut sr) = if fnode != 0 {
        match rest.next() {
            Some(p) => (*p, *p),
            None => return false,
        }
    } else {
        (*old_root, *old_root)
    };
    for p in rest {
        if snode == 0 {
            return false;
        }
        if fnode & 1 == 1 || fnode == snode {
            fr = node_hash(p, &fr);
            sr = node_hash(p, &sr);
            while fnode & 1 == 0 && fnode != 0 {
                fnode >>= 1;
                snode >>= 1;
            }
        } else {
            sr = node_hash(&sr, p);
        }
        fnode >>= 1;
        snode >>= 1;
    }
    snode == 0 && fr == *old_root && sr == *new_root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_of(n: u64) -> MerkleTree {
        let mut t = MerkleTree::new();
        for i in 0..n {
            t.push(format!("leaf-{i}").as_bytes());
        }
        t
    }

    #[test]
    fn empty_tree_root_is_sha256_of_nothing() {
        assert_eq!(tree_of(0).root(), sha256(&[]));
    }

    #[test]
    fn rfc6962_shape_small_trees() {
        // Root of a 1-leaf tree is the leaf hash; of a 2-leaf tree the
        // node hash of the two leaf hashes.
        let t = tree_of(2);
        let l0 = leaf_hash(b"leaf-0");
        let l1 = leaf_hash(b"leaf-1");
        assert_eq!(t.root_at(1), Some(l0));
        assert_eq!(t.root_at(2), Some(node_hash(&l0, &l1)));
        // A 3-leaf tree splits 2|1.
        let t = tree_of(3);
        let l2 = leaf_hash(b"leaf-2");
        assert_eq!(t.root(), node_hash(&node_hash(&l0, &l1), &l2));
    }

    #[test]
    fn all_inclusion_proofs_verify_up_to_64() {
        for n in 1..=64u64 {
            let t = tree_of(n);
            let root = t.root();
            let batch = t.inclusion_proofs(n).unwrap();
            for i in 0..n {
                let proof = t.inclusion_proof(i, n).unwrap();
                assert_eq!(batch[i as usize], proof, "batch path ({i}, {n})");
                let leaf = format!("leaf-{i}");
                assert!(
                    verify_inclusion(leaf.as_bytes(), i, n, &proof, &root),
                    "inclusion({i}, {n}) failed"
                );
                // The same proof must not place a different leaf there.
                assert!(!verify_inclusion(b"leaf-x", i, n, &proof, &root));
            }
        }
    }

    #[test]
    fn every_prefix_proves_consistent_with_every_extension_up_to_64() {
        // The acceptance-criteria property, exhaustively: for all
        // m <= n <= 64, PROOF(m, D[n]) verifies against MTH(D[m]), MTH(D[n]).
        let t = tree_of(64);
        for n in 1..=64u64 {
            let new_root = t.root_at(n).unwrap();
            for m in 0..=n {
                let old_root = t.root_at(m).unwrap();
                let proof = t.consistency_proof(m, n).unwrap();
                assert!(
                    verify_consistency(m, n, &old_root, &new_root, &proof),
                    "consistency({m}, {n}) failed"
                );
            }
        }
    }

    #[test]
    fn forked_prefix_fails_consistency() {
        // Two trees sharing no history: consistency must fail for all
        // non-trivial (m, n) pairs.
        let honest = tree_of(16);
        let mut forked = MerkleTree::new();
        for i in 0..16u64 {
            forked.push(format!("evil-{i}").as_bytes());
        }
        for m in 1..=16u64 {
            let old_root = honest.root_at(m).unwrap();
            let proof = forked.consistency_proof(m, 16).unwrap();
            assert!(!verify_consistency(
                m,
                16,
                &old_root,
                &forked.root(),
                &proof
            ));
        }
    }

    #[test]
    fn corrupted_proofs_fail() {
        let t = tree_of(13);
        let root = t.root();
        let mut proof = t.inclusion_proof(5, 13).unwrap();
        proof[0][0] ^= 1;
        assert!(!verify_inclusion(b"leaf-5", 5, 13, &proof, &root));
        // Truncated and extended paths fail too.
        let good = t.inclusion_proof(5, 13).unwrap();
        assert!(!verify_inclusion(
            b"leaf-5",
            5,
            13,
            &good[..good.len() - 1],
            &root
        ));
        let mut long = good.clone();
        long.push([0u8; 32]);
        assert!(!verify_inclusion(b"leaf-5", 5, 13, &long, &root));

        let old_root = t.root_at(7).unwrap();
        let mut cproof = t.consistency_proof(7, 13).unwrap();
        cproof[1][31] ^= 0x80;
        assert!(!verify_consistency(7, 13, &old_root, &root, &cproof));
    }

    #[test]
    fn equal_sizes_and_empty_prefix_edge_cases() {
        let t = tree_of(9);
        let r = t.root();
        assert!(verify_consistency(9, 9, &r, &r, &[]));
        assert!(!verify_consistency(9, 9, &r, &r, &[[0u8; 32]]));
        let other = tree_of(10).root();
        assert!(!verify_consistency(9, 9, &r, &other, &[]));
        assert!(verify_consistency(0, 9, &empty_root(), &r, &[]));
        assert!(!verify_consistency(10, 9, &r, &r, &[]));
    }
}
