//! Root programs and the paper's public/private decision procedure.
//!
//! The paper (§3.2.1) deems a certificate *issued by a public CA* "when its
//! root or intermediate certificate, or its issuer, is listed in at least
//! one of the major trust stores" (Mozilla NSS, Apple, Microsoft, CCADB).
//! [`TrustAnchors`] models the four programs with overlapping memberships,
//! and [`TrustAnchors::is_public_chain`] implements exactly that test.

use mtls_x509::{Certificate, DistinguishedName, Fingerprint};
use std::collections::{HashMap, HashSet};

/// The four root programs the paper consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RootProgram {
    MozillaNss,
    Apple,
    Microsoft,
    Ccadb,
}

impl RootProgram {
    /// All programs, in the paper's citation order.
    pub const ALL: [RootProgram; 4] = [
        RootProgram::MozillaNss,
        RootProgram::Apple,
        RootProgram::Microsoft,
        RootProgram::Ccadb,
    ];
}

/// One root program's store: trusted certificate fingerprints plus the
/// issuer DN strings they answer for (the paper's "or its issuer" clause).
#[derive(Debug, Clone, Default)]
pub struct TrustStore {
    fingerprints: HashSet<Fingerprint>,
    issuer_dns: HashSet<String>,
}

impl TrustStore {
    /// Empty store.
    pub fn new() -> TrustStore {
        TrustStore::default()
    }

    /// Add a trusted (root or intermediate) certificate.
    pub fn add_certificate(&mut self, cert: &Certificate) {
        self.fingerprints.insert(cert.fingerprint());
        self.issuer_dns.insert(cert.subject().to_display_string());
    }

    /// Whether the certificate itself is a member.
    pub fn contains_certificate(&self, cert: &Certificate) -> bool {
        self.fingerprints.contains(&cert.fingerprint())
    }

    /// Whether a DN names a member CA.
    pub fn contains_issuer(&self, dn: &DistinguishedName) -> bool {
        self.issuer_dns.contains(&dn.to_display_string())
    }

    /// Number of anchors.
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Whether the store holds no anchors.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }
}

/// The union of the four root programs.
#[derive(Debug, Clone, Default)]
pub struct TrustAnchors {
    stores: HashMap<RootProgram, TrustStore>,
}

impl TrustAnchors {
    /// Empty set of programs.
    pub fn new() -> TrustAnchors {
        let mut stores = HashMap::new();
        for p in RootProgram::ALL {
            stores.insert(p, TrustStore::new());
        }
        TrustAnchors { stores }
    }

    /// Add a CA certificate to specific programs. Real programs overlap but
    /// are not identical; the simulator exercises partial membership.
    pub fn add_to(&mut self, programs: &[RootProgram], cert: &Certificate) {
        for p in programs {
            self.stores
                .get_mut(p)
                .expect("all programs pre-created")
                .add_certificate(cert);
        }
    }

    /// Add to all four programs.
    pub fn add_to_all(&mut self, cert: &Certificate) {
        self.add_to(&RootProgram::ALL, cert);
    }

    /// One program's store.
    pub fn store(&self, program: RootProgram) -> &TrustStore {
        &self.stores[&program]
    }

    /// The paper's §3.2.1 public test on a single certificate: its issuer DN
    /// is listed in ≥ 1 program.
    pub fn is_public_issuer(&self, issuer: &DistinguishedName) -> bool {
        self.stores.values().any(|s| s.contains_issuer(issuer))
    }

    /// Whether a given CA certificate is a member of ≥ 1 program.
    pub fn is_anchored(&self, cert: &Certificate) -> bool {
        self.stores.values().any(|s| s.contains_certificate(cert))
    }

    /// The full §3.2.1 test over a presented chain (`leaf` first, then any
    /// intermediates): public iff the leaf's issuer DN is listed, or any
    /// presented chain certificate is itself an anchor, or any chain
    /// certificate's issuer DN is listed.
    pub fn is_public_chain(&self, leaf: &Certificate, chain: &[Certificate]) -> bool {
        if self.is_public_issuer(leaf.issuer()) {
            return true;
        }
        chain
            .iter()
            .any(|c| self.is_anchored(c) || self.is_public_issuer(c.issuer()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use mtls_asn1::Asn1Time;
    use mtls_crypto::Keypair;
    use mtls_x509::CertificateBuilder;

    fn t0() -> Asn1Time {
        Asn1Time::from_ymd(2022, 5, 1)
    }

    fn public_root() -> CertificateAuthority {
        CertificateAuthority::new_root(
            b"public-root",
            DistinguishedName::builder()
                .organization("DigiCert Inc")
                .common_name("DigiCert Global Root")
                .build(),
            t0(),
        )
    }

    fn private_root() -> CertificateAuthority {
        CertificateAuthority::new_root(
            b"private-root",
            DistinguishedName::builder()
                .organization("Globus Online")
                .common_name("FXP DCAU Cert")
                .build(),
            t0(),
        )
    }

    fn leaf_of(ca: &CertificateAuthority, cn: &str) -> Certificate {
        let k = Keypair::from_seed(cn.as_bytes());
        ca.issue(
            CertificateBuilder::new()
                .subject(DistinguishedName::builder().common_name(cn).build())
                .validity(t0(), t0().add_days(90))
                .subject_key(k.key_id()),
        )
    }

    #[test]
    fn public_issuer_detected_via_dn() {
        let mut anchors = TrustAnchors::new();
        let root = public_root();
        anchors.add_to_all(root.certificate());
        let leaf = leaf_of(&root, "www.example.com");
        assert!(anchors.is_public_issuer(leaf.issuer()));
        assert!(anchors.is_public_chain(&leaf, &[]));
    }

    #[test]
    fn private_issuer_not_public() {
        let mut anchors = TrustAnchors::new();
        anchors.add_to_all(public_root().certificate());
        let root = private_root();
        let leaf = leaf_of(&root, "transfer-node");
        assert!(!anchors.is_public_issuer(leaf.issuer()));
        assert!(!anchors.is_public_chain(&leaf, &[root.certificate().clone()]));
    }

    #[test]
    fn membership_in_one_program_suffices() {
        let mut anchors = TrustAnchors::new();
        let root = public_root();
        anchors.add_to(&[RootProgram::Microsoft], root.certificate());
        let leaf = leaf_of(&root, "single-program.example");
        assert!(anchors.is_public_chain(&leaf, &[]));
        assert!(anchors
            .store(RootProgram::Microsoft)
            .contains_certificate(root.certificate()));
        assert!(anchors.store(RootProgram::MozillaNss).is_empty());
    }

    #[test]
    fn intermediate_membership_makes_chain_public() {
        // Paper: "root (or intermediate) certificates included in major
        // root stores" — the intermediate alone being anchored is enough.
        let mut anchors = TrustAnchors::new();
        let root = private_root(); // root NOT in stores
        let int = CertificateAuthority::new_intermediate(
            &root,
            b"trusted-int",
            DistinguishedName::builder()
                .organization("Trusted Sub CA")
                .build(),
            t0(),
        );
        anchors.add_to(&[RootProgram::Ccadb], int.certificate());
        let leaf = leaf_of(&int, "via-intermediate.example");
        assert!(anchors.is_public_chain(&leaf, &[int.certificate().clone()]));
        // Without presenting the intermediate, the leaf issuer DN is also
        // listed (added via add_certificate), so still public.
        assert!(anchors.is_public_chain(&leaf, &[]));
    }

    #[test]
    fn empty_issuer_is_never_public() {
        let anchors = TrustAnchors::new();
        assert!(!anchors.is_public_issuer(&DistinguishedName::empty()));
    }
}
