//! Aggregation-based CT gossip and split-view detection.
//!
//! Modeled on Dahlberg et al., "Aggregation-Based Certificate Transparency
//! Gossip": vantage points don't talk to each other directly — an
//! aggregator collects the signed tree heads each vantage observed,
//! together with the consistency proofs the log served, and an auditor
//! replays the evidence. Two vantage points exist in the simulation:
//!
//! * [`Vantage::CampusBorder`] — the border router the paper's dataset is
//!   captured at, seeing whatever view of the log the campus is served;
//! * [`Vantage::ExternalMonitor`] — an off-campus monitor seeing the view
//!   the log shows the world.
//!
//! A log is *consistent* when every pair of observed STHs is linked by a
//! verifying consistency proof (equal sizes must simply share a root). A
//! log that cannot prove consistency between two observed STHs is flagged
//! as a **split view** by [`SplitViewDetector::audit`] — the equivocation
//! CT's gossip is designed to make detectable, not preventable.
//!
//! [`VerifiedCt`] then narrows a [`CtLog`] to the entries the gossip
//! evidence actually supports: everything below the agreed tree head when
//! the log is consistent, and only entries with a verifying inclusion
//! proof against the external reference head when it equivocates.

use crate::ctlog::{CtEntry, CtLog};
use crate::merkle::leaf_hash;
use crate::sth::{ConsistencyProof, InclusionProof, SignedTreeHead};
use mtls_crypto::{hex, KeyId, KeyRegistry, Keypair};
use mtls_intern::FxHashMap;
use std::collections::BTreeMap;

/// Where an STH was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vantage {
    CampusBorder,
    ExternalMonitor,
}

impl Vantage {
    pub fn label(self) -> &'static str {
        match self {
            Vantage::CampusBorder => "campus_border",
            Vantage::ExternalMonitor => "external_monitor",
        }
    }

    pub fn from_label(label: &str) -> Option<Vantage> {
        match label {
            "campus_border" => Some(Vantage::CampusBorder),
            "external_monitor" => Some(Vantage::ExternalMonitor),
            _ => None,
        }
    }
}

/// One gossiped tree head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtObservation {
    pub vantage: Vantage,
    pub sth: SignedTreeHead,
}

/// Everything the border aggregator hands the auditor: observed STHs, the
/// consistency proofs the log served, per-entry inclusion proofs keyed by
/// leaf hash (fetched only when a split view is suspected), and the log
/// verification keys (simsig's stand-in for out-of-band key distribution).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GossipBundle {
    pub observations: Vec<CtObservation>,
    pub consistency_proofs: Vec<ConsistencyProof>,
    /// `(leaf hash, proof)` — the aggregator's proof cache, keyed the way
    /// a real log is queried (`get-proof-by-hash`).
    pub entry_proofs: Vec<([u8; 32], InclusionProof)>,
    pub log_keys: Vec<Keypair>,
}

impl GossipBundle {
    /// A bundle with no observations disables the proof-based filter path
    /// (the pipeline falls back to the legacy bare-issuer comparison).
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Registry of the bundled log keys.
    pub fn registry(&self) -> KeyRegistry {
        let mut registry = KeyRegistry::new();
        for key in &self.log_keys {
            registry.register(key.clone());
        }
        registry
    }

    /// Serialize as the `ct_gossip.log` TSV: one record per line, hex
    /// payloads, deterministic order.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for key in &self.log_keys {
            out.push_str("log_key\t");
            out.push_str(&hex::encode(&key.secret_bytes()));
            out.push('\n');
        }
        for obs in &self.observations {
            out.push_str("sth\t");
            out.push_str(obs.vantage.label());
            out.push('\t');
            out.push_str(&hex::encode(&obs.sth.to_bytes()));
            out.push('\n');
        }
        for proof in &self.consistency_proofs {
            out.push_str("consistency\t");
            out.push_str(&hex::encode(&proof.to_bytes()));
            out.push('\n');
        }
        for (leaf, proof) in &self.entry_proofs {
            out.push_str("entry_proof\t");
            out.push_str(&hex::encode(leaf));
            out.push('\t');
            out.push_str(&hex::encode(&proof.to_bytes()));
            out.push('\n');
        }
        out
    }

    /// Parse the `ct_gossip.log` TSV. Lenient like the other log parsers:
    /// lines that don't decode are skipped, not fatal.
    pub fn from_tsv(text: &str) -> GossipBundle {
        let mut bundle = GossipBundle::default();
        for line in text.lines() {
            let mut cells = line.splitn(3, '\t');
            match (cells.next(), cells.next(), cells.next()) {
                (Some("log_key"), Some(secret), None) => {
                    if let Some(bytes) = hex::decode(secret) {
                        if let Ok(secret) = <[u8; 32]>::try_from(bytes.as_slice()) {
                            bundle.log_keys.push(Keypair::from_secret_bytes(secret));
                        }
                    }
                }
                (Some("sth"), Some(vantage), Some(payload)) => {
                    if let (Some(vantage), Some(bytes)) =
                        (Vantage::from_label(vantage), hex::decode(payload))
                    {
                        if let Some(sth) = SignedTreeHead::from_bytes(&bytes) {
                            bundle.observations.push(CtObservation { vantage, sth });
                        }
                    }
                }
                (Some("consistency"), Some(payload), None) => {
                    if let Some(bytes) = hex::decode(payload) {
                        if let Some(proof) = ConsistencyProof::from_bytes(&bytes) {
                            bundle.consistency_proofs.push(proof);
                        }
                    }
                }
                (Some("entry_proof"), Some(leaf), Some(payload)) => {
                    if let (Some(leaf), Some(bytes)) = (hex::decode(leaf), hex::decode(payload)) {
                        if let (Ok(leaf), Some(proof)) = (
                            <[u8; 32]>::try_from(leaf.as_slice()),
                            InclusionProof::from_bytes(&bytes),
                        ) {
                            bundle.entry_proofs.push((leaf, proof));
                        }
                    }
                }
                _ => {}
            }
        }
        bundle
    }
}

/// Audit verdict for one log id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogAudit {
    pub log_id: KeyId,
    /// Observed STHs attributed to this log.
    pub sths: usize,
    /// STHs whose signature did not verify (excluded from the chain).
    pub signature_failures: usize,
    pub consistency_verified: usize,
    pub consistency_failed: usize,
    /// True when any pair of observed heads could not be linked.
    pub split_view: bool,
    /// The head entries are audited against: the largest consistent head,
    /// or on a split the largest head the *external* monitor vouches for.
    pub reference: Option<SignedTreeHead>,
}

/// The full audit across every observed log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CtAudit {
    /// Per-log verdicts, ordered by log id.
    pub logs: Vec<LogAudit>,
}

impl CtAudit {
    pub fn split_views(&self) -> usize {
        self.logs.iter().filter(|l| l.split_view).count()
    }

    /// Hex ids of logs caught equivocating, in id order.
    pub fn split_view_log_ids(&self) -> Vec<String> {
        self.logs
            .iter()
            .filter(|l| l.split_view)
            .map(|l| l.log_id.to_hex())
            .collect()
    }

    pub fn for_log(&self, log_id: KeyId) -> Option<&LogAudit> {
        self.logs.iter().find(|l| l.log_id == log_id)
    }
}

/// Replays gossip evidence and flags logs that cannot prove consistency
/// between observed tree heads.
pub struct SplitViewDetector;

impl SplitViewDetector {
    pub fn audit(bundle: &GossipBundle) -> CtAudit {
        let registry = bundle.registry();
        // Group observations by log id; BTreeMap keeps the verdicts in a
        // deterministic order.
        let mut by_log: BTreeMap<KeyId, Vec<&CtObservation>> = BTreeMap::new();
        for obs in &bundle.observations {
            by_log.entry(obs.sth.log_id).or_default().push(obs);
        }
        let mut logs = Vec::with_capacity(by_log.len());
        for (log_id, observations) in by_log {
            let sths = observations.len();
            let mut valid: Vec<&CtObservation> = observations
                .into_iter()
                .filter(|o| o.sth.verify(&registry))
                .collect();
            let signature_failures = sths - valid.len();
            valid.sort_by(|a, b| {
                (a.sth.tree_size, &a.sth.root, a.sth.timestamp).cmp(&(
                    b.sth.tree_size,
                    &b.sth.root,
                    b.sth.timestamp,
                ))
            });
            let mut consistency_verified = 0;
            let mut consistency_failed = 0;
            for pair in valid.windows(2) {
                let (old, new) = (&pair[0].sth, &pair[1].sth);
                let linked = if old.tree_size == new.tree_size {
                    old.root == new.root
                } else {
                    bundle
                        .consistency_proofs
                        .iter()
                        .filter(|p| {
                            p.log_id == log_id
                                && p.old_size == old.tree_size
                                && p.new_size == new.tree_size
                        })
                        .any(|p| p.verify(old, new))
                };
                if linked {
                    consistency_verified += 1;
                } else {
                    consistency_failed += 1;
                }
            }
            let split_view = consistency_failed > 0;
            let reference = if split_view {
                // Entries must be audited against the view the world sees:
                // the largest externally observed head (fall back to the
                // largest overall if no external vantage reported).
                valid
                    .iter()
                    .rfind(|o| o.vantage == Vantage::ExternalMonitor)
                    .or(valid.last())
                    .map(|o| o.sth.clone())
            } else {
                valid.last().map(|o| o.sth.clone())
            };
            logs.push(LogAudit {
                log_id,
                sths,
                signature_failures,
                consistency_verified,
                consistency_failed,
                split_view,
                reference,
            });
        }
        CtAudit { logs }
    }
}

/// Per-entry verification tallies from [`VerifiedCt::build`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    pub entries_verified: usize,
    pub entries_rejected: usize,
    pub inclusion_proofs_verified: usize,
    pub inclusion_proofs_failed: usize,
}

/// A [`CtLog`] narrowed to the entries the gossip evidence supports. The
/// lookup API mirrors the log's own, so the interception filter can run
/// unchanged over the trusted subset.
pub struct VerifiedCt<'a> {
    log: &'a CtLog,
    trusted: Vec<bool>,
}

impl<'a> VerifiedCt<'a> {
    /// Decide which entries of `log` to trust under `audit`.
    ///
    /// * Consistent log: every entry below the reference head is trusted —
    ///   one consistency proof vouches for the whole prefix.
    /// * Split view: an entry is trusted only if the bundle carries an
    ///   inclusion proof for its leaf that verifies against the reference
    ///   (external) head. Entries fabricated for the campus view have no
    ///   such proof and fall out.
    /// * Log absent from the audit: nothing is trusted — the gossip layer
    ///   never saw it.
    pub fn build(
        log: &'a CtLog,
        audit: &CtAudit,
        bundle: &GossipBundle,
    ) -> (VerifiedCt<'a>, VerifyStats) {
        let mut stats = VerifyStats::default();
        let verdict = audit.for_log(log.log_id());
        let trusted = match verdict.and_then(|v| v.reference.as_ref().map(|r| (v, r))) {
            None => vec![false; log.len()],
            Some((verdict, reference)) if !verdict.split_view => {
                let head = reference.tree_size;
                (0..log.len() as u64).map(|i| i < head).collect()
            }
            Some((_, reference)) => {
                let proofs: FxHashMap<&[u8; 32], &InclusionProof> = bundle
                    .entry_proofs
                    .iter()
                    .filter(|(_, p)| {
                        p.log_id == reference.log_id && p.tree_size == reference.tree_size
                    })
                    .map(|(leaf, p)| (leaf, p))
                    .collect();
                log.entries()
                    .iter()
                    .map(|entry| {
                        let leaf = CtLog::leaf_bytes(entry);
                        match proofs.get(&leaf_hash(&leaf)) {
                            Some(proof) if proof.verify(&leaf, reference) => {
                                stats.inclusion_proofs_verified += 1;
                                true
                            }
                            Some(_) => {
                                stats.inclusion_proofs_failed += 1;
                                false
                            }
                            None => false,
                        }
                    })
                    .collect()
            }
        };
        stats.entries_verified = trusted.iter().filter(|t| **t).count();
        stats.entries_rejected = log.len() - stats.entries_verified;
        (VerifiedCt { log, trusted }, stats)
    }

    fn trusted_indices(&self, domain: &str) -> Vec<usize> {
        self.log
            .matching_indices(domain)
            .into_iter()
            .filter(|&i| self.trusted[i])
            .collect()
    }

    /// Whether any *trusted* entry covers the domain.
    pub fn contains_domain(&self, domain: &str) -> bool {
        !self.trusted_indices(domain).is_empty()
    }

    /// Whether a trusted entry for `domain` has the given issuer.
    pub fn domain_has_issuer(&self, domain: &str, issuer_display: &str) -> bool {
        self.trusted_indices(domain)
            .into_iter()
            .any(|i| self.log.entries()[i].issuer_display == issuer_display)
    }

    /// Whether the precise certificate is covered by a trusted entry.
    pub fn domain_has_fingerprint(&self, domain: &str, fingerprint_hex: &str) -> bool {
        self.trusted_indices(domain)
            .into_iter()
            .any(|i| self.log.entries()[i].fingerprint_hex == fingerprint_hex)
    }

    /// Number of trusted entries.
    pub fn trusted_len(&self) -> usize {
        self.trusted.iter().filter(|t| **t).count()
    }

    fn trusted_exact(&self, domain: &str) -> impl Iterator<Item = &CtEntry> {
        self.log
            .exact_indices(domain)
            .iter()
            .filter(|&&i| self.trusted[i])
            .map(|&i| &self.log.entries()[i])
    }

    /// Whether a trusted entry names this *exact* domain (no wildcard
    /// expansion) under the given issuer — the SCT-strip check's premise:
    /// "CT vouches for this very FQDN under this very issuer".
    pub fn exact_domain_has_issuer(&self, domain: &str, issuer_display: &str) -> bool {
        self.trusted_exact(domain)
            .any(|e| e.issuer_display == issuer_display)
    }

    /// Whether a trusted entry logs this precise certificate for this
    /// *exact* domain.
    pub fn exact_domain_has_fingerprint(&self, domain: &str, fingerprint_hex: &str) -> bool {
        self.trusted_exact(domain)
            .any(|e| e.fingerprint_hex == fingerprint_hex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctlog::CtEntry;

    fn entry(domain: &str, issuer: &str, fp: &str) -> CtEntry {
        CtEntry {
            domain: domain.into(),
            issuer_display: issuer.into(),
            fingerprint_hex: fp.into(),
        }
    }

    fn honest_log(n: usize) -> CtLog {
        let mut log = CtLog::new();
        for i in 0..n {
            log.submit_entry(entry(
                &format!("site-{i}.example.org"),
                "O=DigiCert Inc",
                &format!("{i:04x}"),
            ));
        }
        log
    }

    /// Honest two-vantage bundle: both see (prefixes of) the same log.
    fn honest_bundle(log: &CtLog, campus_at: u64) -> GossipBundle {
        let n = log.len() as u64;
        GossipBundle {
            observations: vec![
                CtObservation {
                    vantage: Vantage::CampusBorder,
                    sth: log.sth_at(campus_at, 10).unwrap(),
                },
                CtObservation {
                    vantage: Vantage::ExternalMonitor,
                    sth: log.sth(20),
                },
            ],
            consistency_proofs: vec![log.prove_consistency(campus_at, n).unwrap()],
            entry_proofs: Vec::new(),
            log_keys: vec![log.keypair().clone()],
        }
    }

    /// Equivocating log: the campus view has `fork` fabricated entries
    /// spliced in at the midpoint, signed with the same log key.
    fn forked_views(n: usize, fork: usize) -> (CtLog, CtLog) {
        let honest = honest_log(n);
        let mut campus = CtLog::new();
        let at = n / 2;
        for e in &honest.entries()[..at] {
            campus.submit_entry(e.clone());
        }
        for i in 0..fork {
            campus.submit_entry(entry(
                &format!("victim-{i}.example.org"),
                "O=Evil Proxy",
                &format!("ff{i:02x}"),
            ));
        }
        for e in &honest.entries()[at..] {
            campus.submit_entry(e.clone());
        }
        (honest, campus)
    }

    #[test]
    fn honest_views_audit_consistent() {
        let log = honest_log(12);
        let bundle = honest_bundle(&log, 7);
        let audit = SplitViewDetector::audit(&bundle);
        assert_eq!(audit.logs.len(), 1);
        assert_eq!(audit.split_views(), 0);
        let verdict = &audit.logs[0];
        assert_eq!(verdict.consistency_verified, 1);
        assert_eq!(verdict.consistency_failed, 0);
        assert_eq!(verdict.reference.as_ref().unwrap().tree_size, 12);

        let (view, stats) = VerifiedCt::build(&log, &audit, &bundle);
        assert_eq!(stats.entries_verified, 12);
        assert_eq!(stats.entries_rejected, 0);
        assert!(view.contains_domain("site-3.example.org"));
        assert!(view.domain_has_issuer("site-3.example.org", "O=DigiCert Inc"));
        assert!(view.domain_has_fingerprint("site-3.example.org", "0003"));
    }

    #[test]
    fn equivocating_log_is_detected_and_fabricated_entries_rejected() {
        let (honest, campus) = forked_views(10, 2);
        assert_eq!(honest.log_id(), campus.log_id(), "one log, two views");
        let n = honest.len() as u64;
        let c = campus.len() as u64;
        let bundle = GossipBundle {
            observations: vec![
                CtObservation {
                    vantage: Vantage::CampusBorder,
                    sth: campus.sth(10),
                },
                CtObservation {
                    vantage: Vantage::ExternalMonitor,
                    sth: honest.sth(20),
                },
            ],
            // The misbehaving log serves a proof from its campus tree; it
            // cannot link the honest head, so the proof fails.
            consistency_proofs: vec![campus.prove_consistency(n, c).unwrap()],
            entry_proofs: (0..n)
                .map(|i| {
                    let leaf = CtLog::leaf_bytes(&honest.entries()[i as usize]);
                    (
                        crate::merkle::leaf_hash(&leaf),
                        honest.prove_inclusion(i, n).unwrap(),
                    )
                })
                .collect(),
            log_keys: vec![honest.keypair().clone()],
        };
        let audit = SplitViewDetector::audit(&bundle);
        assert_eq!(audit.split_views(), 1);
        assert_eq!(audit.split_view_log_ids(), vec![honest.log_id().to_hex()]);
        // Reference falls back to the external (honest) head.
        let verdict = &audit.logs[0];
        assert_eq!(verdict.reference.as_ref().unwrap().tree_size, n);

        let (view, stats) = VerifiedCt::build(&campus, &audit, &bundle);
        assert_eq!(stats.entries_verified, 10, "honest entries keep proofs");
        assert_eq!(stats.entries_rejected, 2, "fabricated entries fall out");
        assert_eq!(stats.inclusion_proofs_verified, 10);
        assert!(!view.contains_domain("victim-0.example.org"));
        assert!(view.contains_domain("site-9.example.org"));
    }

    #[test]
    fn unverifiable_sths_are_signature_failures() {
        let log = honest_log(4);
        let mut bundle = honest_bundle(&log, 4);
        bundle.log_keys.clear();
        let audit = SplitViewDetector::audit(&bundle);
        let verdict = &audit.logs[0];
        assert_eq!(verdict.signature_failures, 2);
        assert!(!verdict.split_view, "no surviving pair to contradict");
        assert!(verdict.reference.is_none());
        let (_, stats) = VerifiedCt::build(&log, &audit, &bundle);
        assert_eq!(stats.entries_verified, 0);
        assert_eq!(stats.entries_rejected, 4);
    }

    #[test]
    fn missing_consistency_proof_is_a_split_view() {
        let log = honest_log(9);
        let mut bundle = honest_bundle(&log, 5);
        bundle.consistency_proofs.clear();
        let audit = SplitViewDetector::audit(&bundle);
        assert_eq!(audit.split_views(), 1);
    }

    #[test]
    fn bundle_tsv_round_trips() {
        let (honest, campus) = forked_views(6, 1);
        let n = honest.len() as u64;
        let bundle = GossipBundle {
            observations: vec![
                CtObservation {
                    vantage: Vantage::CampusBorder,
                    sth: campus.sth(1),
                },
                CtObservation {
                    vantage: Vantage::ExternalMonitor,
                    sth: honest.sth(2),
                },
            ],
            consistency_proofs: vec![honest.prove_consistency(3, n).unwrap()],
            entry_proofs: vec![(
                crate::merkle::leaf_hash(&CtLog::leaf_bytes(&honest.entries()[0])),
                honest.prove_inclusion(0, n).unwrap(),
            )],
            log_keys: vec![honest.keypair().clone()],
        };
        let tsv = bundle.to_tsv();
        let back = GossipBundle::from_tsv(&tsv);
        assert_eq!(back, bundle);
        assert_eq!(back.to_tsv(), tsv);
        // Garbage lines are skipped, not fatal.
        let noisy = format!("junk\nsth\tnowhere\tzz\n{tsv}entry_proof\tshort\n");
        assert_eq!(GossipBundle::from_tsv(&noisy), bundle);
        assert!(GossipBundle::from_tsv("").is_empty());
    }
}
