//! Client-chain authorization: from presented DER blobs to a tenant.
//!
//! `mtlscope serve` terminates mutual TLS and must answer "who is this
//! client and may they talk to us?" from nothing but the certificate
//! chain the peer presented. This module maps a presented chain through
//! [`validate_chain`] and a [`ValidationPolicy`] to a [`Tenant`]: a
//! stable identity (the leaf CN, with the fingerprint as fallback —
//! mirroring the paper's observation that CN is the de-facto identity
//! field in real mTLS deployments) plus the quota class the server's
//! token buckets key on.

use crate::chain::{validate_chain, ChainError};
use crate::policy::{ValidationPolicy, Violation};
use crate::truststore::TrustAnchors;
use mtls_asn1::Asn1Time;
use mtls_crypto::{hex, sha256, KeyRegistry};
use mtls_x509::Certificate;

/// Why a client chain was refused at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthzError {
    /// The peer presented no certificate at all.
    NoCertificate,
    /// A presented blob did not parse as DER X.509.
    Malformed,
    /// Path building/verification failed.
    Chain(ChainError),
    /// The path verified but the leaf violates the policy.
    Policy(Vec<Violation>),
}

impl std::fmt::Display for AuthzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthzError::NoCertificate => f.write_str("no client certificate presented"),
            AuthzError::Malformed => f.write_str("client certificate is not valid DER"),
            AuthzError::Chain(e) => write!(f, "chain validation failed: {e}"),
            AuthzError::Policy(v) => {
                let labels: Vec<&str> = v.iter().map(|x| x.label()).collect();
                write!(f, "policy violations: {}", labels.join(", "))
            }
        }
    }
}

impl std::error::Error for AuthzError {}

/// Leaf-certificate OU marking an operations-class tenant: clients in
/// this organizational unit may pull the live metrics/flight-recorder
/// snapshot (`REQ_METRICS`) from a running server. Authorization rides
/// on the certificate itself — the same chain that identifies the
/// tenant also carries its privilege class, so no side-channel ACL.
pub const OPS_ORGANIZATIONAL_UNIT: &str = "mtlscope-ops";

/// The identity a validated client chain maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tenant {
    /// Stable tenant name: the leaf CN, else `fp:<first 16 fingerprint
    /// hex digits>` for CN-less certificates.
    pub name: String,
    /// The leaf's issuer organization, if named.
    pub issuer_org: Option<String>,
    /// Whether the chain terminates at a public root program anchor.
    pub publicly_trusted: bool,
    /// Requests/second this tenant's token bucket refills at.
    pub quota_per_sec: u32,
    /// Whether the leaf's OU is [`OPS_ORGANIZATIONAL_UNIT`] — grants
    /// access to the admin metrics frame.
    pub ops: bool,
}

/// Chain-validation + policy gate, configured once at server startup.
pub struct Authorizer {
    /// Root programs the server recognizes.
    pub anchors: TrustAnchors,
    /// Key registry for signature verification along the path.
    pub registry: KeyRegistry,
    /// Leaf policy. [`ValidationPolicy::enterprise`] accepts private
    /// anchors (the dominant mTLS reality the paper measures) while
    /// refusing the §5 pathologies.
    pub policy: ValidationPolicy,
    /// Quota granted to publicly-anchored tenants.
    pub quota_public: u32,
    /// Quota granted to privately-anchored tenants.
    pub quota_private: u32,
}

impl Authorizer {
    /// Validate a presented chain (leaf first, DER blobs) and derive the
    /// tenant. `now` is the validation time.
    pub fn authorize(&self, chain_der: &[Vec<u8>], now: Asn1Time) -> Result<Tenant, AuthzError> {
        let leaf_der = chain_der.first().ok_or(AuthzError::NoCertificate)?;
        let leaf = Certificate::from_der(leaf_der).map_err(|_| AuthzError::Malformed)?;
        let candidates: Vec<Certificate> = chain_der[1..]
            .iter()
            .map(|der| Certificate::from_der(der).map_err(|_| AuthzError::Malformed))
            .collect::<Result<_, _>>()?;

        let publicly_trusted =
            match validate_chain(&leaf, &candidates, &self.anchors, &self.registry, now) {
                Ok(vc) => vc.publicly_trusted,
                // A path that verifies but ends at a private anchor is the
                // paper's normal case; only a policy that demands public
                // trust refuses it.
                Err(ChainError::UntrustedRoot) if !self.policy.require_trusted_issuer => false,
                Err(e) => return Err(AuthzError::Chain(e)),
            };

        let violations = self.policy.evaluate(&leaf, now, false, Some(&self.anchors));
        if !violations.is_empty() {
            return Err(AuthzError::Policy(violations));
        }

        let name = match leaf.subject().common_name() {
            Some(cn) if !cn.trim().is_empty() => cn.to_string(),
            _ => format!("fp:{}", &hex::encode(&sha256(leaf_der))[..16]),
        };
        Ok(Tenant {
            name,
            issuer_org: leaf.issuer().organization().map(str::to_owned),
            publicly_trusted,
            quota_per_sec: if publicly_trusted {
                self.quota_public
            } else {
                self.quota_private
            },
            ops: leaf.subject().organizational_unit() == Some(OPS_ORGANIZATIONAL_UNIT),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::truststore::RootProgram;
    use mtls_crypto::Keypair;
    use mtls_x509::{CertificateBuilder, DistinguishedName};

    fn now() -> Asn1Time {
        Asn1Time::from_ymd(2022, 6, 1)
    }

    fn ca(seed: &[u8], org: &str) -> CertificateAuthority {
        CertificateAuthority::new_root(
            seed,
            DistinguishedName::builder().organization(org).build(),
            Asn1Time::from_ymd(2022, 1, 1),
        )
    }

    fn leaf_der(ca: &CertificateAuthority, cn: &str) -> Vec<u8> {
        let key = Keypair::from_seed(cn.as_bytes());
        ca.issue(
            CertificateBuilder::new()
                .subject(DistinguishedName::builder().common_name(cn).build())
                .validity(
                    Asn1Time::from_ymd(2022, 1, 1),
                    Asn1Time::from_ymd(2023, 1, 1),
                )
                .subject_key(key.key_id()),
        )
        .to_der()
    }

    fn authorizer(root: &CertificateAuthority, public: bool) -> Authorizer {
        let mut anchors = TrustAnchors::new();
        let mut registry = KeyRegistry::new();
        root.register_key(&mut registry);
        if public {
            anchors.add_to(&[RootProgram::MozillaNss], root.certificate());
        }
        Authorizer {
            anchors,
            registry,
            policy: ValidationPolicy::enterprise(),
            quota_public: 500,
            quota_private: 100,
        }
    }

    #[test]
    fn private_chain_maps_to_private_tenant() {
        let root = ca(b"corp-root", "Acme Corp CA");
        let auth = authorizer(&root, false);
        let chain = vec![leaf_der(&root, "builder-7"), root.certificate().to_der()];
        let t = auth.authorize(&chain, now()).unwrap();
        assert_eq!(t.name, "builder-7");
        assert!(!t.publicly_trusted);
        assert_eq!(t.quota_per_sec, 100);
        assert_eq!(t.issuer_org.as_deref(), Some("Acme Corp CA"));
    }

    #[test]
    fn anchored_chain_gets_public_quota() {
        let root = ca(b"pub-root", "BigTrust Inc");
        let auth = authorizer(&root, true);
        let chain = vec![
            leaf_der(&root, "svc.example.com"),
            root.certificate().to_der(),
        ];
        let t = auth.authorize(&chain, now()).unwrap();
        assert!(t.publicly_trusted);
        assert_eq!(t.quota_per_sec, 500);
    }

    #[test]
    fn empty_chain_refused() {
        let root = ca(b"r", "R");
        assert_eq!(
            authorizer(&root, false).authorize(&[], now()),
            Err(AuthzError::NoCertificate)
        );
    }

    #[test]
    fn garbage_leaf_refused() {
        let root = ca(b"r2", "R2");
        assert_eq!(
            authorizer(&root, false).authorize(&[b"junk".to_vec()], now()),
            Err(AuthzError::Malformed)
        );
    }

    #[test]
    fn expired_leaf_refused_by_chain_check() {
        let root = ca(b"r3", "R3");
        let key = Keypair::from_seed(b"old");
        let der = root
            .issue(
                CertificateBuilder::new()
                    .subject(DistinguishedName::builder().common_name("old").build())
                    .validity(
                        Asn1Time::from_ymd(2022, 1, 1),
                        Asn1Time::from_ymd(2022, 2, 1),
                    )
                    .subject_key(key.key_id()),
            )
            .to_der();
        let err = authorizer(&root, false)
            .authorize(&[der, root.certificate().to_der()], now())
            .unwrap_err();
        assert_eq!(err, AuthzError::Chain(ChainError::Expired));
    }

    #[test]
    fn strict_policy_refuses_private_anchor() {
        let root = ca(b"r4", "Private Only CA");
        let mut auth = authorizer(&root, false);
        auth.policy = ValidationPolicy::strict();
        let err = auth
            .authorize(&[leaf_der(&root, "x"), root.certificate().to_der()], now())
            .unwrap_err();
        assert_eq!(err, AuthzError::Chain(ChainError::UntrustedRoot));
    }

    #[test]
    fn ops_class_rides_on_the_leaf_ou() {
        let root = ca(b"ops-root", "Ops CA");
        let auth = authorizer(&root, false);
        let key = Keypair::from_seed(b"ops-operator");
        let ops_der = root
            .issue(
                CertificateBuilder::new()
                    .subject(
                        DistinguishedName::builder()
                            .common_name("operator-1")
                            .organizational_unit(OPS_ORGANIZATIONAL_UNIT)
                            .build(),
                    )
                    .validity(
                        Asn1Time::from_ymd(2022, 1, 1),
                        Asn1Time::from_ymd(2023, 1, 1),
                    )
                    .subject_key(key.key_id()),
            )
            .to_der();
        let t = auth
            .authorize(&[ops_der, root.certificate().to_der()], now())
            .unwrap();
        assert!(t.ops, "OU {OPS_ORGANIZATIONAL_UNIT} grants ops class");

        // A plain tenant (no OU, or a different one) is not ops.
        let plain = auth
            .authorize(
                &[leaf_der(&root, "plain"), root.certificate().to_der()],
                now(),
            )
            .unwrap();
        assert!(!plain.ops);
    }

    #[test]
    fn cnless_leaf_gets_fingerprint_name() {
        let root = ca(b"r5", "NoCN CA");
        let key = Keypair::from_seed(b"anon");
        let der = root
            .issue(
                CertificateBuilder::new()
                    .subject(
                        DistinguishedName::builder()
                            .organization("Anon Org")
                            .build(),
                    )
                    .validity(
                        Asn1Time::from_ymd(2022, 1, 1),
                        Asn1Time::from_ymd(2023, 1, 1),
                    )
                    .subject_key(key.key_id()),
            )
            .to_der();
        let t = authorizer(&root, false)
            .authorize(&[der, root.certificate().to_der()], now())
            .unwrap();
        assert!(t.name.starts_with("fp:"), "{}", t.name);
        assert_eq!(t.name.len(), 3 + 16);
    }
}
