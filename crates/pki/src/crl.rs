//! Certificate Revocation Lists (RFC 5280 §5).
//!
//! The paper's §2.1 and §7 flag revocation as a central management burden of
//! client authentication: "using the same certificate at both endpoints
//! poses significant challenges in certificate management, such as
//! difficulties with revocation and renewal". This module implements the
//! machinery those arguments are about — DER-encoded `CertificateList`
//! structures issued and signed by a CA, entry reason codes, and a
//! revocation check that slots into chain validation — so operators using
//! this library can actually revoke the pathological certificates the
//! analyzers surface.

use crate::ca::CertificateAuthority;
use mtls_asn1::{Asn1Time, DerReader, DerWriter, Oid};
use mtls_crypto::{KeyRegistry, Signature};
use mtls_x509::{DistinguishedName, SerialNumber};
use std::collections::HashMap;
use std::sync::OnceLock;

/// id-ce-cRLReasons (2.5.29.21).
fn reason_code_oid() -> &'static Oid {
    static CELL: OnceLock<Oid> = OnceLock::new();
    CELL.get_or_init(|| Oid::new(&[2, 5, 29, 21]))
}

/// sha256WithRSAEncryption — the declared CRL signature algorithm.
fn sig_alg_oid() -> &'static Oid {
    static CELL: OnceLock<Oid> = OnceLock::new();
    CELL.get_or_init(|| Oid::new(&[1, 2, 840, 113549, 1, 1, 11]))
}

/// RFC 5280 CRLReason codes (the subset with defined semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RevocationReason {
    Unspecified,
    KeyCompromise,
    CaCompromise,
    AffiliationChanged,
    Superseded,
    CessationOfOperation,
    CertificateHold,
    PrivilegeWithdrawn,
}

impl RevocationReason {
    /// The RFC 5280 reason code value.
    pub fn code(self) -> i64 {
        match self {
            RevocationReason::Unspecified => 0,
            RevocationReason::KeyCompromise => 1,
            RevocationReason::CaCompromise => 2,
            RevocationReason::AffiliationChanged => 3,
            RevocationReason::Superseded => 4,
            RevocationReason::CessationOfOperation => 5,
            RevocationReason::CertificateHold => 6,
            RevocationReason::PrivilegeWithdrawn => 9,
        }
    }

    /// Inverse of [`RevocationReason::code`].
    pub fn from_code(code: i64) -> Option<RevocationReason> {
        Some(match code {
            0 => RevocationReason::Unspecified,
            1 => RevocationReason::KeyCompromise,
            2 => RevocationReason::CaCompromise,
            3 => RevocationReason::AffiliationChanged,
            4 => RevocationReason::Superseded,
            5 => RevocationReason::CessationOfOperation,
            6 => RevocationReason::CertificateHold,
            9 => RevocationReason::PrivilegeWithdrawn,
            _ => return None,
        })
    }
}

/// One revoked-certificate entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevokedEntry {
    pub serial: SerialNumber,
    pub revoked_at: Asn1Time,
    pub reason: RevocationReason,
}

/// A parsed (or freshly issued) CRL.
#[derive(Debug, Clone, PartialEq)]
pub struct CertificateRevocationList {
    issuer: DistinguishedName,
    this_update: Asn1Time,
    next_update: Asn1Time,
    entries: Vec<RevokedEntry>,
    /// Serial-keyed index for O(1) revocation checks.
    index: HashMap<Vec<u8>, usize>,
    signature: Signature,
    tbs_der: Vec<u8>,
    der: Vec<u8>,
}

impl CertificateRevocationList {
    pub fn issuer(&self) -> &DistinguishedName {
        &self.issuer
    }

    pub fn this_update(&self) -> Asn1Time {
        self.this_update
    }

    pub fn next_update(&self) -> Asn1Time {
        self.next_update
    }

    pub fn entries(&self) -> &[RevokedEntry] {
        &self.entries
    }

    /// The full DER encoding.
    pub fn to_der(&self) -> Vec<u8> {
        self.der.clone()
    }

    /// Whether the CRL is stale at `at` (past nextUpdate).
    pub fn is_stale(&self, at: Asn1Time) -> bool {
        at > self.next_update
    }

    /// Revocation lookup.
    pub fn is_revoked(&self, serial: &SerialNumber) -> Option<&RevokedEntry> {
        self.index.get(serial.as_bytes()).map(|&i| &self.entries[i])
    }

    /// Verify the CRL's signature against the issuing CA's key.
    pub fn verify_signature(&self, registry: &KeyRegistry, signer: mtls_crypto::KeyId) -> bool {
        registry.verify(signer, &self.tbs_der, &self.signature)
    }

    /// Parse a CRL from DER.
    pub fn from_der(der: &[u8]) -> mtls_asn1::Result<CertificateRevocationList> {
        let mut top = DerReader::new(der);
        let mut outer = top.read_sequence()?;
        top.expect_end()?;

        let tbs_der = outer.read_raw_tlv()?.to_vec();
        let mut tbs_outer = DerReader::new(&tbs_der);
        let mut tbs = tbs_outer.read_sequence()?;

        // version (v2 = 1)
        let _version = tbs.read_integer_i64()?;
        // signature AlgorithmIdentifier
        let mut alg = tbs.read_sequence()?;
        let _oid = alg.read_oid()?;
        if !alg.is_empty() {
            alg.read_null()?;
        }
        let issuer =
            DistinguishedName::decode(&mut tbs).map_err(|_| mtls_asn1::Error::BadString)?;
        let this_update = tbs.read_time()?;
        let next_update = tbs.read_time()?;

        let mut entries = Vec::new();
        if !tbs.is_empty() {
            let mut list = tbs.read_sequence()?;
            while !list.is_empty() {
                let mut entry = list.read_sequence()?;
                let serial = SerialNumber::new(entry.read_integer_unsigned()?);
                let revoked_at = entry.read_time()?;
                // crlEntryExtensions: one reasonCode extension.
                let mut reason = RevocationReason::Unspecified;
                if !entry.is_empty() {
                    let mut exts = entry.read_sequence()?;
                    while !exts.is_empty() {
                        let mut ext = exts.read_sequence()?;
                        let oid = ext.read_oid()?;
                        let value = ext.read_octet_string()?;
                        if &oid == reason_code_oid() {
                            let mut v = DerReader::new(value);
                            if let Some(r) = RevocationReason::from_code(v.read_enumerated()?) {
                                reason = r;
                            }
                        }
                    }
                }
                entry.expect_end()?;
                entries.push(RevokedEntry {
                    serial,
                    revoked_at,
                    reason,
                });
            }
        }
        tbs.expect_end()?;

        // signatureAlgorithm + signatureValue
        let mut alg2 = outer.read_sequence()?;
        let _ = alg2.read_oid()?;
        if !alg2.is_empty() {
            alg2.read_null()?;
        }
        let bits = outer.read_bit_string()?;
        outer.expect_end()?;
        let signature = Signature::from_bytes(bits).ok_or(mtls_asn1::Error::BadBitString)?;

        let index = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.serial.as_bytes().to_vec(), i))
            .collect();
        Ok(CertificateRevocationList {
            issuer,
            this_update,
            next_update,
            entries,
            index,
            signature,
            tbs_der,
            der: der.to_vec(),
        })
    }
}

/// Builds and signs a CRL for one CA.
#[derive(Debug)]
pub struct CrlBuilder {
    this_update: Asn1Time,
    next_update: Asn1Time,
    entries: Vec<RevokedEntry>,
}

impl CrlBuilder {
    /// Start a CRL valid from `this_update` until `next_update`.
    pub fn new(this_update: Asn1Time, next_update: Asn1Time) -> CrlBuilder {
        CrlBuilder {
            this_update,
            next_update,
            entries: Vec::new(),
        }
    }

    /// Revoke a serial. RFC 5280 lists each certificate at most once; a
    /// second call for the same serial is ignored (first entry wins).
    pub fn revoke(mut self, serial: SerialNumber, at: Asn1Time, reason: RevocationReason) -> Self {
        if self.entries.iter().any(|e| e.serial == serial) {
            return self;
        }
        self.entries.push(RevokedEntry {
            serial,
            revoked_at: at,
            reason,
        });
        self
    }

    /// Sign with the issuing CA and produce the CRL.
    pub fn sign(self, ca: &CertificateAuthority) -> CertificateRevocationList {
        let mut tbs = DerWriter::with_capacity(256);
        tbs.sequence(|w| {
            w.integer_i64(1); // v2
            w.sequence(|w| {
                w.oid(sig_alg_oid());
                w.null();
            });
            ca.name().encode(w);
            w.time(self.this_update);
            w.time(self.next_update);
            if !self.entries.is_empty() {
                w.sequence(|w| {
                    for entry in &self.entries {
                        w.sequence(|w| {
                            w.integer_bytes(entry.serial.as_bytes());
                            w.time(entry.revoked_at);
                            w.sequence(|w| {
                                w.sequence(|w| {
                                    w.oid(reason_code_oid());
                                    let mut inner = DerWriter::new();
                                    inner.enumerated(entry.reason.code());
                                    w.octet_string(&inner.finish());
                                });
                            });
                        });
                    }
                });
            }
        });
        let tbs_der = tbs.finish();
        let signature = ca.keypair().sign(&tbs_der);

        let mut outer = DerWriter::with_capacity(tbs_der.len() + 96);
        outer.sequence(|w| {
            w.raw(&tbs_der);
            w.sequence(|w| {
                w.oid(sig_alg_oid());
                w.null();
            });
            w.bit_string(signature.as_bytes());
        });
        let der = outer.finish();

        let index = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.serial.as_bytes().to_vec(), i))
            .collect();
        CertificateRevocationList {
            issuer: ca.name().clone(),
            this_update: self.this_update,
            next_update: self.next_update,
            entries: self.entries,
            index,
            signature,
            tbs_der,
            der,
        }
    }
}

/// Chain-validation hook: look the certificate's serial up in its issuer's
/// CRL, if one is provided. `None` CRL means "no revocation data" — the
/// caller decides whether that is acceptable (soft-fail, which is what real
/// clients overwhelmingly do, and part of why the paper's expired/shared
/// certificates keep working).
pub fn check_revocation(
    cert: &mtls_x509::Certificate,
    crl: Option<&CertificateRevocationList>,
    at: Asn1Time,
) -> Result<(), RevocationReason> {
    let Some(crl) = crl else {
        return Ok(()); // soft-fail
    };
    if crl.is_stale(at) {
        return Ok(()); // stale CRL: also soft-fail, as deployed software does
    }
    if crl.issuer() != cert.issuer() {
        return Ok(()); // wrong CRL for this issuer
    }
    match crl.is_revoked(cert.serial()) {
        Some(entry) if entry.revoked_at <= at => Err(entry.reason),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use mtls_crypto::Keypair;
    use mtls_x509::CertificateBuilder;

    fn t0() -> Asn1Time {
        Asn1Time::from_ymd(2023, 1, 1)
    }

    fn ca() -> CertificateAuthority {
        CertificateAuthority::new_root(
            b"crl-ca",
            DistinguishedName::builder()
                .organization("CRL Test Org")
                .build(),
            t0(),
        )
    }

    fn crl() -> CertificateRevocationList {
        CrlBuilder::new(t0(), t0().add_days(7))
            .revoke(
                SerialNumber::new(&[0x10]),
                t0(),
                RevocationReason::KeyCompromise,
            )
            .revoke(
                SerialNumber::new(&[0xAB, 0xCD]),
                t0().add_days(1),
                RevocationReason::Superseded,
            )
            .sign(&ca())
    }

    #[test]
    fn der_round_trip() {
        let original = crl();
        let parsed = CertificateRevocationList::from_der(&original.to_der()).unwrap();
        assert_eq!(parsed, original);
        assert_eq!(parsed.entries().len(), 2);
        assert_eq!(parsed.entries()[0].reason, RevocationReason::KeyCompromise);
    }

    #[test]
    fn signature_verifies() {
        let authority = ca();
        let list = crl();
        let mut reg = KeyRegistry::new();
        authority.register_key(&mut reg);
        assert!(list.verify_signature(&reg, authority.keypair().key_id()));
        let other = Keypair::from_seed(b"other");
        assert!(!list.verify_signature(&reg, other.key_id()));
    }

    #[test]
    fn revocation_lookup() {
        let list = crl();
        assert!(list.is_revoked(&SerialNumber::new(&[0x10])).is_some());
        assert!(list.is_revoked(&SerialNumber::new(&[0xAB, 0xCD])).is_some());
        assert!(list.is_revoked(&SerialNumber::new(&[0x11])).is_none());
    }

    #[test]
    fn staleness() {
        let list = crl();
        assert!(!list.is_stale(t0().add_days(6)));
        assert!(list.is_stale(t0().add_days(8)));
    }

    #[test]
    fn check_revocation_semantics() {
        let authority = ca();
        let key = Keypair::from_seed(b"leaf");
        let revoked = authority.issue(
            CertificateBuilder::new()
                .serial(&[0x10])
                .validity(t0(), t0().add_days(365))
                .subject_key(key.key_id()),
        );
        let fine = authority.issue(
            CertificateBuilder::new()
                .serial(&[0x77])
                .validity(t0(), t0().add_days(365))
                .subject_key(key.key_id()),
        );
        let list = crl();
        let now = t0().add_days(2);
        assert_eq!(
            check_revocation(&revoked, Some(&list), now),
            Err(RevocationReason::KeyCompromise)
        );
        assert_eq!(check_revocation(&fine, Some(&list), now), Ok(()));
        // Soft-fail paths: no CRL, stale CRL, wrong issuer.
        assert_eq!(check_revocation(&revoked, None, now), Ok(()));
        assert_eq!(
            check_revocation(&revoked, Some(&list), t0().add_days(30)),
            Ok(())
        );
        let other_ca = CertificateAuthority::new_root(
            b"other",
            DistinguishedName::builder()
                .organization("Other Org")
                .build(),
            t0(),
        );
        let other_crl = CrlBuilder::new(t0(), t0().add_days(7))
            .revoke(
                SerialNumber::new(&[0x10]),
                t0(),
                RevocationReason::Unspecified,
            )
            .sign(&other_ca);
        assert_eq!(check_revocation(&revoked, Some(&other_crl), now), Ok(()));
    }

    #[test]
    fn reason_codes_round_trip() {
        for reason in [
            RevocationReason::Unspecified,
            RevocationReason::KeyCompromise,
            RevocationReason::CaCompromise,
            RevocationReason::AffiliationChanged,
            RevocationReason::Superseded,
            RevocationReason::CessationOfOperation,
            RevocationReason::CertificateHold,
            RevocationReason::PrivilegeWithdrawn,
        ] {
            assert_eq!(RevocationReason::from_code(reason.code()), Some(reason));
        }
        assert_eq!(RevocationReason::from_code(42), None);
    }

    #[test]
    fn empty_crl_round_trips() {
        let list = CrlBuilder::new(t0(), t0().add_days(7)).sign(&ca());
        let parsed = CertificateRevocationList::from_der(&list.to_der()).unwrap();
        assert!(parsed.entries().is_empty());
        assert!(parsed.is_revoked(&SerialNumber::new(&[1])).is_none());
    }
}
