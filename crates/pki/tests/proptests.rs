//! Property tests for the PKI substrate: CRLs round-trip for arbitrary
//! entry sets, policies never panic and are monotone (strict flags ⊇
//! enterprise flags for the shared rule set), and issuer categorization is
//! total.

use mtls_asn1::Asn1Time;
use mtls_crypto::Keypair;
use mtls_pki::crl::{CertificateRevocationList, CrlBuilder, RevocationReason};
use mtls_pki::{classify_issuer_org, CertificateAuthority, ValidationPolicy};
use mtls_x509::{CertificateBuilder, DistinguishedName, KeyAlgorithm, SerialNumber, Version};
use proptest::prelude::*;

fn t0() -> Asn1Time {
    Asn1Time::from_ymd(2023, 1, 1)
}

fn arb_reason() -> impl Strategy<Value = RevocationReason> {
    prop_oneof![
        Just(RevocationReason::Unspecified),
        Just(RevocationReason::KeyCompromise),
        Just(RevocationReason::CaCompromise),
        Just(RevocationReason::AffiliationChanged),
        Just(RevocationReason::Superseded),
        Just(RevocationReason::CessationOfOperation),
        Just(RevocationReason::CertificateHold),
        Just(RevocationReason::PrivilegeWithdrawn),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn crl_round_trips(
        entries in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..12), 0i64..700, arb_reason()),
            0..40,
        ),
        validity_days in 1i64..30,
    ) {
        let ca = CertificateAuthority::new_root(
            b"prop-crl-ca",
            DistinguishedName::builder().organization("Prop CRL Org").build(),
            t0(),
        );
        let mut builder = CrlBuilder::new(t0(), t0().add_days(validity_days));
        for (serial, day, reason) in &entries {
            builder = builder.revoke(SerialNumber::new(serial), t0().add_days(*day), *reason);
        }
        let crl = builder.sign(&ca);
        let parsed = CertificateRevocationList::from_der(&crl.to_der()).unwrap();
        prop_assert_eq!(&parsed, &crl);
        // Every entry is findable by its canonical serial; with duplicate
        // serials in the input, the first entry wins (RFC 5280 lists each
        // certificate once).
        let mut first: std::collections::HashMap<Vec<u8>, RevocationReason> = Default::default();
        for (serial, _, reason) in &entries {
            let canonical = SerialNumber::new(serial).as_bytes().to_vec();
            first.entry(canonical).or_insert(*reason);
        }
        for (serial, expected) in &first {
            let hit = parsed.is_revoked(&SerialNumber::new(serial));
            prop_assert!(hit.is_some());
            prop_assert_eq!(hit.map(|e| e.reason), Some(*expected));
        }
    }

    #[test]
    fn crl_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = CertificateRevocationList::from_der(&bytes);
    }

    #[test]
    fn policy_never_panics_and_lax_accepts(
        nb_days in -40_000i64..40_000,
        len_days in -40_000i64..90_000,
        bits_sel in 0usize..3,
        v1 in any::<bool>(),
        empty_issuer in any::<bool>(),
        shared in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let signer = Keypair::from_seed(&seed.to_le_bytes());
        let key = Keypair::from_seed(&seed.wrapping_add(1).to_le_bytes());
        let nb = t0().add_days(nb_days);
        let issuer = if empty_issuer {
            DistinguishedName::empty()
        } else {
            DistinguishedName::builder().organization("Prop Org Inc").build()
        };
        let cert = CertificateBuilder::new()
            .version(if v1 { Version::V1 } else { Version::V3 })
            .issuer(issuer)
            .validity(nb, nb.add_days(len_days))
            .key_algorithm([
                KeyAlgorithm::Rsa { bits: 1024 },
                KeyAlgorithm::Rsa { bits: 2048 },
                KeyAlgorithm::EcdsaP256,
            ][bits_sel])
            .subject_key(key.key_id())
            .sign(&signer);

        for policy in [ValidationPolicy::strict(), ValidationPolicy::enterprise(), ValidationPolicy::lax()] {
            let violations = policy.evaluate(&cert, t0(), shared, None);
            // No duplicates.
            let mut dedup = violations.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), violations.len());
        }
        prop_assert!(ValidationPolicy::lax().accepts(&cert, t0(), shared, None));
        // Enterprise's rule set is a subset of strict's: anything enterprise
        // flags, strict flags too.
        let ent = ValidationPolicy::enterprise().evaluate(&cert, t0(), shared, None);
        let strict = ValidationPolicy::strict().evaluate(&cert, t0(), shared, None);
        for v in &ent {
            // strict uses a tighter max validity, so ExcessiveValidity can
            // differ only in strict's favour; everything else must carry.
            prop_assert!(strict.contains(v), "{v:?} flagged by enterprise but not strict");
        }
    }

    #[test]
    fn any_prefix_proves_consistent_with_any_extension(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..96),
        cut_a in any::<u64>(),
        cut_b in any::<u64>(),
    ) {
        use mtls_pki::merkle::{verify_consistency, verify_inclusion, MerkleTree};

        let mut tree = MerkleTree::new();
        for leaf in &leaves {
            tree.push(leaf);
        }
        let n = tree.size();
        // Any prefix size m <= k <= n: PROOF(m, D[k]) links MTH(D[m]) to
        // MTH(D[k]) — the tree never disowns its own history.
        let k = cut_a % n + 1;
        let m = cut_b % (k + 1);
        let old_root = tree.root_at(m).unwrap();
        let new_root = tree.root_at(k).unwrap();
        let proof = tree.consistency_proof(m, k).unwrap();
        prop_assert!(verify_consistency(m, k, &old_root, &new_root, &proof));
        // A corrupted path must not verify (empty proofs only arise for
        // the trivial prefixes, which need no path to corrupt).
        if let Some(h) = proof.first() {
            let mut bad = proof.clone();
            bad[0] = {
                let mut b = *h;
                b[0] ^= 1;
                b
            };
            prop_assert!(!verify_consistency(m, k, &old_root, &new_root, &bad));
        }
        // And every leaf of the prefix is provably included in it.
        if k > 0 {
            let i = cut_a % k;
            let ipr = tree.inclusion_proof(i, k).unwrap();
            prop_assert!(verify_inclusion(&leaves[i as usize], i, k, &ipr, &new_root));
        }
    }

    #[test]
    fn sth_and_proof_parsers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        use mtls_pki::{ConsistencyProof, InclusionProof, SignedTreeHead};
        let _ = SignedTreeHead::from_bytes(&bytes);
        let _ = InclusionProof::from_bytes(&bytes);
        let _ = ConsistencyProof::from_bytes(&bytes);
    }

    #[test]
    fn issuer_classification_is_total_and_stable(org in "\\PC{0,60}") {
        let a = classify_issuer_org(Some(&org), false);
        let b = classify_issuer_org(Some(&org), false);
        prop_assert_eq!(a, b);
        // Public verdict always wins.
        prop_assert_eq!(
            classify_issuer_org(Some(&org), true),
            mtls_pki::IssuerCategory::Public
        );
    }
}
