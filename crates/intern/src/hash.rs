//! FxHash: the multiply-xor hash rustc uses for its internal tables.
//!
//! SipHash (std's default) is DoS-resistant but costs ~1 ns/byte with a
//! long setup; ingest keys here are trusted measurement data
//! (fingerprints, issuer organizations, IPv4 integers), so the cheaper
//! function is the right trade. The implementation follows the classic
//! `rustc_hash` formulation: fold 8 bytes at a time with
//! `(h rotl 5 ^ word) * K`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiply constant (π-derived, as in `rustc_hash`).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Mix the length in so "ab\0" and "ab" with a trailing NUL
            // byte do not collide trivially.
            word[7] = rest.len() as u8;
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// Zero-sized builder for [`FxHasher`]; `BuildHasherDefault` keeps map
/// construction `const`-friendly and allocation-free.
pub type FxBuildHasherDefault = BuildHasherDefault<FxHasher>;

/// Unit-struct spelling of the builder (usable as a value: `FxBuildHasher`).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher.hash_one(&v)
    }

    #[test]
    fn distinct_keys_hash_differently() {
        let inputs = [
            "",
            "a",
            "b",
            "ab",
            "ba",
            "abcdefgh",
            "abcdefghi",
            "sha256:aa11",
        ];
        let hashes: Vec<u64> = inputs.iter().map(hash_of).collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "{:?} vs {:?}", inputs[i], inputs[j]);
            }
        }
    }

    #[test]
    fn trailing_zero_bytes_do_not_collide() {
        assert_ne!(hash_of([1u8, 0].as_slice()), hash_of([1u8].as_slice()));
        assert_ne!(hash_of("x\0"), hash_of("x"));
    }

    #[test]
    fn maps_work_with_fx() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("fp{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get("fp512"), Some(&512));

        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(0xC0A8_0001);
        assert!(s.contains(&0xC0A8_0001));
    }

    #[test]
    fn integer_hashing_spreads_sequential_keys() {
        // /24-subnet integers differ only in high bits; a multiply-based
        // hash must still spread them across buckets.
        let hashes: FxHashSet<u64> = (0u32..4096).map(|i| hash_of(i << 8)).collect();
        assert_eq!(hashes.len(), 4096);
    }
}
