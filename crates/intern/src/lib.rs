//! String interning and fast hashing for the Zeek→corpus ingest hot path.
//!
//! The paper's dataset repeats the same strings millions of times: a leaf
//! fingerprint appears once per connection, issuer DNs and SAN domains
//! recur across every certificate a CA mints. Joining `ssl.log` against
//! `x509.log` with `HashMap<String, _>` therefore re-hashes long strings
//! with SipHash over and over and keeps one owned allocation per key.
//! This crate collapses that cost in two independent pieces:
//!
//! * [`FxHasher`] — the FxHash multiply-xor hasher (rustc's internal table
//!   hasher), hand-rolled here in keeping with this workspace's
//!   no-external-deps style. [`FxHashMap`]/[`FxHashSet`] are drop-in map
//!   aliases for non-adversarial keys like fingerprints and IPv4 integers.
//! * [`Interner`] — an append-only arena mapping each distinct string to a
//!   dense [`Symbol`] (a `u32`). Interning a repeated string costs one
//!   FxHash of its bytes; afterwards equality is integer equality and maps
//!   can be keyed by `Symbol` instead of `String`. Strings are stored once
//!   in large arena chunks, not once per map key.
//!
//! The interner is single-writer (`intern` takes `&mut self`) and its
//! reads are position-stable: a `Symbol` resolves to the same `&str` for
//! the life of the interner. It is `Send + Sync`, so a built interner can
//! be shared freely across scoped analyzer threads.

pub mod hash;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};

use std::hash::BuildHasher;

/// A handle to an interned string: dense, `Copy`, integer-comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense index of this symbol (0-based intern order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How large each arena chunk is; strings longer than this get their own
/// chunk. 256 KiB keeps chunk count low for multi-million-string corpora
/// without holding large slack on small ones.
const CHUNK_BYTES: usize = 256 * 1024;

/// One interned string's location inside the arena.
#[derive(Clone, Copy)]
struct Span {
    chunk: u32,
    start: u32,
    len: u32,
}

/// An append-only string interner.
///
/// Deduplication uses an FxHash-keyed index from content hash to candidate
/// symbols, so each distinct string is stored exactly once (no shadow copy
/// as a map key).
pub struct Interner {
    /// Storage chunks. Once a chunk is full it is never touched again, so
    /// resolved `&str`s stay valid for the interner's lifetime.
    chunks: Vec<String>,
    /// Arena location of every symbol, indexed by `Symbol::index()`.
    spans: Vec<Span>,
    /// Content hash → symbols with that hash (collisions resolved by
    /// comparing the stored bytes).
    index: FxHashMap<u64, Vec<Symbol>>,
    build: FxBuildHasher,
}

impl Default for Interner {
    fn default() -> Interner {
        Interner::new()
    }
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner {
            chunks: vec![String::with_capacity(CHUNK_BYTES)],
            spans: Vec::new(),
            index: FxHashMap::default(),
            build: FxBuildHasher,
        }
    }

    /// An empty interner pre-sized for roughly `n` distinct strings.
    pub fn with_capacity(n: usize) -> Interner {
        Interner {
            chunks: vec![String::with_capacity(CHUNK_BYTES)],
            spans: Vec::with_capacity(n),
            index: FxHashMap::with_capacity_and_hasher(n, FxBuildHasher),
            build: FxBuildHasher,
        }
    }

    fn hash_of(&self, s: &str) -> u64 {
        self.build.hash_one(s)
    }

    /// Intern a string, returning its stable symbol. Repeated calls with
    /// equal strings return the same symbol without storing a second copy.
    pub fn intern(&mut self, s: &str) -> Symbol {
        let hash = self.hash_of(s);
        if let Some(candidates) = self.index.get(&hash) {
            for &sym in candidates {
                if self.resolve(sym) == s {
                    return sym;
                }
            }
        }
        let sym = self.push(s);
        self.index.entry(hash).or_default().push(sym);
        sym
    }

    /// Look up a string without interning it. Returns `None` when the
    /// string has never been interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        let hash = self.hash_of(s);
        self.index
            .get(&hash)?
            .iter()
            .copied()
            .find(|&sym| self.resolve(sym) == s)
    }

    fn push(&mut self, s: &str) -> Symbol {
        let idx = u32::try_from(self.spans.len()).expect("more than u32::MAX interned strings");
        let last = self.chunks.last().expect("at least one chunk");
        if last.len() + s.len() > last.capacity() {
            // Never grow a chunk in place (that could move stored bytes
            // while readers hold no references, but position stability
            // keeps resolve() O(1) bookkeeping-free); open a fresh one.
            self.chunks
                .push(String::with_capacity(CHUNK_BYTES.max(s.len())));
        }
        let chunk_no = self.chunks.len() - 1;
        let chunk = &mut self.chunks[chunk_no];
        let start = chunk.len();
        chunk.push_str(s);
        self.spans.push(Span {
            chunk: chunk_no as u32,
            start: start as u32,
            len: s.len() as u32,
        });
        Symbol(idx)
    }

    /// The string a symbol stands for.
    pub fn resolve(&self, sym: Symbol) -> &str {
        let span = self.spans[sym.index()];
        &self.chunks[span.chunk as usize][span.start as usize..(span.start + span.len) as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total bytes of string data stored.
    pub fn arena_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// Iterate `(symbol, string)` pairs in intern order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        (0..self.spans.len()).map(|i| {
            let sym = Symbol(i as u32);
            (sym, self.resolve(sym))
        })
    }
}

// Compile-time proof the interner crosses scoped-thread boundaries: the
// parallel pipeline shares a built interner by `&Interner`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Interner>();
    assert_send_sync::<Symbol>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern("sha256:aa11");
        let b = i.intern("sha256:bb22");
        let a2 = i.intern("sha256:aa11");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "sha256:aa11");
        assert_eq!(i.resolve(b), "sha256:bb22");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        let sym = i.intern("present");
        assert_eq!(i.get("present"), Some(sym));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_string_and_unicode() {
        let mut i = Interner::new();
        let empty = i.intern("");
        let uni = i.intern("中文-λ-é");
        assert_eq!(i.resolve(empty), "");
        assert_eq!(i.resolve(uni), "中文-λ-é");
        assert_eq!(i.intern(""), empty);
    }

    #[test]
    fn survives_chunk_rollover() {
        let mut i = Interner::new();
        // Force several chunk rollovers with distinct multi-KiB strings,
        // then verify early symbols still resolve (position stability).
        let first = i.intern("anchor");
        let mut syms = Vec::new();
        for n in 0..300 {
            let s = format!("{n:04}-{}", "x".repeat(4096));
            syms.push((i.intern(&s), s));
        }
        assert!(i.chunks.len() > 1, "rollover did not happen");
        assert_eq!(i.resolve(first), "anchor");
        for (sym, s) in &syms {
            assert_eq!(i.resolve(*sym), s);
        }
    }

    #[test]
    fn oversized_string_gets_own_chunk() {
        let mut i = Interner::new();
        let big = "y".repeat(CHUNK_BYTES * 2);
        let sym = i.intern(&big);
        assert_eq!(i.resolve(sym), big);
        assert_eq!(i.arena_bytes(), big.len());
    }

    #[test]
    fn iter_is_in_intern_order() {
        let mut i = Interner::new();
        for s in ["c", "a", "b", "a"] {
            i.intern(s);
        }
        let order: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(order, vec!["c", "a", "b"]);
    }
}
