//! Property tests for the interner: round-trip, dedup, and stability
//! under arbitrary interleavings of repeated and fresh strings.

use mtls_intern::{FxHashMap, Interner, Symbol};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every interned string resolves back to itself, regardless of
    /// content (unicode, embedded NULs, empties) or order.
    #[test]
    fn round_trip(strings in proptest::collection::vec("\\PC{0,64}", 0..100)) {
        let mut interner = Interner::new();
        let syms: Vec<(Symbol, String)> = strings
            .iter()
            .map(|s| (interner.intern(s), s.clone()))
            .collect();
        for (sym, s) in &syms {
            prop_assert_eq!(interner.resolve(*sym), s.as_str());
        }
    }

    /// Symbols are equal exactly when the strings are equal, and the
    /// number of distinct symbols matches the number of distinct strings.
    #[test]
    fn dedup_matches_string_equality(strings in proptest::collection::vec("[a-f]{0,4}", 0..200)) {
        let mut interner = Interner::new();
        let mut reference: FxHashMap<String, Symbol> = FxHashMap::default();
        for s in &strings {
            let sym = interner.intern(s);
            match reference.get(s) {
                Some(&prev) => prop_assert_eq!(prev, sym),
                None => {
                    reference.insert(s.clone(), sym);
                }
            }
        }
        prop_assert_eq!(interner.len(), reference.len());
        // `get` agrees with `intern` after the fact.
        for (s, &sym) in &reference {
            prop_assert_eq!(interner.get(s), Some(sym));
        }
    }

    /// Interning more strings never invalidates earlier symbols, even
    /// across arena chunk rollovers (long strings force rollover).
    #[test]
    fn earlier_symbols_stable_across_growth(
        early in proptest::collection::vec("[a-z]{1,8}", 1..20),
        late in proptest::collection::vec("[A-Z]{512,1024}", 1..40),
    ) {
        let mut interner = Interner::new();
        let anchors: Vec<(Symbol, String)> =
            early.iter().map(|s| (interner.intern(s), s.clone())).collect();
        for s in &late {
            interner.intern(s);
        }
        for (sym, s) in &anchors {
            prop_assert_eq!(interner.resolve(*sym), s.as_str());
        }
    }
}

/// A built interner is shared by reference across scoped threads (the
/// shape the parallel pipeline uses); concurrent resolves agree.
#[test]
fn shared_reads_across_threads() {
    let mut interner = Interner::new();
    let syms: Vec<(Symbol, String)> = (0..500)
        .map(|n| {
            let s = format!("issuer-{n}");
            (interner.intern(&s), s)
        })
        .collect();
    let (interner, syms) = (&interner, &syms);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                for (sym, s) in syms {
                    assert_eq!(interner.resolve(*sym), s.as_str());
                }
            });
        }
    });
}
