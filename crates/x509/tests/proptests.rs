//! Property tests: arbitrary certificates built by the builder must
//! round-trip through DER bit-for-bit, and derived predicates must be
//! consistent with the inputs.

use mtls_asn1::Asn1Time;
use mtls_crypto::Keypair;
use mtls_x509::{
    Certificate, CertificateBuilder, DistinguishedName, ExtendedKeyUsage, GeneralName,
    KeyAlgorithm, KeyUsage, SignatureAlgorithm, Version,
};
use proptest::prelude::*;

fn arb_dn() -> impl Strategy<Value = DistinguishedName> {
    (
        proptest::option::of("[a-zA-Z0-9 .-]{1,40}"),
        proptest::option::of("[a-zA-Z0-9 .-]{1,40}"),
        proptest::option::of("[A-Z]{2}"),
    )
        .prop_map(|(o, cn, c)| {
            let mut b = DistinguishedName::builder();
            if let Some(c) = c {
                b = b.country(c);
            }
            if let Some(o) = o {
                b = b.organization(o);
            }
            if let Some(cn) = cn {
                b = b.common_name(cn);
            }
            b.build()
        })
}

fn arb_san() -> impl Strategy<Value = Vec<GeneralName>> {
    proptest::collection::vec(
        prop_oneof![
            "[a-z0-9.-]{1,30}".prop_map(GeneralName::Dns),
            "[a-z0-9]{1,10}@[a-z]{1,10}\\.com".prop_map(GeneralName::Email),
            proptest::collection::vec(any::<u8>(), 4).prop_map(GeneralName::Ip),
            proptest::collection::vec(any::<u8>(), 16).prop_map(GeneralName::Ip),
        ],
        0..4,
    )
}

fn arb_alg() -> impl Strategy<Value = SignatureAlgorithm> {
    prop_oneof![
        Just(SignatureAlgorithm::Sha256WithRsa),
        Just(SignatureAlgorithm::Sha1WithRsa),
        Just(SignatureAlgorithm::EcdsaWithSha256),
        Just(SignatureAlgorithm::Md5WithRsa),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn certificate_round_trips(
        serial in proptest::collection::vec(any::<u8>(), 1..20),
        issuer in arb_dn(),
        subject in arb_dn(),
        san in arb_san(),
        alg in arb_alg(),
        v1 in any::<bool>(),
        nb_days in -80_000i64..80_000,
        len_days in -5_000i64..90_000,
        rsa_bits_sel in 0usize..3,
        seed in any::<u64>(),
    ) {
        let ca = Keypair::from_seed(&seed.to_le_bytes());
        let leaf = Keypair::from_seed(&seed.wrapping_add(1).to_le_bytes());
        let not_before = Asn1Time::from_ymd(2000, 1, 1).add_days(nb_days);
        let not_after = not_before.add_days(len_days);
        let key_alg = [
            KeyAlgorithm::Rsa { bits: 1024 },
            KeyAlgorithm::Rsa { bits: 2048 },
            KeyAlgorithm::EcdsaP256,
        ][rsa_bits_sel];

        let cert = CertificateBuilder::new()
            .version(if v1 { Version::V1 } else { Version::V3 })
            .serial(&serial)
            .signature_algorithm(alg)
            .issuer(issuer.clone())
            .subject(subject.clone())
            .validity(not_before, not_after)
            .san(san.clone())
            .key_algorithm(key_alg)
            .key_usage(KeyUsage { digital_signature: true, key_encipherment: false })
            .extended_key_usage(ExtendedKeyUsage::both())
            .subject_key(leaf.key_id())
            .sign(&ca);

        let der = cert.to_der();
        let parsed = Certificate::from_der(&der).unwrap();
        prop_assert_eq!(&parsed, &cert);
        prop_assert_eq!(parsed.to_der(), der);
        prop_assert_eq!(parsed.issuer(), &issuer);
        prop_assert_eq!(parsed.subject(), &subject);
        prop_assert_eq!(parsed.not_before(), not_before);
        prop_assert_eq!(parsed.not_after(), not_after);
        prop_assert_eq!(parsed.has_incorrect_dates(), not_before >= not_after);
        if !v1 {
            let dns: Vec<String> = san.iter().filter_map(|n| n.as_dns().map(str::to_owned)).collect();
            prop_assert_eq!(parsed.san_dns(), dns);
        }

        // Signature must verify with the right key and fail with a wrong one.
        let mut reg = mtls_crypto::KeyRegistry::new();
        reg.register(ca.clone());
        reg.register(leaf.clone());
        prop_assert!(parsed.verify_signature(&reg, ca.key_id()));
        prop_assert!(!parsed.verify_signature(&reg, leaf.key_id()));
    }

    #[test]
    fn fingerprints_are_injective_over_serials(
        s1 in proptest::collection::vec(any::<u8>(), 1..8),
        s2 in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        // Same everything but serial => equal fingerprints iff equal DER
        // serial encodings (leading zeros are stripped by DER).
        let strip = |v: &[u8]| {
            let s: Vec<u8> = v.iter().copied().skip_while(|&b| b == 0).collect();
            if s.is_empty() { vec![0] } else { s }
        };
        let ca = Keypair::from_seed(b"fp-ca");
        let leaf = Keypair::from_seed(b"fp-leaf");
        let build = |serial: &[u8]| {
            CertificateBuilder::new()
                .serial(serial)
                .subject_key(leaf.key_id())
                .sign(&ca)
        };
        let c1 = build(&s1);
        let c2 = build(&s2);
        prop_assert_eq!(c1.fingerprint() == c2.fingerprint(), strip(&s1) == strip(&s2));
    }

    #[test]
    fn from_der_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Certificate::from_der(&bytes);
    }
}
