//! X.501 distinguished names (RDN sequences).
//!
//! A [`DistinguishedName`] is an ordered list of attribute/value pairs. Each
//! RDN is encoded as a single-valued SET (multi-valued RDNs do not occur in
//! the reproduced dataset's analysis and are rejected on parse for
//! strictness).

use crate::oids;
use crate::Result;
use mtls_asn1::{writer, DerReader, DerWriter, Oid};

/// The attribute types the measurement pipeline distinguishes. Everything
/// else is preserved as `Other` so round-tripping is lossless.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttributeType {
    CommonName,
    Surname,
    SerialNumber,
    Country,
    Locality,
    State,
    Organization,
    OrganizationalUnit,
    EmailAddress,
    DomainComponent,
    Other(Oid),
}

impl AttributeType {
    /// The attribute's OID.
    pub fn oid(&self) -> Oid {
        match self {
            AttributeType::CommonName => oids::common_name().clone(),
            AttributeType::Surname => oids::surname().clone(),
            AttributeType::SerialNumber => oids::attr_serial_number().clone(),
            AttributeType::Country => oids::country().clone(),
            AttributeType::Locality => oids::locality().clone(),
            AttributeType::State => oids::state().clone(),
            AttributeType::Organization => oids::organization().clone(),
            AttributeType::OrganizationalUnit => oids::organizational_unit().clone(),
            AttributeType::EmailAddress => oids::email_address().clone(),
            AttributeType::DomainComponent => oids::domain_component().clone(),
            AttributeType::Other(oid) => oid.clone(),
        }
    }

    /// Map an OID back to a known attribute type.
    pub fn from_oid(oid: Oid) -> AttributeType {
        if &oid == oids::common_name() {
            AttributeType::CommonName
        } else if &oid == oids::surname() {
            AttributeType::Surname
        } else if &oid == oids::attr_serial_number() {
            AttributeType::SerialNumber
        } else if &oid == oids::country() {
            AttributeType::Country
        } else if &oid == oids::locality() {
            AttributeType::Locality
        } else if &oid == oids::state() {
            AttributeType::State
        } else if &oid == oids::organization() {
            AttributeType::Organization
        } else if &oid == oids::organizational_unit() {
            AttributeType::OrganizationalUnit
        } else if &oid == oids::email_address() {
            AttributeType::EmailAddress
        } else if &oid == oids::domain_component() {
            AttributeType::DomainComponent
        } else {
            AttributeType::Other(oid)
        }
    }

    /// Short name used in the `CN=..., O=...` rendering.
    pub fn short_name(&self) -> String {
        match self {
            AttributeType::CommonName => "CN".into(),
            AttributeType::Surname => "SN".into(),
            AttributeType::SerialNumber => "serialNumber".into(),
            AttributeType::Country => "C".into(),
            AttributeType::Locality => "L".into(),
            AttributeType::State => "ST".into(),
            AttributeType::Organization => "O".into(),
            AttributeType::OrganizationalUnit => "OU".into(),
            AttributeType::EmailAddress => "emailAddress".into(),
            AttributeType::DomainComponent => "DC".into(),
            AttributeType::Other(oid) => oid.dotted(),
        }
    }
}

/// An ordered distinguished name.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct DistinguishedName {
    attrs: Vec<(AttributeType, String)>,
}

impl DistinguishedName {
    /// An empty name (RFC 5280 allows it; the paper's *MissingIssuer*
    /// category is exactly certificates whose issuer has no organization).
    pub fn empty() -> DistinguishedName {
        DistinguishedName::default()
    }

    /// Start building a name.
    pub fn builder() -> DnBuilder {
        DnBuilder::default()
    }

    /// All attributes in order.
    pub fn attributes(&self) -> &[(AttributeType, String)] {
        &self.attrs
    }

    /// First value of the given attribute type.
    pub fn get(&self, ty: &AttributeType) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(t, _)| t == ty)
            .map(|(_, v)| v.as_str())
    }

    /// The CommonName, if present.
    pub fn common_name(&self) -> Option<&str> {
        self.get(&AttributeType::CommonName)
    }

    /// The Organization, if present.
    pub fn organization(&self) -> Option<&str> {
        self.get(&AttributeType::Organization)
    }

    /// The OrganizationalUnit, if present.
    pub fn organizational_unit(&self) -> Option<&str> {
        self.get(&AttributeType::OrganizationalUnit)
    }

    /// Whether the name carries no attributes at all.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Encode as an RDNSequence.
    pub fn encode(&self, w: &mut DerWriter) {
        w.sequence(|w| {
            for (ty, value) in &self.attrs {
                w.set(|w| {
                    w.sequence(|w| {
                        w.oid(&ty.oid());
                        // PrintableString where legal, else UTF8String —
                        // mirrors OpenSSL defaults.
                        if writer::is_printable_string(value) {
                            w.printable_string(value);
                        } else {
                            w.utf8_string(value);
                        }
                    });
                });
            }
        });
    }

    /// Decode an RDNSequence.
    pub fn decode(r: &mut DerReader<'_>) -> Result<DistinguishedName> {
        let mut seq = r.read_sequence()?;
        let mut attrs = Vec::new();
        while !seq.is_empty() {
            let mut set = seq.read_set()?;
            let mut atv = set.read_sequence()?;
            let oid = atv.read_oid()?;
            // Legacy encodings (TeletexString, BMPString) occur in real DNs;
            // accept them too.
            let value = atv.read_string_lossy()?.into_owned();
            atv.expect_end()?;
            set.expect_end()?;
            attrs.push((AttributeType::from_oid(oid), value));
        }
        Ok(DistinguishedName { attrs })
    }

    /// `CN=foo, O=bar` rendering (empty string for an empty name).
    pub fn to_display_string(&self) -> String {
        self.attrs
            .iter()
            .map(|(t, v)| format!("{}={}", t.short_name(), v))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl std::fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_display_string())
    }
}

/// Fluent constructor for [`DistinguishedName`].
#[derive(Debug, Default)]
pub struct DnBuilder {
    attrs: Vec<(AttributeType, String)>,
}

impl DnBuilder {
    /// Append an arbitrary attribute.
    pub fn attr(mut self, ty: AttributeType, value: impl Into<String>) -> DnBuilder {
        self.attrs.push((ty, value.into()));
        self
    }

    /// Append `C=`.
    pub fn country(self, v: impl Into<String>) -> DnBuilder {
        self.attr(AttributeType::Country, v)
    }

    /// Append `ST=`.
    pub fn state(self, v: impl Into<String>) -> DnBuilder {
        self.attr(AttributeType::State, v)
    }

    /// Append `L=`.
    pub fn locality(self, v: impl Into<String>) -> DnBuilder {
        self.attr(AttributeType::Locality, v)
    }

    /// Append `O=`.
    pub fn organization(self, v: impl Into<String>) -> DnBuilder {
        self.attr(AttributeType::Organization, v)
    }

    /// Append `OU=`.
    pub fn organizational_unit(self, v: impl Into<String>) -> DnBuilder {
        self.attr(AttributeType::OrganizationalUnit, v)
    }

    /// Append `CN=`.
    pub fn common_name(self, v: impl Into<String>) -> DnBuilder {
        self.attr(AttributeType::CommonName, v)
    }

    /// Append `emailAddress=`.
    pub fn email(self, v: impl Into<String>) -> DnBuilder {
        self.attr(AttributeType::EmailAddress, v)
    }

    /// Finish.
    pub fn build(self) -> DistinguishedName {
        DistinguishedName { attrs: self.attrs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(dn: &DistinguishedName) -> DistinguishedName {
        let mut w = DerWriter::new();
        dn.encode(&mut w);
        let der = w.finish();
        let mut r = DerReader::new(&der);
        let out = DistinguishedName::decode(&mut r).unwrap();
        r.expect_end().unwrap();
        out
    }

    #[test]
    fn simple_name_round_trips() {
        let dn = DistinguishedName::builder()
            .country("US")
            .organization("Globus Online")
            .common_name("FXP DCAU Cert")
            .build();
        assert_eq!(round_trip(&dn), dn);
        assert_eq!(dn.common_name(), Some("FXP DCAU Cert"));
        assert_eq!(dn.organization(), Some("Globus Online"));
        assert_eq!(
            dn.to_display_string(),
            "C=US, O=Globus Online, CN=FXP DCAU Cert"
        );
    }

    #[test]
    fn empty_name_round_trips() {
        let dn = DistinguishedName::empty();
        assert_eq!(round_trip(&dn), dn);
        assert!(dn.is_empty());
        assert_eq!(dn.to_display_string(), "");
        assert_eq!(dn.organization(), None);
    }

    #[test]
    fn non_printable_values_use_utf8() {
        let dn = DistinguishedName::builder()
            .common_name("usuário@example")
            .build();
        assert_eq!(round_trip(&dn), dn);
    }

    #[test]
    fn unknown_attribute_preserved() {
        let custom = AttributeType::Other(Oid::new(&[1, 3, 6, 1, 4, 1, 99999, 1]));
        let dn = DistinguishedName::builder()
            .attr(custom.clone(), "custom-value")
            .build();
        let rt = round_trip(&dn);
        assert_eq!(rt.get(&custom), Some("custom-value"));
    }

    #[test]
    fn order_is_preserved() {
        let dn = DistinguishedName::builder()
            .common_name("first")
            .organization("second")
            .build();
        let rt = round_trip(&dn);
        assert_eq!(rt.attributes()[0].0, AttributeType::CommonName);
        assert_eq!(rt.attributes()[1].0, AttributeType::Organization);
    }

    #[test]
    fn duplicate_attributes_get_returns_first() {
        let dn = DistinguishedName::builder()
            .organizational_unit("ou-1")
            .organizational_unit("ou-2")
            .build();
        assert_eq!(dn.organizational_unit(), Some("ou-1"));
        assert_eq!(round_trip(&dn), dn);
    }

    #[test]
    fn legacy_string_encodings_decode() {
        // Hand-build an RDNSequence whose CN uses T61String (Latin-1).
        let mut w = DerWriter::new();
        w.sequence(|w| {
            w.set(|w| {
                w.sequence(|w| {
                    w.oid(oids::common_name());
                    w.tlv(mtls_asn1::Tag::T61_STRING, &[b'M', 0xFC, b'n', b'z']);
                    // "Münz"
                });
            });
        });
        let der = w.finish();
        let mut r = DerReader::new(&der);
        let dn = DistinguishedName::decode(&mut r).unwrap();
        assert_eq!(dn.common_name(), Some("M\u{fc}nz"));
    }

    #[test]
    fn attribute_type_oid_round_trip() {
        for ty in [
            AttributeType::CommonName,
            AttributeType::Surname,
            AttributeType::SerialNumber,
            AttributeType::Country,
            AttributeType::Locality,
            AttributeType::State,
            AttributeType::Organization,
            AttributeType::OrganizationalUnit,
            AttributeType::EmailAddress,
            AttributeType::DomainComponent,
        ] {
            assert_eq!(AttributeType::from_oid(ty.oid()), ty);
        }
    }
}
