//! SubjectAltName `GeneralName` values (RFC 5280 §4.2.1.6).
//!
//! The paper's Table 8 analyzes the SAN *DNS* type in depth precisely
//! because real-world certificates abuse it: free text, personal names, MAC
//! addresses and product names all show up in `dNSName`. The model therefore
//! carries dNSName as an arbitrary string rather than validating it as a
//! hostname — the *classifier* decides what the string actually is.

use crate::{Error, Result};
use mtls_asn1::{DerReader, DerWriter, Tag};

/// Context tag numbers from the GeneralName CHOICE.
const TAG_EMAIL: u8 = 1; // rfc822Name
const TAG_DNS: u8 = 2; // dNSName
const TAG_URI: u8 = 6; // uniformResourceIdentifier
const TAG_IP: u8 = 7; // iPAddress

/// One SAN entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GeneralName {
    /// `rfc822Name` — an email address.
    Email(String),
    /// `dNSName` — nominally a domain name; in practice free text.
    Dns(String),
    /// `uniformResourceIdentifier`.
    Uri(String),
    /// `iPAddress` — 4 octets (v4) or 16 octets (v6).
    Ip(Vec<u8>),
    /// Any other CHOICE arm, preserved as raw (tag number, bytes).
    Other(u8, Vec<u8>),
}

impl GeneralName {
    /// Encode into a writer as one context-tagged primitive.
    pub fn encode(&self, w: &mut DerWriter) {
        match self {
            GeneralName::Email(s) => w.context_primitive(TAG_EMAIL, s.as_bytes()),
            GeneralName::Dns(s) => w.context_primitive(TAG_DNS, s.as_bytes()),
            GeneralName::Uri(s) => w.context_primitive(TAG_URI, s.as_bytes()),
            GeneralName::Ip(bytes) => w.context_primitive(TAG_IP, bytes),
            GeneralName::Other(tag, bytes) => w.context_primitive(*tag, bytes),
        }
    }

    /// Decode one GeneralName TLV.
    pub fn decode(r: &mut DerReader<'_>) -> Result<GeneralName> {
        let (tag, content) = r.read_any()?;
        if tag.class() != mtls_asn1::Class::ContextSpecific {
            return Err(Error::Der(mtls_asn1::Error::UnexpectedTag {
                expected: Tag::context(TAG_DNS).octet(),
                got: tag.octet(),
            }));
        }
        let text = || {
            std::str::from_utf8(content)
                .map(str::to_owned)
                .map_err(|_| Error::Der(mtls_asn1::Error::BadString))
        };
        match tag.number() {
            TAG_EMAIL => Ok(GeneralName::Email(text()?)),
            TAG_DNS => Ok(GeneralName::Dns(text()?)),
            TAG_URI => Ok(GeneralName::Uri(text()?)),
            TAG_IP => {
                if content.len() == 4 || content.len() == 16 {
                    Ok(GeneralName::Ip(content.to_vec()))
                } else {
                    Err(Error::BadIpAddress)
                }
            }
            n => Ok(GeneralName::Other(n, content.to_vec())),
        }
    }

    /// The dNSName payload, if this entry is one.
    pub fn as_dns(&self) -> Option<&str> {
        match self {
            GeneralName::Dns(s) => Some(s),
            _ => None,
        }
    }

    /// Dotted-quad / colon-hex rendering of an iPAddress entry.
    pub fn ip_display(&self) -> Option<String> {
        match self {
            GeneralName::Ip(bytes) if bytes.len() == 4 => Some(format!(
                "{}.{}.{}.{}",
                bytes[0], bytes[1], bytes[2], bytes[3]
            )),
            GeneralName::Ip(bytes) if bytes.len() == 16 => {
                let groups: Vec<String> = bytes
                    .chunks_exact(2)
                    .map(|c| format!("{:x}", (u16::from(c[0]) << 8) | u16::from(c[1])))
                    .collect();
                Some(groups.join(":"))
            }
            _ => None,
        }
    }
}

/// Encode a full SubjectAltName extension value (`SEQUENCE OF GeneralName`).
pub fn encode_san(names: &[GeneralName]) -> Vec<u8> {
    let mut w = DerWriter::new();
    w.sequence(|w| {
        for name in names {
            name.encode(w);
        }
    });
    w.finish()
}

/// Decode a full SubjectAltName extension value.
pub fn decode_san(der: &[u8]) -> Result<Vec<GeneralName>> {
    let mut r = DerReader::new(der);
    let mut seq = r.read_sequence()?;
    let mut names = Vec::new();
    while !seq.is_empty() {
        names.push(GeneralName::decode(&mut seq)?);
    }
    r.expect_end()?;
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn san_round_trips_all_types() {
        let names = vec![
            GeneralName::Dns("host.example.org".into()),
            GeneralName::Email("user@example.org".into()),
            GeneralName::Uri("https://example.org/x".into()),
            GeneralName::Ip(vec![192, 168, 1, 1]),
            GeneralName::Ip(vec![
                0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
            ]),
            GeneralName::Other(0, vec![1, 2, 3]),
        ];
        let der = encode_san(&names);
        assert_eq!(decode_san(&der).unwrap(), names);
    }

    #[test]
    fn empty_san_round_trips() {
        let der = encode_san(&[]);
        assert_eq!(decode_san(&der).unwrap(), Vec::<GeneralName>::new());
    }

    #[test]
    fn dns_entries_may_be_free_text() {
        // The paper's key observation: dNSName is abused for arbitrary text.
        let names = vec![
            GeneralName::Dns("John Smith".into()),
            GeneralName::Dns("12:34:56:AB:CD:EF".into()),
        ];
        let der = encode_san(&names);
        let rt = decode_san(&der).unwrap();
        assert_eq!(rt[0].as_dns(), Some("John Smith"));
        assert_eq!(rt[1].as_dns(), Some("12:34:56:AB:CD:EF"));
    }

    #[test]
    fn bad_ip_length_rejected() {
        let mut w = DerWriter::new();
        w.sequence(|w| w.context_primitive(TAG_IP, &[1, 2, 3]));
        assert_eq!(decode_san(&w.finish()), Err(Error::BadIpAddress));
    }

    #[test]
    fn ip_display_forms() {
        assert_eq!(
            GeneralName::Ip(vec![10, 0, 0, 7]).ip_display().unwrap(),
            "10.0.0.7"
        );
        let v6 = GeneralName::Ip(vec![
            0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
        ]);
        assert_eq!(v6.ip_display().unwrap(), "2001:db8:0:0:0:0:0:1");
        assert_eq!(GeneralName::Dns("x".into()).ip_display(), None);
    }

    #[test]
    fn universal_tag_rejected() {
        let mut w = DerWriter::new();
        w.sequence(|w| w.utf8_string("not-a-general-name"));
        assert!(decode_san(&w.finish()).is_err());
    }
}
