//! The certificate itself: TBS structure, signing envelope, DER round-trip,
//! fingerprints, and the predicates the measurement pipeline relies on.

use crate::ext::{parse_san_extension, Extension};
use crate::name::DistinguishedName;
use crate::san::GeneralName;
use crate::spki::PublicKeyInfo;
use crate::{oids, Error, Result};
use mtls_asn1::{Asn1Time, DerReader, DerWriter, Oid, Tag};
use mtls_crypto::{sha256, KeyRegistry, Signature};

/// X.509 version. v2 never occurs in the reproduced dataset and is folded
/// into v3 handling on parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// Version 1 — no extensions. The paper flags v1 certificates behind
    /// dummy issuers as a security concern (§5.1.1).
    V1,
    /// Version 3 — may carry extensions.
    V3,
}

/// A certificate serial number: unsigned big-endian magnitude bytes exactly
/// as issued (so the dummy values `00`, `01`, `024680`, `03E8` from §5.1.2
/// are representable and compare the way the paper counts collisions).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SerialNumber(Vec<u8>);

impl SerialNumber {
    /// From magnitude bytes. Leading zero octets are stripped (DER
    /// canonical form) so values compare the way they appear on the wire;
    /// zero itself is kept as a single `00` octet.
    pub fn new(bytes: &[u8]) -> SerialNumber {
        let start = bytes.iter().take_while(|&&b| b == 0).count();
        if start == bytes.len() {
            SerialNumber(vec![0])
        } else {
            SerialNumber(bytes[start..].to_vec())
        }
    }

    /// From an even-length uppercase/lowercase hex string.
    pub fn from_hex(s: &str) -> Option<SerialNumber> {
        mtls_crypto::hex::decode(s).map(SerialNumber)
    }

    /// Magnitude bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Zeek-style uppercase hex (e.g. `00`, `03E8`, `024680`).
    pub fn to_hex(&self) -> String {
        if self.0.is_empty() {
            "00".to_string()
        } else {
            mtls_crypto::hex::encode_upper(&self.0)
        }
    }
}

/// The declared signature algorithm. The actual tag is simsig (see
/// `mtls-crypto`); the declared algorithm is carried so algorithm-strength
/// analysis matches real-world data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignatureAlgorithm {
    Sha256WithRsa,
    Sha1WithRsa,
    EcdsaWithSha256,
    Md5WithRsa,
}

impl SignatureAlgorithm {
    /// The OID for this algorithm.
    pub fn oid(self) -> &'static Oid {
        match self {
            SignatureAlgorithm::Sha256WithRsa => oids::sha256_with_rsa(),
            SignatureAlgorithm::Sha1WithRsa => oids::sha1_with_rsa(),
            SignatureAlgorithm::EcdsaWithSha256 => oids::ecdsa_with_sha256(),
            SignatureAlgorithm::Md5WithRsa => oids::md5_with_rsa(),
        }
    }

    /// Reverse mapping; `None` for unknown OIDs.
    pub fn from_oid(oid: &Oid) -> Option<SignatureAlgorithm> {
        if oid == oids::sha256_with_rsa() {
            Some(SignatureAlgorithm::Sha256WithRsa)
        } else if oid == oids::sha1_with_rsa() {
            Some(SignatureAlgorithm::Sha1WithRsa)
        } else if oid == oids::ecdsa_with_sha256() {
            Some(SignatureAlgorithm::EcdsaWithSha256)
        } else if oid == oids::md5_with_rsa() {
            Some(SignatureAlgorithm::Md5WithRsa)
        } else {
            None
        }
    }

    /// Whether the hash is broken/deprecated (SHA-1, MD5).
    pub fn is_deprecated(self) -> bool {
        matches!(
            self,
            SignatureAlgorithm::Sha1WithRsa | SignatureAlgorithm::Md5WithRsa
        )
    }

    fn encode(self, w: &mut DerWriter) {
        w.sequence(|w| {
            w.oid(self.oid());
            w.null();
        });
    }

    fn decode(r: &mut DerReader<'_>) -> Result<SignatureAlgorithm> {
        let mut seq = r.read_sequence()?;
        let oid = seq.read_oid()?;
        if !seq.is_empty() {
            seq.read_null()?;
        }
        SignatureAlgorithm::from_oid(&oid).ok_or(Error::Der(mtls_asn1::Error::BadOid))
    }
}

/// SHA-256 over the full certificate DER — the dedup key used throughout the
/// pipeline (Zeek's `x509.fingerprint` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub [u8; 32]);

impl Fingerprint {
    /// Lowercase hex form.
    pub fn to_hex(self) -> String {
        mtls_crypto::hex::encode(&self.0)
    }
}

/// A parsed (or freshly built) X.509 certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    pub(crate) version: Version,
    pub(crate) serial: SerialNumber,
    pub(crate) signature_algorithm: SignatureAlgorithm,
    pub(crate) issuer: DistinguishedName,
    pub(crate) not_before: Asn1Time,
    pub(crate) not_after: Asn1Time,
    pub(crate) subject: DistinguishedName,
    pub(crate) public_key: PublicKeyInfo,
    pub(crate) extensions: Vec<Extension>,
    pub(crate) signature: Signature,
    /// Cached DER of the whole certificate (source of fingerprints).
    pub(crate) der: Vec<u8>,
    /// Cached DER of the TBS portion (what the signature covers).
    pub(crate) tbs_der: Vec<u8>,
}

impl Certificate {
    // --- accessors -------------------------------------------------------

    pub fn version(&self) -> Version {
        self.version
    }

    pub fn serial(&self) -> &SerialNumber {
        &self.serial
    }

    pub fn signature_algorithm(&self) -> SignatureAlgorithm {
        self.signature_algorithm
    }

    pub fn issuer(&self) -> &DistinguishedName {
        &self.issuer
    }

    pub fn subject(&self) -> &DistinguishedName {
        &self.subject
    }

    pub fn not_before(&self) -> Asn1Time {
        self.not_before
    }

    pub fn not_after(&self) -> Asn1Time {
        self.not_after
    }

    pub fn public_key(&self) -> &PublicKeyInfo {
        &self.public_key
    }

    pub fn extensions(&self) -> &[Extension] {
        &self.extensions
    }

    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The full certificate DER.
    pub fn to_der(&self) -> Vec<u8> {
        self.der.clone()
    }

    /// The DER bytes the signature covers.
    pub fn tbs_der(&self) -> &[u8] {
        &self.tbs_der
    }

    /// SHA-256 fingerprint of the certificate DER.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint(sha256(&self.der))
    }

    // --- derived queries ---------------------------------------------------

    /// The SubjectAltName entries, if the extension is present and parses.
    pub fn subject_alt_names(&self) -> Vec<GeneralName> {
        self.extensions
            .iter()
            .find(|e| &e.oid == oids::subject_alt_name())
            .and_then(|e| parse_san_extension(&e.value).ok())
            .unwrap_or_default()
    }

    /// SAN dNSName strings only (the type the paper's Table 8 focuses on).
    pub fn san_dns(&self) -> Vec<String> {
        self.subject_alt_names()
            .into_iter()
            .filter_map(|n| n.as_dns().map(str::to_owned))
            .collect()
    }

    /// The SubjectKeyIdentifier bytes, if the extension is present.
    pub fn subject_key_identifier(&self) -> Option<Vec<u8>> {
        self.extensions
            .iter()
            .find(|e| &e.oid == oids::subject_key_identifier())
            .and_then(|e| crate::ext::parse_ski_extension(&e.value).ok())
    }

    /// The AuthorityKeyIdentifier bytes, if present (keyIdentifier form).
    pub fn authority_key_identifier(&self) -> Option<Vec<u8>> {
        self.extensions
            .iter()
            .find(|e| &e.oid == oids::authority_key_identifier())
            .and_then(|e| crate::ext::parse_aki_extension(&e.value).ok())
            .flatten()
    }

    /// Whether the BasicConstraints extension marks this as a CA.
    pub fn is_ca(&self) -> bool {
        self.extensions
            .iter()
            .find(|e| &e.oid == oids::basic_constraints())
            .and_then(|e| crate::ext::BasicConstraints::from_value(&e.value).ok())
            .map(|bc| bc.ca)
            .unwrap_or(false)
    }

    /// Issuer DN == subject DN (textual self-signedness; the private-CA
    /// world the paper measures is full of these).
    pub fn is_self_issued(&self) -> bool {
        self.issuer == self.subject
    }

    /// `notBefore` does not precede `notAfter` — the misconfiguration class
    /// of the paper's §5.3.1 / Figure 3 (which includes one certificate
    /// whose two timestamps are identical, so equality counts).
    pub fn has_incorrect_dates(&self) -> bool {
        self.not_before >= self.not_after
    }

    /// Validity period in whole days (negative for incorrect dates).
    pub fn validity_days(&self) -> i64 {
        self.not_before.days_until(self.not_after)
    }

    /// Whether the certificate is expired at `at`.
    pub fn is_expired_at(&self, at: Asn1Time) -> bool {
        at > self.not_after
    }

    /// Whether `at` falls in the validity window (inclusive).
    pub fn is_valid_at(&self, at: Asn1Time) -> bool {
        at >= self.not_before && at <= self.not_after
    }

    /// Verify the simsig tag over the TBS bytes against the registry entry
    /// for `signer_key`. See `mtls-crypto::simsig` for the trust model.
    pub fn verify_signature(&self, registry: &KeyRegistry, signer_key: mtls_crypto::KeyId) -> bool {
        registry.verify(signer_key, &self.tbs_der, &self.signature)
    }

    // --- DER ---------------------------------------------------------------

    /// Assemble and sign; used by the builder. `signer` signs the TBS bytes.
    #[allow(clippy::too_many_arguments)] // mirrors the TBSCertificate fields
    pub(crate) fn assemble(
        version: Version,
        serial: SerialNumber,
        signature_algorithm: SignatureAlgorithm,
        issuer: DistinguishedName,
        not_before: Asn1Time,
        not_after: Asn1Time,
        subject: DistinguishedName,
        public_key: PublicKeyInfo,
        extensions: Vec<Extension>,
        signer: &mtls_crypto::Keypair,
    ) -> Certificate {
        let mut tbs = DerWriter::with_capacity(512);
        tbs.sequence(|w| {
            if version == Version::V3 {
                w.explicit(0, |w| w.integer_i64(2));
            }
            w.integer_bytes(serial.as_bytes());
            signature_algorithm.encode(w);
            issuer.encode(w);
            w.sequence(|w| {
                w.time(not_before);
                w.time(not_after);
            });
            subject.encode(w);
            public_key.encode(w);
            if version == Version::V3 && !extensions.is_empty() {
                w.explicit(3, |w| {
                    w.sequence(|w| {
                        for ext in &extensions {
                            ext.encode(w);
                        }
                    });
                });
            }
        });
        let tbs_der = tbs.finish();
        let signature = signer.sign(&tbs_der);

        let mut outer = DerWriter::with_capacity(tbs_der.len() + 96);
        outer.sequence(|w| {
            w.raw(&tbs_der);
            signature_algorithm.encode(w);
            w.bit_string(signature.as_bytes());
        });
        let der = outer.finish();

        Certificate {
            version,
            serial,
            signature_algorithm,
            issuer,
            not_before,
            not_after,
            subject,
            public_key,
            extensions,
            signature,
            der,
            tbs_der,
        }
    }

    /// Parse a certificate from DER.
    pub fn from_der(der: &[u8]) -> Result<Certificate> {
        let mut top = DerReader::new(der);
        let mut cert_seq = top.read_sequence()?;
        top.expect_end()?;

        let tbs_der = cert_seq.read_raw_tlv()?.to_vec();
        let mut tbs_outer = DerReader::new(&tbs_der);
        let mut tbs = tbs_outer.read_sequence()?;

        let version = match tbs.read_optional_explicit(0)? {
            Some(mut v) => match v.read_integer_i64()? {
                0 => Version::V1,
                1 | 2 => Version::V3,
                other => return Err(Error::BadVersion(other)),
            },
            None => Version::V1,
        };
        let serial = SerialNumber(tbs.read_integer_unsigned()?.to_vec());
        let signature_algorithm = SignatureAlgorithm::decode(&mut tbs)?;
        let issuer = DistinguishedName::decode(&mut tbs)?;
        let mut validity = tbs.read_sequence()?;
        let not_before = validity.read_time()?;
        let not_after = validity.read_time()?;
        validity.expect_end()?;
        let subject = DistinguishedName::decode(&mut tbs)?;
        let public_key = PublicKeyInfo::decode(&mut tbs)?;

        let mut extensions = Vec::new();
        if tbs.peek_tag() == Some(Tag::context_constructed(3)) {
            let mut wrapper = tbs.read_explicit(3)?;
            let mut ext_seq = wrapper.read_sequence()?;
            while !ext_seq.is_empty() {
                extensions.push(Extension::decode(&mut ext_seq)?);
            }
            wrapper.expect_end()?;
        }
        tbs.expect_end()?;

        let outer_alg = SignatureAlgorithm::decode(&mut cert_seq)?;
        let sig_bits = cert_seq.read_bit_string()?;
        cert_seq.expect_end()?;
        let signature = Signature::from_bytes(sig_bits).ok_or(Error::BadSignature)?;

        // RFC 5280 requires the inner and outer algorithm to agree; real
        // parsers reject mismatches and so do we.
        if outer_alg != signature_algorithm {
            return Err(Error::Der(mtls_asn1::Error::UnexpectedTag {
                expected: 0x30,
                got: 0x30,
            }));
        }

        Ok(Certificate {
            version,
            serial,
            signature_algorithm,
            issuer,
            not_before,
            not_after,
            subject,
            public_key,
            extensions,
            signature,
            der: der.to_vec(),
            tbs_der,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CertificateBuilder;
    use mtls_crypto::Keypair;

    fn simple_cert() -> Certificate {
        let ca = Keypair::from_seed(b"ca");
        let leaf = Keypair::from_seed(b"leaf");
        CertificateBuilder::new()
            .serial(&[0x0A, 0x0B])
            .issuer(DistinguishedName::builder().organization("Test CA").build())
            .subject(
                DistinguishedName::builder()
                    .common_name("unit.example")
                    .build(),
            )
            .validity(
                Asn1Time::from_ymd(2023, 1, 1),
                Asn1Time::from_ymd(2024, 1, 1),
            )
            .san(vec![GeneralName::Dns("unit.example".into())])
            .subject_key(leaf.key_id())
            .sign(&ca)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let cert = simple_cert();
        let parsed = Certificate::from_der(&cert.to_der()).unwrap();
        assert_eq!(parsed, cert);
        assert_eq!(parsed.fingerprint(), cert.fingerprint());
    }

    #[test]
    fn signature_verifies_and_tamper_fails() {
        let ca = Keypair::from_seed(b"ca");
        let cert = simple_cert();
        let mut reg = KeyRegistry::new();
        reg.register(ca.clone());
        assert!(cert.verify_signature(&reg, ca.key_id()));

        // Flip a byte inside the TBS region and re-parse: tag must fail.
        let mut der = cert.to_der();
        // locate some byte well inside TBS (header is 4-8 bytes).
        der[20] ^= 0xFF;
        if let Ok(tampered) = Certificate::from_der(&der) {
            assert!(!tampered.verify_signature(&reg, ca.key_id()));
        }
    }

    #[test]
    fn v1_certificate_round_trips_without_extensions() {
        let ca = Keypair::from_seed(b"v1ca");
        let leaf = Keypair::from_seed(b"v1leaf");
        let cert = CertificateBuilder::new()
            .version(Version::V1)
            .serial(&[0x01])
            .issuer(
                DistinguishedName::builder()
                    .organization("Internet Widgits Pty Ltd")
                    .build(),
            )
            .subject(DistinguishedName::builder().common_name("old").build())
            .validity(
                Asn1Time::from_ymd(2020, 1, 1),
                Asn1Time::from_ymd(2030, 1, 1),
            )
            .subject_key(leaf.key_id())
            .sign(&ca);
        let parsed = Certificate::from_der(&cert.to_der()).unwrap();
        assert_eq!(parsed.version(), Version::V1);
        assert!(parsed.extensions().is_empty());
    }

    #[test]
    fn incorrect_dates_are_representable() {
        let ca = Keypair::from_seed(b"idrive");
        let leaf = Keypair::from_seed(b"idrive-leaf");
        // IDrive: notBefore 2019, notAfter 1849 (Table 12).
        let cert = CertificateBuilder::new()
            .serial(&[0x77])
            .issuer(
                DistinguishedName::builder()
                    .organization("IDrive Inc Certificate Authority")
                    .build(),
            )
            .subject(
                DistinguishedName::builder()
                    .common_name("backup-client")
                    .build(),
            )
            .validity(
                Asn1Time::from_ymd(2019, 8, 2),
                Asn1Time::from_ymd(1849, 10, 24),
            )
            .subject_key(leaf.key_id())
            .sign(&ca);
        let parsed = Certificate::from_der(&cert.to_der()).unwrap();
        assert!(parsed.has_incorrect_dates());
        assert!(parsed.validity_days() < 0);
        assert_eq!(parsed.not_after().year(), 1849);
    }

    #[test]
    fn serial_hex_forms() {
        assert_eq!(SerialNumber::new(&[0x00]).to_hex(), "00");
        assert_eq!(SerialNumber::new(&[0x03, 0xE8]).to_hex(), "03E8");
        assert_eq!(SerialNumber::new(&[0x02, 0x46, 0x80]).to_hex(), "024680");
        assert_eq!(
            SerialNumber::from_hex("024680").unwrap(),
            SerialNumber::new(&[0x02, 0x46, 0x80])
        );
        assert!(SerialNumber::from_hex("0x!").is_none());
    }

    #[test]
    fn dummy_serial_00_round_trips() {
        // DER encodes 0 as a single zero byte; ensure the parse maps back
        // to the canonical "00" hex the collision analysis groups by.
        let ca = Keypair::from_seed(b"globus");
        let leaf = Keypair::from_seed(b"globus-leaf");
        let cert = CertificateBuilder::new()
            .serial(&[0x00])
            .issuer(
                DistinguishedName::builder()
                    .organization("Globus Online")
                    .common_name("FXP DCAU Cert")
                    .build(),
            )
            .subject(DistinguishedName::builder().common_name("transfer").build())
            .validity(
                Asn1Time::from_ymd(2023, 1, 1),
                Asn1Time::from_ymd(2023, 1, 15),
            )
            .subject_key(leaf.key_id())
            .sign(&ca);
        let parsed = Certificate::from_der(&cert.to_der()).unwrap();
        assert_eq!(parsed.serial().to_hex(), "00");
    }

    #[test]
    fn expiry_predicates() {
        let cert = simple_cert();
        assert!(cert.is_valid_at(Asn1Time::from_ymd(2023, 6, 1)));
        assert!(cert.is_expired_at(Asn1Time::from_ymd(2024, 6, 1)));
        assert!(!cert.is_valid_at(Asn1Time::from_ymd(2022, 6, 1)));
        assert!(!cert.is_expired_at(Asn1Time::from_ymd(2023, 6, 1)));
    }

    #[test]
    fn deprecated_algorithms_flagged() {
        assert!(SignatureAlgorithm::Sha1WithRsa.is_deprecated());
        assert!(SignatureAlgorithm::Md5WithRsa.is_deprecated());
        assert!(!SignatureAlgorithm::Sha256WithRsa.is_deprecated());
    }

    #[test]
    fn garbage_rejected() {
        assert!(Certificate::from_der(&[0x30, 0x03, 1, 2, 3]).is_err());
        assert!(Certificate::from_der(&[]).is_err());
    }
}
